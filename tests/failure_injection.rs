//! Failure injection: the harness must stay well-behaved when the
//! network misbehaves, nodes crash from memory pressure, or the memo
//! database is incomplete.

use scalecheck::{memoize, replay_ordered, run_real, COLO_CORES};
use scalecheck_cluster::{
    run_scenario, AllocStrategy, CalcIo, DeploymentMode, FaultPlan, ScenarioConfig, Workload,
};
use scalecheck_sim::{SimDuration, SimTime};

fn base(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::c3831(n, seed);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(100);
    cfg.max_duration = SimDuration::from_secs(900);
    cfg
}

#[test]
fn gossip_converges_without_loss_baseline() {
    let cfg = base(12, 1);
    let r = run_real(&cfg);
    assert!(r.quiesced);
    assert_eq!(r.messages_dropped, 0);
    assert_eq!(r.total_flaps, 0);
}

#[test]
fn plumbed_loss_config_drops_messages_end_to_end() {
    // The runner builds its network from `ScenarioConfig.network`, so
    // random loss set there must show up in the run report.
    let mut lossy = base(12, 1);
    lossy.network.drop_probability = 0.2;
    let r = run_real(&lossy);
    assert!(r.quiesced, "20% loss must not wedge the cluster");
    assert!(r.messages_dropped > 0, "configured loss must drop messages");

    // Heavier configured loss drops a larger share of offered traffic.
    let mut heavy = base(12, 1);
    heavy.network.drop_probability = 0.5;
    let r2 = run_real(&heavy);
    assert!(r2.quiesced);
    let rate = |r: &scalecheck_cluster::RunReport| {
        r.messages_dropped as f64 / r.messages_sent.max(1) as f64
    };
    assert!(
        rate(&r2) > rate(&r),
        "drop rate must follow the config: {} vs {}",
        rate(&r2),
        rate(&r)
    );
}

#[test]
fn fault_crash_restart_accounts_downtime_and_recovers() {
    let mut cfg = base(12, 6);
    cfg.faults = FaultPlan::new()
        .crash(SimTime::from_secs(50), 3)
        .restart(SimTime::from_secs(80), 3);
    let r = run_real(&cfg);
    assert!(r.quiesced, "the cluster must settle after the restart");
    assert_eq!(r.faults.crashes, 1);
    assert_eq!(r.faults.restarts, 1);
    assert_eq!(
        r.faults.downtime.get(&3).copied(),
        Some(SimDuration::from_secs(30)),
        "downtime is exactly crash..restart on the virtual clock"
    );
    assert!(
        r.faults.attributed_flaps > 0,
        "survivors convict the silent node, attributed to the fault"
    );
}

/// A crash cancels the dead node's periodic timers outright: nothing
/// from the old timer epoch lingers in the schedule to fire as a stale
/// no-op, and the engine's cancellation accounting shows the removals.
#[test]
fn crash_restart_leaves_no_stale_timers_for_the_dead_epoch() {
    let mut cfg = base(12, 6);
    cfg.faults = FaultPlan::new()
        .crash(SimTime::from_secs(50), 3)
        .restart(SimTime::from_secs(80), 3);
    let r = run_real(&cfg);
    assert!(r.quiesced, "the cluster must settle after the restart");
    assert_eq!(
        r.stale_timer_fires, 0,
        "no timer from the pre-crash epoch may reach its fire time"
    );
    assert!(
        r.engine.cancelled >= 2,
        "the crash must cancel the node's gossip and fd timers, got {}",
        r.engine.cancelled
    );
}

#[test]
fn partition_flaps_are_fault_attributed_and_heal() {
    let mut cfg = base(12, 7);
    let minority: Vec<u32> = vec![0, 1, 2];
    let majority: Vec<u32> = (3..12).collect();
    cfg.faults = FaultPlan::new()
        .partition(SimTime::from_secs(50), minority.clone(), majority.clone())
        .heal(SimTime::from_secs(90), minority, majority);
    let r = run_real(&cfg);
    assert!(r.quiesced, "the cluster must settle after the heal");
    assert!(
        r.faults.fault_dropped > 0,
        "cross-cut messages must be dropped while partitioned"
    );
    assert!(
        r.faults.attributed_flaps > 0,
        "cross-cut convictions must be attributed to the partition"
    );
    assert!(r.faults.downtime.is_empty(), "nobody crashed");
}

#[test]
fn same_fault_triple_yields_byte_identical_reports() {
    // The determinism contract: the same (scenario, plan, seed) triple
    // produces a byte-identical serialized FaultReport, run to run.
    let mut cfg = base(12, 9);
    cfg.faults = FaultPlan::storm(9, 12, 0.6);
    let a = run_real(&cfg);
    let b = run_real(&cfg);
    assert!(
        !a.faults.fired.is_empty(),
        "the storm must inject something"
    );
    assert_eq!(
        serde_json::to_string(&a.faults).unwrap(),
        serde_json::to_string(&b.faults).unwrap(),
        "FaultReport must be byte-identical across same-seed runs"
    );
    assert_eq!(a.total_flaps, b.total_flaps);
    assert_eq!(a.messages_delivered, b.messages_delivered);
}

#[test]
fn naive_rebalance_allocation_crashes_nodes_under_colocation() {
    // §6: the rebalance protocol over-allocates (N-1)*P*1.3MB; on a
    // 32-GB colocation box that is fatal, and the §8 symptom is nodes
    // crashing with OOM.
    let mut cfg = base(64, 2);
    cfg.vnodes = 8;
    cfg.workload = Workload::ScaleOut {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.memory.rebalance_alloc = Some(AllocStrategy::Naive);
    cfg.memory.single_process = true;
    let cfg = cfg
        .with_deployment(DeploymentMode::Colo { cores: 16 })
        .with_calc_io(CalcIo::Execute);
    let r = run_scenario(&cfg);
    assert!(r.oom_events > 0, "naive allocation must hit the wall");
    assert!(r.crashed_nodes > 0, "OOM crashes nodes (S8)");

    // The frugal strategy survives the identical workload.
    let mut frugal = cfg.clone();
    frugal.memory.rebalance_alloc = Some(AllocStrategy::Frugal);
    let r2 = run_scenario(&frugal);
    assert_eq!(r2.oom_events, 0);
    assert_eq!(r2.crashed_nodes, 0);
}

#[test]
fn crashed_nodes_get_convicted_by_the_rest() {
    // A node that crashes goes silent without announcing Left; the
    // survivors must convict it (real flaps, not clean departures).
    let mut cfg = base(24, 3);
    cfg.vnodes = 8;
    cfg.workload = Workload::ScaleOut {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.memory.rebalance_alloc = Some(AllocStrategy::Naive);
    cfg.memory.single_process = true;
    // Capacity sized so that a couple of rebalance allocations blow up.
    cfg.memory.machine_capacity = 1 << 30;
    let cfg = cfg
        .with_deployment(DeploymentMode::Colo { cores: 16 })
        .with_calc_io(CalcIo::Execute);
    let r = run_scenario(&cfg);
    assert!(r.crashed_nodes > 0);
    assert!(
        r.total_flaps as usize >= (cfg.n_nodes - r.crashed_nodes as usize) / 2,
        "survivors should convict the crashed nodes: {} flaps, {} crashed",
        r.total_flaps,
        r.crashed_nodes
    );
}

#[test]
fn replay_with_truncated_db_falls_back_and_completes() {
    // Delete half the memoized records: the replay must fall back
    // (index or re-execution), complete, and report the damage.
    let cfg = base(12, 4);
    let memo = memoize(&cfg, COLO_CORES);
    // Drop every other record.
    let mut damaged = memo.db.clone();
    let keys: Vec<_> = memo.db.iter_records().map(|(f, d, _)| (f, d)).collect();
    for (f, d) in keys.iter().step_by(2) {
        assert!(damaged.remove(*f, *d));
    }

    let mut rcfg = cfg
        .clone()
        .with_deployment(DeploymentMode::PilReplay { cores: COLO_CORES })
        .with_calc_io(CalcIo::Replay);
    rcfg.order_enforcement = true;
    let (r, _, _) =
        scalecheck_cluster::run_scenario_with_db(&rcfg, Some(damaged), Some(memo.order.clone()));
    assert!(r.quiesced, "replay must not wedge on missing records");
    assert!(
        r.memo.misses + r.memo.index_fallbacks > 0,
        "damage must be visible in the stats: {:?}",
        r.memo
    );
}

#[test]
fn order_log_from_wrong_run_is_survivable() {
    // Replaying with another seed's order log: messages will not match
    // the recorded order; the hold timeout must keep the run moving.
    let cfg = base(12, 5);
    let memo = memoize(&cfg, COLO_CORES);
    let other = memoize(&base(12, 99), COLO_CORES);
    let pil = replay_ordered(
        &cfg,
        COLO_CORES,
        &scalecheck::MemoArtifacts {
            db: memo.db.clone(),
            order: other.order.clone(),
            report: memo.report.clone(),
        },
    );
    assert!(pil.quiesced, "mismatched order log must not deadlock");
    assert!(
        pil.order_out_of_log > 0 || pil.order_forced_releases > 0,
        "divergence must be reported"
    );
}
