//! Failure injection: the harness must stay well-behaved when the
//! network misbehaves, nodes crash from memory pressure, or the memo
//! database is incomplete.

use scalecheck::{memoize, replay_ordered, run_real, COLO_CORES};
use scalecheck_cluster::{
    run_scenario, AllocStrategy, CalcIo, DeploymentMode, ScenarioConfig, Workload,
};
use scalecheck_sim::SimDuration;

fn base(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::c3831(n, seed);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(100);
    cfg.max_duration = SimDuration::from_secs(900);
    cfg
}

// Message loss is injected by tweaking the network config through the
// cluster runner; the runner reads `NetworkConfig::default()`, so the
// loss tests go through the network crate directly plus an end-to-end
// smoke via drop-heavy gossip in small clusters.
#[test]
fn gossip_converges_without_loss_baseline() {
    let cfg = base(12, 1);
    let r = run_real(&cfg);
    assert!(r.quiesced);
    assert_eq!(r.messages_dropped, 0);
    assert_eq!(r.total_flaps, 0);
}

#[test]
fn naive_rebalance_allocation_crashes_nodes_under_colocation() {
    // §6: the rebalance protocol over-allocates (N-1)*P*1.3MB; on a
    // 32-GB colocation box that is fatal, and the §8 symptom is nodes
    // crashing with OOM.
    let mut cfg = base(64, 2);
    cfg.vnodes = 8;
    cfg.workload = Workload::ScaleOut {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.memory.rebalance_alloc = Some(AllocStrategy::Naive);
    cfg.memory.single_process = true;
    let cfg = cfg
        .with_deployment(DeploymentMode::Colo { cores: 16 })
        .with_calc_io(CalcIo::Execute);
    let r = run_scenario(&cfg);
    assert!(r.oom_events > 0, "naive allocation must hit the wall");
    assert!(r.crashed_nodes > 0, "OOM crashes nodes (S8)");

    // The frugal strategy survives the identical workload.
    let mut frugal = cfg.clone();
    frugal.memory.rebalance_alloc = Some(AllocStrategy::Frugal);
    let r2 = run_scenario(&frugal);
    assert_eq!(r2.oom_events, 0);
    assert_eq!(r2.crashed_nodes, 0);
}

#[test]
fn crashed_nodes_get_convicted_by_the_rest() {
    // A node that crashes goes silent without announcing Left; the
    // survivors must convict it (real flaps, not clean departures).
    let mut cfg = base(24, 3);
    cfg.vnodes = 8;
    cfg.workload = Workload::ScaleOut {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.memory.rebalance_alloc = Some(AllocStrategy::Naive);
    cfg.memory.single_process = true;
    // Capacity sized so that a couple of rebalance allocations blow up.
    cfg.memory.machine_capacity = 1 << 30;
    let cfg = cfg
        .with_deployment(DeploymentMode::Colo { cores: 16 })
        .with_calc_io(CalcIo::Execute);
    let r = run_scenario(&cfg);
    assert!(r.crashed_nodes > 0);
    assert!(
        r.total_flaps as usize >= (cfg.n_nodes - r.crashed_nodes as usize) / 2,
        "survivors should convict the crashed nodes: {} flaps, {} crashed",
        r.total_flaps,
        r.crashed_nodes
    );
}

#[test]
fn replay_with_truncated_db_falls_back_and_completes() {
    // Delete half the memoized records: the replay must fall back
    // (index or re-execution), complete, and report the damage.
    let cfg = base(12, 4);
    let memo = memoize(&cfg, COLO_CORES);
    // Drop every other record.
    let mut damaged = memo.db.clone();
    let keys: Vec<_> = memo.db.iter_records().map(|(f, d, _)| (f, d)).collect();
    for (f, d) in keys.iter().step_by(2) {
        assert!(damaged.remove(*f, *d));
    }

    let mut rcfg = cfg
        .clone()
        .with_deployment(DeploymentMode::PilReplay { cores: COLO_CORES })
        .with_calc_io(CalcIo::Replay);
    rcfg.order_enforcement = true;
    let (r, _, _) =
        scalecheck_cluster::run_scenario_with_db(&rcfg, Some(damaged), Some(memo.order.clone()));
    assert!(r.quiesced, "replay must not wedge on missing records");
    assert!(
        r.memo.misses + r.memo.index_fallbacks > 0,
        "damage must be visible in the stats: {:?}",
        r.memo
    );
}

#[test]
fn order_log_from_wrong_run_is_survivable() {
    // Replaying with another seed's order log: messages will not match
    // the recorded order; the hold timeout must keep the run moving.
    let cfg = base(12, 5);
    let memo = memoize(&cfg, COLO_CORES);
    let other = memoize(&base(12, 99), COLO_CORES);
    let pil = replay_ordered(
        &cfg,
        COLO_CORES,
        &scalecheck::MemoArtifacts {
            db: memo.db.clone(),
            order: other.order.clone(),
            report: memo.report.clone(),
        },
    );
    assert!(pil.quiesced, "mismatched order log must not deadlock");
    assert!(
        pil.order_out_of_log > 0 || pil.order_forced_releases > 0,
        "divergence must be reported"
    );
}
