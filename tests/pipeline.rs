//! End-to-end pipeline tests: memoize → (persist) → replay, accuracy
//! against real-scale, and the behaviour of the three deployment
//! semantics on a cluster small enough for CI.
//!
//! The bug dynamics themselves need hundreds of nodes with the real
//! calibration; here we shrink the cluster and inflate the per-op cost
//! so the same starvation mechanism fires at N≈32 in seconds.

use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_cluster::{
    CalcIo, CalcVersion, DeploymentMode, PendingWire, ScenarioConfig, Workload,
};
use scalecheck_memo::MemoDb;
use scalecheck_sim::SimDuration;

/// A healthy little cluster: nothing should flap anywhere.
fn healthy(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::c3831(n, seed);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(100);
    cfg.max_duration = SimDuration::from_secs(600);
    cfg
}

/// A shrunken C3831: per-op cost inflated so the cubic calculation
/// takes seconds even at N=32 — the same gossip-stage starvation as the
/// paper's 256-node runs, at CI scale.
fn mini_bug(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::c3831(32, seed);
    cfg.ns_per_op = 120_000; // ~4s per calculation at N=32
    cfg.workload = Workload::Decommission {
        count: 2,
        gap: SimDuration::from_secs(130),
    };
    cfg.rescale_window = SimDuration::from_secs(100);
    cfg.workload_end = SimDuration::from_secs(300);
    cfg.max_duration = SimDuration::from_secs(2400);
    cfg
}

#[test]
fn healthy_cluster_no_flaps_in_any_mode() {
    let cfg = healthy(16, 3);
    let real = run_real(&cfg);
    assert_eq!(real.total_flaps, 0);
    assert!(real.quiesced);
    let colo = run_colo(&cfg, COLO_CORES);
    assert_eq!(colo.total_flaps, 0);
    let memo = memoize(&cfg, COLO_CORES);
    let pil = replay(&cfg, COLO_CORES, &memo);
    assert_eq!(pil.total_flaps, 0);
    assert!(pil.quiesced);
}

#[test]
fn mini_bug_flaps_at_real_scale_and_fix_removes_it() {
    let cfg = mini_bug(1);
    let buggy = run_real(&cfg);
    assert!(
        buggy.total_flaps > 200,
        "the inflated cubic calc must starve the gossip stage: {} flaps",
        buggy.total_flaps
    );
    // The historical fix (faster calculator) removes the symptom.
    let mut fixed = cfg.clone();
    fixed.calculator = CalcVersion::V3VnodeAware;
    let ok = run_real(&fixed);
    assert_eq!(
        ok.total_flaps, 0,
        "v3 is orders of magnitude cheaper; no starvation"
    );
}

#[test]
fn pil_replay_tracks_real_on_the_mini_bug() {
    let cfg = mini_bug(1);
    let real = run_real(&cfg);
    let memo = memoize(&cfg, COLO_CORES);
    let pil = replay(&cfg, COLO_CORES, &memo);
    assert!(pil.memo.replay_hit_rate() > 0.9, "{:?}", pil.memo);
    // The paper's accuracy claim: same symptom, similar magnitude.
    assert!(pil.total_flaps > 200, "PIL must reproduce the symptom");
    let ratio = pil.total_flaps as f64 / real.total_flaps as f64;
    assert!(
        (0.4..2.5).contains(&ratio),
        "SC+PIL ({}) should be in the same ballpark as Real ({})",
        pil.total_flaps,
        real.total_flaps
    );
    // And the replay should not run dramatically longer than real scale.
    let stretch = pil.duration.as_secs_f64() / real.duration.as_secs_f64();
    assert!(stretch < 2.0, "replay stretched {stretch}x");
}

#[test]
fn memo_db_survives_persistence_round_trip() {
    let cfg = healthy(12, 9);
    let memo = memoize(&cfg, COLO_CORES);
    let json = memo.db.to_json().expect("serialize");
    let db2: MemoDb<PendingWire> = MemoDb::from_json(&json).expect("deserialize");
    assert_eq!(db2.len(), memo.db.len());
    // Replaying against the reloaded DB behaves identically.
    let mut rcfg = cfg
        .clone()
        .with_deployment(DeploymentMode::PilReplay { cores: COLO_CORES })
        .with_calc_io(CalcIo::Replay);
    rcfg.order_enforcement = true;
    let (r1, _, _) = scalecheck_cluster::run_scenario_with_db(
        &rcfg,
        Some(memo.db.clone()),
        Some(memo.order.clone()),
    );
    let (r2, _, _) =
        scalecheck_cluster::run_scenario_with_db(&rcfg, Some(db2), Some(memo.order.clone()));
    assert_eq!(r1.total_flaps, r2.total_flaps);
    assert_eq!(r1.duration, r2.duration);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let cfg = healthy(12, 5);
    let a = run_real(&cfg);
    let b = run_real(&cfg);
    assert_eq!(a.total_flaps, b.total_flaps);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.duration, b.duration);
    // A different seed gives a different (but still healthy) run:
    // at least one trajectory metric must move.
    let c = run_real(&healthy(12, 6));
    assert!(
        a.messages_sent != c.messages_sent
            || a.calc.invocations != c.calc.invocations
            || a.messages_delivered != c.messages_delivered
            || a.duration != c.duration,
        "two seeds produced identical trajectories"
    );
}

#[test]
fn colo_contention_stretches_the_run() {
    // On a single core, the CPU-bound mini bug must take much longer in
    // colocation than at real scale (the Figure 1b claim).
    let mut cfg = mini_bug(2);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(60),
    };
    cfg.workload_end = SimDuration::from_secs(160);
    let real = run_real(&cfg);
    let colo = run_colo(&cfg, 1);
    assert!(
        colo.duration.as_secs_f64() > 1.5 * real.duration.as_secs_f64(),
        "colo {:.0}s vs real {:.0}s",
        colo.duration.as_secs_f64(),
        real.duration.as_secs_f64()
    );
}

#[test]
fn replay_without_db_degrades_gracefully() {
    // A replay with an empty DB must still complete (everything falls
    // back to genuine execution) and report the misses honestly.
    let cfg = healthy(10, 4);
    let mut rcfg = cfg
        .clone()
        .with_deployment(DeploymentMode::PilReplay { cores: COLO_CORES })
        .with_calc_io(CalcIo::Replay);
    rcfg.order_enforcement = false;
    let (r, _, _) = scalecheck_cluster::run_scenario_with_db(&rcfg, Some(MemoDb::new()), None);
    assert!(r.quiesced);
    assert!(r.memo.misses > 0);
    assert_eq!(r.memo.hits, 0);
}

#[test]
fn replay_traces_are_bit_identical() {
    // §7's debugging loop depends on replay determinism: two replays of
    // the same artifacts must produce identical event traces.
    let mut cfg = mini_bug(3);
    cfg.trace_events = true;
    let memo = memoize(&cfg, COLO_CORES);
    let t1 = replay(&cfg, COLO_CORES, &memo);
    let t2 = replay(&cfg, COLO_CORES, &memo);
    assert!(!t1.trace.is_empty(), "trace must record events");
    assert_eq!(t1.trace.events(), t2.trace.events());
    assert_eq!(t1.total_flaps, t2.total_flaps);
    // The trace contains both convictions and calculations.
    use scalecheck_cluster::TraceEvent;
    assert!(t1
        .trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::Convicted { .. })));
    assert!(t1
        .trace
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::CalcFinished { .. })));
    // Timestamps are nondecreasing.
    for w in t1.trace.events().windows(2) {
        assert!(w[0].at() <= w[1].at());
    }
}
