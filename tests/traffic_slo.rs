//! End-to-end contracts of the client-traffic datapath riding on the
//! cluster runner:
//!
//! * attaching traffic never perturbs control-plane dynamics (the
//!   datapath only *observes* the cluster);
//! * the request log and histograms are byte-deterministic;
//! * traffic state is O(requests), not O(users), all the way through a
//!   full scenario run;
//! * nonsensical quorum settings are rejected at config level instead
//!   of silently under-counting.

use proptest::prelude::*;
use scalecheck_cluster::{run_scenario, ClientConfig, ScenarioConfig, TrafficConfig, Workload};
use scalecheck_sim::SimDuration;

/// A small, fast scenario: one decommission on a healthy cluster.
fn small(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n, seed);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.workload_end = SimDuration::from_secs(80);
    cfg.max_duration = SimDuration::from_secs(300);
    cfg
}

/// The same scenario with every client-side datapath disabled.
fn silent(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = small(n, seed);
    cfg.client = ClientConfig::OFF;
    cfg.traffic = TrafficConfig::OFF;
    cfg
}

/// Control-plane fields that must not move when traffic is attached.
fn control_plane(r: &scalecheck_cluster::RunReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.total_flaps,
        r.per_node_flaps.clone(),
        r.recoveries,
        r.messages_sent,
        r.messages_dropped,
        r.messages_delivered,
        r.duration,
        r.quiesced,
        r.stale_timer_fires,
    )
}

#[test]
fn traffic_observes_without_perturbing_the_control_plane() {
    let off = run_scenario(&silent(12, 7));
    let on = run_scenario(&small(12, 7).with_traffic(TrafficConfig::open_loop(1_000_000)));
    assert!(!off.traffic.enabled);
    assert!(on.traffic.enabled);
    assert!(on.traffic.attempted > 0, "traffic must actually flow");
    assert_eq!(
        control_plane(&off),
        control_plane(&on),
        "attaching the datapath must leave cluster dynamics bit-identical"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The differential contract holds across scales and seeds, and for
    /// the legacy probe shape as well as the open-loop datapath.
    #[test]
    fn traffic_on_off_differential(n in 8usize..14, seed in 1u64..50) {
        let off = run_scenario(&silent(n, seed));
        let legacy = run_scenario(&silent(n, seed).with_traffic(
            ClientConfig::light().to_traffic(3),
        ));
        let open = run_scenario(&small(n, seed).with_traffic(
            TrafficConfig::open_loop(100_000),
        ));
        prop_assert_eq!(control_plane(&off), control_plane(&legacy));
        prop_assert_eq!(control_plane(&off), control_plane(&open));
    }
}

#[test]
fn request_log_and_histograms_are_byte_deterministic() {
    let cfg = small(10, 3).with_traffic(TrafficConfig::open_loop(1_000_000));
    let a = run_scenario(&cfg);
    let b = run_scenario(&cfg);
    assert_eq!(a.traffic, b.traffic, "traffic reports must be identical");
    assert_eq!(
        serde_json::to_string(&a.traffic).unwrap(),
        serde_json::to_string(&b.traffic).unwrap(),
        "serialized bytes must match exactly"
    );
    assert_eq!(a.traffic.log_digest, b.traffic.log_digest);
    assert!(a.traffic.attempted > 0);
}

#[test]
fn traffic_state_is_o_requests_not_o_users_through_a_full_run() {
    // A thousand users and a million users differ by 1000x in offered
    // load, but the datapath aggregates arrivals into weighted samples:
    // its tracked memory must not grow with the population.
    let thousand = run_scenario(&small(10, 5).with_traffic(TrafficConfig::open_loop(1_000)));
    let million = run_scenario(&small(10, 5).with_traffic(TrafficConfig::open_loop(1_000_000)));
    assert!(million.traffic.attempted > 100 * thousand.traffic.attempted);
    assert_eq!(
        thousand.traffic.state_peak_bytes, million.traffic.state_peak_bytes,
        "peak tracked bytes must be independent of the user population"
    );
    assert!(million.traffic.state_peak_bytes > 0);
}

#[test]
fn quorum_beyond_rf_is_a_config_error_not_an_undercount() {
    let mut cfg = small(10, 1);
    cfg.client = ClientConfig {
        ops_per_sec: 50,
        quorum: cfg.rf + 1,
    };
    let err = cfg.validate().unwrap_err();
    assert!(
        err.contains("quorum") && err.contains("rf"),
        "error must name the clash: {err}"
    );
    // Disabling the probe makes the same setting inert and valid.
    cfg.client.ops_per_sec = 0;
    cfg.validate().expect("disabled probe never under-counts");
}

#[test]
#[should_panic(expected = "quorum")]
fn runner_refuses_to_start_with_an_invalid_quorum() {
    let mut cfg = small(10, 1);
    cfg.client = ClientConfig {
        ops_per_sec: 50,
        quorum: cfg.rf + 1,
    };
    let _ = run_scenario(&cfg);
}
