//! End-to-end contracts of the client-traffic datapath riding on the
//! cluster runner:
//!
//! * the *uncoupled* legacy probe never perturbs control-plane
//!   dynamics, and the *coupled* open-loop datapath offered zero load
//!   is bit-identical to traffic-off (arming the engine costs
//!   nothing);
//! * coupled traffic genuinely rides the simulation — it bills CPU and
//!   sends data-plane messages, and the control plane feels it;
//! * the request log and histograms are byte-deterministic;
//! * traffic state is O(requests), not O(users), all the way through a
//!   full scenario run;
//! * nonsensical quorum settings are rejected at config level instead
//!   of silently under-counting;
//! * (release-mode, `--ignored`) the paper-shape regression: C3831 at
//!   128 nodes shows Colo diverging from Real on the user-visible SLO
//!   axis while SC+PIL tracks Real.

use proptest::prelude::*;
use scalecheck_cluster::{run_scenario, ClientConfig, ScenarioConfig, TrafficConfig, Workload};
use scalecheck_sim::SimDuration;

/// A small, fast scenario: one decommission on a healthy cluster.
fn small(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n, seed);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.workload_end = SimDuration::from_secs(80);
    cfg.max_duration = SimDuration::from_secs(300);
    cfg
}

/// The same scenario with every client-side datapath disabled.
fn silent(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = small(n, seed);
    cfg.client = ClientConfig::OFF;
    cfg.traffic = TrafficConfig::OFF;
    cfg
}

/// Control-plane fields that must not move when traffic is attached.
fn control_plane(r: &scalecheck_cluster::RunReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.total_flaps,
        r.per_node_flaps.clone(),
        r.recoveries,
        r.messages_sent,
        r.messages_dropped,
        r.messages_delivered,
        r.duration,
        r.quiesced,
        r.stale_timer_fires,
    )
}

/// The coupled open-loop shape with its arrival rate zeroed: the
/// engine stays armed (ticking, plumbed into the fabric) but offers
/// nothing.
fn zero_load(users: u64) -> TrafficConfig {
    let mut t = TrafficConfig::open_loop(users);
    t.arrival.millirate_per_user = 0;
    t
}

#[test]
fn uncoupled_probe_observes_without_perturbing_the_control_plane() {
    let off = run_scenario(&silent(12, 7));
    let on = run_scenario(&small(12, 7).with_traffic(TrafficConfig::from_legacy(50, 2, 3)));
    assert!(!off.traffic.enabled);
    assert!(on.traffic.enabled);
    assert!(!on.traffic.coupled, "the legacy probe must stay uncoupled");
    assert!(on.traffic.attempted > 0, "traffic must actually flow");
    assert_eq!(
        control_plane(&off),
        control_plane(&on),
        "attaching the uncoupled probe must leave cluster dynamics bit-identical"
    );
}

#[test]
fn coupled_traffic_actually_rides_the_simulation() {
    let r = run_scenario(&small(12, 7).with_traffic(TrafficConfig::open_loop(1_000_000)));
    assert!(r.traffic.enabled && r.traffic.coupled);
    assert!(r.traffic.attempted > 0, "traffic must actually flow");
    assert!(
        r.traffic.data_sent > 0,
        "quorum replication must put real messages on the data plane"
    );
    let s = r.traffic.slo_summary();
    assert!(
        s.p50_ns > 500_000,
        "coupled RTTs include service + link time, got p50 {} ns",
        s.p50_ns
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The differential contract across scales and seeds: the legacy
    /// probe (uncoupled observer) and the coupled datapath at zero
    /// offered load both leave control-plane dynamics bit-identical to
    /// traffic-off. A *loaded* coupled run is exempt by design — its
    /// requests genuinely contend with gossip for CPUs and links.
    #[test]
    fn traffic_on_off_differential(n in 8usize..14, seed in 1u64..50) {
        let off = run_scenario(&silent(n, seed));
        let legacy = run_scenario(&silent(n, seed).with_traffic(
            ClientConfig::light().to_traffic(3),
        ));
        let armed = run_scenario(&silent(n, seed).with_traffic(zero_load(100_000)));
        prop_assert!(armed.traffic.enabled, "zero-rate population stays armed");
        prop_assert_eq!(armed.traffic.attempted, 0);
        prop_assert_eq!(control_plane(&off), control_plane(&legacy));
        prop_assert_eq!(control_plane(&off), control_plane(&armed));
    }
}

#[test]
fn request_log_and_histograms_are_byte_deterministic() {
    let cfg = small(10, 3).with_traffic(TrafficConfig::open_loop(1_000_000));
    let a = run_scenario(&cfg);
    let b = run_scenario(&cfg);
    assert_eq!(a.traffic, b.traffic, "traffic reports must be identical");
    assert_eq!(
        serde_json::to_string(&a.traffic).unwrap(),
        serde_json::to_string(&b.traffic).unwrap(),
        "serialized bytes must match exactly"
    );
    assert_eq!(a.traffic.log_digest, b.traffic.log_digest);
    assert!(a.traffic.attempted > 0);
}

#[test]
fn traffic_state_is_o_requests_not_o_users_through_a_full_run() {
    // A thousand users and a million users differ by 1000x in offered
    // load, but the datapath aggregates arrivals into weighted samples:
    // its tracked memory must not grow with the population.
    let thousand = run_scenario(&small(10, 5).with_traffic(TrafficConfig::open_loop(1_000)));
    let million = run_scenario(&small(10, 5).with_traffic(TrafficConfig::open_loop(1_000_000)));
    assert!(million.traffic.attempted > 100 * thousand.traffic.attempted);
    assert_eq!(
        thousand.traffic.state_peak_bytes, million.traffic.state_peak_bytes,
        "peak tracked bytes must be independent of the user population"
    );
    assert!(million.traffic.state_peak_bytes > 0);
}

#[test]
fn quorum_beyond_rf_is_a_config_error_not_an_undercount() {
    let mut cfg = small(10, 1);
    cfg.client = ClientConfig {
        ops_per_sec: 50,
        quorum: cfg.rf + 1,
    };
    let err = cfg.validate().unwrap_err();
    assert!(
        err.contains("quorum") && err.contains("rf"),
        "error must name the clash: {err}"
    );
    // Disabling the probe makes the same setting inert and valid.
    cfg.client.ops_per_sec = 0;
    cfg.validate().expect("disabled probe never under-counts");
}

#[test]
#[should_panic(expected = "quorum")]
fn runner_refuses_to_start_with_an_invalid_quorum() {
    let mut cfg = small(10, 1);
    cfg.client = ClientConfig {
        ops_per_sec: 50,
        quorum: cfg.rf + 1,
    };
    let _ = run_scenario(&cfg);
}

/// The paper-shape regression the whole coupled datapath exists for:
/// C3831 at 128 nodes under a million open-loop users. Colocated
/// testing must report an SLO catastrophe (p99.9 inflation / budget
/// burn) that real-scale deployment does not show, and SC+PIL must
/// track Real. Runs the three deployment modes end to end — minutes of
/// wall clock — so it is `#[ignore]`d in the default suite; CI runs it
/// via `cargo test --release -- --ignored` (see scripts/ci.sh).
#[test]
#[ignore = "release-mode paper-shape regression: run with --ignored"]
fn c3831_at_128_shows_the_paper_shape_on_the_slo_axis() {
    use scalecheck::{CellSpec, ExecMode, COLO_CORES};
    let scenario =
        || ScenarioConfig::c3831(128, 1).with_traffic(TrafficConfig::open_loop(1_000_000));
    let real = CellSpec::new(scenario(), ExecMode::Real).run();
    let colo = CellSpec::new(scenario(), ExecMode::Colo { cores: COLO_CORES }).run();
    let pil = CellSpec::new(
        scenario(),
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    )
    .run();
    let triple = scalecheck_explore::SloTriple {
        real: real.traffic.slo_summary(),
        colo: colo.traffic.slo_summary(),
        pil: pil.traffic.slo_summary(),
    };
    let v = triple.verdict(&scalecheck_explore::SloParams::default());
    assert!(
        v.colo_diverges,
        "Colo must inflate the user-visible tail past Real's: real p999={} colo p999={}",
        triple.real.p999_ns, triple.colo.p999_ns
    );
    assert!(
        v.pil_tracks,
        "SC+PIL must track Real: real p999={} pil p999={}",
        triple.real.p999_ns, triple.pil.p999_ns
    );
    assert!(v.paper(), "the full paper shape must hold at N=128");
}
