//! Property-based tests over the core substrates: the invariants the
//! whole reproduction leans on.

use proptest::prelude::*;

use scalecheck_memo::{digest_bytes, FnId, MemoDb, OrderDecision, OrderRecorder};
use scalecheck_ring::{
    all_calculators, NodeId, NodeStatus, OpCounter, PendingRangeCalculator, RingTable, Token,
    TopologyChange,
};
use scalecheck_sim::{ps_completions, CtxSwitchModel, DetRng, Machine, SimDuration, SimTime};

/// Builds a ring from (node, token) pairs with unique tokens.
fn ring_from(entries: &[(u32, Vec<u64>)]) -> RingTable {
    let mut ring = RingTable::new(3);
    let mut used = std::collections::HashSet::new();
    for (i, (id, tokens)) in entries.iter().enumerate() {
        let toks: Vec<Token> = tokens
            .iter()
            .filter(|t| used.insert(**t))
            .map(|&t| Token(t))
            .collect();
        if toks.is_empty() {
            continue;
        }
        let _ = ring.add_node(NodeId(*id + i as u32 * 10_000), NodeStatus::Normal, toks);
    }
    ring
}

fn topology_strategy() -> impl Strategy<Value = Vec<(u32, Vec<u64>)>> {
    prop::collection::vec(
        (0u32..1000, prop::collection::vec(any::<u64>(), 1..4)),
        2..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every calculator version produces identical pending ranges on
    /// arbitrary topologies — the semantic-preserving-fix invariant.
    #[test]
    fn calculators_agree_on_random_topologies(
        entries in topology_strategy(),
        leaver_idx in 0usize..8,
        join_tokens in prop::collection::vec(any::<u64>(), 1..4),
    ) {
        let ring = ring_from(&entries);
        let nodes: Vec<NodeId> = ring.iter().map(|(id, _)| id).collect();
        prop_assume!(nodes.len() >= 2);
        let mut changes = vec![TopologyChange::Leave {
            node: nodes[leaver_idx % nodes.len()],
        }];
        // Also join a fresh node with tokens not already present.
        let fresh: Vec<Token> = join_tokens
            .iter()
            .map(|&t| Token(t))
            .filter(|t| ring.owner_of_token(*t).is_none())
            .collect();
        if !fresh.is_empty() {
            changes.push(TopologyChange::Join {
                node: NodeId(999_999),
                tokens: fresh,
            });
        }
        let mut outs = Vec::new();
        for calc in all_calculators() {
            let mut counter = OpCounter::new();
            outs.push(calc.calculate(&ring, &changes, &mut counter));
        }
        for w in outs.windows(2) {
            prop_assert_eq!(&w[0], &w[1]);
        }
    }

    /// Pending endpoints never include nodes that are leaving the ring.
    #[test]
    fn pending_never_includes_the_leaver(
        entries in topology_strategy(),
        leaver_idx in 0usize..8,
    ) {
        let ring = ring_from(&entries);
        let nodes: Vec<NodeId> = ring.iter().map(|(id, _)| id).collect();
        prop_assume!(nodes.len() >= 2);
        let leaver = nodes[leaver_idx % nodes.len()];
        let changes = vec![TopologyChange::Leave { node: leaver }];
        let mut counter = OpCounter::new();
        let out = scalecheck_ring::V3VnodeAware
            .calculate(&ring, &changes, &mut counter);
        for (_, pend) in out {
            prop_assert!(!pend.contains(&leaver));
        }
    }

    /// The future token map is sorted, deduplicated, and excludes
    /// departed nodes.
    #[test]
    fn future_map_invariants(entries in topology_strategy(), leaver_idx in 0usize..8) {
        let ring = ring_from(&entries);
        let nodes: Vec<NodeId> = ring.iter().map(|(id, _)| id).collect();
        prop_assume!(!nodes.is_empty());
        let leaver = nodes[leaver_idx % nodes.len()];
        let map = ring
            .future_token_map(&[TopologyChange::Leave { node: leaver }])
            .expect("leave-only changes cannot introduce duplicate tokens");
        for w in map.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "sorted and unique");
        }
        prop_assert!(map.iter().all(|&(_, n)| n != leaver));
    }

    /// Memo DB round-trips arbitrary content through JSON.
    #[test]
    fn memo_db_json_round_trip(
        records in prop::collection::vec((any::<u64>(), any::<u32>(), 0u64..1_000_000), 0..20),
    ) {
        let mut db: MemoDb<Vec<u8>> = MemoDb::new();
        for (input, node, dur) in &records {
            db.record(
                *node,
                FnId(1),
                digest_bytes(&input.to_le_bytes()),
                input.to_le_bytes().to_vec(),
                SimDuration::from_nanos(*dur),
            );
        }
        let json = db.to_json().unwrap();
        let mut back: MemoDb<Vec<u8>> = MemoDb::from_json(&json).unwrap();
        prop_assert_eq!(back.len(), db.len());
        for (input, _, dur) in &records {
            let d = digest_bytes(&input.to_le_bytes());
            let rec = back.lookup(FnId(1), d);
            prop_assert!(rec.is_some());
            let rec = rec.unwrap();
            prop_assert_eq!(rec.output, input.to_le_bytes().to_vec());
            // Last write wins; duration belongs to *a* record of this input.
            prop_assert!(rec.duration.as_nanos() <= 1_000_000);
            let _ = dur;
        }
    }

    /// The order enforcer replays any recorded sequence in exactly the
    /// recorded order, regardless of the arrival permutation.
    #[test]
    fn order_enforcer_restores_recorded_order(
        keys in prop::collection::vec(any::<u64>(), 1..30),
        seed in any::<u64>(),
    ) {
        let mut unique = keys.clone();
        unique.sort_unstable();
        unique.dedup();
        let mut rec = OrderRecorder::new();
        for &k in &unique {
            rec.record(0, k);
        }
        let mut enf = rec.into_enforcer();
        // Arrivals in a random permutation; held messages wait.
        let mut arrivals = unique.clone();
        let mut rng = DetRng::new(seed);
        rng.shuffle(&mut arrivals);
        let mut held: Vec<u64> = Vec::new();
        let mut processed: Vec<u64> = Vec::new();
        for k in arrivals {
            match enf.classify(0, k) {
                OrderDecision::ProcessNow => {
                    enf.advance(0, k);
                    processed.push(k);
                    // Drain any held messages that are now due.
                    while let Some(exp) = enf.expected(0) {
                        let Some(pos) = held.iter().position(|&h| h == exp) else {
                            break;
                        };
                        let k2 = held.remove(pos);
                        enf.advance(0, k2);
                        processed.push(k2);
                    }
                }
                OrderDecision::HoldForLater => held.push(k),
                OrderDecision::NotInLog => processed.push(k),
            }
        }
        prop_assert_eq!(processed, unique);
        prop_assert!(held.is_empty());
        prop_assert_eq!(enf.out_of_log(), 0);
    }

    /// Deterministic RNG: forks are reproducible and shuffles are
    /// permutations.
    #[test]
    fn rng_fork_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let root = DetRng::new(seed);
        let mut a = root.fork(stream);
        let mut b = root.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// FIFO-cores completion times are never earlier than an ideal
    /// processor-sharing schedule's *start* bound and the machine never
    /// loses work.
    #[test]
    fn fifo_machine_conserves_work(
        demands in prop::collection::vec(1u64..1_000, 1..40),
        cores in 1usize..8,
    ) {
        let mut machine = Machine::new(cores, CtxSwitchModel::FREE);
        let total: u64 = demands.iter().sum();
        let mut last = SimTime::ZERO;
        for &d in &demands {
            let g = machine.submit(SimTime::ZERO, SimDuration::from_nanos(d));
            last = last.max(g.finish);
        }
        // Work conservation: makespan is between total/cores and total.
        prop_assert!(last.as_nanos() >= total / cores as u64);
        prop_assert!(last.as_nanos() <= total);
        // Processor sharing finishes everything by `total/cores` too.
        let tasks: Vec<(SimTime, SimDuration)> = demands
            .iter()
            .map(|&d| (SimTime::ZERO, SimDuration::from_nanos(d)))
            .collect();
        let ps = ps_completions(&tasks, cores);
        let ps_last = ps.iter().max().unwrap().as_nanos();
        prop_assert!(ps_last >= total / cores as u64);
        prop_assert!(ps_last <= total + demands.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gossip convergence: after enough random pairwise exchanges,
    /// every node's endpoint map agrees on every peer's freshest state.
    #[test]
    fn gossip_rounds_converge_views(seed in any::<u64>(), n in 3usize..10) {
        use scalecheck_gossip::Gossiper;
        use scalecheck_gossip::Peer;

        let mut nodes: Vec<Gossiper<u32>> = (0..n)
            .map(|i| Gossiper::new(Peer(i as u32), 1, i as u32 * 100))
            .collect();
        for g in nodes.iter_mut() {
            g.beat();
        }
        let mut rng = DetRng::new(seed);
        // Random pairwise full rounds; 6*n*log(n) rounds is far more
        // than gossip needs to converge.
        let rounds = 6 * n * (usize::BITS - n.leading_zeros()) as usize;
        for _ in 0..rounds {
            let a = rng.gen_index(n);
            let mut b = rng.gen_index(n);
            if a == b {
                b = (b + 1) % n;
            }
            // SYN a->b, ACK b->a, ACK2 a->b.
            let syn = nodes[a].make_syn();
            let ack = nodes[b].handle_syn(&syn);
            let (_, ack2) = nodes[a].handle_ack(&ack);
            nodes[b].handle_ack2(&ack2);
        }
        // Everyone knows everyone's app payload.
        for g in &nodes {
            for i in 0..n {
                let st = g.endpoint(Peer(i as u32));
                prop_assert!(st.is_some(), "missing peer {i}");
                prop_assert_eq!(*st.unwrap().app, i as u32 * 100);
            }
        }
    }

    /// The event engine fires events in exactly nondecreasing time
    /// order regardless of scheduling order.
    #[test]
    fn engine_fires_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        use scalecheck_sim::Engine;
        let mut engine: Engine<Vec<u64>> = Engine::new(1);
        for &t in &times {
            engine.schedule_at(SimTime::from_nanos(t), move |out, ctx| {
                out.push(ctx.now().as_nanos());
            });
        }
        let mut fired: Vec<u64> = Vec::new();
        engine.run_to_completion(&mut fired);
        prop_assert_eq!(fired.len(), times.len());
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(fired, sorted);
    }

    /// Differential scheduler property: the timer wheel and the
    /// reference binary heap fire the same events at the same times in
    /// the same order, draw the same RNG sequence, and agree on which
    /// cancellations landed — for randomized schedule/cancel/handler
    /// workloads including follow-ups scheduled from inside events.
    #[test]
    fn wheel_and_heap_schedulers_are_indistinguishable(
        ops in prop::collection::vec(
            // (delay_ns, kind%3: 0 closure, 1 handler, 2 schedule-then-
            //  cancel, spawn: follow-up from inside the event)
            (0u64..50_000_000, 0u8..3, any::<bool>()),
            1..60,
        ),
        seed in any::<u64>(),
    ) {
        use scalecheck_sim::{Engine, SchedulerKind};

        #[derive(Default)]
        struct Log {
            // (virtual now, event tag, rng draw at fire time)
            fired: Vec<(u64, u64, u64)>,
            handler: Option<scalecheck_sim::HandlerId>,
        }

        type SchedLog = Vec<(u64, u64, u64)>;
        let run = |kind: SchedulerKind| -> Result<
            (SchedLog, scalecheck_sim::EngineCounters),
            TestCaseError,
        > {
            let mut engine: Engine<Log> = Engine::with_scheduler(seed, kind);
            let h = engine.register_handler(|log: &mut Log, ctx, tag| {
                let draw = ctx.rng().next_u64();
                log.fired.push((ctx.now().as_nanos(), tag, draw));
            });
            let mut log = Log {
                handler: Some(h),
                ..Default::default()
            };
            for (tag, &(delay, kind_op, spawn)) in ops.iter().enumerate() {
                let tag = tag as u64;
                let delay = SimDuration::from_nanos(delay);
                match kind_op {
                    0 => {
                        engine.schedule_after(delay, move |log: &mut Log, ctx| {
                            let draw = ctx.rng().next_u64();
                            log.fired.push((ctx.now().as_nanos(), tag, draw));
                            if spawn {
                                let h = log.handler.expect("registered");
                                ctx.schedule_handler_after(
                                    SimDuration::from_nanos(1_000_003),
                                    h,
                                    tag + 10_000,
                                );
                            }
                        });
                    }
                    1 => {
                        engine.schedule_handler_after(delay, h, tag);
                    }
                    _ => {
                        // Scheduled, then cancelled before running:
                        // must never fire and never perturb the rest.
                        let id = engine.schedule_after(delay, move |log: &mut Log, ctx| {
                            log.fired.push((ctx.now().as_nanos(), tag + 20_000, 0));
                            let _ = ctx;
                        });
                        prop_assert!(engine.cancel(id), "fresh timer must cancel");
                        prop_assert!(!engine.cancel(id), "double cancel must fail");
                    }
                }
            }
            engine.run_to_completion(&mut log);
            Ok((log.fired, engine.counters()))
        };

        let (wheel_log, wheel_counters) = run(SchedulerKind::Wheel)?;
        let (heap_log, heap_counters) = run(SchedulerKind::Heap)?;
        prop_assert_eq!(&wheel_log, &heap_log);
        prop_assert!(
            wheel_log.iter().all(|&(_, tag, _)| tag < 20_000),
            "cancelled events must not fire"
        );
        // Schedule/fire/cancel accounting agrees; only the pool split
        // (a wheel-side implementation detail) may differ.
        prop_assert_eq!(wheel_counters.scheduled, heap_counters.scheduled);
        prop_assert_eq!(wheel_counters.fired, heap_counters.fired);
        prop_assert_eq!(wheel_counters.cancelled, heap_counters.cancelled);
        prop_assert_eq!(wheel_counters.pending(), 0);
        prop_assert_eq!(heap_counters.pending(), 0);
    }

    /// Differential tie-order property: a policy that *encodes* the
    /// identity permutation — whether a zero-shift swap spec or a
    /// custom policy returning the stock key — leaves a randomized
    /// tie-heavy workload byte-identical to the policy-free engine:
    /// same fire order, same per-event RNG draws, on both schedulers.
    /// This is what makes perturbed-path results comparable to stock
    /// baselines in the schedule explorer.
    #[test]
    fn identity_tie_policies_match_the_stock_engine(
        // Coarse times force plenty of same-timestamp ties.
        times in prop::collection::vec(0u64..40, 2..80),
        seed in any::<u64>(),
    ) {
        use scalecheck_sim::tie::{identity_key, TieOrder, TieOrderSpec, TieSwap};
        use scalecheck_sim::{Engine, SchedulerKind, SimTime};

        struct IdentityPolicy;
        impl TieOrder for IdentityPolicy {
            fn tie_key(&mut self, _at: SimTime, seq: u64) -> u64 {
                identity_key(seq)
            }
        }

        type FireLog = Vec<(u64, u64, u64)>;
        let run = |kind: SchedulerKind, policy: u8| -> FireLog {
            let zero_shift = TieOrderSpec::with_swaps(
                (0..times.len()).map(|i| TieSwap { seq: i as u64 + 1, shift: 0 }).collect(),
            );
            let mut engine: Engine<FireLog> = match policy {
                0 => Engine::with_scheduler(seed, kind),
                1 => Engine::with_tie_order(seed, kind, &zero_shift),
                _ => {
                    let mut e = Engine::with_scheduler(seed, kind);
                    e.set_tie_policy(Box::new(IdentityPolicy));
                    e
                }
            };
            for (tag, &t) in times.iter().enumerate() {
                let tag = tag as u64;
                engine.schedule_at(SimTime::from_nanos(t), move |log: &mut FireLog, ctx| {
                    let draw = ctx.rng().next_u64();
                    log.push((ctx.now().as_nanos(), tag, draw));
                });
            }
            let mut log = FireLog::new();
            engine.run_to_completion(&mut log);
            log
        };

        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let stock = run(kind, 0);
            prop_assert_eq!(&stock, &run(kind, 1), "zero-shift swap spec diverged");
            prop_assert_eq!(&stock, &run(kind, 2), "identity-key policy diverged");
        }
    }

    /// Steady-state periodic handler timers recycle slab slots instead
    /// of allocating: after warm-up every schedule is a pool hit.
    #[test]
    fn steady_state_periodic_timers_run_allocation_free(
        lanes in 1usize..8,
        rounds in 16u64..200,
    ) {
        use scalecheck_sim::{Engine, HandlerId, SchedulerKind};

        struct World {
            left: u64,
            handler: Option<HandlerId>,
        }
        let mut engine: Engine<World> = Engine::with_scheduler(1, SchedulerKind::Wheel);
        let h = engine.register_handler(|w: &mut World, ctx, lane| {
            if w.left > 0 {
                w.left -= 1;
                let h = w.handler.expect("registered");
                ctx.schedule_handler_after(
                    SimDuration::from_micros(700 + lane * 13),
                    h,
                    lane,
                );
            }
        });
        let mut w = World { left: rounds, handler: Some(h) };
        for lane in 0..lanes as u64 {
            engine.schedule_handler_after(SimDuration::from_micros(lane + 1), h, lane);
        }
        engine.run_to_completion(&mut w);
        let c = engine.counters();
        // Each lane's very first schedule takes a fresh slab slot; every
        // steady-state reschedule reuses one — zero allocations/event.
        prop_assert_eq!(c.pool_misses, lanes as u64);
        prop_assert_eq!(c.pool_hits + c.pool_misses, c.scheduled);
        prop_assert!(c.pool_hits >= c.scheduled - lanes as u64);
        prop_assert_eq!(c.fired, c.scheduled);
    }

    /// φ never decreases while a peer stays silent, and resets after a
    /// fresh heartbeat.
    #[test]
    fn phi_is_monotone_in_silence(beats in 2u64..30, probe_gap in 1u64..50) {
        use scalecheck_gossip::PhiDetector;
        let mut d = PhiDetector::cassandra(SimDuration::from_secs(1));
        for s in 0..beats {
            d.heartbeat(SimTime::from_secs(s));
        }
        let base = SimTime::from_secs(beats);
        let p1 = d.phi(base);
        let p2 = d.phi(base + SimDuration::from_secs(probe_gap));
        let p3 = d.phi(base + SimDuration::from_secs(probe_gap * 2));
        prop_assert!(p1 <= p2 && p2 <= p3, "{p1} {p2} {p3}");
        d.heartbeat(base + SimDuration::from_secs(probe_gap * 2));
        let after = d.phi(base + SimDuration::from_secs(probe_gap * 2));
        prop_assert!(after <= p1.max(0.01));
    }

    /// Partitions are symmetric: while `A ⊁ B` holds, offers in *both*
    /// directions fail with the partition drop reason, and after the
    /// heal both directions deliver again.
    #[test]
    fn network_partitions_are_symmetric(
        pairs in prop::collection::vec((0u32..16, 0u32..16), 1..8),
        seed in any::<u64>(),
    ) {
        use scalecheck_net::{Addr, DropReason, Network, NetworkConfig};
        let mut net = Network::new(NetworkConfig {
            drop_probability: 0.0,
            ..NetworkConfig::default()
        });
        let mut rng = DetRng::new(seed);
        let now = SimTime::from_secs(1);
        for &(a, b) in pairs.iter().filter(|(a, b)| a != b) {
            net.partition(Addr(a), Addr(b));
            prop_assert_eq!(
                net.offer(now, &mut rng, Addr(a), Addr(b)).unwrap_err(),
                DropReason::Partitioned
            );
            prop_assert_eq!(
                net.offer(now, &mut rng, Addr(b), Addr(a)).unwrap_err(),
                DropReason::Partitioned
            );
            net.heal(Addr(a), Addr(b));
            prop_assert!(net.offer(now, &mut rng, Addr(b), Addr(a)).is_ok());
            prop_assert!(net.offer(now, &mut rng, Addr(a), Addr(b)).is_ok());
        }
    }

    /// Differential: the φ detector's O(1) running-sum mean is
    /// bit-identical to naively re-summing the window after every
    /// heartbeat.
    ///
    /// Exact `f64` equality (`to_bits`) is deliberate, not optimistic:
    /// the window stores intervals as integer nanoseconds and the
    /// running sum is a `u128`, so both paths add the *same integers*
    /// (where addition is exact and associative) and perform the single
    /// lossy int→float conversion through the same helper. Any drift
    /// here means the incremental bookkeeping diverged from the window
    /// contents — a real bug, not float noise.
    #[test]
    fn phi_running_sum_matches_naive_resum(
        gaps in prop::collection::vec(0u64..40_000_000_000, 1..1200),
    ) {
        use scalecheck_gossip::PhiDetector;
        let mut d = PhiDetector::cassandra(SimDuration::from_secs(1));
        let mut now = SimTime::ZERO;
        for &g in &gaps {
            // g == 0 exercises the ignored out-of-order/duplicate path;
            // large g exercises the max-interval filter; > 1000 beats
            // exercises window eviction.
            now += SimDuration::from_nanos(g);
            d.heartbeat(now);
            prop_assert_eq!(
                d.mean_interval().to_bits(),
                d.mean_interval_naive().to_bits()
            );
        }
    }

    /// Differential: the cached current-token-map is indistinguishable
    /// from rebuilding it from scratch, across arbitrary interleavings
    /// of topology mutations and ring snapshots (clones share the warm
    /// cache via `Arc`, so snapshot consistency is load-bearing).
    #[test]
    fn token_map_cache_is_transparent(
        entries in topology_strategy(),
        ops in prop::collection::vec((0u8..3, 0u32..100, any::<u64>()), 0..12),
    ) {
        let mut ring = ring_from(&entries);
        prop_assert_eq!(&*ring.current_token_map(), &ring.rebuild_current_token_map());
        for (kind, id, tok) in ops {
            match kind % 3 {
                0 => {
                    let _ = ring.add_node(NodeId(id), NodeStatus::Normal, vec![Token(tok)]);
                }
                1 => {
                    let _ = ring.set_status(NodeId(id), NodeStatus::Leaving);
                }
                _ => {
                    let _ = ring.remove_node(NodeId(id));
                }
            }
            prop_assert_eq!(&*ring.current_token_map(), &ring.rebuild_current_token_map());
            let snap = ring.clone();
            prop_assert_eq!(&*snap.current_token_map(), &snap.rebuild_current_token_map());
        }
    }

    /// Differential: the tiled per-link FIFO clock store behaves exactly
    /// like a sparse `BTreeMap<(src, dst), clock>` model. Constant
    /// latency plus zero loss makes delivery times fully deterministic,
    /// so the model predicts every `deliver_at` to the nanosecond —
    /// including tile growth well past the old 1024-address dense cap
    /// and independence between links that share a tile.
    #[test]
    fn link_fifo_clocks_match_a_sparse_model(
        sends in prop::collection::vec((0u32..5_000, 0u32..5_000, 0u64..3_000_000), 1..200),
    ) {
        use scalecheck_net::{Addr, LatencyModel, Network, NetworkConfig};
        use std::collections::BTreeMap;
        let lat = 1_500_000u64; // 1.5 ms, constant
        let mut net = Network::new(NetworkConfig {
            drop_probability: 0.0,
            latency: LatencyModel::Constant(SimDuration::from_nanos(lat)),
        });
        let mut rng = DetRng::new(7);
        let mut model: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        for (src, dst, advance) in sends {
            now += SimDuration::from_nanos(advance);
            let (_, deliver_at) = net
                .send(now, &mut rng, Addr(src), Addr(dst))
                .expect("loss-free network never drops");
            let clock = model.entry((src, dst)).or_insert(0);
            let raw = now.as_nanos() + lat;
            let expected = if raw <= *clock { *clock + 1 } else { raw };
            *clock = expected;
            prop_assert_eq!(deliver_at.as_nanos(), expected);
        }
    }

    /// Memory model conservation: any interleaving of allocations and
    /// frees keeps `in_use` equal to the running ledger and never
    /// exceeds capacity.
    #[test]
    fn memory_model_conserves(ops in prop::collection::vec((any::<bool>(), 1u64..1000), 1..50)) {
        use scalecheck_sim::MemoryModel;
        let mut m = MemoryModel::new(16 * 1024);
        let mut ledger: u64 = 0;
        for (is_alloc, size) in ops {
            if is_alloc {
                if m.alloc("x", size).is_ok() {
                    ledger += size;
                }
            } else {
                let take = size.min(ledger);
                m.free("x", take);
                ledger -= take;
            }
            prop_assert_eq!(m.in_use(), ledger);
            prop_assert!(m.in_use() <= m.capacity());
            prop_assert!(m.peak() >= m.in_use());
        }
    }
}

// Full-cluster fault properties: each case is two complete simulation
// runs, so the case count stays tiny.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The fault determinism contract as a property: any `(scenario,
    /// storm plan, seed)` triple yields a byte-identical serialized
    /// FaultReport on every run.
    #[test]
    fn same_seed_fault_reports_are_byte_identical(seed in 0u64..1_000, tenths in 1u32..10) {
        use scalecheck_cluster::{run_scenario, FaultPlan, ScenarioConfig};
        let mut cfg = ScenarioConfig::baseline(8, seed);
        cfg.faults = FaultPlan::storm(seed, 8, tenths as f64 / 10.0);
        let a = run_scenario(&cfg);
        let b = run_scenario(&cfg);
        prop_assert_eq!(
            serde_json::to_string(&a.faults).unwrap(),
            serde_json::to_string(&b.faults).unwrap()
        );
        prop_assert_eq!(a.total_flaps, b.total_flaps);
        prop_assert_eq!(a.messages_delivered, b.messages_delivered);
    }

    /// A fault crash followed by a restart never removes the node for
    /// good: the run settles, the restart is accounted, and any
    /// fault-attributed convictions are followed by recoveries once the
    /// restarted node gossips again.
    #[test]
    fn crash_restart_is_never_permanent(
        seed in 0u64..1_000,
        node in 1u32..7,
        down_secs in 25u64..40,
    ) {
        use scalecheck_cluster::{run_scenario, FaultPlan, ScenarioConfig};
        let mut cfg = ScenarioConfig::baseline(8, seed);
        cfg.faults = FaultPlan::new()
            .crash(SimTime::from_secs(50), node)
            .restart(SimTime::from_secs(50 + down_secs), node);
        let r = run_scenario(&cfg);
        prop_assert!(r.quiesced, "restarted cluster must settle");
        prop_assert_eq!(r.faults.crashes, 1);
        prop_assert_eq!(r.faults.restarts, 1);
        prop_assert_eq!(
            r.faults.downtime.get(&node).copied(),
            Some(SimDuration::from_secs(down_secs))
        );
        if r.faults.attributed_flaps > 0 {
            prop_assert!(
                r.recoveries > 0,
                "convicted-then-restarted node must be re-learned"
            );
        }
    }
}
