//! Scenario-regression suite: each reproduced bug must keep its
//! paper-shaped outcome at a pinned seed.
//!
//! The shape (Figure 3) is always the same: colocated testing distorts
//! the symptom while SC+PIL tracks real-scale behaviour. Concretely,
//! for every bug, at the pinned `(scale, cores, seed)`:
//!
//! * **Colo diverges**: colocation contention manufactures flaps that
//!   the real deployment does not exhibit;
//! * **SC+PIL tracks Real**: the replay's flap count stays within a
//!   small tolerance of the real-scale run.
//!
//! The scales here are smaller than the paper's (debug-build test
//! budget) with a proportionally smaller colocation box, which moves
//! the divergence knee down without changing the mechanism.

use scalecheck::{memoize, replay, run_colo, run_real};
use scalecheck_cluster::ScenarioConfig;

/// Cores on the (deliberately small) colocation box: contention at
/// these scales mirrors the paper's 16-core box at 128+ nodes.
const CORES: usize = 2;

/// SC+PIL must reproduce Real's flap count within this absolute slack
/// (paper: "SC+PIL reproduces results of real-scale testing").
const TOLERANCE: u64 = 3;

fn assert_paper_shape(bug: &str, cfg: &ScenarioConfig) {
    let real = run_real(cfg).total_flaps;
    let colo = run_colo(cfg, CORES).total_flaps;
    let memo = memoize(cfg, CORES);
    let pil = replay(cfg, CORES, &memo).total_flaps;

    assert!(
        colo > real + TOLERANCE,
        "{bug}: Colo must diverge from Real (colo={colo}, real={real})"
    );
    assert!(
        pil.abs_diff(real) <= TOLERANCE,
        "{bug}: SC+PIL must track Real within {TOLERANCE} (pil={pil}, real={real}, colo={colo})"
    );
}

#[test]
fn c3831_keeps_its_paper_shape() {
    assert_paper_shape("c3831", &ScenarioConfig::c3831(80, 1));
}

#[test]
fn c3881_keeps_its_paper_shape() {
    assert_paper_shape("c3881", &ScenarioConfig::c3881(64, 1));
}

#[test]
fn c5456_keeps_its_paper_shape() {
    assert_paper_shape("c5456", &ScenarioConfig::c5456(64, 1));
}
