//! One simulated cluster node: gossiper + failure detector + local ring
//! view + SEDA-like stages.
//!
//! The engine-agnostic protocol logic lives here (applying gossip
//! outcomes to the ring view, deriving the outstanding change list,
//! message keys for order determinism); the event orchestration lives in
//! [`crate::runner`].

use std::collections::BTreeMap;

use scalecheck_gossip::{Ack, Ack2, ApplyOutcome, FailureDetector, Gossiper, Syn};
use scalecheck_memo::Hasher128;
use scalecheck_ring::{NodeId, NodeStatus, PendingRanges, RingTable, TopologyChange};
use scalecheck_sim::{cpu::MachineId, DetRng, SimDuration, SimTime, Stage, TimerId};

use crate::ringinfo::{peer_of, RingInfo};

/// A gossip message on the wire.
#[derive(Clone, Debug)]
pub enum GossipMessage {
    /// Digest offer.
    Syn(Syn),
    /// Deltas + requests.
    Ack(Ack<RingInfo>),
    /// Requested deltas.
    Ack2(Ack2<RingInfo>),
}

impl GossipMessage {
    /// Message kind tag (for order keys and demand sizing).
    pub fn kind(&self) -> u8 {
        match self {
            GossipMessage::Syn(_) => 0,
            GossipMessage::Ack(_) => 1,
            GossipMessage::Ack2(_) => 2,
        }
    }

    /// Number of endpoint entries carried (sizes the processing cost).
    pub fn entries(&self) -> usize {
        match self {
            GossipMessage::Syn(s) => s.digests.len(),
            GossipMessage::Ack(a) => a.deltas.len() + a.requests.len(),
            GossipMessage::Ack2(a) => a.deltas.len(),
        }
    }
}

/// A routed gossip message with its order-determinism key.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Stable key `(src, dst, kind, per-link seq)` for order recording
    /// and enforcement.
    pub key: u64,
    /// Payload.
    pub msg: GossipMessage,
}

/// Work items on a node's stages.
#[derive(Clone, Debug)]
pub enum Task {
    /// Periodic gossip round: beat + SYN to a random live peer.
    SendRound,
    /// Process an incoming gossip message.
    Receive(Envelope),
    /// Run the pending-range calculation.
    Recalculate,
}

/// What applying a gossip outcome changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewChanges {
    /// The ring view changed in a way that requires recalculation.
    pub topology_changed: bool,
    /// Peers newly observed as departed (observers must stop monitoring).
    pub departed: Vec<NodeId>,
}

/// One simulated node.
pub struct Node {
    /// Node id (shared across ring / gossip / network id spaces).
    pub id: NodeId,
    /// Machine this node's compute runs on.
    pub machine: MachineId,
    /// Per-node deterministic RNG (gossip target selection).
    pub rng: DetRng,
    /// Gossip component.
    pub gossiper: Gossiper<RingInfo>,
    /// Failure detector (flap accounting lives here).
    pub fd: FailureDetector,
    /// Local ring view.
    pub ring: RingTable,
    /// Last computed pending ranges.
    pub pending: PendingRanges,
    /// Serial gossip stage.
    pub gossip_stage: Stage<Task>,
    /// Serial calculation stage (used by the C5456 thread modes).
    pub calc_stage: Stage<Task>,
    /// A topology change arrived while a calculation was queued/running.
    pub calc_dirty: bool,
    /// A `Recalculate` task is queued or running.
    pub calc_queued: bool,
    /// Monotone calculation invocation counter (memo index fallback).
    pub calc_invocations: u64,
    /// Node is participating (started and not crashed).
    pub active: bool,
    /// Node has left the cluster and stopped its timers.
    pub departed: bool,
    /// Task parked on the gossip stage waiting for the ring lock.
    pub parked_gossip: Option<Task>,
    /// When the parked gossip task started waiting (lock-wait spans).
    pub parked_gossip_at: Option<SimTime>,
    /// Task parked on the calc stage waiting for the ring lock.
    pub parked_calc: Option<Task>,
    /// When the parked calc task started waiting (lock-wait spans).
    pub parked_calc_at: Option<SimTime>,
    /// Order-enforcement holding pen (replay only): messages waiting
    /// for their recorded turn, with a forced-release deadline.
    pub held: Vec<(SimTime, Envelope)>,
    /// Bytes currently allocated to rebalance partition services.
    pub rebalance_bytes: u64,
    /// Forward offset of this node's local clock (fault-injected clock
    /// skew); failure detection reads `now + clock_skew`.
    pub clock_skew: SimDuration,
    /// Bumped on fault crash/restart; periodic timer chains carry the
    /// epoch they were scheduled under and die when it moves on.
    pub timer_epoch: u64,
    /// Pending periodic gossip-round timer, cancelled on crash/leave.
    pub gossip_timer: Option<TimerId>,
    /// Pending periodic failure-detector timer, cancelled on crash/leave.
    pub fd_timer: Option<TimerId>,
    link_seq: BTreeMap<(NodeId, u8), u64>,
}

impl Node {
    /// Creates a node. The caller seeds the gossiper and ring afterwards.
    pub fn new(
        id: NodeId,
        machine: MachineId,
        rng: DetRng,
        info: RingInfo,
        rf: usize,
        phi_threshold: f64,
        gossip_interval: SimDuration,
    ) -> Self {
        Node {
            id,
            machine,
            rng,
            gossiper: Gossiper::new(peer_of(id), 1, info),
            fd: FailureDetector::new(phi_threshold, gossip_interval),
            ring: RingTable::new(rf),
            pending: PendingRanges::new(),
            gossip_stage: Stage::new(),
            calc_stage: Stage::new(),
            calc_dirty: false,
            calc_queued: false,
            calc_invocations: 0,
            active: false,
            departed: false,
            parked_gossip: None,
            parked_gossip_at: None,
            parked_calc: None,
            parked_calc_at: None,
            held: Vec::new(),
            rebalance_bytes: 0,
            clock_skew: SimDuration::ZERO,
            timer_epoch: 0,
            gossip_timer: None,
            fd_timer: None,
            link_seq: BTreeMap::new(),
        }
    }

    /// Next order key for a message to `dst` of the given kind.
    pub fn next_key(&mut self, dst: NodeId, kind: u8) -> u64 {
        let seq = self.link_seq.entry((dst, kind)).or_insert(0);
        let s = *seq;
        *seq += 1;
        let mut h = Hasher128::new();
        h.update_u64(self.id.0 as u64)
            .update_u64(dst.0 as u64)
            .update_u64(kind as u64)
            .update_u64(s);
        h.finish().0 as u64
    }

    /// Applies a gossip [`ApplyOutcome`] at time `now`: heartbeat
    /// advances feed the failure detector, application advances update
    /// the local ring view.
    pub fn apply_outcome(&mut self, outcome: &ApplyOutcome, now: SimTime) -> ViewChanges {
        let mut changes = ViewChanges::default();
        for &peer in &outcome.heartbeat_advanced {
            let left = self
                .gossiper
                .endpoint(peer)
                .is_some_and(|st| st.app.status == NodeStatus::Left);
            if !left {
                self.fd.report(peer, now);
            }
        }
        for &peer in &outcome.app_advanced {
            if self.sync_ring_entry(peer, &mut changes) {
                changes.topology_changed = true;
            }
        }
        changes
    }

    /// Synchronizes one peer's ring entry from the gossip view. Returns
    /// whether topology-relevant state changed.
    fn sync_ring_entry(&mut self, peer: scalecheck_gossip::Peer, out: &mut ViewChanges) -> bool {
        let Some(state) = self.gossiper.endpoint(peer) else {
            return false;
        };
        let node = crate::ringinfo::node_of(peer);
        let status = state.app.status;
        match status {
            NodeStatus::Left => {
                let was_present = self.ring.node(node).is_some();
                if was_present {
                    self.ring.remove_node(node).expect("presence checked");
                }
                self.fd.forget(peer);
                out.departed.push(node);
                was_present
            }
            _ => match self.ring.node(node) {
                Some(st) => {
                    if st.status != status {
                        self.ring.set_status(node, status).expect("node present");
                        true
                    } else {
                        false
                    }
                }
                None => {
                    // Tokens are cloned only on this (rare) first-sight
                    // path; status-only updates above never touch them.
                    let tokens = self
                        .gossiper
                        .endpoint(peer)
                        .map(|st| st.app.tokens.clone())
                        .unwrap_or_default();
                    // Ignore token collisions from replayed stale state:
                    // first writer wins, matching Cassandra's ownership
                    // arbitration.
                    self.ring.add_node(node, status, tokens).is_ok()
                }
            },
        }
    }

    /// The outstanding topology changes visible in this node's ring view
    /// (the `M`-element change list of the paper).
    pub fn outstanding_changes(&self) -> Vec<TopologyChange> {
        let mut out = Vec::new();
        for (id, st) in self.ring.iter() {
            match st.status {
                NodeStatus::Joining => out.push(TopologyChange::Join {
                    node: id,
                    tokens: st.tokens.clone(),
                }),
                NodeStatus::Leaving => out.push(TopologyChange::Leave { node: id }),
                _ => {}
            }
        }
        out
    }

    /// Whether any join/leave is pending in this node's view (the
    /// window during which Cassandra recalculates on every applied
    /// gossip).
    pub fn pending_window_open(&self) -> bool {
        self.ring
            .iter()
            .any(|(_, st)| matches!(st.status, NodeStatus::Joining | NodeStatus::Leaving))
    }

    /// Peers this node would gossip to: known, not Left in our view.
    pub fn gossip_candidates(&self) -> Vec<NodeId> {
        self.iter_gossip_candidates().collect()
    }

    /// How many gossip candidates there are. Paired with
    /// [`Self::nth_gossip_candidate`], the per-round random target pick
    /// needs no scratch `Vec` — the count-then-index walk visits
    /// candidates in the same order the collected list had, so the
    /// selected peer (and the RNG draw feeding it) is unchanged.
    pub fn gossip_candidate_count(&self) -> usize {
        self.iter_gossip_candidates().count()
    }

    /// The `idx`-th gossip candidate in view order.
    pub fn nth_gossip_candidate(&self, idx: usize) -> Option<NodeId> {
        self.iter_gossip_candidates().nth(idx)
    }

    fn iter_gossip_candidates(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.gossiper.me();
        self.gossiper
            .endpoints()
            .iter()
            .filter(move |(&p, st)| p != me && st.app.status != NodeStatus::Left)
            .map(|(&p, _)| crate::ringinfo::node_of(p))
    }

    /// Updates this node's own gossiped ring state (and its own ring
    /// view), e.g. when it starts leaving.
    pub fn announce(&mut self, info: RingInfo) {
        let status = info.status;
        let tokens = info.tokens.clone();
        self.gossiper.update_app(info);
        match status {
            NodeStatus::Left => {
                if self.ring.node(self.id).is_some() {
                    self.ring.remove_node(self.id).expect("self present");
                }
            }
            _ => {
                if self.ring.node(self.id).is_some() {
                    self.ring.set_status(self.id, status).expect("self present");
                } else {
                    let _ = self.ring.add_node(self.id, status, tokens);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_gossip::{EndpointState, HeartbeatState, Peer};
    use scalecheck_ring::spread_tokens;

    fn node(id: u32) -> Node {
        let mut n = Node::new(
            NodeId(id),
            MachineId(0),
            DetRng::new(1).fork(id as u64),
            RingInfo::normal(spread_tokens(NodeId(id), 2)),
            3,
            8.0,
            SimDuration::from_secs(1),
        );
        n.announce(RingInfo::normal(spread_tokens(NodeId(id), 2)));
        n
    }

    fn remote_state(id: u32, status: NodeStatus, hb: u64) -> (Peer, EndpointState<RingInfo>) {
        (
            Peer(id),
            EndpointState::new(
                HeartbeatState {
                    generation: 1,
                    version: hb,
                },
                1,
                RingInfo {
                    status,
                    tokens: spread_tokens(NodeId(id), 2),
                },
            ),
        )
    }

    #[test]
    fn apply_outcome_reports_heartbeats_and_updates_ring() {
        let mut n = node(0);
        let (peer, st) = remote_state(1, NodeStatus::Normal, 5);
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        let ch = n.apply_outcome(&outcome, SimTime::from_secs(1));
        assert!(ch.topology_changed, "new node entered the ring view");
        assert!(n.ring.node(NodeId(1)).is_some());
        assert!(n.fd.liveness(Peer(1)).is_some());
    }

    #[test]
    fn joining_peer_opens_pending_window() {
        let mut n = node(0);
        let (peer, st) = remote_state(1, NodeStatus::Joining, 5);
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        n.apply_outcome(&outcome, SimTime::from_secs(1));
        assert!(n.pending_window_open());
        let changes = n.outstanding_changes();
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0], TopologyChange::Join { node, .. } if node == NodeId(1)));
    }

    #[test]
    fn left_peer_is_removed_and_forgotten() {
        let mut n = node(0);
        let (peer, st) = remote_state(1, NodeStatus::Normal, 5);
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        n.apply_outcome(&outcome, SimTime::from_secs(1));
        assert!(n.fd.liveness(Peer(1)).is_some());
        // Now the peer leaves.
        let (peer, mut st) = remote_state(1, NodeStatus::Left, 6);
        st.app_version = 7;
        st.heartbeat.version = 7;
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        let ch = n.apply_outcome(&outcome, SimTime::from_secs(2));
        assert!(ch.topology_changed);
        assert_eq!(ch.departed, vec![NodeId(1)]);
        assert!(n.ring.node(NodeId(1)).is_none());
        assert!(n.fd.liveness(Peer(1)).is_none(), "no flap for clean leave");
        // Left nodes are not gossip candidates.
        assert!(!n.gossip_candidates().contains(&NodeId(1)));
    }

    #[test]
    fn heartbeat_of_left_peer_not_reported() {
        let mut n = node(0);
        let (peer, st) = remote_state(1, NodeStatus::Left, 5);
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        n.apply_outcome(&outcome, SimTime::from_secs(1));
        assert!(n.fd.liveness(Peer(1)).is_none());
    }

    #[test]
    fn status_change_flags_topology_but_same_status_does_not() {
        let mut n = node(0);
        let (peer, st) = remote_state(1, NodeStatus::Joining, 5);
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        let ch1 = n.apply_outcome(&outcome, SimTime::from_secs(1));
        assert!(ch1.topology_changed);
        // Same status, newer version: no topology change.
        let (peer, mut st) = remote_state(1, NodeStatus::Joining, 9);
        st.app_version = 9;
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        let ch2 = n.apply_outcome(&outcome, SimTime::from_secs(2));
        assert!(!ch2.topology_changed);
        // Joining -> Normal: topology change again.
        let (peer, mut st) = remote_state(1, NodeStatus::Normal, 12);
        st.app_version = 12;
        st.heartbeat.version = 12;
        let outcome = n.gossiper.apply_states(&[(peer, st)]);
        let ch3 = n.apply_outcome(&outcome, SimTime::from_secs(3));
        assert!(ch3.topology_changed);
        assert!(!n.pending_window_open());
    }

    #[test]
    fn announce_updates_self_everywhere() {
        let mut n = node(0);
        let tokens = n.ring.node(NodeId(0)).unwrap().tokens.clone();
        n.announce(RingInfo {
            status: NodeStatus::Leaving,
            tokens: tokens.clone(),
        });
        assert_eq!(n.gossiper.my_app().status, NodeStatus::Leaving);
        assert_eq!(n.ring.node(NodeId(0)).unwrap().status, NodeStatus::Leaving);
        assert!(n.pending_window_open());
        n.announce(RingInfo {
            status: NodeStatus::Left,
            tokens: vec![],
        });
        assert!(n.ring.node(NodeId(0)).is_none());
    }

    #[test]
    fn message_keys_are_unique_per_link_and_kind() {
        let mut n = node(0);
        let k1 = n.next_key(NodeId(1), 0);
        let k2 = n.next_key(NodeId(1), 0);
        let k3 = n.next_key(NodeId(2), 0);
        let k4 = n.next_key(NodeId(1), 1);
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        assert_ne!(k1, k4);
        // Deterministic across nodes created the same way.
        let mut m = node(0);
        assert_eq!(m.next_key(NodeId(1), 0), k1);
    }

    #[test]
    fn message_entries_and_kind() {
        let n = node(0);
        let syn = GossipMessage::Syn(n.gossiper.make_syn());
        assert_eq!(syn.kind(), 0);
        assert_eq!(syn.entries(), 1); // knows only itself
    }
}
