//! The client data path: quorum availability under flapping.
//!
//! The paper's opening example ends with "many live nodes are declared
//! as dead, making some data not reachable by the users". This module
//! measures that user-visible impact: a background client issues
//! quorum operations against random keys; an operation fails when the
//! coordinator's failure detector considers too many of the key's
//! replicas dead. Flapping therefore translates directly into
//! unavailability.
//!
//! The probe reads coordinator state only (it does not add CPU load, so
//! it never perturbs the calibrated control-path dynamics under test);
//! this is documented in DESIGN.md.

use scalecheck_gossip::Liveness;
use scalecheck_ring::Token;
use scalecheck_sim::{DetRng, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::node::Node;
use crate::ringinfo::peer_of;

/// Client workload configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Cluster-wide operations per second (0 disables the probe).
    pub ops_per_sec: u64,
    /// Replicas that must be considered alive for an operation to
    /// succeed (e.g. 2 for QUORUM at RF=3).
    pub quorum: usize,
}

impl ClientConfig {
    /// Probe disabled.
    pub const OFF: ClientConfig = ClientConfig {
        ops_per_sec: 0,
        quorum: 2,
    };

    /// A light default probe: 50 ops/s at QUORUM for RF=3.
    pub fn light() -> Self {
        ClientConfig {
            ops_per_sec: 50,
            quorum: 2,
        }
    }
}

/// Availability accounting for one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClientStats {
    /// Operations attempted.
    pub attempted: u64,
    /// Operations that could not reach a quorum of live replicas.
    pub failed: u64,
    /// Cumulative failure count over time.
    pub failure_series: TimeSeries,
}

impl ClientStats {
    /// Fraction of operations that failed (0 when none attempted).
    pub fn unavailability(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.failed as f64 / self.attempted as f64
        }
    }
}

/// Executes one client operation against `coordinator`'s view: picks
/// the replicas of `key` from its ring view and checks its failure
/// detector's verdicts. Returns whether the operation succeeds.
pub fn probe_operation(coordinator: &Node, key: Token, quorum: usize) -> bool {
    let map = coordinator.ring.current_token_map();
    if map.is_empty() {
        return false;
    }
    // First token >= key, wrapping.
    let start = map.partition_point(|&(t, _)| t < key) % map.len();
    let rf = coordinator.ring.rf();
    let mut replicas = Vec::with_capacity(rf);
    for step in 0..map.len() {
        let (_, node) = map[(start + step) % map.len()];
        if !replicas.contains(&node) {
            replicas.push(node);
            if replicas.len() == rf {
                break;
            }
        }
    }
    let alive = replicas
        .iter()
        .filter(|&&n| {
            if n == coordinator.id {
                return true;
            }
            // Unknown peers count as alive (no conviction yet).
            coordinator.fd.liveness(peer_of(n)) != Some(Liveness::Dead)
        })
        .count();
    alive >= quorum.min(replicas.len().max(1))
}

/// Issues one batch of operations from random live coordinators.
pub fn run_probe_batch(
    nodes: &[Node],
    rng: &mut DetRng,
    count: u64,
    quorum: usize,
    now: SimTime,
    stats: &mut ClientStats,
) {
    let live: Vec<usize> = nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.active && !n.departed)
        .map(|(i, _)| i)
        .collect();
    if live.is_empty() {
        return;
    }
    for _ in 0..count {
        let coordinator = &nodes[live[rng.gen_index(live.len())]];
        let key = Token(rng.next_u64());
        stats.attempted += 1;
        if !probe_operation(coordinator, key, quorum) {
            stats.failed += 1;
        }
    }
    stats.failure_series.push(now, stats.failed as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ringinfo::RingInfo;
    use scalecheck_ring::{spread_tokens, NodeId};
    use scalecheck_sim::{cpu::MachineId, SimDuration};

    fn node_with_view(n: u32) -> Node {
        let mut node = Node::new(
            NodeId(0),
            MachineId(0),
            DetRng::new(1),
            RingInfo::normal(spread_tokens(NodeId(0), 4)),
            3,
            8.0,
            SimDuration::from_secs(1),
        );
        node.active = true;
        node.announce(RingInfo::normal(spread_tokens(NodeId(0), 4)));
        for i in 1..n {
            node.ring
                .add_node(
                    NodeId(i),
                    scalecheck_ring::NodeStatus::Normal,
                    spread_tokens(NodeId(i), 4),
                )
                .unwrap();
        }
        node
    }

    #[test]
    fn healthy_view_serves_quorum() {
        let node = node_with_view(8);
        let mut rng = DetRng::new(2);
        for _ in 0..100 {
            assert!(probe_operation(&node, Token(rng.next_u64()), 2));
        }
    }

    #[test]
    fn convictions_cause_unavailability() {
        let mut node = node_with_view(8);
        // Convict everyone: heartbeats long ago, interpret much later.
        for i in 1..8 {
            node.fd
                .report(scalecheck_gossip::Peer(i), SimTime::from_secs(1));
        }
        node.fd.interpret_all(SimTime::from_secs(500));
        let mut rng = DetRng::new(3);
        let mut failures = 0;
        for _ in 0..100 {
            if !probe_operation(&node, Token(rng.next_u64()), 2) {
                failures += 1;
            }
        }
        assert!(
            failures > 60,
            "most quorums must fail with everyone convicted: {failures}"
        );
    }

    #[test]
    fn empty_view_fails() {
        let node = Node::new(
            NodeId(0),
            MachineId(0),
            DetRng::new(1),
            RingInfo::normal(vec![]),
            3,
            8.0,
            SimDuration::from_secs(1),
        );
        assert!(!probe_operation(&node, Token(42), 2));
    }

    #[test]
    fn batch_accounts_attempts_and_failures() {
        let mut nodes = vec![node_with_view(8)];
        let mut rng = DetRng::new(4);
        let mut stats = ClientStats::default();
        run_probe_batch(&nodes, &mut rng, 50, 2, SimTime::from_secs(1), &mut stats);
        assert_eq!(stats.attempted, 50);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.unavailability(), 0.0);
        // Now convict the world.
        for i in 1..8 {
            nodes[0]
                .fd
                .report(scalecheck_gossip::Peer(i), SimTime::from_secs(1));
        }
        nodes[0].fd.interpret_all(SimTime::from_secs(500));
        run_probe_batch(&nodes, &mut rng, 50, 2, SimTime::from_secs(501), &mut stats);
        assert!(stats.failed > 20);
        assert!(stats.unavailability() > 0.2);
        assert_eq!(stats.failure_series.len(), 2);
    }

    #[test]
    fn inactive_nodes_are_not_coordinators() {
        let mut node = node_with_view(4);
        node.active = false;
        let nodes = vec![node];
        let mut rng = DetRng::new(5);
        let mut stats = ClientStats::default();
        run_probe_batch(&nodes, &mut rng, 10, 2, SimTime::ZERO, &mut stats);
        assert_eq!(stats.attempted, 0);
    }
}
