//! Legacy client-probe compatibility layer.
//!
//! The quorum availability probe that used to live here has been folded
//! into [`scalecheck_traffic`], which generalizes it into a full
//! client-request datapath (open-loop arrivals, consistency levels,
//! latency SLOs). This module keeps the old surface alive:
//!
//! * [`ClientConfig`] — **deprecated** configuration shape, still
//!   accepted by [`crate::ScenarioConfig`]; the runner translates it
//!   into an equivalent [`scalecheck_traffic::TrafficConfig`] (see
//!   [`crate::ScenarioConfig::effective_traffic`]). Prefer configuring
//!   `traffic` directly.
//! * [`probe_operation`] — the single-operation quorum check, now a
//!   thin adapter over [`scalecheck_ring::RingTable::replicas_of`]
//!   (the replica-resolution walk previously duplicated here lives
//!   there, shared with the traffic engine).
//!
//! The probe's old `quorum > rf` behavior — silently clamping the
//! requirement down to the replica count — is gone: that combination is
//! rejected at scenario build time by [`crate::ScenarioConfig::validate`].

use scalecheck_gossip::Liveness;
use scalecheck_ring::Token;
use scalecheck_traffic::TrafficConfig;

use serde::{Deserialize, Serialize};

use crate::node::Node;
use crate::ringinfo::peer_of;

/// Client workload configuration.
///
/// **Deprecated** in favor of [`scalecheck_traffic::TrafficConfig`]
/// (set `ScenarioConfig::traffic`); kept so existing scenario files and
/// call sites continue to work. The runner maps it onto the traffic
/// datapath via [`ClientConfig::to_traffic`]: `ops_per_sec` constant-
/// rate write-only load at the consistency level implied by `quorum`,
/// failing fast — exactly the old probe's semantics.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Cluster-wide operations per second (0 disables the probe).
    pub ops_per_sec: u64,
    /// Replicas that must be considered alive for an operation to
    /// succeed (e.g. 2 for QUORUM at RF=3).
    pub quorum: usize,
}

impl ClientConfig {
    /// Probe disabled.
    pub const OFF: ClientConfig = ClientConfig {
        ops_per_sec: 0,
        quorum: 2,
    };

    /// A light default probe: 50 ops/s at QUORUM for RF=3.
    pub fn light() -> Self {
        ClientConfig {
            ops_per_sec: 50,
            quorum: 2,
        }
    }

    /// The equivalent traffic configuration at replication factor `rf`.
    pub fn to_traffic(self, rf: usize) -> TrafficConfig {
        TrafficConfig::from_legacy(self.ops_per_sec, self.quorum, rf)
    }
}

/// Executes one client operation against `coordinator`'s view: resolves
/// the replicas of `key` from its ring view and checks its failure
/// detector's verdicts. Returns whether the operation succeeds.
///
/// `quorum` must not exceed the ring's replication factor (enforced at
/// config level by [`crate::ScenarioConfig::validate`]); a short ring
/// (fewer nodes than RF) still clamps to what exists, since no setting
/// could ever succeed there.
pub fn probe_operation(coordinator: &Node, key: Token, quorum: usize) -> bool {
    let mut replicas = Vec::with_capacity(coordinator.ring.rf());
    coordinator.ring.replicas_of(key, &mut replicas);
    if replicas.is_empty() {
        return false;
    }
    let alive = replicas
        .iter()
        .filter(|&&n| {
            if n == coordinator.id {
                return true;
            }
            // Unknown peers count as alive (no conviction yet).
            coordinator.fd.liveness(peer_of(n)) != Some(Liveness::Dead)
        })
        .count();
    alive >= quorum.min(replicas.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ringinfo::RingInfo;
    use scalecheck_ring::{spread_tokens, NodeId};
    use scalecheck_sim::{cpu::MachineId, DetRng, SimDuration, SimTime};
    use scalecheck_traffic::Consistency;

    fn node_with_view(n: u32) -> Node {
        let mut node = Node::new(
            NodeId(0),
            MachineId(0),
            DetRng::new(1),
            RingInfo::normal(spread_tokens(NodeId(0), 4)),
            3,
            8.0,
            SimDuration::from_secs(1),
        );
        node.active = true;
        node.announce(RingInfo::normal(spread_tokens(NodeId(0), 4)));
        for i in 1..n {
            node.ring
                .add_node(
                    NodeId(i),
                    scalecheck_ring::NodeStatus::Normal,
                    spread_tokens(NodeId(i), 4),
                )
                .unwrap();
        }
        node
    }

    #[test]
    fn healthy_view_serves_quorum() {
        let node = node_with_view(8);
        let mut rng = DetRng::new(2);
        for _ in 0..100 {
            assert!(probe_operation(&node, Token(rng.next_u64()), 2));
        }
    }

    #[test]
    fn convictions_cause_unavailability() {
        let mut node = node_with_view(8);
        // Convict everyone: heartbeats long ago, interpret much later.
        for i in 1..8 {
            node.fd
                .report(scalecheck_gossip::Peer(i), SimTime::from_secs(1));
        }
        node.fd.interpret_all(SimTime::from_secs(500));
        let mut rng = DetRng::new(3);
        let mut failures = 0;
        for _ in 0..100 {
            if !probe_operation(&node, Token(rng.next_u64()), 2) {
                failures += 1;
            }
        }
        assert!(
            failures > 60,
            "most quorums must fail with everyone convicted: {failures}"
        );
    }

    #[test]
    fn empty_view_fails() {
        let node = Node::new(
            NodeId(0),
            MachineId(0),
            DetRng::new(1),
            RingInfo::normal(vec![]),
            3,
            8.0,
            SimDuration::from_secs(1),
        );
        assert!(!probe_operation(&node, Token(42), 2));
    }

    #[test]
    fn legacy_config_translates_onto_the_traffic_datapath() {
        let t = ClientConfig::light().to_traffic(3);
        assert!(t.enabled());
        assert_eq!(t.write_cl, Consistency::Quorum);
        assert_eq!(t.read_permille, 0, "the probe was write-only");
        assert_eq!(t.arrival.milliops_per_sec(), 50_000);
        assert!(!ClientConfig::OFF.to_traffic(3).enabled());
    }
}
