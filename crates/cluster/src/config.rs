//! Scenario configuration: which bug, which scale, which deployment.
//!
//! A [`ScenarioConfig`] fully determines a cluster run: cluster size and
//! vnode count, the pending-range calculator version (the bug), how the
//! calculation is threaded/locked (C5456), the rescale workload, the
//! deployment mode (the paper's Real / Colo / PIL trichotomy), and the
//! calibration constants that map counted operations to virtual compute
//! time.

use scalecheck_net::NetworkConfig;
use scalecheck_sim::{FaultPlan, SimDuration, TieOrderSpec};
use scalecheck_traffic::TrafficConfig;
use serde::{Deserialize, Serialize};

/// When the first rescale action (decommission or join) fires, for
/// workloads that rescale an already-running cluster. Bootstrap runs
/// start rescaling at t=0. Shared by the workload scheduler and the
/// traffic engine's phase windows.
pub const RESCALE_FIRST_ACTION: SimDuration = SimDuration::from_secs(40);

/// Which historical pending-range calculator the cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CalcVersion {
    /// Pre-C3831 cubic implementation.
    V1Cubic,
    /// C3831 fix (quadratic); inadequate under vnodes (C3881).
    V2Quadratic,
    /// C3881 redesign (vnode-aware, near-linear).
    V3VnodeAware,
    /// C6127's fresh-ring path (quadratic when bootstrapping from
    /// scratch, v3 otherwise).
    FreshRing,
}

/// How the calculation interacts with the gossip stage (the C5456 axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LockingMode {
    /// The calculation runs inline on the gossip stage, blocking it for
    /// the whole compute (the C3831/C3881 architecture).
    InlineOnGossipStage,
    /// The calculation runs on its own stage but holds a coarse ring
    /// lock; gossip processing blocks on the same lock (C5456 bug).
    CoarseLockThread,
    /// The calculation clones the ring under the lock and releases it
    /// before computing (C5456 fix).
    SnapshotThread,
}

/// The rescale workload driving the run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Workload {
    /// `count` nodes decommission sequentially, `gap` apart (C3831).
    Decommission {
        /// How many nodes leave.
        count: usize,
        /// Time between successive decommissions.
        gap: SimDuration,
    },
    /// `count` new nodes join sequentially, `gap` apart (C3881, C5456).
    ScaleOut {
        /// How many nodes join.
        count: usize,
        /// Time between successive joins.
        gap: SimDuration,
    },
    /// The whole cluster boots simultaneously from scratch (C6127).
    BootstrapFromScratch,
}

/// Where nodes' compute runs — the paper's three test setups.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DeploymentMode {
    /// Real-scale testing: every node has its own machine (Figure 1a).
    Real,
    /// Basic colocation: all nodes share one machine with `cores` cores
    /// (Figure 1b).
    Colo {
        /// Cores on the shared machine (the paper's Nome box has 16).
        cores: usize,
    },
    /// PIL-infused replay: like `Colo`, but PIL-replaced functions sleep
    /// instead of computing (Figure 1c).
    PilReplay {
        /// Cores on the shared machine.
        cores: usize,
    },
}

/// How the run interacts with the memoization database.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CalcIo {
    /// Execute calculations for real (Real and plain Colo runs).
    Execute,
    /// Execute and record input/output/duration (the memoization run,
    /// Figure 2 step d).
    Record,
    /// Replay from the database: sleep the recorded duration and copy
    /// the recorded output (Figure 2 steps e–f).
    Replay,
}

/// Rebalance allocation strategy (§6's space-oblivious code).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AllocStrategy {
    /// Over-allocates `(N-1) · P · 1.3 MB` partition services per node.
    Naive,
    /// Allocates only the needed `P · 1.3 MB`.
    Frugal,
}

/// Memory-model parameters (§6, §8 colocation bottlenecks).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Fixed runtime overhead per node process (managed-runtime cost;
    /// ~70 MB for a JVM). In single-process mode this is paid once.
    pub per_process_overhead: u64,
    /// Whether all nodes share one process (§6's scale-checkable
    /// redesign) or run one process each.
    pub single_process: bool,
    /// Bytes per ring-table entry per node.
    pub bytes_per_ring_entry: u64,
    /// Rebalance allocation strategy, if the experiment models it.
    pub rebalance_alloc: Option<AllocStrategy>,
    /// Capacity of each machine (the Nome boxes have 32 GB).
    pub machine_capacity: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            per_process_overhead: 70 << 20,
            single_process: false,
            bytes_per_ring_entry: 64,
            rebalance_alloc: None,
            machine_capacity: 32 << 30,
        }
    }
}

/// Full configuration of one cluster run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Initial cluster size (nodes in Normal status at t=0; scale-out
    /// nodes come on top).
    pub n_nodes: usize,
    /// Virtual nodes (tokens) per physical node.
    pub vnodes: usize,
    /// Replication factor.
    pub rf: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Gossip round interval (Cassandra: 1 s).
    pub gossip_interval: SimDuration,
    /// Failure-detector evaluation interval.
    pub fd_interval: SimDuration,
    /// φ conviction threshold (Cassandra: 8).
    pub phi_threshold: f64,
    /// Calculator version under test.
    pub calculator: CalcVersion,
    /// Threading/locking architecture.
    pub locking: LockingMode,
    /// Rescale workload.
    pub workload: Workload,
    /// How long one rescale operation stays in its transitional status
    /// (Leaving before Left, Joining before Normal). Real decommissions
    /// and bootstraps stream data for minutes; this is the pending
    /// window during which every applied gossip re-triggers the
    /// calculation.
    pub rescale_window: SimDuration,
    /// When the workload's last action fires.
    pub workload_end: SimDuration,
    /// Hard cap on run duration (quiescence is detected earlier).
    pub max_duration: SimDuration,
    /// Deployment (Real / Colo / PIL).
    pub deployment: DeploymentMode,
    /// Memoization interaction.
    pub calc_io: CalcIo,
    /// Enforce recorded message order during replay (§5 order
    /// determinism).
    pub order_enforcement: bool,
    /// How long an out-of-order message may be held for its recorded
    /// turn before being released anyway (bounds divergence damage).
    pub order_hold_timeout: SimDuration,
    /// Virtual nanoseconds per counted calculator operation
    /// (calibration; see [`crate::calibrate`]).
    pub ns_per_op: u64,
    /// Base cost of processing one gossip message.
    pub msg_base_cost: SimDuration,
    /// Additional cost per endpoint entry in a processed message.
    pub per_endpoint_cost: SimDuration,
    /// Memory model.
    pub memory: MemoryConfig,
    /// Network fabric parameters (latency distribution, loss).
    pub network: NetworkConfig,
    /// Scheduled fault injections (empty plan = no faults). Part of the
    /// serialized config, so sweep cache keys distinguish plans.
    pub faults: FaultPlan,
    /// Client availability probe (the paper's user-visible impact:
    /// "making some data not reachable by the users"). Legacy knob: it
    /// is translated into an equivalent [`TrafficConfig`] unless
    /// `traffic` below is enabled, which takes precedence.
    pub client: crate::datapath::ClientConfig,
    /// Full client-request datapath: open-loop arrivals, consistency
    /// levels, and SLO accounting ([`scalecheck_traffic`]). When
    /// enabled it supersedes `client`; when off (the default) the
    /// legacy `client` probe shape is used. Part of the serialized
    /// config, so sweep cache keys distinguish traffic shapes.
    pub traffic: TrafficConfig,
    /// Record a deterministic event trace (replay debugging, §7 f).
    pub trace_events: bool,
    /// Full observability tracing (spans, metrics, utilization
    /// timelines) on virtual time; see [`scalecheck_obs`].
    pub trace: scalecheck_obs::TraceConfig,
    /// §6's scale-checkable redesign: run the whole colocated cluster as
    /// one global event queue with one multithreaded handler (SEDA-like)
    /// instead of thousands of per-node daemon threads. Removes the
    /// context-switch amplification term from the shared machine.
    pub global_event_queue: bool,
    /// Tie-order perturbation applied to the engine (identity = stock
    /// scheduling order). Part of the serialized config, so schedule
    /// witnesses replay from JSON and sweep cache keys distinguish
    /// perturbed cells.
    pub tie_order: TieOrderSpec,
    /// Record the engine fire log and the runner's event tags into the
    /// report's [`scalecheck_sim::ScheduleProbe`] (explorer input).
    pub record_schedule: bool,
    /// Ideal machine model: zero context-switch overhead on every
    /// machine. The commodity overhead normally offsets each task
    /// completion by a few microseconds, which *separates* causally
    /// chained events onto distinct nanoseconds; the ideal model keeps
    /// them on the timestamps the protocol math produces, making
    /// exact-time collisions (and thus schedule races) far denser —
    /// the explorer's race-prone presets rely on this.
    pub free_ctx_switch: bool,
}

impl ScenarioConfig {
    /// A small healthy baseline scenario (fixed calculator, no churn
    /// stress): useful as a starting point for tests.
    pub fn baseline(n_nodes: usize, seed: u64) -> Self {
        ScenarioConfig {
            n_nodes,
            vnodes: 1,
            rf: 3,
            seed,
            gossip_interval: SimDuration::from_secs(1),
            fd_interval: SimDuration::from_secs(1),
            phi_threshold: 8.0,
            calculator: CalcVersion::V3VnodeAware,
            locking: LockingMode::InlineOnGossipStage,
            workload: Workload::Decommission {
                count: 1,
                gap: SimDuration::from_secs(30),
            },
            rescale_window: SimDuration::from_secs(25),
            workload_end: SimDuration::from_secs(100),
            max_duration: SimDuration::from_secs(900),
            deployment: DeploymentMode::Real,
            calc_io: CalcIo::Execute,
            order_enforcement: false,
            order_hold_timeout: SimDuration::from_secs(2),
            ns_per_op: crate::calibrate::NS_PER_OP_V1,
            msg_base_cost: SimDuration::from_micros(50),
            per_endpoint_cost: SimDuration::from_micros(2),
            memory: MemoryConfig::default(),
            network: NetworkConfig::default(),
            faults: FaultPlan::default(),
            client: crate::datapath::ClientConfig::light(),
            traffic: TrafficConfig::OFF,
            trace_events: false,
            trace: scalecheck_obs::TraceConfig::default(),
            global_event_queue: false,
            tie_order: TieOrderSpec::identity(),
            record_schedule: false,
            free_ctx_switch: false,
        }
    }

    /// The C3831 scenario: decommissions under the cubic calculator,
    /// physical tokens only.
    pub fn c3831(n_nodes: usize, seed: u64) -> Self {
        let mut cfg = Self::baseline(n_nodes, seed);
        cfg.calculator = CalcVersion::V1Cubic;
        cfg.vnodes = 1;
        cfg.workload = Workload::Decommission {
            count: 3,
            gap: SimDuration::from_secs(140),
        };
        cfg.rescale_window = SimDuration::from_secs(110);
        cfg.workload_end = SimDuration::from_secs(460);
        cfg.max_duration = SimDuration::from_secs(3600);
        cfg.ns_per_op = crate::calibrate::NS_PER_OP_V1;
        cfg
    }

    /// The C3881 scenario: scale-out with vnodes under the v2 (fixed for
    /// C3831, inadequate for vnodes) calculator.
    ///
    /// The paper's Cassandra uses P=256 vnodes; we use P=32 with a
    /// recalibrated per-op cost so a genuine execution stays affordable
    /// on the host while virtual durations land in the same envelope
    /// (documented in DESIGN.md).
    pub fn c3881(n_nodes: usize, seed: u64) -> Self {
        let mut cfg = Self::baseline(n_nodes, seed);
        cfg.calculator = CalcVersion::V2Quadratic;
        cfg.vnodes = 32;
        cfg.workload = Workload::ScaleOut {
            count: 2,
            gap: SimDuration::from_secs(140),
        };
        cfg.rescale_window = SimDuration::from_secs(110);
        cfg.workload_end = SimDuration::from_secs(330);
        cfg.max_duration = SimDuration::from_secs(3600);
        cfg.ns_per_op = crate::calibrate::NS_PER_OP_V2_VNODES;
        cfg
    }

    /// The C5456 scenario: scale-out with the calculation on its own
    /// thread but holding the coarse ring lock.
    pub fn c5456(n_nodes: usize, seed: u64) -> Self {
        let mut cfg = Self::c3881(n_nodes, seed);
        cfg.locking = LockingMode::CoarseLockThread;
        cfg.workload = Workload::ScaleOut {
            count: 2,
            gap: SimDuration::from_secs(150),
        };
        cfg.rescale_window = SimDuration::from_secs(60);
        cfg.workload_end = SimDuration::from_secs(380);
        cfg
    }

    /// The C6127 scenario: the whole cluster bootstraps from scratch,
    /// exercising the fresh-ring quadratic path.
    pub fn c6127(n_nodes: usize, seed: u64) -> Self {
        let mut cfg = Self::baseline(n_nodes, seed);
        cfg.calculator = CalcVersion::FreshRing;
        cfg.vnodes = 1;
        cfg.workload = Workload::BootstrapFromScratch;
        cfg.rescale_window = SimDuration::from_secs(120);
        cfg.workload_end = SimDuration::from_secs(180);
        cfg.max_duration = SimDuration::from_secs(3600);
        cfg.ns_per_op = crate::calibrate::NS_PER_OP_FRESH;
        cfg
    }

    /// Switches the scenario to a deployment mode, leaving the workload
    /// untouched (the paper's accuracy comparison varies only this).
    pub fn with_deployment(mut self, deployment: DeploymentMode) -> Self {
        self.deployment = deployment;
        self
    }

    /// Switches the calc-IO mode (execute / record / replay).
    pub fn with_calc_io(mut self, calc_io: CalcIo) -> Self {
        self.calc_io = calc_io;
        self
    }

    /// Attaches a fault plan, leaving everything else untouched.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attaches a traffic datapath, leaving everything else untouched.
    pub fn with_traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Total nodes including any scale-out joiners.
    pub fn total_nodes(&self) -> usize {
        match self.workload {
            Workload::ScaleOut { count, .. } => self.n_nodes + count,
            _ => self.n_nodes,
        }
    }

    /// The traffic shape this run actually drives: the new datapath
    /// when configured, otherwise the legacy `client` probe translated
    /// onto it (same stream id, same 1 op/s-per-user constant rate, so
    /// old scenarios keep their semantics).
    pub fn effective_traffic(&self) -> TrafficConfig {
        if self.traffic.enabled() {
            self.traffic
        } else {
            TrafficConfig::from_legacy(self.client.ops_per_sec, self.client.quorum, self.rf)
        }
    }

    /// The `[start, end]` window (offsets from t=0) during which the
    /// cluster is rescaling: traffic applies its phase ramp inside it
    /// and splits latency histograms around it.
    pub fn rescale_phase_span(&self) -> (SimDuration, SimDuration) {
        match self.workload {
            Workload::BootstrapFromScratch => (SimDuration::ZERO, self.workload_end),
            Workload::Decommission { .. } | Workload::ScaleOut { .. } => {
                (RESCALE_FIRST_ACTION, self.workload_end)
            }
        }
    }

    /// Rejects configurations whose request semantics would silently
    /// lie. Historically `client.quorum > rf` was clamped down to the
    /// replica count inside the probe, *undercounting* the
    /// acknowledgements the operator asked for; it is now a build-time
    /// error. Called by the runner before any state is built.
    pub fn validate(&self) -> Result<(), String> {
        if self.rf == 0 {
            return Err("rf must be at least 1".into());
        }
        if self.client.ops_per_sec > 0 && self.client.quorum > self.rf {
            return Err(format!(
                "client.quorum ({}) exceeds rf ({}): the probe would silently \
                 demand fewer acknowledgements than configured",
                self.client.quorum, self.rf
            ));
        }
        if self.traffic.enabled() {
            if self.traffic.read_permille > 1000 {
                return Err(format!(
                    "traffic.read_permille ({}) exceeds 1000",
                    self.traffic.read_permille
                ));
            }
            if self.traffic.arrival.tick == SimDuration::ZERO {
                return Err("traffic.arrival.tick must be positive".into());
            }
            if self.traffic.sample_cap_per_tick == 0 {
                return Err("traffic.sample_cap_per_tick must be positive".into());
            }
            if let scalecheck_traffic::KeySkew::Zipfian {
                theta_permille,
                keyspace,
            } = self.traffic.key_skew
            {
                if keyspace < 2 {
                    return Err(format!(
                        "traffic.key_skew keyspace ({keyspace}) must be at least 2"
                    ));
                }
                if theta_permille > 4000 {
                    return Err(format!(
                        "traffic.key_skew theta_permille ({theta_permille}) exceeds 4000: \
                         the inverse-CDF approximation is untrustworthy that far out"
                    ));
                }
            }
            if self.traffic.client_retries > 0 && self.traffic.retry_backoff == SimDuration::ZERO {
                return Err(
                    "traffic.retry_backoff must be positive when client_retries > 0: \
                     a zero backoff reissues at the timeout instant and double-counts \
                     the tick"
                        .into(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_sim::SimTime;

    #[test]
    fn presets_pick_the_right_bug_axes() {
        let a = ScenarioConfig::c3831(64, 1);
        assert_eq!(a.calculator, CalcVersion::V1Cubic);
        assert!(matches!(a.workload, Workload::Decommission { .. }));
        assert_eq!(a.vnodes, 1);

        let b = ScenarioConfig::c3881(64, 1);
        assert_eq!(b.calculator, CalcVersion::V2Quadratic);
        assert!(matches!(b.workload, Workload::ScaleOut { .. }));
        assert!(b.vnodes > 1);

        let c = ScenarioConfig::c5456(64, 1);
        assert_eq!(c.locking, LockingMode::CoarseLockThread);

        let d = ScenarioConfig::c6127(64, 1);
        assert_eq!(d.calculator, CalcVersion::FreshRing);
        assert!(matches!(d.workload, Workload::BootstrapFromScratch));
    }

    #[test]
    fn total_nodes_counts_joiners() {
        let cfg = ScenarioConfig::c3881(64, 1);
        assert_eq!(cfg.total_nodes(), 66);
        let cfg = ScenarioConfig::c3831(64, 1);
        assert_eq!(cfg.total_nodes(), 64);
    }

    #[test]
    fn fault_plans_ride_in_the_config() {
        let base = ScenarioConfig::baseline(8, 1);
        assert!(base.faults.is_empty(), "baseline injects nothing");
        let plan = FaultPlan::new().crash(SimTime::from_secs(50), 3);
        let cfg = ScenarioConfig::baseline(8, 1).with_faults(plan.clone());
        assert_eq!(cfg.faults, plan);
        assert_eq!(cfg.n_nodes, base.n_nodes);
    }

    #[test]
    fn with_helpers_only_touch_their_field() {
        let cfg = ScenarioConfig::c3831(32, 1)
            .with_deployment(DeploymentMode::Colo { cores: 16 })
            .with_calc_io(CalcIo::Record);
        assert_eq!(cfg.deployment, DeploymentMode::Colo { cores: 16 });
        assert_eq!(cfg.calc_io, CalcIo::Record);
        assert_eq!(cfg.calculator, CalcVersion::V1Cubic);
    }
}
