//! Event orchestration: builds the cluster, drives it to quiescence,
//! and reports.
//!
//! The run realizes the paper's execution semantics:
//!
//! * **Real**: every node owns a dedicated machine — compute never
//!   contends across nodes (Figure 1a).
//! * **Colo**: every node's compute is submitted to one shared machine —
//!   queueing and context switching delay everything (Figure 1b).
//! * **PilReplay**: like Colo, but the pending-range calculation (the
//!   PIL-replaced function) *sleeps* its duration instead of occupying a
//!   core (Figure 1c).
//!
//! The bug mechanism is modelled faithfully to Cassandra's architecture:
//! in [`LockingMode::InlineOnGossipStage`], applying a gossip message
//! that touches a pending endpoint runs the calculation synchronously on
//! the gossip stage, so a multi-second calculation starves heartbeat
//! processing and the node's own gossip rounds; in the thread modes the
//! calculation runs on its own stage but couples through the ring lock
//! (C5456) unless it snapshots (the fix).

use std::collections::BTreeMap;

use scalecheck_gossip::Liveness;
use scalecheck_memo::{OrderDecision, OrderEnforcer, OrderRecorder};
use scalecheck_net::{Addr, Network};
use scalecheck_obs::{Metric, SpanName, ENGINE_PID, TID_CALC, TID_GOSSIP, TID_REQUEST};
use scalecheck_ring::{spread_tokens, NodeId, NodeStatus, PendingRanges, RingTable, Token};
use scalecheck_sim::tie::tag;
use scalecheck_sim::{
    Acquire, Ctx, CtxSwitchModel, Engine, EngineCounters, FaultEvent, FaultReport, FiredFault,
    HandlerId, LockId, LockTable, Machine, MachinePark, MemoryModel, ScheduleProbe, SchedulerKind,
    SimDuration, SimTime, Stage, TagRec, TimeSeries,
};

use crate::calc::{CalcEngine, PendingWire};
use crate::config::{AllocStrategy, CalcIo, DeploymentMode, LockingMode, ScenarioConfig, Workload};
use crate::node::{Envelope, GossipMessage, Node, Task};
use crate::report::RunReport;
use crate::ringinfo::{addr_of, peer_of, RingInfo};

/// Which stage a task runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StageKind {
    /// The gossip stage.
    Gossip,
    /// The calculation stage (thread modes).
    Calc,
}

/// The complete world state the engine drives.
pub struct ClusterState {
    /// Scenario configuration.
    pub cfg: ScenarioConfig,
    /// All nodes (initial members first, then scale-out joiners).
    pub nodes: Vec<Node>,
    /// The simulated network.
    pub net: Network,
    /// Machines (one per node in Real, a single shared one otherwise).
    pub park: MachinePark,
    /// PilReplay only: the *emulated* real-scale park (one two-core
    /// machine per node, Real's context-switch model) that coupled
    /// request service bills instead of the colocated `park`. The
    /// processing illusion promises real-scale timing, and for the
    /// datapath that means real-scale *queueing* — per-node service
    /// contention included — not an uncontended sleep. Empty in every
    /// other deployment mode.
    pil_request_park: MachinePark,
    /// Memory budget per machine.
    pub machine_mem: Vec<MemoryModel>,
    /// Virtual locks (one ring lock per node).
    pub locks: LockTable,
    ring_lock: Vec<LockId>,
    /// The calculation engine (execute / record / replay).
    pub calc: CalcEngine,
    /// Order recorder (memoization runs).
    pub order_rec: Option<OrderRecorder>,
    /// Order enforcer (replay runs).
    pub order_enf: Option<OrderEnforcer>,
    seeds: Vec<NodeId>,
    /// Handler for periodic gossip rounds (payload packs node + epoch).
    gossip_handler: Option<HandlerId>,
    /// Handler for periodic failure-detector checks.
    fd_handler: Option<HandlerId>,
    /// Periodic timers that fired after their node's epoch moved on.
    /// Crash/restart cancels timers eagerly, so this stays zero; the
    /// epoch guard remains as a backstop and this counts its catches.
    stale_timer_fires: u64,
    /// The client-request datapath (open-loop arrivals, consistency
    /// levels, SLO accounting). In coupled mode it is a tenant of the
    /// simulation — request service bills node CPUs and replica round
    /// trips ride the data plane; the legacy uncoupled probe only reads
    /// coordinator state. Either way it owns its private RNG fork.
    traffic: scalecheck_traffic::TrafficState,
    /// Handler for periodic traffic ticks.
    traffic_handler: Option<HandlerId>,
    /// Observability tracing active (full spans or the legacy event log;
    /// both feed off the thread-local [`scalecheck_obs`] tracer).
    trace_enabled: bool,
    /// Cumulative per-node `[gossip, calc, request]` CPU demand
    /// submitted, in virtual ns, billed by *work kind* (C3831 runs calc
    /// work on the gossip stage; attribution needs the kind, not the
    /// host stage). PIL-replaced calc sleeps bill nothing — they do
    /// not occupy a core. Request service bills in every mode; under
    /// PilReplay it lands on the emulated real-scale park
    /// (`pil_request_park`), so the slot reads as the real-scale
    /// prediction rather than colocated contention.
    work_busy: Vec<[u64; 3]>,
    /// Last sampled `work_busy` readings (the utilization sampler
    /// differences successive readings).
    busy_sampled: Vec<[u64; 3]>,
    inflight: i64,
    deliveries: u64,
    forced_releases: u64,
    flap_series: TimeSeries,
    crashed: u64,
    workload_end_at: SimTime,
    stopped_quiescent: bool,
    fault_fired: Vec<FiredFault>,
    fault_crash_at: BTreeMap<u32, SimTime>,
    fault_downtime: BTreeMap<u32, SimDuration>,
    fault_crashes: u64,
    fault_restarts: u64,
    /// Semantic tags for scheduled events (deliveries, periodic timers),
    /// collected only when `record_schedule` is set.
    sched_tags: Option<Vec<TagRec>>,
}

impl ClusterState {
    fn lock_token(i: usize, stage: StageKind) -> u64 {
        (i as u64) * 2
            + match stage {
                StageKind::Gossip => 0,
                StageKind::Calc => 1,
            }
    }

    fn total_flaps(&self) -> u64 {
        self.nodes.iter().map(|n| n.fd.flaps()).sum()
    }

    fn is_quiescent(&self) -> bool {
        self.inflight == 0
            && self.nodes.iter().all(|n| {
                !n.active
                    || n.departed
                    || (n.gossip_stage.depth() == 0
                        && !n.gossip_stage.is_busy()
                        && n.calc_stage.depth() == 0
                        && !n.calc_stage.is_busy()
                        && n.parked_gossip.is_none()
                        && n.parked_calc.is_none()
                        && !n.calc_dirty
                        && !n.calc_queued
                        && n.held.is_empty())
            })
    }
}

// ---------------------------------------------------------------------
// Setup.
// ---------------------------------------------------------------------

fn build(cfg: &ScenarioConfig, calc: CalcEngine) -> ClusterState {
    let total = cfg.total_nodes();
    let mut park = MachinePark::new();
    let mut machine_mem = Vec::new();
    match cfg.deployment {
        DeploymentMode::Real => {
            let cs = if cfg.free_ctx_switch {
                CtxSwitchModel::FREE
            } else {
                CtxSwitchModel::commodity()
            };
            for _ in 0..total {
                park.add(Machine::new(2, cs));
                machine_mem.push(MemoryModel::new(cfg.memory.machine_capacity));
            }
        }
        DeploymentMode::Colo { cores } | DeploymentMode::PilReplay { cores } => {
            // §6: per-node daemon threads amplify context switching with
            // the multiprogramming level; the global-event-queue redesign
            // pays only the fixed dispatch cost.
            let cs = if cfg.free_ctx_switch {
                CtxSwitchModel::FREE
            } else if cfg.global_event_queue {
                CtxSwitchModel {
                    base: scalecheck_sim::SimDuration::from_micros(5),
                    per_excess_load: scalecheck_sim::SimDuration::ZERO,
                }
            } else {
                CtxSwitchModel::commodity()
            };
            park.add(Machine::new(cores.max(1), cs));
            machine_mem.push(MemoryModel::new(cfg.memory.machine_capacity));
        }
    }

    // PIL bills coupled request service on an emulated real-scale park —
    // the exact hardware shape the `Real` arm above builds — so the
    // datapath sees real deployment's per-node service queueing instead
    // of either the colocated contention or an uncontended sleep.
    let mut pil_request_park = MachinePark::new();
    if matches!(cfg.deployment, DeploymentMode::PilReplay { .. }) {
        let cs = if cfg.free_ctx_switch {
            CtxSwitchModel::FREE
        } else {
            CtxSwitchModel::commodity()
        };
        for _ in 0..total {
            pil_request_park.add(Machine::new(2, cs));
        }
    }

    let bootstrap = matches!(cfg.workload, Workload::BootstrapFromScratch);
    let initial_status = if bootstrap {
        NodeStatus::Joining
    } else {
        NodeStatus::Normal
    };

    let root_rng = scalecheck_sim::DetRng::new(cfg.seed);
    let mut nodes = Vec::with_capacity(total);
    let mut locks = LockTable::new();
    let mut ring_lock = Vec::with_capacity(total);
    for i in 0..total {
        let id = NodeId(i as u32);
        let machine = match cfg.deployment {
            DeploymentMode::Real => scalecheck_sim::cpu::MachineId(i),
            _ => scalecheck_sim::cpu::MachineId(0),
        };
        let tokens = spread_tokens(id, cfg.vnodes);
        let info = RingInfo {
            status: if i < cfg.n_nodes {
                initial_status
            } else {
                NodeStatus::Joining
            },
            tokens,
        };
        nodes.push(Node::new(
            id,
            machine,
            root_rng.fork(1000 + i as u64),
            info,
            cfg.rf,
            cfg.phi_threshold,
            cfg.gossip_interval,
        ));
        ring_lock.push(locks.create());
    }

    // Established members know each other; everyone knows the seeds.
    let seeds: Vec<NodeId> = (0..cfg.n_nodes.min(3)).map(|i| NodeId(i as u32)).collect();
    if !bootstrap {
        let member_states: Vec<(scalecheck_gossip::Peer, _)> = (0..cfg.n_nodes)
            .map(|j| {
                let id = NodeId(j as u32);
                (
                    peer_of(id),
                    scalecheck_gossip::EndpointState::new(
                        scalecheck_gossip::HeartbeatState {
                            generation: 1,
                            version: 0,
                        },
                        0,
                        RingInfo::normal(spread_tokens(id, cfg.vnodes)),
                    ),
                )
            })
            .collect();
        #[allow(clippy::needless_range_loop)]
        for i in 0..cfg.n_nodes {
            for (peer, st) in &member_states {
                if peer.0 != i as u32 {
                    nodes[i].gossiper.seed_peer(*peer, st.clone());
                }
            }
            // Pre-populate the ring view with the established members.
            for j in 0..cfg.n_nodes {
                if i != j {
                    let jid = NodeId(j as u32);
                    nodes[i]
                        .ring
                        .add_node(jid, NodeStatus::Normal, spread_tokens(jid, cfg.vnodes))
                        .expect("distinct tokens");
                }
            }
        }
    }
    // Joiners (and everyone at fresh bootstrap) know the seed addresses
    // only: a zeroed endpoint state that any real gossip supersedes.
    let joiner_range = if bootstrap {
        0..total
    } else {
        cfg.n_nodes..total
    };
    for i in joiner_range {
        for &s in &seeds {
            if s != NodeId(i as u32) {
                nodes[i].gossiper.seed_peer(
                    peer_of(s),
                    scalecheck_gossip::EndpointState::new(
                        scalecheck_gossip::HeartbeatState {
                            generation: 0,
                            version: 0,
                        },
                        0,
                        RingInfo::normal(vec![]),
                    ),
                );
            }
        }
    }

    // Per-link fault windows are pure network state: install them up
    // front; the time bounds make them self-activating.
    let mut net = Network::new(cfg.network);
    for ev in &cfg.faults.events {
        match *ev {
            FaultEvent::DropWindow {
                from,
                until,
                src,
                dst,
                probability,
            } => net.add_drop_window(from, until, src.map(Addr), dst.map(Addr), probability),
            FaultEvent::DelayWindow {
                from,
                until,
                src,
                dst,
                extra,
            } => net.add_delay_window(from, until, src.map(Addr), dst.map(Addr), extra),
            FaultEvent::DuplicateWindow {
                from,
                until,
                src,
                dst,
                probability,
            } => net.add_duplicate_window(from, until, src.map(Addr), dst.map(Addr), probability),
            _ => {}
        }
    }

    // The run must not quiesce before every scheduled fault has fired
    // (and its convictions had time to land).
    let fault_horizon = if cfg.faults.is_empty() {
        SimTime::ZERO
    } else {
        cfg.faults.end_time() + FAULT_SETTLE
    };

    let traffic = scalecheck_traffic::TrafficState::new(
        cfg.effective_traffic(),
        &root_rng,
        cfg.network.latency,
    );
    ClusterState {
        workload_end_at: (SimTime::ZERO + cfg.workload_end).max(fault_horizon),
        traffic,
        traffic_handler: None,
        trace_enabled: cfg.trace.enabled || cfg.trace_events,
        work_busy: vec![[0, 0, 0]; total],
        busy_sampled: vec![[0, 0, 0]; total],
        cfg: cfg.clone(),
        nodes,
        net,
        park,
        pil_request_park,
        machine_mem,
        locks,
        ring_lock,
        calc,
        order_rec: None,
        order_enf: None,
        seeds,
        gossip_handler: None,
        fd_handler: None,
        stale_timer_fires: 0,
        inflight: 0,
        deliveries: 0,
        forced_releases: 0,
        flap_series: TimeSeries::new(),
        crashed: 0,
        stopped_quiescent: false,
        fault_fired: Vec::new(),
        fault_crash_at: BTreeMap::new(),
        fault_downtime: BTreeMap::new(),
        fault_crashes: 0,
        fault_restarts: 0,
        sched_tags: if cfg.record_schedule {
            Some(Vec::new())
        } else {
            None
        },
    }
}

/// How long after the last fault fires the run keeps going before
/// quiescence may stop it: φ conviction of a silent peer takes ~18 s at
/// threshold 8, plus gossip rounds to recover after heals.
const FAULT_SETTLE: SimDuration = SimDuration::from_secs(45);

// ---------------------------------------------------------------------
// Node activation and per-node timers.
// ---------------------------------------------------------------------

/// Packs a periodic-timer payload: node index in the low word, timer
/// epoch in the high word. Handler events carry this `u64` instead of a
/// boxed closure, so steady-state rounds schedule allocation-free.
fn timer_payload(i: usize, epoch: u64) -> u64 {
    debug_assert!(i < u32::MAX as usize && epoch < u32::MAX as u64);
    (i as u64) | (epoch << 32)
}

fn unpack_timer(payload: u64) -> (usize, u64) {
    ((payload & 0xffff_ffff) as usize, payload >> 32)
}

/// Tags the most recently scheduled event with `(kind, node)` when
/// schedule recording is on. Must be called immediately after the
/// `schedule_*` call it describes (it reads [`Ctx::last_seq`]).
#[inline]
fn tag_sched(st: &mut ClusterState, ctx: &Ctx<'_, ClusterState>, kind: u64, node: u32) {
    if let Some(tags) = st.sched_tags.as_mut() {
        tags.push(TagRec {
            seq: ctx.last_seq(),
            tag: tag::pack(kind, node),
        });
    }
}

/// Cancels a node's pending periodic timers (crash, OOM death,
/// decommission). The epoch guard in the handlers stays as a backstop,
/// but after this no stale event remains queued for the old epoch.
fn cancel_node_timers(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize) {
    if let Some(t) = st.nodes[i].gossip_timer.take() {
        ctx.cancel(t);
    }
    if let Some(t) = st.nodes[i].fd_timer.take() {
        ctx.cancel(t);
    }
}

fn activate(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize, info: RingInfo) {
    // Memory admission: runtime overhead plus the node's ring table.
    let machine = st.nodes[i].machine.0;
    let mem = &mut st.machine_mem[machine];
    let first_on_machine = mem.labelled("runtime") == 0;
    let overhead = if st.cfg.memory.single_process {
        if first_on_machine {
            st.cfg.memory.per_process_overhead
        } else {
            0
        }
    } else {
        st.cfg.memory.per_process_overhead
    };
    let ring_bytes =
        (st.cfg.total_nodes() * st.cfg.vnodes) as u64 * st.cfg.memory.bytes_per_ring_entry;
    if mem.alloc("runtime", overhead).is_err() || mem.alloc("ring", ring_bytes).is_err() {
        // The §8 symptom: "nodes receive out-of-memory exceptions and
        // crash".
        st.crashed += 1;
        st.nodes[i].departed = true;
        return;
    }

    st.nodes[i].active = true;
    st.nodes[i].announce(info);
    let interval = st.cfg.gossip_interval;
    let stagger = SimDuration::from_nanos(
        interval.as_nanos() * (i as u64 % st.cfg.total_nodes() as u64)
            / st.cfg.total_nodes().max(1) as u64,
    );
    let epoch = st.nodes[i].timer_epoch;
    let gh = st.gossip_handler.expect("handlers registered before run");
    let fh = st.fd_handler.expect("handlers registered before run");
    st.nodes[i].gossip_timer =
        Some(ctx.schedule_handler_after(stagger, gh, timer_payload(i, epoch)));
    tag_sched(st, ctx, tag::GOSSIP_TIMER, i as u32);
    let fd_interval = st.cfg.fd_interval;
    st.nodes[i].fd_timer =
        Some(ctx.schedule_handler_after(stagger + fd_interval, fh, timer_payload(i, epoch)));
    tag_sched(st, ctx, tag::FD_TIMER, i as u32);
}

fn gossip_round(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize, epoch: u64) {
    let node = &mut st.nodes[i];
    node.gossip_timer = None;
    if node.timer_epoch != epoch {
        st.stale_timer_fires += 1;
        return;
    }
    if !node.active || node.departed {
        return;
    }
    node.gossip_stage.push(ctx.now(), Task::SendRound);
    pump(st, ctx, i, StageKind::Gossip);
    let interval = st.cfg.gossip_interval;
    let gh = st.gossip_handler.expect("handlers registered before run");
    st.nodes[i].gossip_timer =
        Some(ctx.schedule_handler_after(interval, gh, timer_payload(i, epoch)));
    tag_sched(st, ctx, tag::GOSSIP_TIMER, i as u32);
}

fn fd_check(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize, epoch: u64) {
    let node = &mut st.nodes[i];
    node.fd_timer = None;
    if node.timer_epoch != epoch {
        st.stale_timer_fires += 1;
        return;
    }
    if !node.active || node.departed {
        return;
    }
    // Failure detection runs on the node's local clock, which may be
    // fault-skewed ahead of virtual time.
    let newly_dead = node.fd.interpret_all(ctx.now() + node.clock_skew);
    let observer = node.id;
    for peer in newly_dead {
        scalecheck_obs::instant(
            SpanName::FdConvicted,
            observer.0,
            TID_GOSSIP,
            ctx.now().as_nanos(),
            crate::ringinfo::node_of(peer).0 as u64,
        );
    }
    let interval = st.cfg.fd_interval;
    let fh = st.fd_handler.expect("handlers registered before run");
    st.nodes[i].fd_timer = Some(ctx.schedule_handler_after(interval, fh, timer_payload(i, epoch)));
    tag_sched(st, ctx, tag::FD_TIMER, i as u32);
}

// ---------------------------------------------------------------------
// Stage pump and task lifecycle.
// ---------------------------------------------------------------------

fn stage_of(node: &mut Node, stage: StageKind) -> &mut Stage<Task> {
    match stage {
        StageKind::Gossip => &mut node.gossip_stage,
        StageKind::Calc => &mut node.calc_stage,
    }
}

fn pump(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize, stage: StageKind) {
    let now = ctx.now();
    let node = &mut st.nodes[i];
    if !node.active || node.departed {
        return;
    }
    let Some(task) = stage_of(node, stage).try_begin(now) else {
        return;
    };
    start_task(st, ctx, i, stage, task);
}

/// Whether this task must hold the ring lock in the current mode.
fn needs_lock(cfg: &ScenarioConfig, stage: StageKind, task: &Task) -> bool {
    match cfg.locking {
        LockingMode::InlineOnGossipStage => false,
        LockingMode::CoarseLockThread | LockingMode::SnapshotThread => match task {
            Task::Receive(_) => stage == StageKind::Gossip,
            Task::Recalculate => stage == StageKind::Calc,
            Task::SendRound => false,
        },
    }
}

fn start_task(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
    task: Task,
) {
    if needs_lock(&st.cfg, stage, &task) {
        let token = ClusterState::lock_token(i, stage);
        match st.locks.acquire(st.ring_lock[i], token, ctx.now()) {
            Acquire::Granted => run_task(st, ctx, i, stage, task, true),
            Acquire::Queued => {
                let now = ctx.now();
                let node = &mut st.nodes[i];
                match stage {
                    StageKind::Gossip => {
                        node.parked_gossip = Some(task);
                        node.parked_gossip_at = Some(now);
                    }
                    StageKind::Calc => {
                        node.parked_calc = Some(task);
                        node.parked_calc_at = Some(now);
                    }
                }
            }
        }
    } else {
        run_task(st, ctx, i, stage, task, false);
    }
}

fn release_ring_lock(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
) {
    let token = ClusterState::lock_token(i, stage);
    if let Some(next) = st.locks.release(st.ring_lock[i], token, ctx.now()) {
        let next_stage = if next % 2 == 0 {
            StageKind::Gossip
        } else {
            StageKind::Calc
        };
        let j = (next / 2) as usize;
        ctx.schedule_after(SimDuration::ZERO, move |st, ctx| {
            lock_granted(st, ctx, j, next_stage)
        });
    }
}

fn lock_granted(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
) {
    let node = &mut st.nodes[i];
    let (parked, parked_at) = match stage {
        StageKind::Gossip => (node.parked_gossip.take(), node.parked_gossip_at.take()),
        StageKind::Calc => (node.parked_calc.take(), node.parked_calc_at.take()),
    };
    match parked {
        Some(task) => {
            if let Some(since) = parked_at {
                let tid = match stage {
                    StageKind::Gossip => TID_GOSSIP,
                    StageKind::Calc => TID_CALC,
                };
                let now = ctx.now();
                scalecheck_obs::span(
                    SpanName::LockWait,
                    i as u32,
                    tid,
                    since.as_nanos(),
                    now.since(since).as_nanos(),
                    0,
                );
            }
            run_task(st, ctx, i, stage, task, true)
        }
        None => {
            // The waiter vanished (node crashed/departed): release so the
            // lock does not leak.
            release_ring_lock(st, ctx, i, stage);
        }
    }
}

/// Submits compute of `demand` for node `i`, returning its completion
/// time. In PIL mode, PIL-replaced work (`pil_replaced = true`) sleeps
/// instead of occupying a core.
///
/// `work` is the *kind* of work, not the stage hosting it: C3831 runs
/// the recalculation inline on the gossip stage, and the utilization
/// timeline must still bill that demand to calc for the divergence
/// analyzer's wait attribution to point at the right culprit.
fn compute(
    st: &mut ClusterState,
    now: SimTime,
    i: usize,
    demand: SimDuration,
    work: StageKind,
    pil_replaced: bool,
) -> SimTime {
    let pil_mode = matches!(st.cfg.deployment, DeploymentMode::PilReplay { .. });
    if pil_mode && pil_replaced {
        now + demand
    } else {
        let slot = match work {
            StageKind::Gossip => 0,
            StageKind::Calc => 1,
        };
        st.work_busy[i][slot] += demand.as_nanos();
        let machine = st.nodes[i].machine;
        st.park.get_mut(machine).submit(now, demand).finish
    }
}

fn run_task(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
    task: Task,
    holds_lock: bool,
) {
    let now = ctx.now();
    match task {
        Task::SendRound => {
            let endpoints = st.nodes[i].gossiper.endpoints().len() as u64;
            let demand = st.cfg.msg_base_cost + st.cfg.per_endpoint_cost.saturating_mul(endpoints);
            let done_at = compute(st, now, i, demand, StageKind::Gossip, false);
            scalecheck_obs::span(
                SpanName::GossipSendRound,
                i as u32,
                TID_GOSSIP,
                now.as_nanos(),
                done_at.since(now).as_nanos(),
                endpoints,
            );
            ctx.schedule_at(done_at, move |st, ctx| {
                finish_send_round(st, ctx, i, stage);
            });
            tag_sched(st, ctx, tag::SEND_DONE, i as u32);
        }
        Task::Receive(env) => {
            let entries = env.msg.entries() as u64;
            let demand = st.cfg.msg_base_cost + st.cfg.per_endpoint_cost.saturating_mul(entries);
            let done_at = compute(st, now, i, demand, StageKind::Gossip, false);
            scalecheck_obs::span(
                SpanName::GossipReceive,
                i as u32,
                TID_GOSSIP,
                now.as_nanos(),
                done_at.since(now).as_nanos(),
                entries,
            );
            ctx.schedule_at(done_at, move |st, ctx| {
                finish_receive(st, ctx, i, stage, env, holds_lock);
            });
            tag_sched(st, ctx, tag::RECV_DONE, i as u32);
        }
        Task::Recalculate => match st.cfg.locking {
            LockingMode::SnapshotThread => {
                // Clone the ring under the lock (cheap), release early,
                // compute off-lock from the snapshot — the C5456 fix.
                let clone_cost =
                    SimDuration::from_nanos(100 * (st.cfg.total_nodes() * st.cfg.vnodes) as u64);
                let done_at = compute(st, now, i, clone_cost, StageKind::Calc, false);
                ctx.schedule_at(done_at, move |st, ctx| {
                    let snapshot = st.nodes[i].ring.clone();
                    if holds_lock {
                        release_ring_lock(st, ctx, i, StageKind::Calc);
                    }
                    begin_calc_compute(st, ctx, i, stage, snapshot, false);
                });
            }
            _ => {
                // Coarse mode: compute while holding the lock.
                let snapshot = st.nodes[i].ring.clone();
                begin_calc_compute(st, ctx, i, stage, snapshot, holds_lock);
            }
        },
    }
}

/// Starts the pending-range computation from `ring_view`; schedules its
/// application.
fn begin_calc_compute(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
    ring_view: RingTable,
    release_lock_after: bool,
) {
    let now = ctx.now();
    let changes = changes_of(&ring_view);
    let idx = st.nodes[i].calc_invocations;
    st.nodes[i].calc_invocations += 1;
    let (pending, duration, _source) =
        st.calc
            .calculate(st.nodes[i].id.0, idx, &ring_view, &changes);
    let done_at = compute(st, now, i, duration, StageKind::Calc, true);
    if scalecheck_obs::enabled() {
        let pil_mode = matches!(st.cfg.deployment, DeploymentMode::PilReplay { .. });
        let name = if pil_mode {
            SpanName::CalcPilSleep
        } else {
            SpanName::CalcRecalculate
        };
        let tid = match stage {
            StageKind::Gossip => TID_GOSSIP,
            StageKind::Calc => TID_CALC,
        };
        // `duration = ops * ns_per_op` by construction, so the op count
        // round-trips exactly through the span's integer argument.
        let ops = duration.as_nanos() / st.cfg.ns_per_op.max(1);
        scalecheck_obs::span(
            name,
            i as u32,
            tid,
            now.as_nanos(),
            done_at.since(now).as_nanos(),
            ops,
        );
        scalecheck_obs::metric(Metric::CalcDuration, done_at.since(now).as_nanos());
    }
    ctx.schedule_at(done_at, move |st, ctx| {
        finish_calc(st, ctx, i, stage, pending, release_lock_after);
    });
}

fn changes_of(ring: &RingTable) -> Vec<scalecheck_ring::TopologyChange> {
    let mut out = Vec::new();
    for (id, ns) in ring.iter() {
        match ns.status {
            NodeStatus::Joining => out.push(scalecheck_ring::TopologyChange::Join {
                node: id,
                tokens: ns.tokens.clone(),
            }),
            NodeStatus::Leaving => out.push(scalecheck_ring::TopologyChange::Leave { node: id }),
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// Task completions.
// ---------------------------------------------------------------------

fn finish_send_round(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
) {
    let node = &mut st.nodes[i];
    if node.active && !node.departed {
        node.gossiper.beat();
        // Count-then-index target selection: same candidate order and
        // the same single RNG draw as collecting the list, without the
        // per-round O(N) scratch Vec.
        let me = node.id;
        let n_cand = node.gossip_candidate_count();
        let target = if n_cand > 0 {
            let k = node.rng.gen_index(n_cand);
            node.nth_gossip_candidate(k)
        } else {
            let n_seeds = st.seeds.iter().filter(|&&s| s != me).count();
            if n_seeds > 0 {
                let k = node.rng.gen_index(n_seeds);
                st.seeds.iter().copied().filter(|&s| s != me).nth(k)
            } else {
                None
            }
        };
        if let Some(target) = target {
            let syn = node.gossiper.make_syn();
            send_msg(st, ctx, i, target, GossipMessage::Syn(syn));
        }
    }
    end_task(st, ctx, i, stage, false);
}

fn finish_receive(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
    env: Envelope,
    holds_lock: bool,
) {
    let now = ctx.now();
    // Order bookkeeping at processing time.
    if let Some(rec) = st.order_rec.as_mut() {
        rec.record(st.nodes[i].id.0, env.key);
    }
    if let Some(enf) = st.order_enf.as_mut() {
        if enf.expected(st.nodes[i].id.0) == Some(env.key) {
            enf.advance(st.nodes[i].id.0, env.key);
        }
    }

    let mut trigger = false;
    if st.nodes[i].active && !st.nodes[i].departed {
        let src = env.src;
        let outcome = match env.msg {
            GossipMessage::Syn(ref syn) => {
                let ack = st.nodes[i].gossiper.handle_syn(syn);
                send_msg(st, ctx, i, src, GossipMessage::Ack(ack));
                None
            }
            GossipMessage::Ack(ref ack) => {
                let (outcome, ack2) = st.nodes[i].gossiper.handle_ack(ack);
                if !ack2.deltas.is_empty() {
                    send_msg(st, ctx, i, src, GossipMessage::Ack2(ack2));
                }
                Some(outcome)
            }
            GossipMessage::Ack2(ref ack2) => Some(st.nodes[i].gossiper.handle_ack2(ack2)),
        };
        if let Some(outcome) = outcome {
            let node = &mut st.nodes[i];
            let local_now = now + node.clock_skew;
            let view = node.apply_outcome(&outcome, local_now);
            let window_open = node.pending_window_open();
            // Walk the outcome's peer lists directly (post-apply, as
            // before) instead of collecting them into a scratch Vec.
            let touched_pending = outcome
                .heartbeat_advanced
                .iter()
                .chain(outcome.app_advanced.iter())
                .any(|p| {
                    node.gossiper.endpoint(*p).is_some_and(|s| {
                        matches!(s.app.status, NodeStatus::Joining | NodeStatus::Leaving)
                    })
                });
            trigger = view.topology_changed || (window_open && touched_pending);
        }
    }

    if trigger {
        match st.cfg.locking {
            LockingMode::InlineOnGossipStage => {
                // Cassandra's architecture: the calculation runs
                // synchronously inside gossip application — the stage
                // stays busy for the whole compute.
                let snapshot = st.nodes[i].ring.clone();
                begin_calc_compute(st, ctx, i, stage, snapshot, holds_lock);
                release_held(st, ctx, i);
                return;
            }
            _ => {
                let node = &mut st.nodes[i];
                if node.calc_queued {
                    node.calc_dirty = true;
                } else {
                    node.calc_queued = true;
                    node.calc_stage.push(now, Task::Recalculate);
                    // Pump after finishing this task (below).
                }
            }
        }
    }
    if holds_lock {
        release_ring_lock(st, ctx, i, stage);
    }
    end_task(st, ctx, i, stage, false);
    release_held(st, ctx, i);
    pump(st, ctx, i, StageKind::Calc);
}

fn finish_calc(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
    pending: PendingRanges,
    release_lock_after: bool,
) {
    apply_pending(st, ctx, i, pending);
    if release_lock_after {
        release_ring_lock(st, ctx, i, StageKind::Calc);
    }
    // Thread modes: honour the dirty flag.
    if stage == StageKind::Calc {
        let now = ctx.now();
        let node = &mut st.nodes[i];
        if node.calc_dirty {
            node.calc_dirty = false;
            node.calc_stage.push(now, Task::Recalculate);
        } else {
            node.calc_queued = false;
        }
    }
    end_task(st, ctx, i, stage, true);
}

/// Applies a computed pending-range set: stores it and models the §6
/// rebalance allocation if configured.
fn apply_pending(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    pending: PendingRanges,
) {
    let now = ctx.now();
    let has_pending = !pending.is_empty();
    st.nodes[i].pending = pending;
    let Some(strategy) = st.cfg.memory.rebalance_alloc else {
        return;
    };
    let machine = st.nodes[i].machine.0;
    let per_service = (13 << 20) / 10; // 1.3 MB
    let n = st.cfg.total_nodes() as u64;
    let p = st.cfg.vnodes as u64;
    let want = if has_pending {
        match strategy {
            AllocStrategy::Naive => (n - 1) * p * per_service,
            AllocStrategy::Frugal => p * per_service,
        }
    } else {
        0
    };
    let have = st.nodes[i].rebalance_bytes;
    if want > have {
        if st.machine_mem[machine]
            .alloc("rebalance", want - have)
            .is_err()
        {
            // OOM: the node crashes (§8).
            st.machine_mem[machine].free("rebalance", have);
            st.nodes[i].rebalance_bytes = 0;
            st.nodes[i].active = false;
            st.nodes[i].departed = true;
            cancel_node_timers(st, ctx, i);
            st.crashed += 1;
            scalecheck_obs::instant(
                SpanName::NodeCrashed,
                st.nodes[i].id.0,
                TID_GOSSIP,
                now.as_nanos(),
                0,
            );
            return;
        }
        st.nodes[i].rebalance_bytes = want;
    } else if want < have {
        st.machine_mem[machine].free("rebalance", have - want);
        st.nodes[i].rebalance_bytes = want;
    }
}

/// Finishes the current stage task and pulls the next one.
fn end_task(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    stage: StageKind,
    _was_calc: bool,
) {
    stage_of(&mut st.nodes[i], stage).finish_at(ctx.now());
    pump(st, ctx, i, stage);
}

// ---------------------------------------------------------------------
// Messaging.
// ---------------------------------------------------------------------

fn send_msg(
    st: &mut ClusterState,
    ctx: &mut Ctx<'_, ClusterState>,
    i: usize,
    dst: NodeId,
    msg: GossipMessage,
) {
    let kind = msg.kind();
    let key = st.nodes[i].next_key(dst, kind);
    let src = st.nodes[i].id;
    let now = ctx.now();
    if let Ok(d) = st.net.offer(now, ctx.rng(), addr_of(src), addr_of(dst)) {
        scalecheck_obs::metric(Metric::NetDelay, d.deliver_at.since(now).as_nanos());
        st.inflight += 1;
        let env = Envelope { src, dst, key, msg };
        if let Some(dup_at) = d.duplicate_at {
            // A duplication window fired: the same envelope arrives
            // twice (gossip application is idempotent on stale state).
            st.inflight += 1;
            let dup = env.clone();
            ctx.schedule_at(dup_at, move |st, ctx| deliver(st, ctx, dup));
            tag_sched(st, ctx, tag::DELIVER, dst.0);
        }
        ctx.schedule_at(d.deliver_at, move |st, ctx| deliver(st, ctx, env));
        tag_sched(st, ctx, tag::DELIVER, dst.0);
    }
}

fn deliver(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, env: Envelope) {
    st.inflight -= 1;
    let i = env.dst.0 as usize;
    if i >= st.nodes.len() || !st.nodes[i].active || st.nodes[i].departed {
        return;
    }
    st.deliveries += 1;
    let now = ctx.now();
    if let Some(enf) = st.order_enf.as_mut() {
        match enf.classify(env.dst.0, env.key) {
            OrderDecision::ProcessNow | OrderDecision::NotInLog => {
                st.nodes[i].gossip_stage.push(now, Task::Receive(env));
            }
            OrderDecision::HoldForLater => {
                let deadline = now + st.cfg.order_hold_timeout;
                st.nodes[i].held.push((deadline, env));
                ctx.schedule_at(deadline, move |st, ctx| flush_expired_held(st, ctx, i));
                return;
            }
        }
    } else {
        st.nodes[i].gossip_stage.push(now, Task::Receive(env));
    }
    pump(st, ctx, i, StageKind::Gossip);
}

/// Moves the next expected held message (if any) onto the stage.
fn release_held(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize) {
    let Some(enf) = st.order_enf.as_ref() else {
        return;
    };
    let node_id = st.nodes[i].id.0;
    let Some(expected) = enf.expected(node_id) else {
        // Log exhausted: flush everything held.
        let now = ctx.now();
        let held = std::mem::take(&mut st.nodes[i].held);
        for (_, env) in held {
            st.nodes[i].gossip_stage.push(now, Task::Receive(env));
        }
        pump(st, ctx, i, StageKind::Gossip);
        return;
    };
    if let Some(pos) = st.nodes[i].held.iter().position(|(_, e)| e.key == expected) {
        let (_, env) = st.nodes[i].held.remove(pos);
        let now = ctx.now();
        st.nodes[i].gossip_stage.push(now, Task::Receive(env));
        pump(st, ctx, i, StageKind::Gossip);
    }
}

/// Releases held messages whose hold deadline has passed: replay
/// divergence must delay, not deadlock. Forced releases are counted.
fn flush_expired_held(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize) {
    let now = ctx.now();
    let mut released = false;
    let mut held = std::mem::take(&mut st.nodes[i].held);
    held.retain(|(deadline, env)| {
        if *deadline <= now {
            st.forced_releases += 1;
            st.nodes[i]
                .gossip_stage
                .push(now, Task::Receive(env.clone()));
            released = true;
            false
        } else {
            true
        }
    });
    st.nodes[i].held = held;
    if released {
        pump(st, ctx, i, StageKind::Gossip);
    }
}

// ---------------------------------------------------------------------
// Client traffic (the user-visible datapath).
// ---------------------------------------------------------------------

/// The coordinator's-eye fabric the traffic engine runs against each
/// tick. Requests resolve replicas against each coordinator's *own*
/// ring view and its failure detector's verdicts — the paper's
/// mechanism for turning flap storms into "data not reachable by the
/// users" — while coupled request service bills the shared machine
/// park and replica round trips ride the real network (per-link FIFO
/// clocks, partitions, fault windows).
struct LiveFabric<'a> {
    nodes: &'a [Node],
    net: &'a mut Network,
    park: &'a mut MachinePark,
    work_busy: &'a mut [[u64; 3]],
    /// PIL mode: `park` is the emulated real-scale request park (one
    /// machine per node) rather than the colocated one, and machine
    /// lookup is by node index instead of the node's (shared) machine
    /// id. The processing illusion promises real-scale timing on
    /// colocated hardware — including real-scale per-node service
    /// queueing — without charging the emulated cluster's load to
    /// cores it is pretending to have more of.
    pil: bool,
    scratch: Vec<NodeId>,
}

impl scalecheck_traffic::ClusterFabric for LiveFabric<'_> {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn is_live_coordinator(&self, i: usize) -> bool {
        self.nodes[i].active && !self.nodes[i].departed
    }

    fn rf(&self) -> usize {
        self.nodes.first().map_or(0, |n| n.ring.rf())
    }

    fn replicas_of(&mut self, coordinator: usize, key: u64, out: &mut Vec<u32>) {
        self.nodes[coordinator]
            .ring
            .replicas_of(Token(key), &mut self.scratch);
        out.extend(self.scratch.iter().map(|n| n.0));
    }

    fn replica_alive(&self, coordinator: usize, replica: u32) -> bool {
        let coord = &self.nodes[coordinator];
        if NodeId(replica) == coord.id {
            return true;
        }
        // Unknown peers count as alive (no conviction yet).
        coord.fd.liveness(peer_of(NodeId(replica))) != Some(Liveness::Dead)
    }

    fn bill_service(&mut self, node: u32, at: SimTime, demand: SimDuration) -> SimTime {
        // Request service is real work in every deployment mode; under
        // PIL it bills the emulated real-scale park (`self.park` is
        // already swapped, machines indexed by node). The machine's
        // core allocator is monotone in submission order, so billing at
        // a future `at` (mid-request-lifecycle) is well-defined.
        let i = node as usize;
        self.work_busy[i][2] += demand.as_nanos();
        let machine = if self.pil {
            scalecheck_sim::cpu::MachineId(i)
        } else {
            self.nodes[i].machine
        };
        self.park.get_mut(machine).submit(at, demand).finish
    }

    fn send_data(
        &mut self,
        at: SimTime,
        src: u32,
        dst: u32,
        rng: &mut scalecheck_sim::DetRng,
    ) -> Option<SimTime> {
        self.net
            .offer_data(at, rng, addr_of(NodeId(src)), addr_of(NodeId(dst)))
    }
}

/// One traffic tick: classify the phase, lend the traffic engine the
/// live fabric, and rearm the timer. Exactly one engine schedule per
/// tick on the same cadence the legacy client probe used (first fire at
/// 700 ms, then every arrival tick), so committed schedule witnesses
/// keep their sequence numbering.
fn traffic_tick(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>) {
    let now = ctx.now();
    let (start, end) = st.cfg.rescale_phase_span();
    let phase = if now < SimTime::ZERO + start {
        scalecheck_traffic::Phase::Pre
    } else if now <= SimTime::ZERO + end {
        scalecheck_traffic::Phase::Rescale
    } else {
        scalecheck_traffic::Phase::Post
    };
    {
        let ClusterState {
            cfg,
            nodes,
            net,
            park,
            pil_request_park,
            work_busy,
            traffic,
            ..
        } = st;
        let pil = matches!(cfg.deployment, DeploymentMode::PilReplay { .. });
        let mut fabric = LiveFabric {
            nodes,
            net,
            park: if pil { pil_request_park } else { park },
            work_busy,
            pil,
            scratch: Vec::new(),
        };
        traffic.tick(now, phase, &mut fabric);
    }
    let h = st.traffic_handler.expect("traffic handler registered");
    ctx.schedule_handler_after(st.traffic.config().arrival.tick, h, 0);
}

// ---------------------------------------------------------------------
// Workload scheduling.
// ---------------------------------------------------------------------

fn schedule_workload(engine: &mut Engine<ClusterState>, cfg: &ScenarioConfig) {
    match cfg.workload {
        Workload::Decommission { count, gap } => {
            let first = SimTime::from_secs(40);
            let window = cfg.rescale_window;
            for k in 0..count.min(cfg.n_nodes.saturating_sub(1)) {
                let i = cfg.n_nodes - 1 - k;
                let t = first + gap.saturating_mul(k as u64);
                engine.schedule_at(t, move |st: &mut ClusterState, ctx| {
                    let tokens = st.nodes[i]
                        .ring
                        .node(NodeId(i as u32))
                        .map(|s| s.tokens.clone())
                        .unwrap_or_default();
                    st.nodes[i].announce(RingInfo {
                        status: NodeStatus::Leaving,
                        tokens,
                    });
                    let _ = ctx;
                });
                engine.schedule_at(t + window, move |st, _ctx| {
                    st.nodes[i].announce(RingInfo {
                        status: NodeStatus::Left,
                        tokens: vec![],
                    });
                });
                engine.schedule_at(t + window + SimDuration::from_secs(10), move |st, ctx| {
                    st.nodes[i].departed = true;
                    st.nodes[i].gossip_stage.clear();
                    st.nodes[i].calc_stage.clear();
                    cancel_node_timers(st, ctx, i);
                });
            }
        }
        Workload::ScaleOut { count, gap } => {
            let first = SimTime::from_secs(40);
            let window = cfg.rescale_window;
            for k in 0..count {
                let i = cfg.n_nodes + k;
                let t = first + gap.saturating_mul(k as u64);
                let vnodes = cfg.vnodes;
                engine.schedule_at(t, move |st: &mut ClusterState, ctx| {
                    let tokens = spread_tokens(NodeId(i as u32), vnodes);
                    activate(st, ctx, i, RingInfo::joining(tokens));
                });
                engine.schedule_at(t + window, move |st, _ctx| {
                    if st.nodes[i].active {
                        let tokens = spread_tokens(NodeId(i as u32), vnodes);
                        st.nodes[i].announce(RingInfo::normal(tokens));
                    }
                });
            }
        }
        Workload::BootstrapFromScratch => {
            // Activation is handled in run(); the Normal flip happens
            // per-node 45 s after its activation.
        }
    }
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Schedules every event of the scenario's fault plan on the engine's
/// virtual clock. Same-time events fire in plan order (the engine
/// breaks time ties by schedule sequence), so the fired-fault log is
/// deterministic.
fn schedule_faults(engine: &mut Engine<ClusterState>, cfg: &ScenarioConfig) {
    for (idx, ev) in cfg.faults.events.clone().into_iter().enumerate() {
        engine.schedule_at(ev.at(), move |st: &mut ClusterState, ctx| {
            fire_fault(st, ctx, &ev, idx)
        });
    }
}

fn fire_fault(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, ev: &FaultEvent, idx: usize) {
    let now = ctx.now();
    let label = ev.label();
    // The instant's argument is the fault's plan index; the label is
    // re-derived from the config when the legacy event log is rebuilt.
    scalecheck_obs::instant(
        SpanName::FaultInjected,
        ENGINE_PID,
        0,
        now.as_nanos(),
        idx as u64,
    );
    st.fault_fired.push(FiredFault { at: now, label });
    match ev {
        FaultEvent::Partition { a, b, .. } => set_partition(st, a, b, true),
        FaultEvent::Heal { a, b, .. } => set_partition(st, a, b, false),
        FaultEvent::Crash { node, .. } => crash_node(st, ctx, *node as usize),
        FaultEvent::Restart { node, .. } => restart_node(st, ctx, *node as usize),
        FaultEvent::ClockSkew { node, skew, .. } => {
            let i = *node as usize;
            if i < st.nodes.len() && st.nodes[i].active && !st.nodes[i].departed {
                st.nodes[i].clock_skew = *skew;
                // Every conviction the skewed node issues from here on
                // is the fault's doing.
                st.nodes[i].fd.mark_all_fault_suspects();
            }
        }
        // Drop/delay/duplicate windows were installed into the network
        // at build time; firing them only logs the window opening.
        FaultEvent::DropWindow { .. }
        | FaultEvent::DelayWindow { .. }
        | FaultEvent::DuplicateWindow { .. } => {}
    }
}

/// Installs or removes a partition between node sets `a` and `b`, and
/// marks (or clears) cross-cut flap attribution on both sides.
fn set_partition(st: &mut ClusterState, a: &[u32], b: &[u32], up: bool) {
    for &x in a {
        for &y in b {
            if up {
                st.net.partition(Addr(x), Addr(y));
            } else {
                st.net.heal(Addr(x), Addr(y));
            }
            let (xi, yi) = (x as usize, y as usize);
            if xi < st.nodes.len() && yi < st.nodes.len() {
                st.nodes[xi].fd.set_fault_suspect(peer_of(NodeId(y)), up);
                st.nodes[yi].fd.set_fault_suspect(peer_of(NodeId(x)), up);
            }
        }
    }
}

/// Kills node `i`'s process: it stops processing, sending, and timing,
/// but keeps its gossip identity for a later restart. Distinct from
/// decommission (the node does not leave the ring) and from OOM death
/// (which is permanent).
fn crash_node(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize) {
    if i >= st.nodes.len() || !st.nodes[i].active || st.nodes[i].departed {
        return;
    }
    let now = ctx.now();
    // Cancel the periodic timer chains outright — the bumped epoch
    // below is only a backstop; in-flight stage completions still drain
    // through the idle `active` checks.
    cancel_node_timers(st, ctx, i);
    let node = &mut st.nodes[i];
    node.active = false;
    node.timer_epoch += 1;
    node.gossip_stage.clear();
    node.calc_stage.clear();
    node.parked_gossip = None;
    node.parked_gossip_at = None;
    node.parked_calc = None;
    node.parked_calc_at = None;
    node.held.clear();
    node.calc_dirty = false;
    node.calc_queued = false;
    let peer = peer_of(node.id);
    let id = node.id;
    st.fault_crash_at.insert(i as u32, now);
    st.fault_crashes += 1;
    for k in 0..st.nodes.len() {
        if k != i {
            st.nodes[k].fd.set_fault_suspect(peer, true);
        }
    }
    scalecheck_obs::instant(SpanName::NodeCrashed, id.0, TID_GOSSIP, now.as_nanos(), 0);
}

/// Brings a fault-crashed node back: fresh gossip generation, empty
/// failure-detection history, restarted timers. No-op unless the node
/// is currently down from a [`FaultEvent::Crash`].
fn restart_node(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>, i: usize) {
    if i >= st.nodes.len() || st.nodes[i].active || st.nodes[i].departed {
        return;
    }
    let Some(down_at) = st.fault_crash_at.remove(&(i as u32)) else {
        return;
    };
    let now = ctx.now();
    *st.fault_downtime
        .entry(i as u32)
        .or_insert(SimDuration::ZERO) += now.since(down_at);
    st.fault_restarts += 1;

    let vnodes = st.cfg.vnodes;
    let node = &mut st.nodes[i];
    node.timer_epoch += 1;
    node.active = true;
    node.clock_skew = SimDuration::ZERO;
    node.gossiper.restart();
    node.fd.reset_monitoring();
    // Re-announce with the status the node's own ring view still holds;
    // the bumped generation makes peers take the fresh state.
    let status = node
        .ring
        .node(node.id)
        .map(|s| s.status)
        .unwrap_or(NodeStatus::Normal);
    let tokens = spread_tokens(node.id, vnodes);
    node.announce(RingInfo { status, tokens });
    let peer = peer_of(node.id);
    let epoch = node.timer_epoch;
    for k in 0..st.nodes.len() {
        if k != i {
            st.nodes[k].fd.set_fault_suspect(peer, false);
        }
    }
    let gh = st.gossip_handler.expect("handlers registered before run");
    let fh = st.fd_handler.expect("handlers registered before run");
    st.nodes[i].gossip_timer =
        Some(ctx.schedule_handler_after(SimDuration::ZERO, gh, timer_payload(i, epoch)));
    tag_sched(st, ctx, tag::GOSSIP_TIMER, i as u32);
    let fd_interval = st.cfg.fd_interval;
    st.nodes[i].fd_timer =
        Some(ctx.schedule_handler_after(fd_interval, fh, timer_payload(i, epoch)));
    tag_sched(st, ctx, tag::FD_TIMER, i as u32);
}

// ---------------------------------------------------------------------
// The run loop.
// ---------------------------------------------------------------------

/// Runs a scenario to quiescence (or the hard cap) and reports.
///
/// `db` carries a memo database into a replay run; the database the run
/// ends with (populated by a recording run) is returned alongside the
/// report.
pub fn run_scenario_with_db(
    cfg: &ScenarioConfig,
    db: Option<scalecheck_memo::MemoDb<PendingWire>>,
    order_log: Option<OrderRecorder>,
) -> (
    RunReport,
    scalecheck_memo::MemoDb<PendingWire>,
    Option<OrderRecorder>,
) {
    if let Err(msg) = cfg.validate() {
        panic!("invalid ScenarioConfig: {msg}");
    }
    let calc = match db {
        Some(db) => CalcEngine::with_db(cfg.calculator, cfg.ns_per_op, cfg.calc_io, db),
        None => CalcEngine::new(cfg.calculator, cfg.ns_per_op, cfg.calc_io),
    };
    let mut state = build(cfg, calc);
    if cfg.calc_io == CalcIo::Record {
        state.order_rec = Some(OrderRecorder::new());
    }
    if cfg.calc_io == CalcIo::Replay && cfg.order_enforcement {
        if let Some(log) = order_log {
            state.order_enf = Some(log.into_enforcer());
        }
    }

    let mut engine: Engine<ClusterState> =
        Engine::with_tie_order(cfg.seed, SchedulerKind::Wheel, &cfg.tie_order);
    if cfg.record_schedule {
        engine.record_fires(true);
    }

    // Periodic per-node timers run as handler events: the payload packs
    // (node, epoch), so steady-state rounds recur without boxing a new
    // closure per fire.
    state.gossip_handler = Some(
        engine.register_handler(|st: &mut ClusterState, ctx, payload| {
            let (i, epoch) = unpack_timer(payload);
            gossip_round(st, ctx, i, epoch);
        }),
    );
    state.fd_handler = Some(
        engine.register_handler(|st: &mut ClusterState, ctx, payload| {
            let (i, epoch) = unpack_timer(payload);
            fd_check(st, ctx, i, epoch);
        }),
    );
    state.traffic_handler = Some(engine.register_handler(
        |st: &mut ClusterState, ctx, _payload| {
            traffic_tick(st, ctx);
        },
    ));

    // Activate the initial population.
    let bootstrap = matches!(cfg.workload, Workload::BootstrapFromScratch);
    for i in 0..cfg.n_nodes {
        let vnodes = cfg.vnodes;
        let stagger = if bootstrap {
            SimDuration::from_millis((i as u64 * 5000) / cfg.n_nodes.max(1) as u64)
        } else {
            SimDuration::ZERO
        };
        engine.schedule_at(
            SimTime::ZERO + stagger,
            move |st: &mut ClusterState, ctx| {
                let id = NodeId(i as u32);
                let tokens = spread_tokens(id, vnodes);
                let info = if matches!(st.cfg.workload, Workload::BootstrapFromScratch) {
                    RingInfo::joining(tokens)
                } else {
                    RingInfo::normal(tokens)
                };
                activate(st, ctx, i, info);
                if matches!(st.cfg.workload, Workload::BootstrapFromScratch) {
                    let window = st.cfg.rescale_window;
                    ctx.schedule_after(window, move |st: &mut ClusterState, _| {
                        if st.nodes[i].active && !st.nodes[i].departed {
                            let tokens = spread_tokens(NodeId(i as u32), st.cfg.vnodes);
                            st.nodes[i].announce(RingInfo::normal(tokens));
                        }
                    });
                }
            },
        );
    }
    schedule_workload(&mut engine, cfg);
    schedule_faults(&mut engine, cfg);

    // Flap-series sampling.
    fn sample_flaps(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>) {
        let flaps = st.total_flaps();
        st.flap_series.push(ctx.now(), flaps as f64);
        ctx.schedule_after(SimDuration::from_secs(5), sample_flaps);
    }
    engine.schedule_at(SimTime::ZERO, sample_flaps);

    // Per-node per-work-kind utilization timelines (virtual-time
    // sampled): each tick differences the cumulative CPU demand billed
    // by `compute` and emits permille-of-interval counters. Demand is
    // credited at submission, so a window in which a long recalculation
    // starts can read above 1000‰. Pure observation — no RNG draws, no
    // state the simulation reads — so enabling it cannot perturb a run.
    fn sample_utilization(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>) {
        let now = ctx.now();
        let interval = st.cfg.trace.sample_every_ns.max(1);
        for i in 0..st.nodes.len() {
            let [gossip, calc, request] = st.work_busy[i];
            let [prev_g, prev_c, prev_r] = st.busy_sampled[i];
            st.busy_sampled[i] = [gossip, calc, request];
            let ts = now.as_nanos();
            scalecheck_obs::counter(
                SpanName::StageUtilization,
                i as u32,
                TID_GOSSIP,
                ts,
                gossip.saturating_sub(prev_g) * 1000 / interval,
            );
            scalecheck_obs::counter(
                SpanName::StageUtilization,
                i as u32,
                TID_CALC,
                ts,
                calc.saturating_sub(prev_c) * 1000 / interval,
            );
            scalecheck_obs::counter(
                SpanName::StageUtilization,
                i as u32,
                TID_REQUEST,
                ts,
                request.saturating_sub(prev_r) * 1000 / interval,
            );
        }
        ctx.schedule_after(SimDuration::from_nanos(interval), sample_utilization);
    }
    if cfg.trace.enabled {
        engine.schedule_at(
            SimTime::ZERO + SimDuration::from_nanos(cfg.trace.sample_every_ns.max(1)),
            sample_utilization,
        );
    }

    // Client traffic (the user-visible impact of flapping): a handler
    // timer so steady-state ticks recur without boxing a closure.
    if state.traffic.config().enabled() {
        let h = state.traffic_handler.expect("registered above");
        engine.schedule_handler_at(SimTime::from_millis(700), h, 0);
    }

    // Quiescence detection after the workload completes.
    fn quiesce_check(st: &mut ClusterState, ctx: &mut Ctx<'_, ClusterState>) {
        if ctx.now() >= st.workload_end_at && st.is_quiescent() {
            st.stopped_quiescent = true;
            ctx.stop();
        } else {
            ctx.schedule_after(SimDuration::from_millis(2300), quiesce_check);
        }
    }
    engine.schedule_at(SimTime::from_millis(300), quiesce_check);

    // The thread-local tracer collects spans for this run only; per-thread
    // isolation keeps traces byte-identical at any sweep parallelism.
    if state.trace_enabled {
        scalecheck_obs::install(scalecheck_obs::Tracer::new());
    } else {
        scalecheck_obs::clear();
    }

    let deadline = SimTime::ZERO + cfg.max_duration;
    engine.run_until(&mut state, deadline);
    let ended = engine.now();

    let tracer = scalecheck_obs::take();
    let probe = if cfg.record_schedule {
        Some(ScheduleProbe {
            fires: engine.take_fire_log(),
            tags: state.sched_tags.take().unwrap_or_default(),
        })
    } else {
        None
    };
    let mut report = assemble_report(&state, ended, engine.counters(), tracer);
    report.schedule_probe = probe;
    let order_out = state.order_rec.take();
    let calc = state.calc;
    (report, calc.into_db(), order_out)
}

/// Runs a scenario with no memo database interaction carried across
/// runs.
pub fn run_scenario(cfg: &ScenarioConfig) -> RunReport {
    run_scenario_with_db(cfg, None, None).0
}

/// Rebuilds the legacy replay-debugging event log from the obs trace so
/// the repo keeps a single trace format: convictions, crashes, and fault
/// injections come from instants; calculation completions come from the
/// calc spans (their op-count argument round-trips the compute duration
/// exactly, because durations are op-count multiples of `ns_per_op`).
fn rebuild_tracelog(trace: &scalecheck_obs::Trace, cfg: &ScenarioConfig) -> crate::trace::TraceLog {
    use crate::trace::TraceEvent;
    let mut events: Vec<TraceEvent> = Vec::new();
    for inst in &trace.instants {
        let at = SimTime::ZERO + SimDuration::from_nanos(inst.ts);
        match SpanName::from_u16(inst.name) {
            Some(SpanName::FdConvicted) => events.push(TraceEvent::Convicted {
                at,
                observer: NodeId(inst.pid),
                peer: NodeId(inst.arg as u32),
            }),
            Some(SpanName::NodeCrashed) => events.push(TraceEvent::NodeCrashed {
                at,
                node: NodeId(inst.pid),
            }),
            Some(SpanName::FaultInjected) => events.push(TraceEvent::FaultInjected {
                at,
                label: cfg
                    .faults
                    .events
                    .get(inst.arg as usize)
                    .map(|ev| ev.label())
                    .unwrap_or_default(),
            }),
            _ => {}
        }
    }
    for span in &trace.spans {
        if matches!(
            SpanName::from_u16(span.name),
            Some(SpanName::CalcRecalculate | SpanName::CalcPilSleep)
        ) {
            events.push(TraceEvent::CalcFinished {
                at: SimTime::ZERO + SimDuration::from_nanos(span.ts + span.dur),
                node: NodeId(span.pid),
                duration: SimDuration::from_nanos(span.arg * cfg.ns_per_op.max(1)),
            });
        }
    }
    // Emission order within each source list is deterministic, so a
    // stable sort by timestamp yields the same log on every replay.
    events.sort_by_key(|e| e.at());
    let mut log = crate::trace::TraceLog::new(true);
    for ev in events {
        log.push(ev);
    }
    log
}

fn assemble_report(
    st: &ClusterState,
    ended: SimTime,
    engine: EngineCounters,
    tracer: Option<scalecheck_obs::Tracer>,
) -> RunReport {
    let mut lateness = scalecheck_sim::Histogram::new();
    for n in &st.nodes {
        lateness.merge(n.gossip_stage.lateness());
        lateness.merge(n.calc_stage.lateness());
    }
    let cpu_utilization = st
        .park
        .iter()
        .map(|(_, m)| m.utilization(ended))
        .fold(0.0f64, f64::max);
    let peak_runnable = st
        .park
        .iter()
        .map(|(_, m)| m.peak_runnable())
        .max()
        .unwrap_or(0);
    let mem_peak_bytes = st.machine_mem.iter().map(|m| m.peak()).max().unwrap_or(0);
    let oom_events = st.machine_mem.iter().map(|m| m.oom_events()).sum();

    let mut obs = tracer.map(|t| t.finish()).unwrap_or_default();
    obs.meta = scalecheck_obs::TraceMeta {
        label: format!("n{}_seed{}", st.cfg.total_nodes(), st.cfg.seed),
        seed: st.cfg.seed,
        n_nodes: st.cfg.total_nodes() as u32,
        end_ns: ended.as_nanos(),
        engine_scheduled: engine.scheduled,
        engine_fired: engine.fired,
        engine_cancelled: engine.cancelled,
        engine_pool_hits: engine.pool_hits,
        engine_pool_misses: engine.pool_misses,
    };
    let trace = if st.cfg.trace_events {
        rebuild_tracelog(&obs, &st.cfg)
    } else {
        crate::trace::TraceLog::new(false)
    };
    // The legacy log is the only consumer of the obs buffers when full
    // tracing is off: don't ship span soup nobody asked for.
    if !st.cfg.trace.enabled {
        obs.spans = Vec::new();
        obs.instants = Vec::new();
        obs.counters = Vec::new();
        obs.metrics = vec![scalecheck_obs::LogHistogram::default(); scalecheck_obs::METRIC_COUNT];
    }

    RunReport {
        total_flaps: st.total_flaps(),
        per_node_flaps: st.nodes.iter().map(|n| n.fd.flaps()).collect(),
        recoveries: st.nodes.iter().map(|n| n.fd.recoveries()).sum(),
        flap_series: st.flap_series.clone(),
        duration: ended.since(SimTime::ZERO),
        quiesced: st.stopped_quiescent,
        calc: st.calc.stats(),
        memo: st.calc.db().stats(),
        messages_sent: st.net.sent(),
        messages_dropped: st.net.dropped(),
        messages_delivered: st.deliveries,
        max_stage_lateness: lateness.max(),
        p99_stage_lateness: lateness.quantile(0.99),
        cpu_utilization,
        peak_runnable,
        mem_peak_bytes,
        oom_events,
        crashed_nodes: st.crashed,
        order_out_of_log: st.order_enf.as_ref().map_or(0, |e| e.out_of_log()),
        order_forced_releases: st.forced_releases,
        client_ops_attempted: st.traffic.attempted(),
        client_ops_failed: st.traffic.failed(),
        traffic: st.traffic.report(),
        engine,
        stale_timer_fires: st.stale_timer_fires,
        faults: assemble_fault_report(st, ended),
        trace,
        obs,
        schedule_probe: None,
    }
}

fn assemble_fault_report(st: &ClusterState, ended: SimTime) -> FaultReport {
    // Nodes still down at run end accrue downtime through `ended`.
    let mut downtime = st.fault_downtime.clone();
    for (&node, &down_at) in &st.fault_crash_at {
        *downtime.entry(node).or_insert(SimDuration::ZERO) += ended.since(down_at);
    }
    FaultReport {
        fired: st.fault_fired.clone(),
        crashes: st.fault_crashes,
        restarts: st.fault_restarts,
        fault_dropped: st.net.dropped_by_fault() + st.net.dropped_by_partition(),
        fault_delayed: st.net.fault_delayed(),
        fault_duplicated: st.net.fault_duplicated(),
        downtime,
        attributed_flaps: st.nodes.iter().map(|n| n.fd.fault_attributed_flaps()).sum(),
    }
}

/// How many peers each node currently considers dead (diagnostic).
pub fn dead_view(st: &ClusterState) -> Vec<usize> {
    st.nodes
        .iter()
        .map(|n| {
            n.fd.dead_peers()
                .iter()
                .filter(|&&p| n.fd.liveness(p) == Some(Liveness::Dead))
                .count()
        })
        .collect()
}
