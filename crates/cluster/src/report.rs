//! Aggregated results of one cluster run.

use scalecheck_memo::MemoStats;
use scalecheck_sim::{EngineCounters, FaultReport, ScheduleProbe, SimDuration, TimeSeries};
use serde::{Deserialize, Serialize};

use crate::calc::CalcStats;
use crate::trace::TraceLog;

/// Everything an experiment needs to know about a finished run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Total flaps: alive→dead convictions summed over all observers
    /// (the y-axis of the paper's Figure 3).
    pub total_flaps: u64,
    /// Flaps per observer node.
    pub per_node_flaps: Vec<u64>,
    /// Dead→alive recoveries (flapping implies these roughly track
    /// flaps).
    pub recoveries: u64,
    /// Cumulative flap count sampled over time.
    pub flap_series: TimeSeries,
    /// Virtual duration of the run (memoization runs stretch, PIL
    /// replays do not — the §8 comparison).
    pub duration: SimDuration,
    /// Whether the run reached quiescence before the hard cap.
    pub quiesced: bool,
    /// Calculation statistics (including memo sources during replay).
    pub calc: CalcStats,
    /// Memo database statistics.
    pub memo: MemoStats,
    /// Messages offered to the network.
    pub messages_sent: u64,
    /// Messages dropped (loss/partition).
    pub messages_dropped: u64,
    /// Messages delivered to a live node.
    pub messages_delivered: u64,
    /// Worst gossip-stage queueing delay observed anywhere (event
    /// lateness, §8).
    pub max_stage_lateness: SimDuration,
    /// 99th-percentile gossip-stage queueing delay (approximate).
    pub p99_stage_lateness: SimDuration,
    /// Highest machine CPU utilization at run end.
    pub cpu_utilization: f64,
    /// Highest multiprogramming level observed on any machine.
    pub peak_runnable: usize,
    /// Peak memory on the most loaded machine.
    pub mem_peak_bytes: u64,
    /// Allocation failures (OOM events, §8).
    pub oom_events: u64,
    /// Nodes that crashed (e.g. OOM).
    pub crashed_nodes: u64,
    /// Replay arrivals the order log never saw (divergence indicator).
    pub order_out_of_log: u64,
    /// Held messages force-released after the hold timeout.
    pub order_forced_releases: u64,
    /// Client quorum operations attempted by the availability probe.
    /// Weighted totals from the traffic datapath (kept for Figure 3
    /// compatibility; `traffic` carries the full picture).
    pub client_ops_attempted: u64,
    /// Client quorum operations that failed (no quorum of live
    /// replicas — the paper's "data not reachable by the users").
    pub client_ops_failed: u64,
    /// The client-request datapath's full outcome: per-phase latency
    /// histograms, error-budget accounting, and the byte-deterministic
    /// request-log digest ([`scalecheck_traffic`]).
    pub traffic: scalecheck_traffic::TrafficReport,
    /// Event-engine counters: schedules, fires, cancellations, and slab
    /// pool hit/miss totals for the run.
    pub engine: EngineCounters,
    /// Periodic timers that fired after their node's epoch moved on.
    /// Crash/restart cancels timers eagerly, so this should be zero.
    pub stale_timer_fires: u64,
    /// What the run's fault plan did (all zeros/empty under the default
    /// empty plan).
    pub faults: FaultReport,
    /// Deterministic event trace (empty unless `trace_events` was set).
    pub trace: TraceLog,
    /// Full observability trace: spans, instants, utilization counters,
    /// and metric histograms on virtual time (buffers empty unless
    /// `trace.enabled` was set; the metadata header is always stamped).
    pub obs: scalecheck_obs::Trace,
    /// The engine fire log joined with the runner's event tags (present
    /// only when `record_schedule` was set) — the schedule explorer's
    /// raw material for tie-batch discovery.
    pub schedule_probe: Option<ScheduleProbe>,
}

impl RunReport {
    /// Flaps in thousands — the unit of the paper's Figure 3 axes.
    pub fn flaps_k(&self) -> f64 {
        self.total_flaps as f64 / 1000.0
    }

    /// Fraction of client operations that failed.
    pub fn unavailability(&self) -> f64 {
        if self.client_ops_attempted == 0 {
            0.0
        } else {
            self.client_ops_failed as f64 / self.client_ops_attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaps_k_scales() {
        let r = RunReport {
            total_flaps: 2500,
            per_node_flaps: vec![],
            recoveries: 0,
            flap_series: TimeSeries::new(),
            duration: SimDuration::ZERO,
            quiesced: true,
            calc: CalcStats::default(),
            memo: MemoStats::default(),
            messages_sent: 0,
            messages_dropped: 0,
            messages_delivered: 0,
            max_stage_lateness: SimDuration::ZERO,
            p99_stage_lateness: SimDuration::ZERO,
            cpu_utilization: 0.0,
            peak_runnable: 0,
            mem_peak_bytes: 0,
            oom_events: 0,
            crashed_nodes: 0,
            order_out_of_log: 0,
            order_forced_releases: 0,
            client_ops_attempted: 0,
            client_ops_failed: 0,
            traffic: Default::default(),
            engine: EngineCounters::default(),
            stale_timer_fires: 0,
            faults: FaultReport::default(),
            trace: TraceLog::default(),
            obs: scalecheck_obs::Trace::default(),
            schedule_probe: None,
        };
        assert!((r.flaps_k() - 2.5).abs() < 1e-9);
    }
}
