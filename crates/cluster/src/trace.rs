//! Deterministic run traces for replay debugging.
//!
//! §7's punchline is the debugging loop: "the developers can add more
//! logs to debug the code at step e and replay again." That only works
//! because the PIL replay is deterministic — the same events happen at
//! the same virtual times on every replay. [`TraceLog`] records the
//! run's interesting events (convictions, recoveries, calculations,
//! crashes) when enabled; two replays of the same artifacts produce
//! bit-identical traces, which the integration tests assert.

use scalecheck_ring::NodeId;
use scalecheck_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// `observer` convicted `peer` as dead (a flap).
    Convicted {
        /// Virtual time.
        at: SimTime,
        /// The node doing the convicting.
        observer: NodeId,
        /// The convicted peer.
        peer: NodeId,
    },
    /// A pending-range calculation finished on `node`.
    CalcFinished {
        /// Virtual time of completion.
        at: SimTime,
        /// The computing node.
        node: NodeId,
        /// The calculation's virtual compute duration.
        duration: SimDuration,
    },
    /// `node` crashed (e.g. out of memory).
    NodeCrashed {
        /// Virtual time.
        at: SimTime,
        /// The crashed node.
        node: NodeId,
    },
    /// A scheduled fault from the run's `FaultPlan` fired.
    FaultInjected {
        /// Virtual time.
        at: SimTime,
        /// Human-readable fault description.
        label: String,
    },
    /// `node` changed its gossiped ring status (the workload's moves).
    StatusAnnounced {
        /// Virtual time.
        at: SimTime,
        /// The announcing node.
        node: NodeId,
        /// Debug rendering of the new status.
        status: String,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Convicted { at, .. }
            | TraceEvent::CalcFinished { at, .. }
            | TraceEvent::NodeCrashed { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::StatusAnnounced { at, .. } => *at,
        }
    }
}

/// An append-only, optionally enabled event log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates a log; disabled logs drop every event at zero cost.
    pub fn new(enabled: bool) -> Self {
        TraceLog {
            enabled,
            events: Vec::new(),
        }
    }

    /// Appends an event if enabled.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Whether events are being kept.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(s: u64) -> TraceEvent {
        TraceEvent::Convicted {
            at: SimTime::from_secs(s),
            observer: NodeId(1),
            peer: NodeId(2),
        }
    }

    #[test]
    fn disabled_log_drops_everything() {
        let mut log = TraceLog::new(false);
        log.push(ev(1));
        assert!(log.is_empty());
        assert!(!log.enabled());
    }

    #[test]
    fn enabled_log_keeps_order() {
        let mut log = TraceLog::new(true);
        log.push(ev(1));
        log.push(TraceEvent::CalcFinished {
            at: SimTime::from_secs(2),
            node: NodeId(3),
            duration: SimDuration::from_secs(1),
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].at(), SimTime::from_secs(1));
        assert_eq!(log.events()[1].at(), SimTime::from_secs(2));
    }

    #[test]
    fn events_serialize() {
        let e = TraceEvent::NodeCrashed {
            at: SimTime::from_secs(5),
            node: NodeId(7),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
