//! Calibration: counted operations → virtual compute time.
//!
//! The paper records offending-block durations *in situ* because they
//! are impossible to predict statically (§5: "the duration of an
//! offending code block can range from 0.001 to 4 seconds depending on
//! multi-dimensional inputs"). Our substrate executes the real
//! algorithms and counts their operations; one constant per scenario
//! maps ops to virtual nanoseconds. The constants below are calibrated
//! so each bug's calculation lands in the paper's measured 0.001–4 s
//! envelope across the evaluated scales (N = 32…256), with the cubic /
//! quadratic / linear separation intact.

use scalecheck_sim::SimDuration;

/// ns/op for the C3831 cubic calculator at physical tokens (P=1).
/// V1 executes ≈ N³ ops for one change: at N=256 that is ~17 M ops →
/// ~3.4 s, at N=128 → ~0.4 s, at N=32 → ~7 ms.
pub const NS_PER_OP_V1: u64 = 200;

/// ns/op for the C3881/C5456 scenarios (V2 under P=32 vnodes).
/// V2 executes ≈ (NP)²/2 ops per change (the linear point lookup
/// early-exits halfway on average): at N=256,P=32 that is ~34 M ops →
/// ~3.4 s, at N=128 → ~0.8 s.
pub const NS_PER_OP_V2_VNODES: u64 = 100;

/// ns/op for the C6127 fresh-ring path (P=1, M=N simultaneous joins).
pub const NS_PER_OP_FRESH: u64 = 200;

/// Converts a counted op total into virtual compute time.
pub fn ops_to_duration(ops: u64, ns_per_op: u64) -> SimDuration {
    SimDuration::from_nanos(ops.saturating_mul(ns_per_op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_ring::{
        spread_tokens, NodeId, NodeStatus, OpCounter, PendingRangeCalculator, RingTable,
        TopologyChange, V1Cubic, V2Quadratic, V3VnodeAware,
    };

    fn ring_of(n: u32, p: usize) -> RingTable {
        let mut r = RingTable::new(3);
        for i in 0..n {
            r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), p))
                .unwrap();
        }
        r
    }

    fn calc_duration(
        calc: &dyn PendingRangeCalculator,
        n: u32,
        p: usize,
        ns_per_op: u64,
    ) -> SimDuration {
        let ring = ring_of(n, p);
        let change = TopologyChange::Leave { node: NodeId(0) };
        let mut c = OpCounter::new();
        calc.calculate(&ring, &[change], &mut c);
        ops_to_duration(c.ops(), ns_per_op)
    }

    #[test]
    fn v1_durations_land_in_paper_envelope() {
        // §5: offending block durations range 0.001–4 s.
        let d256 = calc_duration(&V1Cubic, 256, 1, NS_PER_OP_V1);
        let d128 = calc_duration(&V1Cubic, 128, 1, NS_PER_OP_V1);
        let d32 = calc_duration(&V1Cubic, 32, 1, NS_PER_OP_V1);
        assert!(
            d256 > SimDuration::from_secs(2) && d256 < SimDuration::from_secs(5),
            "v1@256 {d256}"
        );
        assert!(
            d128 > SimDuration::from_millis(200) && d128 < SimDuration::from_millis(900),
            "v1@128 {d128}"
        );
        assert!(d32 > SimDuration::from_millis(1), "v1@32 {d32}");
        assert!(d32 < SimDuration::from_millis(40), "v1@32 {d32}");
    }

    #[test]
    fn v2_vnode_durations_land_in_paper_envelope() {
        let d256 = calc_duration(&V2Quadratic, 256, 32, NS_PER_OP_V2_VNODES);
        let d128 = calc_duration(&V2Quadratic, 128, 32, NS_PER_OP_V2_VNODES);
        assert!(
            d256 > SimDuration::from_secs(2) && d256 < SimDuration::from_secs(6),
            "v2@256 {d256}"
        );
        assert!(
            d128 > SimDuration::from_millis(400) && d128 < SimDuration::from_millis(1500),
            "v2@128 {d128}"
        );
    }

    #[test]
    fn fixed_calculator_is_sub_conviction_everywhere() {
        // The v3 fix must stay far below the ~18 s conviction horizon —
        // that is why the fixes removed the flapping.
        let d256 = calc_duration(&V3VnodeAware, 256, 32, NS_PER_OP_V2_VNODES);
        assert!(d256 < SimDuration::from_millis(200), "v3@256 {d256}");
    }

    #[test]
    fn ops_to_duration_saturates() {
        assert_eq!(
            ops_to_duration(u64::MAX, 1000),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(ops_to_duration(0, 1000), SimDuration::ZERO);
    }
}
