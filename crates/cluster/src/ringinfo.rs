//! The application payload gossip carries: ring status + tokens.
//!
//! In Cassandra, topology changes (BOOT/LEAVING/LEFT + tokens) ride the
//! gossip channel as application state next to the heartbeat — which is
//! why a slow reaction to a topology change (the pending-range
//! calculation) starves liveness processing. [`RingInfo`] is that
//! payload; id conversions between the ring / gossip / network
//! identifier spaces live here too.

use scalecheck_gossip::Peer;
use scalecheck_net::Addr;
use scalecheck_ring::{NodeId, NodeStatus, Token};
use serde::{Deserialize, Serialize};

/// A node's gossiped ring state.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RingInfo {
    /// Lifecycle status.
    pub status: NodeStatus,
    /// The node's tokens.
    pub tokens: Vec<Token>,
}

impl RingInfo {
    /// A normal member with the given tokens.
    pub fn normal(tokens: Vec<Token>) -> Self {
        RingInfo {
            status: NodeStatus::Normal,
            tokens,
        }
    }

    /// A bootstrapping node with the given tokens.
    pub fn joining(tokens: Vec<Token>) -> Self {
        RingInfo {
            status: NodeStatus::Joining,
            tokens,
        }
    }

    /// Canonical bytes for digesting.
    pub fn write_canonical(&self, out: &mut Vec<u8>) {
        out.push(match self.status {
            NodeStatus::Normal => 0,
            NodeStatus::Joining => 1,
            NodeStatus::Leaving => 2,
            NodeStatus::Left => 3,
        });
        out.extend_from_slice(&(self.tokens.len() as u64).to_le_bytes());
        for t in &self.tokens {
            out.extend_from_slice(&t.0.to_le_bytes());
        }
    }
}

/// Converts a ring node id into a gossip peer id.
pub fn peer_of(node: NodeId) -> Peer {
    Peer(node.0)
}

/// Converts a ring node id into a network address.
pub fn addr_of(node: NodeId) -> Addr {
    Addr(node.0)
}

/// Converts a gossip peer id back into a ring node id.
pub fn node_of(peer: Peer) -> NodeId {
    NodeId(peer.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_status() {
        assert_eq!(RingInfo::normal(vec![]).status, NodeStatus::Normal);
        assert_eq!(RingInfo::joining(vec![]).status, NodeStatus::Joining);
    }

    #[test]
    fn canonical_encoding_discriminates() {
        let a = RingInfo::normal(vec![Token(1), Token(2)]);
        let b = RingInfo::joining(vec![Token(1), Token(2)]);
        let c = RingInfo::normal(vec![Token(2), Token(1)]);
        let enc = |r: &RingInfo| {
            let mut v = Vec::new();
            r.write_canonical(&mut v);
            v
        };
        assert_ne!(enc(&a), enc(&b));
        assert_ne!(enc(&a), enc(&c));
        assert_eq!(enc(&a), enc(&a.clone()));
    }

    #[test]
    fn id_conversions_round_trip() {
        let n = NodeId(42);
        assert_eq!(node_of(peer_of(n)), n);
        assert_eq!(addr_of(n), Addr(42));
    }
}
