//! The Cassandra-like cluster substrate of the ScaleCheck reproduction.
//!
//! Composes the lower substrates (simulation kernel, network, ring,
//! gossip, memoization) into runnable clusters that exhibit the paper's
//! scalability bugs:
//!
//! * **C3831** — decommissions under the cubic pending-range calculator
//!   running inline on the gossip stage;
//! * **C3881** — scale-out under vnodes with the v2 calculator;
//! * **C5456** — the calculation on its own thread but holding a coarse
//!   ring lock;
//! * **C6127** — bootstrap-from-scratch exercising the fresh-ring
//!   quadratic path.
//!
//! Each scenario runs in one of the paper's three deployment semantics
//! (Real / Colo / PIL replay) and one of three calc-IO modes (execute /
//! record / replay), yielding a [`RunReport`] whose flap counts are the
//! Figure 3 measurements.
//!
//! # Examples
//!
//! ```
//! use scalecheck_cluster::{run_scenario, DeploymentMode, ScenarioConfig};
//!
//! // A small healthy cluster decommissioning one node: no flapping.
//! let cfg = ScenarioConfig::baseline(8, 42).with_deployment(DeploymentMode::Real);
//! let report = run_scenario(&cfg);
//! assert_eq!(report.total_flaps, 0);
//! assert!(report.quiesced);
//! ```

#![forbid(unsafe_code)]

pub mod calc;
pub mod calibrate;
pub mod config;
pub mod datapath;
pub mod node;
pub mod report;
pub mod ringinfo;
pub mod runner;
pub mod trace;

pub use calc::{CalcEngine, CalcSource, CalcStats, PendingWire};
pub use config::{
    AllocStrategy, CalcIo, CalcVersion, DeploymentMode, LockingMode, MemoryConfig, ScenarioConfig,
    Workload,
};
pub use datapath::{probe_operation, ClientConfig};
pub use node::{Envelope, GossipMessage, Node, Task, ViewChanges};
pub use report::RunReport;
pub use ringinfo::{addr_of, node_of, peer_of, RingInfo};
pub use runner::{run_scenario, run_scenario_with_db, ClusterState, StageKind};
pub use scalecheck_sim::{FaultEvent, FaultPlan, FaultReport, FiredFault};
pub use scalecheck_traffic::{
    ArrivalConfig, ArrivalProcess, Consistency, SloSummary, SloTarget, TrafficConfig, TrafficReport,
};
pub use trace::{TraceEvent, TraceLog};
