//! The calculation engine: executes, records, or replays the
//! pending-range computation.
//!
//! This is where the paper's three pipelines meet:
//!
//! * **Execute** (Real / plain Colo): run the real algorithm, count ops,
//!   convert to virtual compute time via the calibration constant.
//! * **Record** (the memoization run, Figure 2 step d): execute *and*
//!   store `(input digest) → (output, duration)` plus the invocation
//!   order.
//! * **Replay** (Figure 2 steps e–f): look the input up and return the
//!   recorded output and duration without computing; fall back to the
//!   invocation index and finally to genuine execution, counting every
//!   fallback honestly.
//!
//! A host-side execution cache deduplicates identical inputs across
//! simulated nodes. It is a pure host optimization: the returned ops
//! (hence virtual durations) are identical to a cold execution because
//! the calculators are deterministic.

use std::collections::HashMap;

use scalecheck_memo::{Digest128, FnId, Hasher128, MemoDb};
use scalecheck_ring::{
    write_changes_canonical, write_pending_canonical, FreshRingQuadratic, NodeId, OpCounter,
    PendingRangeCalculator, PendingRanges, Range, RingTable, TopologyChange, V1Cubic, V2Quadratic,
    V3VnodeAware,
};
use scalecheck_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::calibrate::ops_to_duration;
use crate::config::{CalcIo, CalcVersion};

/// Wire form of [`PendingRanges`] (JSON-friendly: no map keys that are
/// structs).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingWire(pub Vec<(Range, Vec<NodeId>)>);

impl From<&PendingRanges> for PendingWire {
    fn from(p: &PendingRanges) -> Self {
        PendingWire(
            p.iter()
                .map(|(r, s)| (*r, s.iter().copied().collect()))
                .collect(),
        )
    }
}

impl From<&PendingWire> for PendingRanges {
    fn from(w: &PendingWire) -> Self {
        w.0.iter()
            .map(|(r, v)| (*r, v.iter().copied().collect()))
            .collect()
    }
}

/// Where a calculation result came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CalcSource {
    /// Executed the real algorithm.
    Executed,
    /// Served from the host-side execution cache (same virtual cost as
    /// executing).
    ExecCache,
    /// Replay: input digest hit in the memo DB.
    MemoHit,
    /// Replay: digest missed, invocation index matched.
    MemoIndexFallback,
    /// Replay: nothing matched; executed for real.
    MemoMiss,
}

/// Aggregate calculation statistics for a run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CalcStats {
    /// Total calculate() calls.
    pub invocations: u64,
    /// Genuine executions (cold).
    pub executed: u64,
    /// Host execution-cache hits.
    pub exec_cache_hits: u64,
    /// Replay digest hits.
    pub memo_hits: u64,
    /// Replay index fallbacks.
    pub memo_index_fallbacks: u64,
    /// Replay full misses (re-executed).
    pub memo_misses: u64,
    /// Sum of returned compute durations.
    pub total_compute: SimDuration,
    /// Largest single compute duration.
    pub max_compute: SimDuration,
}

/// The pending-range calculation engine for one run.
pub struct CalcEngine {
    version: CalcVersion,
    ns_per_op: u64,
    io: CalcIo,
    exec_cache: HashMap<u128, (PendingWire, u64)>,
    db: MemoDb<PendingWire>,
    stats: CalcStats,
}

impl CalcEngine {
    /// Creates an engine with an empty memo database.
    pub fn new(version: CalcVersion, ns_per_op: u64, io: CalcIo) -> Self {
        CalcEngine {
            version,
            ns_per_op,
            io,
            exec_cache: HashMap::new(),
            db: MemoDb::new(),
            stats: CalcStats::default(),
        }
    }

    /// Creates a replay engine over a previously recorded database.
    pub fn with_db(
        version: CalcVersion,
        ns_per_op: u64,
        io: CalcIo,
        db: MemoDb<PendingWire>,
    ) -> Self {
        CalcEngine {
            version,
            ns_per_op,
            io,
            exec_cache: HashMap::new(),
            db,
            stats: CalcStats::default(),
        }
    }

    /// The memo function id for a calculator version.
    pub fn fn_id(version: CalcVersion) -> FnId {
        FnId(match version {
            CalcVersion::V1Cubic => 1,
            CalcVersion::V2Quadratic => 2,
            CalcVersion::V3VnodeAware => 3,
            CalcVersion::FreshRing => 4,
        })
    }

    /// Digest of a calculation input.
    pub fn digest(ring: &RingTable, changes: &[TopologyChange]) -> Digest128 {
        let mut bytes = Vec::with_capacity(1024);
        ring.write_canonical(&mut bytes);
        write_changes_canonical(changes, &mut bytes);
        let mut h = Hasher128::new();
        h.update(&bytes);
        h.finish()
    }

    fn calculator(&self) -> Box<dyn PendingRangeCalculator> {
        match self.version {
            CalcVersion::V1Cubic => Box::new(V1Cubic),
            CalcVersion::V2Quadratic => Box::new(V2Quadratic),
            CalcVersion::V3VnodeAware => Box::new(V3VnodeAware),
            CalcVersion::FreshRing => Box::new(FreshRingQuadratic),
        }
    }

    fn execute(
        &mut self,
        digest: Digest128,
        ring: &RingTable,
        changes: &[TopologyChange],
    ) -> (PendingWire, u64, bool) {
        if let Some((wire, ops)) = self.exec_cache.get(&digest.0) {
            return (wire.clone(), *ops, true);
        }
        let mut counter = OpCounter::new();
        let out = self
            .calculator()
            .calculate_traced(ring, changes, &mut counter);
        let wire = PendingWire::from(&out);
        self.exec_cache
            .insert(digest.0, (wire.clone(), counter.ops()));
        (wire, counter.ops(), false)
    }

    /// Runs (or replays) the calculation for `node`'s
    /// `invocation_idx`-th call, returning the result, its virtual
    /// compute duration, and where it came from.
    pub fn calculate(
        &mut self,
        node: u32,
        invocation_idx: u64,
        ring: &RingTable,
        changes: &[TopologyChange],
    ) -> (PendingRanges, SimDuration, CalcSource) {
        self.stats.invocations += 1;
        let digest = Self::digest(ring, changes);
        let fid = Self::fn_id(self.version);

        let (wire, duration, source) = match self.io {
            CalcIo::Execute | CalcIo::Record => {
                let (wire, ops, cached) = self.execute(digest, ring, changes);
                let duration = ops_to_duration(ops, self.ns_per_op);
                if cached {
                    self.stats.exec_cache_hits += 1;
                } else {
                    self.stats.executed += 1;
                }
                if self.io == CalcIo::Record {
                    self.db.record(node, fid, digest, wire.clone(), duration);
                }
                (
                    wire,
                    duration,
                    if cached {
                        CalcSource::ExecCache
                    } else {
                        CalcSource::Executed
                    },
                )
            }
            CalcIo::Replay => {
                if let Some(rec) = self.db.lookup(fid, digest) {
                    self.stats.memo_hits += 1;
                    (rec.output, rec.duration, CalcSource::MemoHit)
                } else if let Some(rec) =
                    self.db.lookup_by_index(node, fid, invocation_idx as usize)
                {
                    self.stats.memo_index_fallbacks += 1;
                    (rec.output, rec.duration, CalcSource::MemoIndexFallback)
                } else {
                    self.db.note_miss();
                    self.stats.memo_misses += 1;
                    let (wire, ops, _) = self.execute(digest, ring, changes);
                    (
                        wire,
                        ops_to_duration(ops, self.ns_per_op),
                        CalcSource::MemoMiss,
                    )
                }
            }
        };
        self.stats.total_compute += duration;
        self.stats.max_compute = self.stats.max_compute.max(duration);
        ((&wire).into(), duration, source)
    }

    /// Run statistics.
    pub fn stats(&self) -> CalcStats {
        self.stats
    }

    /// The memo database (e.g. after a recording run).
    pub fn into_db(self) -> MemoDb<PendingWire> {
        self.db
    }

    /// Read access to the database.
    pub fn db(&self) -> &MemoDb<PendingWire> {
        &self.db
    }

    /// Digest of a pending-ranges output (used in accuracy checks).
    pub fn output_digest(p: &PendingRanges) -> Digest128 {
        let mut bytes = Vec::new();
        write_pending_canonical(p, &mut bytes);
        let mut h = Hasher128::new();
        h.update(&bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_ring::{spread_tokens, NodeStatus};

    fn ring_of(n: u32) -> RingTable {
        let mut r = RingTable::new(3);
        for i in 0..n {
            r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), 2))
                .unwrap();
        }
        r
    }

    fn leave(id: u32) -> Vec<TopologyChange> {
        vec![TopologyChange::Leave { node: NodeId(id) }]
    }

    #[test]
    fn execute_mode_runs_and_caches() {
        let mut e = CalcEngine::new(CalcVersion::V3VnodeAware, 100, CalcIo::Execute);
        let ring = ring_of(8);
        let (out1, d1, s1) = e.calculate(0, 0, &ring, &leave(1));
        let (out2, d2, s2) = e.calculate(1, 0, &ring, &leave(1));
        assert_eq!(s1, CalcSource::Executed);
        assert_eq!(s2, CalcSource::ExecCache);
        assert_eq!(out1, out2);
        assert_eq!(d1, d2, "cache must not change virtual cost");
        assert!(d1 > SimDuration::ZERO);
        assert_eq!(e.stats().executed, 1);
        assert_eq!(e.stats().exec_cache_hits, 1);
    }

    #[test]
    fn record_mode_populates_db() {
        let mut e = CalcEngine::new(CalcVersion::V1Cubic, 100, CalcIo::Record);
        let ring = ring_of(8);
        e.calculate(0, 0, &ring, &leave(1));
        e.calculate(0, 1, &ring, &leave(2));
        let db = e.into_db();
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.invocations(0, CalcEngine::fn_id(CalcVersion::V1Cubic)),
            2
        );
    }

    #[test]
    fn replay_hits_recorded_inputs() {
        let ring = ring_of(8);
        let mut rec = CalcEngine::new(CalcVersion::V1Cubic, 100, CalcIo::Record);
        let (out_rec, d_rec, _) = rec.calculate(0, 0, &ring, &leave(1));
        let db = rec.into_db();

        let mut rep = CalcEngine::with_db(CalcVersion::V1Cubic, 100, CalcIo::Replay, db);
        let (out_rep, d_rep, src) = rep.calculate(0, 0, &ring, &leave(1));
        assert_eq!(src, CalcSource::MemoHit);
        assert_eq!(out_rep, out_rec);
        assert_eq!(d_rep, d_rec, "replay sleeps the recorded duration");
        assert_eq!(rep.stats().memo_hits, 1);
    }

    #[test]
    fn replay_index_fallback_when_digest_differs() {
        let ring = ring_of(8);
        let mut rec = CalcEngine::new(CalcVersion::V2Quadratic, 100, CalcIo::Record);
        rec.calculate(5, 0, &ring, &leave(1));
        let db = rec.into_db();

        let mut rep = CalcEngine::with_db(CalcVersion::V2Quadratic, 100, CalcIo::Replay, db);
        // Different input (leave 2 instead of 1): digest misses, but node
        // 5's invocation 0 exists.
        let (_, _, src) = rep.calculate(5, 0, &ring, &leave(2));
        assert_eq!(src, CalcSource::MemoIndexFallback);
    }

    #[test]
    fn replay_full_miss_executes_for_real() {
        let ring = ring_of(8);
        let db = MemoDb::new();
        let mut rep = CalcEngine::with_db(CalcVersion::V3VnodeAware, 100, CalcIo::Replay, db);
        let (out, d, src) = rep.calculate(0, 0, &ring, &leave(1));
        assert_eq!(src, CalcSource::MemoMiss);
        assert!(!out.is_empty());
        assert!(d > SimDuration::ZERO);
        assert_eq!(rep.stats().memo_misses, 1);
        assert_eq!(rep.db().stats().misses, 1);
    }

    #[test]
    fn digest_distinguishes_ring_and_changes() {
        let r8 = ring_of(8);
        let r9 = ring_of(9);
        assert_ne!(
            CalcEngine::digest(&r8, &leave(1)),
            CalcEngine::digest(&r9, &leave(1))
        );
        assert_ne!(
            CalcEngine::digest(&r8, &leave(1)),
            CalcEngine::digest(&r8, &leave(2))
        );
        assert_eq!(
            CalcEngine::digest(&r8, &leave(1)),
            CalcEngine::digest(&ring_of(8), &leave(1))
        );
    }

    #[test]
    fn wire_round_trip() {
        let ring = ring_of(8);
        let mut e = CalcEngine::new(CalcVersion::V3VnodeAware, 100, CalcIo::Execute);
        let (out, _, _) = e.calculate(0, 0, &ring, &leave(1));
        let wire = PendingWire::from(&out);
        let back: PendingRanges = (&wire).into();
        assert_eq!(out, back);
        assert_eq!(
            CalcEngine::output_digest(&out),
            CalcEngine::output_digest(&back)
        );
    }

    #[test]
    fn stats_track_totals() {
        let ring = ring_of(8);
        let mut e = CalcEngine::new(CalcVersion::V1Cubic, 1000, CalcIo::Execute);
        e.calculate(0, 0, &ring, &leave(1));
        e.calculate(0, 1, &ring, &leave(2));
        let s = e.stats();
        assert_eq!(s.invocations, 2);
        assert!(s.total_compute >= s.max_compute);
        assert!(s.max_compute > SimDuration::ZERO);
    }
}
