//! Cluster-level behaviour tests: locking modes, workloads, deployment
//! semantics, and bug-vs-fix dynamics at CI-friendly scale.
//!
//! The paper's bugs need hundreds of nodes under the real calibration;
//! these tests shrink the cluster and inflate the per-op cost so the
//! same mechanisms fire at N≈24–32 in seconds.

use scalecheck_cluster::{
    run_scenario, CalcIo, CalcVersion, DeploymentMode, LockingMode, ScenarioConfig, Workload,
};
use scalecheck_net::{LatencyModel, NetworkConfig};
use scalecheck_sim::SimDuration;

/// Inflated-cost C3831-style scenario that flaps at N=32.
fn mini_inline_bug(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::c3831(32, seed);
    cfg.ns_per_op = 120_000;
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(60),
    };
    cfg.rescale_window = SimDuration::from_secs(100);
    cfg.workload_end = SimDuration::from_secs(200);
    cfg.max_duration = SimDuration::from_secs(1800);
    cfg
}

/// Inflated-cost C5456-style scenario (calc on its own stage, coarse
/// ring lock) that flaps at N=32.
fn mini_lock_bug(seed: u64) -> ScenarioConfig {
    let mut cfg = mini_inline_bug(seed);
    cfg.locking = LockingMode::CoarseLockThread;
    cfg.workload = Workload::ScaleOut {
        count: 1,
        gap: SimDuration::from_secs(60),
    };
    cfg
}

#[test]
fn inline_bug_flaps_and_v3_fix_does_not() {
    let buggy = run_scenario(&mini_inline_bug(1));
    assert!(buggy.total_flaps > 100, "flaps: {}", buggy.total_flaps);
    let mut fixed = mini_inline_bug(1);
    fixed.calculator = CalcVersion::V3VnodeAware;
    let ok = run_scenario(&fixed);
    assert_eq!(ok.total_flaps, 0);
}

#[test]
fn coarse_lock_starves_and_snapshot_fix_does_not() {
    // The C5456 pair: same workload, same calculator cost; only the
    // locking discipline changes.
    let coarse = run_scenario(&mini_lock_bug(2));
    assert!(
        coarse.total_flaps > 50,
        "coarse lock must starve gossip: {} flaps",
        coarse.total_flaps
    );
    let mut fixed = mini_lock_bug(2);
    fixed.locking = LockingMode::SnapshotThread;
    let snap = run_scenario(&fixed);
    assert!(
        snap.total_flaps * 10 <= coarse.total_flaps,
        "snapshotting must (mostly) eliminate the starvation: {} vs {}",
        snap.total_flaps,
        coarse.total_flaps
    );
}

#[test]
fn bootstrap_from_scratch_exercises_fresh_ring_path() {
    let mut cfg = ScenarioConfig::c6127(16, 3);
    cfg.rescale_window = SimDuration::from_secs(45);
    cfg.workload_end = SimDuration::from_secs(100);
    cfg.max_duration = SimDuration::from_secs(900);
    let r = run_scenario(&cfg);
    assert!(r.quiesced);
    assert!(r.calc.invocations > 0);
    // A fresh 16-node bootstrap is healthy (the bug needs 500+ nodes).
    assert_eq!(r.total_flaps, 0);
    // Everyone ends up knowing everyone: the mesh converged.
    assert!(r.messages_delivered > 1000);
}

#[test]
fn decommissioned_nodes_depart_cleanly_without_convictions() {
    let mut cfg = ScenarioConfig::baseline(16, 4);
    cfg.workload = Workload::Decommission {
        count: 3,
        gap: SimDuration::from_secs(50),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(220);
    cfg.max_duration = SimDuration::from_secs(900);
    let r = run_scenario(&cfg);
    assert!(r.quiesced);
    assert_eq!(
        r.total_flaps, 0,
        "clean departures must not be counted as flaps"
    );
}

#[test]
fn scale_out_joins_converge() {
    let mut cfg = ScenarioConfig::baseline(12, 5);
    cfg.workload = Workload::ScaleOut {
        count: 2,
        gap: SimDuration::from_secs(60),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(180);
    cfg.max_duration = SimDuration::from_secs(900);
    let r = run_scenario(&cfg);
    assert!(r.quiesced);
    assert_eq!(r.total_flaps, 0);
    // The joiners triggered pending-range calculations cluster-wide.
    assert!(r.calc.invocations as usize > cfg.n_nodes);
}

#[test]
fn message_loss_does_not_wedge_the_cluster() {
    let mut cfg = ScenarioConfig::baseline(16, 6);
    cfg.network = NetworkConfig {
        latency: LatencyModel::lan(),
        drop_probability: 0.2,
    };
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.rescale_window = SimDuration::from_secs(30);
    cfg.workload_end = SimDuration::from_secs(120);
    cfg.max_duration = SimDuration::from_secs(900);
    let r = run_scenario(&cfg);
    assert!(r.quiesced, "gossip is loss-tolerant; the run must settle");
    assert!(r.messages_dropped > 0, "loss must actually occur");
    // Anti-entropy keeps the cluster mostly stable even at 20% loss.
    assert!(r.total_flaps < 50, "flaps under loss: {}", r.total_flaps);
}

#[test]
fn pil_replay_mode_uses_no_cpu_for_calcs() {
    // In PIL mode the big computations sleep: CPU utilization of the
    // shared box stays low even while the mini bug rages.
    let cfg = mini_inline_bug(7);
    let colo = run_scenario(
        &cfg.clone()
            .with_deployment(DeploymentMode::Colo { cores: 4 })
            .with_calc_io(CalcIo::Record),
    );
    // Feed the recorded DB into a replay.
    let (_, db, order) = scalecheck_cluster::run_scenario_with_db(
        &cfg.clone()
            .with_deployment(DeploymentMode::Colo { cores: 4 })
            .with_calc_io(CalcIo::Record),
        None,
        None,
    );
    let (pil, _, _) = scalecheck_cluster::run_scenario_with_db(
        &cfg.clone()
            .with_deployment(DeploymentMode::PilReplay { cores: 4 })
            .with_calc_io(CalcIo::Replay),
        Some(db),
        order,
    );
    assert!(
        pil.cpu_utilization < colo.cpu_utilization / 2.0,
        "PIL {} vs Colo {}",
        pil.cpu_utilization,
        colo.cpu_utilization
    );
    assert!(pil.duration < colo.duration);
}

#[test]
fn flapping_causes_user_visible_unavailability() {
    // The paper's opening example: flapping makes "some data not
    // reachable by the users". A deep conviction storm (heavier per-op
    // cost) must surface as failed quorums.
    let mut storm = mini_inline_bug(1);
    storm.ns_per_op = 500_000;
    let buggy = run_scenario(&storm);
    assert!(buggy.total_flaps > 100);
    assert!(buggy.client_ops_attempted > 100);
    assert!(
        buggy.unavailability() > 0.01,
        "flapping must surface as failed quorums: {:.4}",
        buggy.unavailability()
    );
    // The fixed cluster serves everything.
    let mut fixed = storm.clone();
    fixed.calculator = CalcVersion::V3VnodeAware;
    let ok = run_scenario(&fixed);
    assert_eq!(ok.unavailability(), 0.0);
}

#[test]
fn real_mode_gives_every_node_its_own_machine() {
    let cfg = ScenarioConfig::baseline(8, 8);
    let real = run_scenario(&cfg.clone().with_deployment(DeploymentMode::Real));
    let colo = run_scenario(
        &cfg.clone()
            .with_deployment(DeploymentMode::Colo { cores: 2 }),
    );
    // Both healthy, but the shared 2-core box works much harder.
    assert_eq!(real.total_flaps, 0);
    assert_eq!(colo.total_flaps, 0);
    assert!(colo.cpu_utilization > real.cpu_utilization);
    assert!(colo.peak_runnable >= real.peak_runnable);
}

#[test]
fn global_event_queue_reduces_contention_penalty() {
    // §6: thousands of per-node threads cause severe context switching;
    // the one-queue redesign removes the amplification. Same workload,
    // same cores — the redesigned machine must show less queueing.
    let mut cfg = mini_inline_bug(1);
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(60),
    };
    let threads = run_scenario(
        &cfg.clone()
            .with_deployment(DeploymentMode::Colo { cores: 4 })
            .with_calc_io(CalcIo::Execute),
    );
    let mut redesigned = cfg.clone();
    redesigned.global_event_queue = true;
    let global = run_scenario(
        &redesigned
            .with_deployment(DeploymentMode::Colo { cores: 4 })
            .with_calc_io(CalcIo::Execute),
    );
    assert!(
        global.duration <= threads.duration,
        "global queue must not be slower: {} vs {}",
        global.duration,
        threads.duration
    );
    // Stage lateness is dominated by the inline calculations either
    // way; the redesign must not make it materially worse (small slack
    // for log-bucketed quantiles).
    assert!(
        global.p99_stage_lateness.as_nanos() as f64
            <= threads.p99_stage_lateness.as_nanos() as f64 * 1.05,
        "lateness: {} vs {}",
        global.p99_stage_lateness,
        threads.p99_stage_lateness
    );
}
