//! Schedule-probe and tie-order threading tests: recording a run
//! yields real tie batches with semantic tags, perturbations stay
//! deterministic, and identity specs leave the run byte-identical.

use scalecheck_cluster::{run_scenario, ScenarioConfig};
use scalecheck_sim::tie::tag;
use scalecheck_sim::{TieOrderSpec, TieSwap};

fn probe_cfg(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(8, seed);
    cfg.record_schedule = true;
    cfg
}

#[test]
fn recorded_probe_has_tie_batches_and_tags() {
    let report = run_scenario(&probe_cfg(1));
    let probe = report.schedule_probe.expect("probe recorded");
    assert!(!probe.fires.is_empty(), "fires recorded");
    assert!(!probe.tags.is_empty(), "runner tagged events");
    let groups = probe.tie_groups();
    assert!(
        !groups.is_empty(),
        "a gossiping cluster must produce same-timestamp ties"
    );
    // Tags reference sequences the engine actually scheduled, and every
    // kind the runner emits is one of the known constants.
    let max_fired_seq = probe.fires.iter().map(|f| f.seq).max().unwrap();
    for t in &probe.tags {
        assert!(t.seq > 0);
        assert!(
            matches!(
                tag::kind(t.tag),
                tag::DELIVER | tag::GOSSIP_TIMER | tag::FD_TIMER | tag::RECV_DONE | tag::SEND_DONE
            ),
            "unknown tag kind"
        );
        assert!(tag::node(t.tag) < 8, "node id in range");
    }
    assert!(max_fired_seq > 0);
    // Send/receive stage completions are tagged too: they emit
    // messages (drawing from the shared engine RNG), which is what
    // makes their tie order explorable.
    for kind in [tag::RECV_DONE, tag::SEND_DONE] {
        assert!(
            probe.tags.iter().any(|t| tag::kind(t.tag) == kind),
            "stage completions must be tagged (kind {kind})"
        );
    }
}

#[test]
fn probe_absent_unless_requested() {
    let report = run_scenario(&ScenarioConfig::baseline(8, 1));
    assert!(report.schedule_probe.is_none());
}

#[test]
fn identity_tie_order_is_byte_identical_to_stock() {
    let stock = run_scenario(&probe_cfg(1));
    let mut cfg = probe_cfg(1);
    cfg.tie_order = TieOrderSpec::identity();
    let ident = run_scenario(&cfg);
    assert_eq!(
        stock.schedule_probe, ident.schedule_probe,
        "identity spec must not move a single event"
    );
    assert_eq!(stock.total_flaps, ident.total_flaps);
    assert_eq!(stock.messages_delivered, ident.messages_delivered);

    // A zero-shift swap *installs* the policy (the perturbed code
    // path) but still encodes the identity permutation: the whole
    // scenario must come out byte-identical, flaps included.
    let mut cfg = probe_cfg(1);
    cfg.tie_order = TieOrderSpec::with_swaps(vec![TieSwap { seq: 1, shift: 0 }]);
    assert!(!cfg.tie_order.is_identity());
    let zero = run_scenario(&cfg);
    assert_eq!(
        stock.schedule_probe, zero.schedule_probe,
        "zero-shift policy path must not move a single event"
    );
    assert_eq!(stock.total_flaps, zero.total_flaps);
    assert_eq!(stock.messages_delivered, zero.messages_delivered);
}

#[test]
fn perturbed_runs_are_deterministic_per_spec() {
    let mut cfg = probe_cfg(3);
    cfg.tie_order = TieOrderSpec::shuffled(17);
    let a = run_scenario(&cfg);
    let b = run_scenario(&cfg);
    assert_eq!(a.schedule_probe, b.schedule_probe);
    assert_eq!(a.total_flaps, b.total_flaps);
    assert_eq!(a.duration, b.duration);
}

#[test]
fn a_targeted_swap_reorders_a_real_tie_batch() {
    // Find a tie batch in the stock schedule, swap its first two
    // members, and check the perturbed schedule fires them reversed.
    let stock = run_scenario(&probe_cfg(1));
    let stock_probe = stock.schedule_probe.expect("probe");
    let groups = stock_probe.tie_groups();
    let g = groups.first().expect("at least one tie batch");
    let (a, b) = (g[0].seq, g[1].seq);

    let mut cfg = probe_cfg(1);
    cfg.tie_order = TieOrderSpec::with_swaps(vec![TieSwap {
        seq: a.min(b),
        shift: 1,
    }]);
    let swapped = run_scenario(&cfg);
    let probe = swapped.schedule_probe.expect("probe");
    let at = g[0].at;
    let batch: Vec<u64> = probe
        .fires
        .iter()
        .filter(|f| f.at == at)
        .map(|f| f.seq)
        .collect();
    let ia = batch.iter().position(|&s| s == a);
    let ib = batch.iter().position(|&s| s == b);
    match (ia, ib) {
        (Some(ia), Some(ib)) => assert!(
            ib < ia,
            "swap target must fire after its successor: batch {batch:?}"
        ),
        // Perturbation changed downstream scheduling enough that one of
        // the seqs moved or vanished — legal, but the smoke scenario
        // should not do this for the very first tie batch.
        _ => panic!("swapped events left the batch at {at}: {batch:?}"),
    }
}
