//! Fixed-bucket log-scale histogram.
//!
//! 64 power-of-two buckets cover the full `u64` range: bucket 0 holds
//! exactly the value 0 and bucket `i` holds values in
//! `[2^(i-1), 2^i - 1]`. Recording is a `leading_zeros` and an
//! increment — no allocation, deterministic, and cheap enough for the
//! event hot path.

use serde::{Deserialize, Serialize};

/// Number of buckets (one per possible bit length, plus zero).
pub const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket sample counts (length [`BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
        .min(BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in O(1) — the weighted-record path
    /// the traffic engine uses to book a million offered requests
    /// through a bounded sample budget.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.max = self.max.max(v);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate percentile: the inclusive upper bound of the bucket
    /// containing the `p`-th percentile sample (`p` in 0..=100).
    pub fn percentile(&self, p: u8) -> u64 {
        self.quantile_permille(p as u32 * 10)
    }

    /// Approximate quantile at permille resolution (`p` in 0..=1000),
    /// fine enough for p99.9: the inclusive upper bound of the bucket
    /// containing the `p`-permille sample, clamped to the largest
    /// sample actually recorded so a log bucket's span can never leak
    /// through as a phantom value (a 2 s timeout must read as 2 s, not
    /// as the 2^31−1 ns bucket cap).
    pub fn quantile_permille(&self, p: u32) -> u64 {
        self.quantile_cut(p).0
    }

    /// Whether the `p`-permille quantile estimate is saturated: it fell
    /// in the bucket holding the largest sample, so the histogram
    /// cannot resolve the tail beyond "equal to the observed max".
    pub fn quantile_saturated(&self, p: u32) -> bool {
        self.quantile_cut(p).1
    }

    /// The quantile walk shared by [`Self::quantile_permille`] and
    /// [`Self::quantile_saturated`]: (clamped estimate, saturated).
    fn quantile_cut(&self, p: u32) -> (u64, bool) {
        if self.count == 0 {
            return (0, false);
        }
        let rank = ((self.count as u128 * p.min(1000) as u128).div_ceil(1000) as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    // Bucket 0 holds only the value 0: the estimate is
                    // exact, never saturated.
                    return (0, false);
                }
                let bound = (1u64 << i).wrapping_sub(1).max(1);
                // The bucket bound exceeding the observed max means the
                // estimate landed in the max's own bucket: clamp, and
                // flag the estimate as tail-saturated.
                return if bound >= self.max {
                    (bound.min(self.max).max(1), true)
                } else {
                    (bound, false)
                };
            }
        }
        (self.max, true)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.max, 1000);
        assert_eq!(h.mean(), 202);
    }

    #[test]
    fn percentile_walks_buckets() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        // p50 lands in the bucket holding 10 (values 8..=15).
        assert_eq!(h.percentile(50), 15);
        // p100 lands in the big bucket.
        assert!(h.percentile(100) >= 1_000_000);
        assert_eq!(LogHistogram::new().percentile(99), 0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for _ in 0..1000 {
            a.record(7);
        }
        b.record_n(7, 1000);
        assert_eq!(a, b);
        b.record_n(9, 0);
        assert_eq!(a, b, "zero-weight records are no-ops");
    }

    #[test]
    fn quantile_permille_resolves_the_tail() {
        let mut h = LogHistogram::new();
        h.record_n(10, 9_985);
        h.record_n(1_000_000, 15);
        // p99 still sits in the bulk; p99.9 must see the outliers.
        assert_eq!(h.quantile_permille(990), 15);
        assert!(h.quantile_permille(999) >= 1_000_000);
        assert_eq!(h.percentile(99), h.quantile_permille(990));
        assert_eq!(LogHistogram::new().quantile_permille(999), 0);
    }

    #[test]
    fn quantile_clamps_to_the_observed_max_instead_of_the_bucket_cap() {
        // A 2 s timeout (2_000_000_000 ns) lands in the bucket spanning
        // up to 2^31 − 1 = 2_147_483_647 ns. The naive bucket upper
        // bound leaks that cap as a phantom "2147.48 ms"; the clamp
        // must report the timeout itself.
        let mut h = LogHistogram::new();
        h.record_n(1_000_000, 9_985);
        h.record_n(2_000_000_000, 15);
        assert_eq!(h.quantile_permille(999), 2_000_000_000);
        assert!(h.quantile_saturated(999), "tail estimate is max-limited");
        // The bulk quantiles resolve below the max: unclamped bounds,
        // not saturated.
        assert_eq!(h.quantile_permille(500), (1u64 << 20) - 1);
        assert!(!h.quantile_saturated(500));
    }

    #[test]
    fn weighted_record_n_hits_the_same_saturation_boundary() {
        // Exactly at the rank boundary: 999 permille of 1000 weighted
        // samples is rank 999 — the last bulk sample — while 1000
        // permille must reach the single outlier.
        let mut h = LogHistogram::new();
        h.record_n(10, 999);
        h.record_n(3_000_000_000, 1);
        assert_eq!(h.quantile_permille(999), 15);
        assert!(!h.quantile_saturated(999));
        assert_eq!(h.quantile_permille(1000), 3_000_000_000);
        assert!(h.quantile_saturated(1000));
        // Degenerate shapes: empty and all-zero histograms are exact.
        assert!(!LogHistogram::new().quantile_saturated(999));
        let mut z = LogHistogram::new();
        z.record_n(0, 5);
        assert_eq!(z.quantile_permille(999), 0);
        assert!(!z.quantile_saturated(999));
        // A single-bucket histogram is always max-limited.
        let mut one = LogHistogram::new();
        one.record_n(100, 7);
        assert_eq!(one.quantile_permille(500), 100);
        assert!(one.quantile_saturated(500));
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(4);
        b.record(9);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 13);
        assert_eq!(a.max, 9);
    }
}
