//! Divergence analyzer: attribute the gap between two traces of the
//! same scenario.
//!
//! Given trace A (the reference deployment, e.g. Real) and trace B
//! (the suspect, e.g. Colo), it ranks *where the time went*: which
//! stage's span totals inflated, how much of the gossip-stage delay is
//! queueing vs CPU contention vs lock wait, and how much suspect-trace
//! stage time overlaps the failure-detector flap windows. This is the
//! paper's §6 diagnosis — Colo's calc stage inflates and starves the
//! gossip stage past the φ-detector window — done mechanically.
//!
//! Attribution follows the causal arrow, not the victim: when tasks
//! sit in stage or CPU queues, that wait is *charged to the stage
//! occupying the processor*, proportional to the sampled busy-time
//! share (the `StageUtilization` counter series). A gossip round that
//! waits 8 s behind an O(n³) recalculation shows up as calc time, not
//! gossip time — exactly the off-CPU-profiler convention, and the only
//! reading under which "gossip got slow" points at its cause. Traces
//! without utilization samples (e.g. hand-built unit fixtures) fall
//! back to an unattributed standalone `queueing` row.
//!
//! Totals are raw virtual-nanosecond sums, so a longer suspect run
//! shows up as inflation (that *is* the signal: contention stretches
//! the same workload), and a category is flagged only above both a
//! ratio and an absolute floor so tiny categories cannot top the
//! ranking on noise. Rows are ranked by absolute inflation, not ratio:
//! a 600x blow-up of a 50 s category matters less than a 20x blow-up
//! of a 15 000 s one.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::names::{Metric, SpanName};
use crate::tracer::Trace;

/// Minimum B/A ratio (in milli, 1500 = 1.5x) to flag a category.
pub const RATIO_MILLI_TOLERANCE: u64 = 1500;
/// Minimum absolute inflation (virtual ns) to flag a category.
pub const ABS_NS_TOLERANCE: u64 = 5_000_000_000;
/// Half-width of the window drawn around each conviction instant.
pub const FLAP_WINDOW_HALF_NS: u64 = 2_000_000_000;

/// One ranked attribution row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DivergenceRow {
    /// Category label (`calc`, `gossip`, `lock`, `net`, a `gossip.*`
    /// breakdown component, or `queueing` in the unattributed
    /// fallback). `calc` includes its charged share of wait time when
    /// attribution ran.
    pub category: String,
    /// Total virtual ns in trace A.
    pub a_total_ns: u64,
    /// Total virtual ns in trace B.
    pub b_total_ns: u64,
    /// `b - a` (the inflation; negative means B shrank).
    pub inflation_ns: i64,
    /// `b / a` in milli (1000 = parity); `u64::MAX` when A is zero but
    /// B is not.
    pub ratio_milli: u64,
    /// Whether the row clears both tolerance thresholds.
    pub above_tolerance: bool,
}

impl DivergenceRow {
    fn build(category: &str, a: u64, b: u64) -> Self {
        let ratio_milli = match b.saturating_mul(1000).checked_div(a) {
            Some(r) => r,
            None if b == 0 => 1000,
            None => u64::MAX,
        };
        let inflation_ns = b as i64 - a as i64;
        DivergenceRow {
            category: category.to_string(),
            a_total_ns: a,
            b_total_ns: b,
            inflation_ns,
            ratio_milli,
            above_tolerance: ratio_milli >= RATIO_MILLI_TOLERANCE
                && inflation_ns >= ABS_NS_TOLERANCE as i64,
        }
    }
}

/// How stage/CPU wait time was charged to the compute stages.
///
/// `wait = StageLateness + CpuQueueDelay` metric sums; each trace's
/// wait pool is split between calc and gossip by that trace's own
/// sampled busy-time share.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaitAttribution {
    /// Total wait in trace A, virtual ns.
    pub wait_a_ns: u64,
    /// Total wait in trace B, virtual ns.
    pub wait_b_ns: u64,
    /// Calc's busy-time share in A, milli (1000 = all calc).
    pub calc_share_a_milli: u64,
    /// Calc's busy-time share in B, milli.
    pub calc_share_b_milli: u64,
}

/// Suspect-trace time overlapping flap windows, per category.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlapOverlapRow {
    /// Category label.
    pub category: String,
    /// Span time of trace B inside the flap windows, virtual ns.
    pub overlap_ns: u64,
    /// Fraction of the category's trace-B time inside windows, permille.
    pub overlap_permille: u64,
}

/// The full analyzer output.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DivergenceReport {
    /// Label of trace A (the reference).
    pub a_label: String,
    /// Label of trace B (the suspect).
    pub b_label: String,
    /// Attribution rows sorted by inflation, largest first.
    pub rows: Vec<DivergenceRow>,
    /// Wait-charging detail; `None` when either trace lacks
    /// utilization samples (then `rows` carries a `queueing` row).
    pub wait_attribution: Option<WaitAttribution>,
    /// Gossip-stage delay split: queueing vs contention vs lock wait.
    pub gossip_breakdown: Vec<DivergenceRow>,
    /// Merged ±2s windows around trace-B convictions.
    pub flap_windows: u64,
    /// Overlap of suspect stage time with those windows.
    pub flap_overlap: Vec<FlapOverlapRow>,
}

impl DivergenceReport {
    /// The top-ranked category above tolerance, if any.
    pub fn top(&self) -> Option<&DivergenceRow> {
        self.rows.iter().find(|r| r.above_tolerance)
    }

    /// Whether any category cleared tolerance.
    pub fn diverged(&self) -> bool {
        self.top().is_some()
    }

    /// Renders the report as a plain-text table (see [`render`]).
    pub fn render(&self) -> String {
        render(self)
    }
}

fn span_total(trace: &Trace, names: &[SpanName]) -> u64 {
    names
        .iter()
        .fold(0u64, |acc, n| acc.saturating_add(trace.span_total_ns(*n)))
}

/// Merged `[start, end)` windows around each conviction in `trace`.
fn flap_windows(trace: &Trace) -> Vec<(u64, u64)> {
    let code = SpanName::FdConvicted as u16;
    let mut points: Vec<u64> = trace
        .instants
        .iter()
        .filter(|i| i.name == code)
        .map(|i| i.ts)
        .collect();
    points.sort_unstable();
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for p in points {
        let (s, e) = (
            p.saturating_sub(FLAP_WINDOW_HALF_NS),
            p.saturating_add(FLAP_WINDOW_HALF_NS),
        );
        match windows.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => windows.push((s, e)),
        }
    }
    windows
}

fn overlap_with_windows(trace: &Trace, names: &[SpanName], windows: &[(u64, u64)]) -> (u64, u64) {
    let codes: Vec<u16> = names.iter().map(|n| *n as u16).collect();
    let mut total = 0u64;
    let mut overlap = 0u64;
    for s in &trace.spans {
        if !codes.contains(&s.name) {
            continue;
        }
        total = total.saturating_add(s.dur);
        let (b, e) = (s.ts, s.ts + s.dur);
        // First window that could intersect: the last with start <= e.
        let i = windows.partition_point(|w| w.1 <= b);
        for w in &windows[i..] {
            if w.0 >= e {
                break;
            }
            overlap += e.min(w.1).saturating_sub(b.max(w.0));
        }
    }
    (overlap, (overlap * 1000).checked_div(total).unwrap_or(0))
}

const CALC_SPANS: [SpanName; 2] = [SpanName::CalcRecalculate, SpanName::CalcPilSleep];
const GOSSIP_SPANS: [SpanName; 2] = [SpanName::GossipSendRound, SpanName::GossipReceive];

/// Calc's share of the sampled busy time, in milli. `None` when the
/// trace has no utilization samples (or they are all zero).
fn calc_busy_share_milli(trace: &Trace) -> Option<u64> {
    let code = SpanName::StageUtilization as u16;
    let (mut calc, mut total) = (0u64, 0u64);
    for c in trace.counters.iter().filter(|c| c.name == code) {
        total = total.saturating_add(c.value);
        if c.tid == crate::names::TID_CALC {
            calc = calc.saturating_add(c.value);
        }
    }
    (total > 0).then(|| calc * 1000 / total)
}

/// Stage-queue plus CPU-queue wait recorded by the trace, virtual ns.
fn wait_total(trace: &Trace) -> u64 {
    trace
        .metric(Metric::StageLateness)
        .sum
        .saturating_add(trace.metric(Metric::CpuQueueDelay).sum)
}

/// Compares trace B (suspect) against trace A (reference).
pub fn diverge(a: &Trace, b: &Trace) -> DivergenceReport {
    // Charge wait time to the stage occupying the processor. Without
    // busy samples on both sides the wait stays its own row.
    let wait_attribution = match (calc_busy_share_milli(a), calc_busy_share_milli(b)) {
        (Some(sa), Some(sb)) => Some(WaitAttribution {
            wait_a_ns: wait_total(a),
            wait_b_ns: wait_total(b),
            calc_share_a_milli: sa,
            calc_share_b_milli: sb,
        }),
        _ => None,
    };
    let (calc_charged_a, calc_charged_b) = match &wait_attribution {
        Some(w) => (
            w.wait_a_ns.saturating_mul(w.calc_share_a_milli) / 1000,
            w.wait_b_ns.saturating_mul(w.calc_share_b_milli) / 1000,
        ),
        None => (0, 0),
    };

    let mut rows = vec![
        DivergenceRow::build(
            "calc",
            span_total(a, &CALC_SPANS).saturating_add(calc_charged_a),
            span_total(b, &CALC_SPANS).saturating_add(calc_charged_b),
        ),
        DivergenceRow::build(
            "gossip",
            span_total(a, &GOSSIP_SPANS),
            span_total(b, &GOSSIP_SPANS),
        ),
        DivergenceRow::build(
            "lock",
            a.metric(Metric::LockWait).sum,
            b.metric(Metric::LockWait).sum,
        ),
        DivergenceRow::build(
            "net",
            a.metric(Metric::NetDelay).sum,
            b.metric(Metric::NetDelay).sum,
        ),
    ];
    if wait_attribution.is_none() {
        rows.push(DivergenceRow::build(
            "queueing",
            a.metric(Metric::StageLateness).sum,
            b.metric(Metric::StageLateness).sum,
        ));
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.inflation_ns));

    let gossip_breakdown = vec![
        DivergenceRow::build(
            "gossip.queueing",
            a.metric(Metric::StageLateness).sum,
            b.metric(Metric::StageLateness).sum,
        ),
        DivergenceRow::build(
            "gossip.contention",
            a.metric(Metric::CpuQueueDelay).sum,
            b.metric(Metric::CpuQueueDelay).sum,
        ),
        DivergenceRow::build(
            "gossip.lock_wait",
            a.metric(Metric::LockWait).sum,
            b.metric(Metric::LockWait).sum,
        ),
    ];

    let windows = flap_windows(b);
    let mut flap_overlap = Vec::new();
    for (label, names) in [("calc", &CALC_SPANS[..]), ("gossip", &GOSSIP_SPANS[..])] {
        let (overlap_ns, overlap_permille) = overlap_with_windows(b, names, &windows);
        flap_overlap.push(FlapOverlapRow {
            category: label.to_string(),
            overlap_ns,
            overlap_permille,
        });
    }

    DivergenceReport {
        a_label: a.meta.label.clone(),
        b_label: b.meta.label.clone(),
        rows,
        wait_attribution,
        gossip_breakdown,
        flap_windows: windows.len() as u64,
        flap_overlap,
    }
}

fn fmt_s(ns: u64) -> String {
    format!(
        "{}.{:03}s",
        ns / 1_000_000_000,
        (ns % 1_000_000_000) / 1_000_000
    )
}

fn fmt_ratio(milli: u64) -> String {
    if milli == u64::MAX {
        "inf".to_string()
    } else {
        format!("{}.{:02}x", milli / 1000, (milli % 1000) / 10)
    }
}

/// Renders the report as a plain-text table.
pub fn render(r: &DivergenceReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "divergence: A={:?} (reference) vs B={:?} (suspect)",
        r.a_label, r.b_label
    );
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>12} {:>12} {:>8}  flag",
        "category", "A total", "B total", "inflation", "ratio"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>12} {:>+11}s {:>8}  {}",
            row.category,
            fmt_s(row.a_total_ns),
            fmt_s(row.b_total_ns),
            row.inflation_ns / 1_000_000_000,
            fmt_ratio(row.ratio_milli),
            if row.above_tolerance { "DIVERGED" } else { "-" }
        );
    }
    if let Some(w) = &r.wait_attribution {
        let _ = writeln!(
            out,
            "stage/cpu wait charged by busy share: A {} (calc {}\u{2030}), B {} (calc {}\u{2030})",
            fmt_s(w.wait_a_ns),
            w.calc_share_a_milli,
            fmt_s(w.wait_b_ns),
            w.calc_share_b_milli
        );
    }
    let _ = writeln!(out, "gossip-stage delay breakdown (B vs A):");
    for row in &r.gossip_breakdown {
        let _ = writeln!(
            out,
            "  {:<16} {:>12} {:>12} {:>8}",
            row.category,
            fmt_s(row.a_total_ns),
            fmt_s(row.b_total_ns),
            fmt_ratio(row.ratio_milli)
        );
    }
    let _ = writeln!(out, "flap windows in B: {}", r.flap_windows);
    for f in &r.flap_overlap {
        let _ = writeln!(
            out,
            "  {:<16} {:>12} inside windows ({} permille of stage time)",
            f.category,
            fmt_s(f.overlap_ns),
            f.overlap_permille
        );
    }
    match r.top() {
        Some(t) => {
            let _ = writeln!(
                out,
                "verdict: top-ranked divergence is {:?} (+{}, {})",
                t.category,
                fmt_s(t.inflation_ns.max(0) as u64),
                fmt_ratio(t.ratio_milli)
            );
        }
        None => {
            let _ = writeln!(out, "verdict: no category above tolerance (traces agree)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{TID_CALC, TID_GOSSIP};
    use crate::Tracer;

    fn trace_with(calc_s: u64, gossip_s: u64, convictions: &[u64]) -> Trace {
        let mut t = Tracer::new();
        t.span_complete(
            SpanName::CalcRecalculate,
            0,
            TID_CALC,
            1_000_000_000,
            calc_s * 1_000_000_000,
            calc_s,
        );
        t.span_complete(
            SpanName::GossipSendRound,
            0,
            TID_GOSSIP,
            0,
            gossip_s * 1_000_000_000,
            1,
        );
        for &c in convictions {
            t.instant(SpanName::FdConvicted, 0, TID_GOSSIP, c, 1);
        }
        t.finish()
    }

    #[test]
    fn calc_inflation_tops_the_ranking() {
        let a = trace_with(10, 5, &[]);
        let b = trace_with(100, 6, &[2_000_000_000]);
        let r = diverge(&a, &b);
        assert!(r.diverged());
        assert_eq!(r.top().unwrap().category, "calc");
        assert_eq!(r.rows[0].category, "calc");
        assert_eq!(r.rows[0].inflation_ns, 90 * 1_000_000_000);
        assert!(r.rows[0].ratio_milli >= 10_000);
    }

    #[test]
    fn parity_traces_rank_nothing() {
        let a = trace_with(10, 5, &[]);
        let b = trace_with(11, 5, &[]);
        let r = diverge(&a, &b);
        assert!(!r.diverged(), "1.1x / 1s is under both tolerances");
        assert!(r.top().is_none());
    }

    #[test]
    fn small_categories_need_the_absolute_floor() {
        // 10x ratio but only 90ns of inflation: not flagged.
        let mut ta = Tracer::new();
        ta.span_complete(SpanName::CalcRecalculate, 0, TID_CALC, 0, 10, 0);
        let mut tb = Tracer::new();
        tb.span_complete(SpanName::CalcRecalculate, 0, TID_CALC, 0, 100, 0);
        let r = diverge(&ta.finish(), &tb.finish());
        assert!(!r.diverged());
    }

    #[test]
    fn wait_is_charged_to_the_busy_stage() {
        // A: light load — 10s of calc, 1s of gossip, 1s of wait.
        let mut ta = Tracer::new();
        ta.span_complete(
            SpanName::CalcRecalculate,
            0,
            TID_CALC,
            0,
            10_000_000_000,
            100,
        );
        ta.span_complete(
            SpanName::GossipSendRound,
            0,
            TID_GOSSIP,
            0,
            1_000_000_000,
            1,
        );
        ta.counter(SpanName::StageUtilization, 0, TID_CALC, 5_000_000_000, 900);
        ta.counter(
            SpanName::StageUtilization,
            0,
            TID_GOSSIP,
            5_000_000_000,
            100,
        );
        ta.metric(Metric::StageLateness, 1_000_000_000);
        // B: gossip spans balloon to 50s as *victims* of 300s of queue
        // wait behind calc, which holds 95% of the busy time.
        let mut tb = Tracer::new();
        tb.span_complete(
            SpanName::CalcRecalculate,
            0,
            TID_CALC,
            0,
            12_000_000_000,
            100,
        );
        tb.span_complete(
            SpanName::GossipSendRound,
            0,
            TID_GOSSIP,
            0,
            50_000_000_000,
            1,
        );
        tb.counter(SpanName::StageUtilization, 0, TID_CALC, 5_000_000_000, 950);
        tb.counter(SpanName::StageUtilization, 0, TID_GOSSIP, 5_000_000_000, 50);
        tb.metric(Metric::StageLateness, 300_000_000_000);
        let r = diverge(&ta.finish(), &tb.finish());
        let w = r.wait_attribution.as_ref().expect("both traces sampled");
        assert_eq!(w.calc_share_a_milli, 900);
        assert_eq!(w.calc_share_b_milli, 950);
        assert_eq!(w.wait_b_ns, 300_000_000_000);
        // calc row: 12 + 0.95*300 = 297s vs 10 + 0.9*1 = 10.9s. Gossip
        // inflated 50x but its +49s ranks below calc's +286s.
        assert_eq!(r.top().expect("diverged").category, "calc");
        assert_eq!(r.rows[0].b_total_ns, 297_000_000_000);
        assert!(r.rows.iter().all(|row| row.category != "queueing"));
        assert!(render(&r).contains("charged by busy share"));
    }

    #[test]
    fn flap_windows_merge_and_overlap() {
        // Convictions at 3s and 4s merge into one [1s, 6s) window;
        // the calc span [1s, 11s) overlaps it for 5s of its 10s.
        let a = trace_with(1, 1, &[]);
        let b = trace_with(10, 1, &[3_000_000_000, 4_000_000_000]);
        let r = diverge(&a, &b);
        assert_eq!(r.flap_windows, 1);
        let calc = r
            .flap_overlap
            .iter()
            .find(|f| f.category == "calc")
            .unwrap();
        assert_eq!(calc.overlap_ns, 5_000_000_000);
        assert_eq!(calc.overlap_permille, 500);
    }

    #[test]
    fn render_names_the_verdict() {
        let a = trace_with(10, 5, &[]);
        let b = trace_with(100, 6, &[]);
        let txt = render(&diverge(&a, &b));
        assert!(txt.contains("DIVERGED"));
        assert!(txt.contains("verdict: top-ranked divergence is \"calc\""));
        let same = render(&diverge(&a, &a));
        assert!(same.contains("traces agree"));
    }
}
