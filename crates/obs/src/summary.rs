//! Self-contained text summary ("flame report") of one trace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::names::{Metric, SpanName};
use crate::tracer::Trace;

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a per-span-name and per-metric summary as plain text.
pub fn summarize(trace: &Trace) -> String {
    let mut out = String::new();
    let m = &trace.meta;
    let _ = writeln!(
        out,
        "trace {:?}: seed {}, {} nodes, ended at {}",
        m.label,
        m.seed,
        m.n_nodes,
        fmt_ns(m.end_ns)
    );
    let _ = writeln!(
        out,
        "engine: scheduled {} fired {} cancelled {} pool {}/{} ({}% hit)",
        m.engine_scheduled,
        m.engine_fired,
        m.engine_cancelled,
        m.engine_pool_hits,
        m.engine_pool_hits + m.engine_pool_misses,
        (m.engine_pool_hits * 100)
            .checked_div(m.engine_pool_hits + m.engine_pool_misses)
            .unwrap_or(0)
    );

    // name -> (count, total, max)
    let mut by_name: BTreeMap<u16, (u64, u64, u64)> = BTreeMap::new();
    for s in &trace.spans {
        let e = by_name.entry(s.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 = e.1.saturating_add(s.dur);
        e.2 = e.2.max(s.dur);
    }
    let _ = writeln!(out, "\nspans (count / total / mean / max):");
    let mut rows: Vec<_> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(&b.0)));
    for (name, (count, total, max)) in rows {
        let _ = writeln!(
            out,
            "  {:<20} {:>8}  {:>12}  {:>10}  {:>10}",
            SpanName::str_of(name),
            count,
            fmt_ns(total),
            fmt_ns(total / count.max(1)),
            fmt_ns(max)
        );
    }

    let _ = writeln!(out, "\nmetrics (count / mean / p99 / max):");
    for m in Metric::ALL {
        let h = trace.metric(m);
        if h.count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<20} {:>8}  {:>10}  {:>10}  {:>10}",
            m.as_str(),
            h.count,
            h.mean(),
            h.percentile(99),
            h.max
        );
    }

    let instants = trace.instants.len();
    let convictions = trace
        .instants
        .iter()
        .filter(|i| i.name == SpanName::FdConvicted as u16)
        .count();
    let _ = writeln!(
        out,
        "\ninstants: {instants} total, {convictions} convictions; {} counter samples",
        trace.counters.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::{TID_CALC, TID_GOSSIP};
    use crate::Tracer;

    #[test]
    fn summary_mentions_the_heavy_hitters() {
        let mut t = Tracer::new();
        t.span_complete(
            SpanName::CalcRecalculate,
            0,
            TID_CALC,
            0,
            9_000_000_000,
            100,
        );
        t.span_complete(SpanName::GossipReceive, 0, TID_GOSSIP, 0, 1_000, 1);
        t.instant(SpanName::FdConvicted, 0, TID_GOSSIP, 5, 1);
        t.metric(Metric::LockWait, 123);
        let mut tr = t.finish();
        tr.meta.label = "sum".into();
        tr.meta.end_ns = 10_000_000_000;
        let s = summarize(&tr);
        assert!(s.contains("calc.recalculate"));
        assert!(s.contains("gossip.receive"));
        assert!(s.contains("lock_wait_ns"));
        assert!(s.contains("1 convictions"));
        // calc (9s) sorts above gossip (1us).
        let calc_at = s.find("calc.recalculate").unwrap();
        let gossip_at = s.find("gossip.receive").unwrap();
        assert!(calc_at < gossip_at);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(5), "5ns");
        assert_eq!(fmt_ns(5_000), "5us");
        assert_eq!(fmt_ns(5_250_000), "5.250ms");
        assert_eq!(fmt_ns(5_250_000_000), "5.250s");
    }
}
