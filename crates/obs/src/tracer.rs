//! The tracer: span collection on the simulator's virtual clock.
//!
//! All timestamps are raw `u64` nanoseconds of virtual time so this
//! crate stays a leaf (no dependency on `scalecheck-sim`); emitters
//! convert from `SimTime` at the call site.
//!
//! Determinism contract: a [`Trace`] is a pure function of the emission
//! call sequence. Events are stored in emission order, names are `u16`
//! codes, and every field is an integer — so `serde_json::to_string`
//! of the same (config, seed) run is byte-identical across processes,
//! thread counts, and builds.

use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;
use crate::names::{Metric, METRIC_COUNT};

/// Tracing knobs carried by `ScenarioConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch; when false no tracer is installed and every
    /// emission site reduces to one thread-local flag check.
    pub enabled: bool,
    /// Virtual-time cadence of the per-stage utilization sampler, in
    /// nanoseconds.
    pub sample_every_ns: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample_every_ns: 5_000_000_000,
        }
    }
}

impl TraceConfig {
    /// An enabled config with the default sampling cadence.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// A completed span: `[ts, ts + dur)` on track `(pid, tid)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// [`crate::SpanName`] discriminant.
    pub name: u16,
    /// Process (node index, or [`crate::ENGINE_PID`]).
    pub pid: u32,
    /// Track within the process (stage).
    pub tid: u32,
    /// Start, virtual ns.
    pub ts: u64,
    /// Duration, virtual ns.
    pub dur: u64,
    /// Name-specific payload (op count, peer id, ...).
    pub arg: u64,
}

/// A point event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstantEvent {
    /// [`crate::SpanName`] discriminant.
    pub name: u16,
    /// Process (node index).
    pub pid: u32,
    /// Track within the process.
    pub tid: u32,
    /// Virtual ns.
    pub ts: u64,
    /// Name-specific payload.
    pub arg: u64,
}

/// One sample of a counter series (utilization, event rate).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// [`crate::SpanName`] discriminant.
    pub name: u16,
    /// Process (node index, or [`crate::ENGINE_PID`]).
    pub pid: u32,
    /// Track within the process.
    pub tid: u32,
    /// Virtual ns.
    pub ts: u64,
    /// Sample value (permille for utilization, count for rates).
    pub value: u64,
}

/// Run identity and engine counters stamped into a finished trace.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human label for the run (bug id, mode).
    pub label: String,
    /// Engine RNG seed.
    pub seed: u64,
    /// Cluster size.
    pub n_nodes: u32,
    /// Virtual time when the run ended, ns.
    pub end_ns: u64,
    /// Engine events scheduled.
    pub engine_scheduled: u64,
    /// Engine events fired.
    pub engine_fired: u64,
    /// Engine events cancelled before firing.
    pub engine_cancelled: u64,
    /// Slab-pool slot reuses.
    pub engine_pool_hits: u64,
    /// Slab-pool slot growths.
    pub engine_pool_misses: u64,
}

/// A finished trace: meta, events in emission order, and the fixed
/// metric histogram array.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Run identity and engine counters.
    pub meta: TraceMeta,
    /// Completed spans in completion order.
    pub spans: Vec<SpanEvent>,
    /// Point events in emission order.
    pub instants: Vec<InstantEvent>,
    /// Counter samples in emission order.
    pub counters: Vec<CounterSample>,
    /// One histogram per [`Metric`], in discriminant order.
    pub metrics: Vec<LogHistogram>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            meta: TraceMeta::default(),
            spans: Vec::new(),
            instants: Vec::new(),
            counters: Vec::new(),
            metrics: vec![LogHistogram::new(); METRIC_COUNT],
        }
    }
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The histogram for `m`. Tolerates traces from older builds with
    /// fewer metric slots by returning an empty histogram.
    pub fn metric(&self, m: Metric) -> LogHistogram {
        self.metrics.get(m as usize).cloned().unwrap_or_default()
    }

    /// Whether the trace recorded anything at all.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.instants.is_empty()
            && self.counters.is_empty()
            && self.metrics.iter().all(|h| h.count == 0)
    }

    /// Total duration of spans with the given name code.
    pub fn span_total_ns(&self, name: crate::SpanName) -> u64 {
        let code = name as u16;
        self.spans
            .iter()
            .filter(|s| s.name == code)
            .fold(0u64, |acc, s| acc.saturating_add(s.dur))
    }
}

/// Handle to an open span (slab slot + generation; stale ends panic in
/// debug and are dropped in release).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId {
    idx: u32,
    gen: u32,
}

#[derive(Clone, Copy)]
struct OpenSlot {
    name: u16,
    pid: u32,
    tid: u32,
    ts: u64,
    gen: u32,
    live: bool,
}

/// Collects spans, instants, counters, and metric samples for one run.
///
/// The open-span table is a slab with a free list: `span_start` /
/// `span_end` recycle slots, so steady-state tracing does not grow the
/// table. Completed events append to plain `Vec`s (amortized growth,
/// no per-event boxing).
pub struct Tracer {
    trace: Trace,
    open: Vec<OpenSlot>,
    free: Vec<u32>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh tracer with empty storage.
    pub fn new() -> Self {
        Tracer {
            trace: Trace::new(),
            open: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Opens a span at `ts`; close it with [`Tracer::span_end`].
    pub fn span_start(&mut self, name: crate::SpanName, pid: u32, tid: u32, ts: u64) -> SpanId {
        let slot = OpenSlot {
            name: name as u16,
            pid,
            tid,
            ts,
            gen: 0,
            live: true,
        };
        match self.free.pop() {
            Some(idx) => {
                let s = &mut self.open[idx as usize];
                let gen = s.gen.wrapping_add(1);
                *s = OpenSlot { gen, ..slot };
                SpanId { idx, gen }
            }
            None => {
                let idx = self.open.len() as u32;
                self.open.push(slot);
                SpanId { idx, gen: 0 }
            }
        }
    }

    /// Closes an open span at `end_ts` with payload `arg`. Stale or
    /// double ends are ignored (debug-asserted).
    pub fn span_end(&mut self, id: SpanId, end_ts: u64, arg: u64) {
        let Some(s) = self.open.get_mut(id.idx as usize) else {
            debug_assert!(false, "span_end on unknown slot");
            return;
        };
        if !s.live || s.gen != id.gen {
            debug_assert!(false, "span_end on stale SpanId");
            return;
        }
        s.live = false;
        let slot = *s;
        self.free.push(id.idx);
        self.trace.spans.push(SpanEvent {
            name: slot.name,
            pid: slot.pid,
            tid: slot.tid,
            ts: slot.ts,
            dur: end_ts.saturating_sub(slot.ts),
            arg,
        });
    }

    /// Records a span whose end time is already known.
    #[inline]
    pub fn span_complete(
        &mut self,
        name: crate::SpanName,
        pid: u32,
        tid: u32,
        ts: u64,
        dur: u64,
        arg: u64,
    ) {
        self.trace.spans.push(SpanEvent {
            name: name as u16,
            pid,
            tid,
            ts,
            dur,
            arg,
        });
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&mut self, name: crate::SpanName, pid: u32, tid: u32, ts: u64, arg: u64) {
        self.trace.instants.push(InstantEvent {
            name: name as u16,
            pid,
            tid,
            ts,
            arg,
        });
    }

    /// Records a counter sample.
    #[inline]
    pub fn counter(&mut self, name: crate::SpanName, pid: u32, tid: u32, ts: u64, value: u64) {
        self.trace.counters.push(CounterSample {
            name: name as u16,
            pid,
            tid,
            ts,
            value,
        });
    }

    /// Records a metric sample into its histogram.
    #[inline]
    pub fn metric(&mut self, m: Metric, v: u64) {
        self.trace.metrics[m as usize].record(v);
    }

    /// Number of spans still open (should be zero at run end).
    pub fn open_spans(&self) -> usize {
        self.open.iter().filter(|s| s.live).count()
    }

    /// Finishes collection and returns the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanName;

    #[test]
    fn start_end_produces_a_span() {
        let mut t = Tracer::new();
        let id = t.span_start(SpanName::EngineRun, 3, 1, 100);
        t.span_end(id, 350, 7);
        let tr = t.finish();
        assert_eq!(tr.spans.len(), 1);
        let s = tr.spans[0];
        assert_eq!(
            (s.name, s.pid, s.tid, s.ts, s.dur, s.arg),
            (SpanName::EngineRun as u16, 3, 1, 100, 250, 7)
        );
    }

    #[test]
    fn slab_recycles_slots() {
        let mut t = Tracer::new();
        for i in 0..1000u64 {
            let id = t.span_start(SpanName::LockWait, 0, 0, i);
            t.span_end(id, i + 1, 0);
        }
        assert_eq!(t.open.len(), 1, "sequential spans reuse one slot");
        assert_eq!(t.finish().spans.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "stale SpanId")]
    #[cfg(debug_assertions)]
    fn double_end_is_caught_in_debug() {
        let mut t = Tracer::new();
        let id = t.span_start(SpanName::LockWait, 0, 0, 0);
        t.span_end(id, 1, 0);
        t.span_end(id, 2, 0);
    }

    #[test]
    fn metric_lands_in_the_right_histogram() {
        let mut t = Tracer::new();
        t.metric(Metric::LockWait, 1024);
        t.metric(Metric::NetDelay, 1);
        let tr = t.finish();
        assert_eq!(tr.metric(Metric::LockWait).count, 1);
        assert_eq!(tr.metric(Metric::LockWait).max, 1024);
        assert_eq!(tr.metric(Metric::NetDelay).count, 1);
        assert_eq!(tr.metric(Metric::LockHold).count, 0);
    }

    #[test]
    fn trace_json_round_trips() {
        let mut t = Tracer::new();
        t.span_complete(SpanName::CalcRecalculate, 2, 1, 10, 90, 42);
        t.instant(SpanName::FdConvicted, 0, 0, 55, 9);
        t.counter(SpanName::StageUtilization, 1, 0, 5_000_000_000, 870);
        t.metric(Metric::CalcOps, 42);
        let mut tr = t.finish();
        tr.meta.label = "unit".to_string();
        tr.meta.seed = 7;
        let json = serde_json::to_string(&tr).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tr);
        // Serialization is deterministic.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn span_total_sums_by_name() {
        let mut t = Tracer::new();
        t.span_complete(SpanName::GossipReceive, 0, 0, 0, 10, 0);
        t.span_complete(SpanName::GossipReceive, 1, 0, 5, 20, 0);
        t.span_complete(SpanName::CalcRecalculate, 0, 1, 0, 99, 0);
        let tr = t.finish();
        assert_eq!(tr.span_total_ns(SpanName::GossipReceive), 30);
        assert_eq!(tr.span_total_ns(SpanName::CalcRecalculate), 99);
        assert_eq!(tr.span_total_ns(SpanName::LockWait), 0);
    }
}
