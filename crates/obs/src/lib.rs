//! `scalecheck-obs`: virtual-time tracing, profiling, and divergence
//! diagnosis.
//!
//! The paper's argument is diagnostic — colocated testing diverges from
//! real deployments because the calc stage starves the gossip stage —
//! so the repro needs more than flap counts: per-stage timelines,
//! queueing breakdowns, and a way to *attribute* a divergence between
//! two runs of the same scenario. This crate provides:
//!
//! * [`Tracer`] — span/instant/counter collection on the virtual clock
//!   ([`tracer`]), with interned [`SpanName`]s and slab-backed open
//!   spans;
//! * [`LogHistogram`] metrics ([`hist`]) keyed by [`Metric`];
//! * exporters — Chrome `trace_event` JSON loadable in Perfetto
//!   ([`chrome`]) and a text summary ([`summary`]);
//! * the divergence analyzer ([`diverge`]) ranking which subsystem's
//!   time inflated between two traces of the same scenario.
//!
//! # Runtime
//!
//! Emitters across the workspace (`sim`, `gossip`, `ring`, `cluster`)
//! call the free functions below, which consult a **thread-local**
//! tracer. A run installs a tracer before driving the engine and takes
//! it back afterwards; parallel sweep workers each carry their own, so
//! traces are identical at any `--jobs` level. When no tracer is
//! installed every emission site is one `Cell<bool>` load and a
//! predictable branch — no allocation, no locking (guarded by the
//! counting-allocator benchmark in `bench_engine`).
//!
//! This crate is a dependency leaf: timestamps are raw `u64` virtual
//! nanoseconds, converted from `SimTime` at the call site.

use std::cell::{Cell, RefCell};

pub mod chrome;
pub mod diverge;
pub mod hist;
pub mod names;
pub mod summary;
pub mod tracer;

pub use chrome::{from_chrome_json, to_chrome_json};
pub use diverge::{diverge, DivergenceReport, DivergenceRow};
pub use hist::LogHistogram;
pub use names::{Metric, SpanName, ENGINE_PID, METRIC_COUNT, TID_CALC, TID_GOSSIP, TID_REQUEST};
pub use summary::summarize;
pub use tracer::{
    CounterSample, InstantEvent, SpanEvent, SpanId, Trace, TraceConfig, TraceMeta, Tracer,
};

thread_local! {
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Installs a tracer on this thread; subsequent emissions record into
/// it until [`take`]. Replaces any leftover tracer.
pub fn install(t: Tracer) {
    TRACER.with(|slot| *slot.borrow_mut() = Some(t));
    ENABLED.with(|e| e.set(true));
}

/// Removes and returns this thread's tracer, disabling emission.
pub fn take() -> Option<Tracer> {
    ENABLED.with(|e| e.set(false));
    TRACER.with(|slot| slot.borrow_mut().take())
}

/// Drops any installed tracer (e.g. one orphaned by a panicked run).
pub fn clear() {
    let _ = take();
}

/// Whether a tracer is installed on this thread. One `Cell` load —
/// this is the entire disabled-path cost of every emission site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Runs `f` against the installed tracer, if any.
#[inline]
pub fn with<R>(f: impl FnOnce(&mut Tracer) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    TRACER.with(|slot| slot.borrow_mut().as_mut().map(f))
}

/// Records a completed span `[ts, ts + dur)` if tracing is enabled.
#[inline]
pub fn span(name: SpanName, pid: u32, tid: u32, ts: u64, dur: u64, arg: u64) {
    if !enabled() {
        return;
    }
    with(|t| t.span_complete(name, pid, tid, ts, dur, arg));
}

/// Records a point event if tracing is enabled.
#[inline]
pub fn instant(name: SpanName, pid: u32, tid: u32, ts: u64, arg: u64) {
    if !enabled() {
        return;
    }
    with(|t| t.instant(name, pid, tid, ts, arg));
}

/// Records a counter sample if tracing is enabled.
#[inline]
pub fn counter(name: SpanName, pid: u32, tid: u32, ts: u64, value: u64) {
    if !enabled() {
        return;
    }
    with(|t| t.counter(name, pid, tid, ts, value));
}

/// Records a metric sample if tracing is enabled.
#[inline]
pub fn metric(m: Metric, v: u64) {
    if !enabled() {
        return;
    }
    with(|t| t.metric(m, v));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emissions_are_dropped_when_no_tracer_is_installed() {
        clear();
        assert!(!enabled());
        span(SpanName::LockWait, 0, 0, 0, 5, 0);
        metric(Metric::LockWait, 5);
        assert!(take().is_none());
    }

    #[test]
    fn install_emit_take_round_trip() {
        install(Tracer::new());
        assert!(enabled());
        span(SpanName::GossipReceive, 1, TID_GOSSIP, 10, 5, 0);
        instant(SpanName::FdConvicted, 1, TID_GOSSIP, 12, 4);
        counter(SpanName::StageUtilization, 1, TID_CALC, 15, 500);
        metric(Metric::GossipDeltas, 3);
        let trace = take().expect("tracer installed").finish();
        assert!(!enabled());
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.instants.len(), 1);
        assert_eq!(trace.counters.len(), 1);
        assert_eq!(trace.metric(Metric::GossipDeltas).count, 1);
    }

    #[test]
    fn install_replaces_leftover_tracer() {
        install(Tracer::new());
        span(SpanName::LockWait, 0, 0, 0, 1, 0);
        install(Tracer::new());
        let trace = take().expect("second tracer").finish();
        assert!(trace.spans.is_empty(), "fresh tracer has no carryover");
        clear();
    }
}
