//! Chrome `trace_event` JSON export (Perfetto-loadable).
//!
//! Layout: one Chrome *process* per node (`pid` = node index, plus a
//! synthetic engine process), one *thread* per stage (`tid` 0 =
//! gossip, 1 = calc). Spans become balanced `B`/`E` pairs; zero-length
//! spans export as instants so the `B`/`E` stream never interleaves
//! improperly; counters become `C` events rendered as counter tracks.
//!
//! Timestamps are virtual microseconds with nanosecond fraction (the
//! `trace_event` format's unit), rendered with a fixed three-digit
//! fraction so output is byte-deterministic.
//!
//! The full native [`Trace`] — histograms included, which the
//! `traceEvents` array cannot carry — rides along under the top-level
//! `"scalecheck"` key. Chrome and Perfetto ignore unknown top-level
//! keys; [`from_chrome_json`] round-trips through it, so one file
//! serves both the viewer and the divergence analyzer.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::names::{SpanName, ENGINE_PID, TID_CALC, TID_GOSSIP, TID_REQUEST};
use crate::tracer::Trace;

fn push_ts(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn thread_label(pid: u32, tid: u32) -> &'static str {
    if pid == ENGINE_PID {
        return "engine";
    }
    match tid {
        TID_GOSSIP => "gossip",
        TID_CALC => "calc",
        TID_REQUEST => "request",
        _ => "aux",
    }
}

fn counter_label(name: u16, tid: u32) -> &'static str {
    match SpanName::from_u16(name) {
        Some(SpanName::StageUtilization) if tid == TID_CALC => "util.calc",
        Some(SpanName::StageUtilization) if tid == TID_REQUEST => "util.request",
        Some(SpanName::StageUtilization) => "util.gossip",
        Some(SpanName::EngineEvents) => "events_per_s",
        _ => SpanName::str_of(name),
    }
}

enum Ev<'a> {
    End(&'a crate::SpanEvent),
    Inst {
        name: u16,
        pid: u32,
        tid: u32,
        ts: u64,
        arg: u64,
    },
    Count(&'a crate::CounterSample),
    Begin(&'a crate::SpanEvent),
}

impl Ev<'_> {
    fn key(&self) -> (u64, u8) {
        match self {
            // At equal timestamps a span's end sorts before the next
            // span's begin, keeping each serial track balanced.
            Ev::End(s) => (s.ts + s.dur, 0),
            Ev::Inst { ts, .. } => (*ts, 1),
            Ev::Count(c) => (c.ts, 2),
            Ev::Begin(s) => (s.ts, 3),
        }
    }
}

/// Renders a trace as a Chrome `trace_event` JSON object string.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut evs: Vec<Ev<'_>> =
        Vec::with_capacity(trace.spans.len() * 2 + trace.instants.len() + trace.counters.len());
    for s in &trace.spans {
        if s.dur == 0 {
            evs.push(Ev::Inst {
                name: s.name,
                pid: s.pid,
                tid: s.tid,
                ts: s.ts,
                arg: s.arg,
            });
        } else {
            evs.push(Ev::Begin(s));
            evs.push(Ev::End(s));
        }
    }
    for i in &trace.instants {
        evs.push(Ev::Inst {
            name: i.name,
            pid: i.pid,
            tid: i.tid,
            ts: i.ts,
            arg: i.arg,
        });
    }
    for c in &trace.counters {
        evs.push(Ev::Count(c));
    }
    evs.sort_by_key(Ev::key);

    // Metadata rows for every (pid, tid) seen, in sorted order.
    let mut tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in &evs {
        let (pid, tid) = match e {
            Ev::Begin(s) | Ev::End(s) => (s.pid, s.tid),
            Ev::Inst { pid, tid, .. } => (*pid, *tid),
            Ev::Count(c) => (c.pid, c.tid),
        };
        tracks.insert((pid, tid));
    }

    let mut out = String::with_capacity(evs.len() * 96 + 4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    let mut last_pid = None;
    for &(pid, tid) in &tracks {
        if last_pid != Some(pid) {
            last_pid = Some(pid);
            sep(&mut out);
            let pname = if pid == ENGINE_PID {
                "engine".to_string()
            } else {
                format!("node {pid}")
            };
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            );
        }
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            thread_label(pid, tid)
        );
    }
    for e in &evs {
        sep(&mut out);
        match e {
            Ev::Begin(s) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"B\",\"pid\":{},\"tid\":{},\"ts\":",
                    SpanName::str_of(s.name),
                    s.pid,
                    s.tid
                );
                push_ts(&mut out, s.ts);
                let _ = write!(out, ",\"args\":{{\"v\":{}}}}}", s.arg);
            }
            Ev::End(s) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"E\",\"pid\":{},\"tid\":{},\"ts\":",
                    SpanName::str_of(s.name),
                    s.pid,
                    s.tid
                );
                push_ts(&mut out, s.ts + s.dur);
                out.push('}');
            }
            Ev::Inst {
                name,
                pid,
                tid,
                ts,
                arg,
            } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":",
                    SpanName::str_of(*name)
                );
                push_ts(&mut out, *ts);
                let _ = write!(out, ",\"args\":{{\"v\":{arg}}}}}");
            }
            Ev::Count(c) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{},\"tid\":{},\"ts\":",
                    counter_label(c.name, c.tid),
                    c.pid,
                    c.tid
                );
                push_ts(&mut out, c.ts);
                let _ = write!(out, ",\"args\":{{\"v\":{}}}}}", c.value);
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"scalecheck\":");
    out.push_str(&serde_json::to_string(trace).expect("trace serializes"));
    out.push('}');
    out
}

/// Parses a Chrome trace file produced by [`to_chrome_json`] back into
/// the native [`Trace`] via its embedded `"scalecheck"` key.
pub fn from_chrome_json(json: &str) -> Result<Trace, String> {
    let v: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    let native = obj
        .iter()
        .find(|(k, _)| k == "scalecheck")
        .map(|(_, v)| v.clone())
        .ok_or("missing \"scalecheck\" key (not a scalecheck trace?)")?;
    serde_json::from_value(native).map_err(|e| format!("bad native trace: {e:?}"))
}

/// Validates the `traceEvents` stream: parses as JSON and checks that
/// on every `(pid, tid)` track the `B`/`E` events are balanced with
/// matching names. Returns the number of events checked.
pub fn validate_chrome(json: &str) -> Result<usize, String> {
    let v: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let obj = v.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let field = |e: &serde_json::Value, k: &str| -> Option<serde_json::Value> {
        e.as_object()?
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.clone())
    };
    for (i, e) in events.iter().enumerate() {
        let ph = field(e, "ph")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = field(e, "name")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let pid = field(e, "pid").and_then(|v| v.as_f64()).unwrap_or(-1.0) as u64;
        let tid = field(e, "tid").and_then(|v| v.as_f64()).unwrap_or(-1.0) as u64;
        match ph.as_str() {
            "B" => stacks.entry((pid, tid)).or_default().push(name),
            "E" => {
                let open = stacks
                    .entry((pid, tid))
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: E \"{name}\" with no open B"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes B \"{open}\" on track ({pid},{tid})"
                    ));
                }
            }
            "M" | "i" | "C" | "X" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed B \"{open}\" on track ({pid},{tid})"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metric, Tracer};

    fn sample_trace() -> Trace {
        let mut t = Tracer::new();
        t.span_complete(SpanName::GossipSendRound, 0, TID_GOSSIP, 1000, 500, 3);
        t.span_complete(SpanName::GossipReceive, 0, TID_GOSSIP, 1500, 250, 1);
        t.span_complete(SpanName::CalcRecalculate, 1, TID_CALC, 1200, 900, 640);
        // Zero-duration span exports as an instant, not B/E.
        t.span_complete(SpanName::LockWait, 1, TID_CALC, 1200, 0, 0);
        let id = t.span_start(SpanName::EngineRun, ENGINE_PID, 0, 0);
        t.span_end(id, 10_000, 4);
        t.instant(SpanName::FdConvicted, 0, TID_GOSSIP, 1700, 1);
        t.counter(SpanName::StageUtilization, 1, TID_CALC, 5000, 800);
        t.metric(Metric::LockWait, 77);
        let mut tr = t.finish();
        tr.meta.label = "chrome-unit".into();
        tr.meta.seed = 3;
        tr.meta.n_nodes = 2;
        tr
    }

    #[test]
    fn export_validates_and_balances() {
        let tr = sample_trace();
        let json = to_chrome_json(&tr);
        let n = validate_chrome(&json).expect("well-formed");
        assert!(n > 8, "got {n} events");
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("gossip.send_round"));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn ends_sort_before_begins_at_equal_ts() {
        // receive starts exactly when send_round ends on the same track.
        let mut t = Tracer::new();
        t.span_complete(SpanName::GossipReceive, 0, 0, 500, 100, 0);
        t.span_complete(SpanName::GossipSendRound, 0, 0, 0, 500, 0);
        let json = to_chrome_json(&t.finish());
        validate_chrome(&json).expect("adjacent spans stay balanced");
    }

    #[test]
    fn native_trace_round_trips_through_chrome_file() {
        let tr = sample_trace();
        let json = to_chrome_json(&tr);
        let back = from_chrome_json(&json).expect("parses");
        assert_eq!(back, tr);
        // Byte-determinism of the whole artifact.
        assert_eq!(to_chrome_json(&back), json);
    }

    #[test]
    fn from_chrome_json_rejects_foreign_files() {
        assert!(from_chrome_json("{\"traceEvents\":[]}").is_err());
        assert!(from_chrome_json("not json").is_err());
    }

    #[test]
    fn validator_rejects_unbalanced_streams() {
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1}\
        ]}";
        assert!(validate_chrome(bad).unwrap_err().contains("unclosed"));
        let crossed = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"pid\":0,\"tid\":0,\"ts\":1},\
            {\"name\":\"b\",\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":2}\
        ]}";
        assert!(validate_chrome(crossed).unwrap_err().contains("closes"));
    }
}
