//! Interned span and metric names.
//!
//! Span names are a closed enum with explicit discriminants rather than
//! `&'static str` pointers: traces serialize the `u16`, so the on-disk
//! bytes are independent of link order and identical across builds —
//! part of the byte-identical-trace contract.

/// Track id for the gossip stage of a node (Chrome `tid`).
pub const TID_GOSSIP: u32 = 0;
/// Track id for the calc stage of a node (Chrome `tid`).
pub const TID_CALC: u32 = 1;
/// Track id for client-request service billed on a node (Chrome `tid`).
pub const TID_REQUEST: u32 = 2;
/// Synthetic process id for engine-level spans (real nodes use their
/// node index, which is always far below this).
pub const ENGINE_PID: u32 = 1_000_000;

/// Every span, instant, and counter name the workspace emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum SpanName {
    /// One `Engine::run_until` call (engine track).
    EngineRun = 0,
    /// A gossip-stage send-round task: pick peers, serialize syns.
    GossipSendRound = 1,
    /// A gossip-stage receive task: handle one syn/ack/ack2.
    GossipReceive = 2,
    /// A calc-stage pending-range recalculation (executed compute).
    CalcRecalculate = 3,
    /// A calc-stage PIL sleep standing in for a memoized compute.
    CalcPilSleep = 4,
    /// Time a task spent parked waiting for the ring lock.
    LockWait = 5,
    /// A pending-range calculator invocation (ring layer).
    RingPendingCalc = 6,
    /// Instant: a failure detector convicted a peer (arg = peer id).
    FdConvicted = 7,
    /// Instant: a node crashed (OOM or injected).
    NodeCrashed = 8,
    /// Instant: a fault-plan event fired (arg = event index).
    FaultInjected = 9,
    /// Instant: a node announced a status change (arg = status code).
    StatusAnnounced = 10,
    /// Counter: per-stage utilization over the last sample window, in
    /// permille of virtual time.
    StageUtilization = 11,
    /// Counter: engine events fired in the last virtual second.
    EngineEvents = 12,
}

impl SpanName {
    /// The dotted display name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanName::EngineRun => "engine.run",
            SpanName::GossipSendRound => "gossip.send_round",
            SpanName::GossipReceive => "gossip.receive",
            SpanName::CalcRecalculate => "calc.recalculate",
            SpanName::CalcPilSleep => "calc.pil_sleep",
            SpanName::LockWait => "lock.wait",
            SpanName::RingPendingCalc => "ring.pending_calc",
            SpanName::FdConvicted => "fd.convicted",
            SpanName::NodeCrashed => "node.crashed",
            SpanName::FaultInjected => "fault.injected",
            SpanName::StatusAnnounced => "status.announced",
            SpanName::StageUtilization => "stage.utilization",
            SpanName::EngineEvents => "engine.events",
        }
    }

    /// Reverses the stored discriminant; `None` for unknown codes (a
    /// trace written by a newer build).
    pub fn from_u16(code: u16) -> Option<SpanName> {
        Some(match code {
            0 => SpanName::EngineRun,
            1 => SpanName::GossipSendRound,
            2 => SpanName::GossipReceive,
            3 => SpanName::CalcRecalculate,
            4 => SpanName::CalcPilSleep,
            5 => SpanName::LockWait,
            6 => SpanName::RingPendingCalc,
            7 => SpanName::FdConvicted,
            8 => SpanName::NodeCrashed,
            9 => SpanName::FaultInjected,
            10 => SpanName::StatusAnnounced,
            11 => SpanName::StageUtilization,
            12 => SpanName::EngineEvents,
            _ => return None,
        })
    }

    /// Display name for a raw code, tolerating unknown codes.
    pub fn str_of(code: u16) -> &'static str {
        SpanName::from_u16(code).map_or("unknown", SpanName::as_str)
    }
}

/// Histogram-backed scalar distributions, one fixed slot per variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum Metric {
    /// Queueing delay between enqueue and begin on a stage (ns).
    StageLateness = 0,
    /// Stage queue depth observed at each push.
    QueueDepth = 1,
    /// Virtual lock wait time (ns).
    LockWait = 2,
    /// Virtual lock hold time (ns).
    LockHold = 3,
    /// CPU run-queue delay before a compute block starts (ns).
    CpuQueueDelay = 4,
    /// End-to-end calc task duration (ns).
    CalcDuration = 5,
    /// Abstract ops per pending-range calculation.
    CalcOps = 6,
    /// Deltas shipped per gossip syn/ack exchange.
    GossipDeltas = 7,
    /// Network delivery delay offered per message (ns).
    NetDelay = 8,
    /// End-to-end client request latency (ns), traffic datapath.
    RequestLatency = 9,
    /// Coordinator-to-replica round trip (ns), traffic datapath.
    ReplicaRtt = 10,
}

/// Number of [`Metric`] variants; traces always carry all of them.
pub const METRIC_COUNT: usize = 11;

impl Metric {
    /// All metrics in discriminant order.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::StageLateness,
        Metric::QueueDepth,
        Metric::LockWait,
        Metric::LockHold,
        Metric::CpuQueueDelay,
        Metric::CalcDuration,
        Metric::CalcOps,
        Metric::GossipDeltas,
        Metric::NetDelay,
        Metric::RequestLatency,
        Metric::ReplicaRtt,
    ];

    /// Short display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Metric::StageLateness => "stage_lateness_ns",
            Metric::QueueDepth => "queue_depth",
            Metric::LockWait => "lock_wait_ns",
            Metric::LockHold => "lock_hold_ns",
            Metric::CpuQueueDelay => "cpu_queue_delay_ns",
            Metric::CalcDuration => "calc_duration_ns",
            Metric::CalcOps => "calc_ops",
            Metric::GossipDeltas => "gossip_deltas",
            Metric::NetDelay => "net_delay_ns",
            Metric::RequestLatency => "request_latency_ns",
            Metric::ReplicaRtt => "replica_rtt_ns",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_name_codes_round_trip() {
        for code in 0u16..32 {
            if let Some(name) = SpanName::from_u16(code) {
                assert_eq!(name as u16, code);
                assert!(!name.as_str().is_empty());
            }
        }
        assert_eq!(SpanName::from_u16(999), None);
        assert_eq!(SpanName::str_of(999), "unknown");
    }

    #[test]
    fn metric_all_matches_discriminants() {
        assert_eq!(Metric::ALL.len(), METRIC_COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i);
        }
    }
}
