//! End-to-end explorer contracts: the committed witness replays
//! bit-identically, discovery-plus-shrink finds it from scratch, and
//! the shrinker's 1-minimality guarantee holds on randomized
//! predicates.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use scalecheck_explore::{
    explore_cell, shrink_swaps, CellPlan, ExploreOpts, ScheduleWitness, Target,
};
use scalecheck_sim::TieSwap;

fn committed_witness() -> ScheduleWitness {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/witnesses/race_40_1_real.json"
    );
    let text = std::fs::read_to_string(path).expect("committed witness readable");
    ScheduleWitness::from_json(&text).expect("committed witness parses")
}

/// Regression: the witness `explore_run` discovered and shrank stays
/// replayable from nothing — same triples, same verdict flip, same
/// perturbed-report digest. Any engine or runner change that breaks
/// schedule determinism trips this first.
#[test]
fn committed_witness_replays_bit_identically() {
    let w = committed_witness();
    assert!(w.flips(), "stored triples must classify as a flip");
    let replay = w.replay();
    assert_eq!(replay.baseline, w.baseline, "identity baseline diverged");
    assert_eq!(replay.perturbed, w.perturbed, "perturbed triple diverged");
    assert!(replay.flipped, "witness no longer flips the verdict");
    assert_eq!(
        replay.report_digest, w.report_digest,
        "perturbed report is not bit-identical"
    );
}

/// The full discovery pipeline on the committed witness's cell: the
/// search must find a verdict flip among targeted swaps and shrink it
/// to a 1-minimal witness — deterministically the same single swap the
/// committed witness pins.
#[test]
fn explorer_rediscovers_the_committed_witness() {
    let plan = CellPlan {
        bug: "race".into(),
        n_nodes: 40,
        seed: 1,
        target: Target::Real,
    };
    let opts = ExploreOpts {
        budget_secs: 600,
        max_evals: 64,
        shuffles: 0,
        max_swap_candidates: 1024,
        ..ExploreOpts::default()
    };
    let deadline = Instant::now() + Duration::from_secs(opts.budget_secs);
    let outcome = explore_cell(&plan, &opts, deadline);
    assert!(outcome.flips_found >= 1, "search must find a flip");
    let witness = outcome.witness.expect("flip must yield a witness");
    assert_eq!(
        witness.tie_order,
        committed_witness().tie_order,
        "discovery is deterministic: same minimal perturbation"
    );
    assert!(
        witness.tie_order.swaps.len() == 1,
        "shrinker must reach a single-swap core"
    );
}

fn swap_set(seqs: &[u64]) -> Vec<TieSwap> {
    seqs.iter().map(|&s| TieSwap { seq: s, shift: 1 }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shrinker guarantee, property-tested: for a random initial set
    /// and a random "needs this subset" predicate, the result still
    /// flips and removing any single element no longer does.
    #[test]
    fn shrink_result_is_one_minimal(
        size in 1usize..24,
        core_mask in any::<u32>(),
        alt in any::<bool>(),
        alt_pick in any::<u32>(),
    ) {
        let initial: Vec<u64> = (0..size as u64).collect();
        let core: Vec<u64> = initial
            .iter()
            .copied()
            .filter(|&s| core_mask >> (s % 32) & 1 == 1)
            .collect();
        // Optionally a disjunctive escape hatch: one single element
        // that flips on its own, so greedy paths genuinely diverge.
        let alt_elem = alt.then(|| alt_pick as u64 % size as u64);
        let mut pred = |set: &[TieSwap]| {
            let has = |q: u64| set.iter().any(|s| s.seq == q);
            (!core.is_empty() && core.iter().all(|&c| has(c)))
                || alt_elem.is_some_and(has)
        };
        // The shrinker's contract requires a flipping input.
        let initial = swap_set(&initial);
        prop_assume!(pred(&initial));

        let multi = initial.len() > 1;
        let (out, evals) = shrink_swaps(initial, &mut pred);
        prop_assert!(pred(&out), "shrunk set must still flip");
        prop_assert!(
            evals > 0 || !multi,
            "shrinking a multi-element set spends evals"
        );
        for i in 0..out.len() {
            let mut smaller = out.clone();
            smaller.remove(i);
            prop_assert!(
                !pred(&smaller),
                "removing element {} must break the flip: {:?}",
                i,
                out
            );
        }
    }
}
