//! DPOR-lite candidate generation: targeted swaps at commutativity
//! points.
//!
//! A full dynamic partial-order reduction tracks happens-before across
//! the run; we use the lightweight frontier the probe affords. Every
//! pair inside a tie batch is a potential swap, but most pairs provably
//! commute in this model, and the frontier skips them:
//!
//! * **Same node, tagged kinds** — race. These are the classic
//!   scheduler-undefined orders: a processing completion applying
//!   heartbeats vs the failure-detector sweep that convicts, a message
//!   delivery vs a timer, two timers.
//! * **Cross node, both send-capable** — race. Send-round and receive
//!   completions draw drop/latency randomness from the *shared* engine
//!   RNG when they emit messages, so their relative order redistributes
//!   those draws even though node state is disjoint.
//! * **Everything else** — skipped. Cross-node pairs that do not both
//!   touch the shared RNG act on disjoint node state (per-node gossip
//!   RNG streams), and untagged events are internal continuations
//!   (stage bookkeeping, lock grants) whose intra-tick order the stage
//!   machinery already fixes.

use std::collections::HashMap;

use scalecheck_sim::tie::tag;
use scalecheck_sim::{ScheduleProbe, TieSwap};

/// The swap frontier derived from one schedule probe.
#[derive(Clone, Debug, Default)]
pub struct CandidateSet {
    /// Racing pairs, as targeted swaps against the stock order.
    pub swaps: Vec<TieSwap>,
    /// Tie pairs examined.
    pub considered: usize,
    /// Pairs skipped as provably commuting (cross-node without shared
    /// RNG draws, or internal continuations).
    pub skipped_commuting: usize,
}

/// Whether this event kind can emit a message when it fires (and so
/// consumes drop/latency draws from the shared engine RNG).
fn send_capable(kind: u64) -> bool {
    matches!(kind, tag::RECV_DONE | tag::SEND_DONE)
}

/// Whether two tagged events race (scheduler-undefined order with an
/// observable effect): any two tagged kinds on one node, or two
/// send-capable completions on different nodes (shared-RNG draw order).
fn races(ta: u64, tb: u64) -> bool {
    let (ka, kb) = (tag::kind(ta), tag::kind(tb));
    let known = |k| {
        matches!(
            k,
            tag::DELIVER | tag::GOSSIP_TIMER | tag::FD_TIMER | tag::RECV_DONE | tag::SEND_DONE
        )
    };
    if !known(ka) || !known(kb) {
        return false;
    }
    if tag::node(ta) == tag::node(tb) {
        return true;
    }
    send_capable(ka) && send_capable(kb)
}

/// Pairs examined per tie batch (quadratic guard for giant batches).
const MAX_PAIRS_PER_GROUP: usize = 128;

/// Ranking of a racing pair: how likely its order is to matter.
/// Shared-RNG races redistribute drop/latency draws (always
/// observable when a draw differs); delivery-vs-timer races matter
/// near failure-detector margins; timer-timer pairs mostly commute in
/// effect and come last.
fn class_of(ka: u64, kb: u64) -> usize {
    if send_capable(ka) || send_capable(kb) {
        0
    } else if ka == tag::DELIVER || kb == tag::DELIVER {
        1
    } else {
        2
    }
}

/// Derives the targeted-swap frontier from `probe`, capped at `max`
/// swaps (the budget guard; excess candidates are counted but
/// dropped). All ordered pairs within a batch are considered, not just
/// adjacent ones: the swap that moves `a` past a later `b` encodes the
/// race directly, wherever the pair sits in the batch. The kept `max`
/// are chosen best-class-first ([`class_of`]); within a class, half
/// the room samples the first quarter of the timeline densely and the
/// rest strides evenly over the remainder. The front bias is
/// empirical: consequential races concentrate in the failure
/// detector's warm-up window, where few heartbeat samples make φ
/// volatile and an early conviction cascades through the rest of the
/// run.
pub fn targeted_swaps(probe: &ScheduleProbe, max: usize) -> CandidateSet {
    let tags: HashMap<u64, u64> = probe.tags.iter().map(|t| (t.seq, t.tag)).collect();
    let mut out = CandidateSet::default();
    let mut classes: [Vec<TieSwap>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for group in probe.tie_groups() {
        let mut pairs = 0;
        'group: for ai in 0..group.len() {
            for bi in ai + 1..group.len() {
                if pairs >= MAX_PAIRS_PER_GROUP {
                    break 'group;
                }
                pairs += 1;
                out.considered += 1;
                let (a, b) = (group[ai], group[bi]);
                let (Some(&ta), Some(&tb)) = (tags.get(&a.seq), tags.get(&b.seq)) else {
                    out.skipped_commuting += 1;
                    continue;
                };
                if !races(ta, tb) {
                    out.skipped_commuting += 1;
                    continue;
                }
                // Identity order fires ascending seq, so the swap that
                // reverses the pair delays `a` past `b`.
                if b.seq > a.seq {
                    classes[class_of(tag::kind(ta), tag::kind(tb))].push(TieSwap {
                        seq: a.seq,
                        shift: b.seq - a.seq,
                    });
                }
            }
        }
    }
    for class in &classes {
        let room = max.saturating_sub(out.swaps.len());
        if room == 0 {
            break;
        }
        if class.len() <= room {
            out.swaps.extend_from_slice(class);
        } else {
            // Groups are time-ordered, so so are the gathered
            // candidates: index position is timeline position.
            let front_len = (class.len() / 4).max(1);
            let front_room = (room / 2).min(front_len);
            for k in 0..front_room {
                out.swaps.push(class[k * front_len / front_room]);
            }
            let tail = &class[front_len..];
            let tail_room = (room - front_room).min(tail.len());
            for k in 0..tail_room {
                out.swaps.push(tail[k * tail.len() / tail_room]);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_sim::{FireRec, TagRec};

    fn probe(fires: Vec<FireRec>, tags: Vec<TagRec>) -> ScheduleProbe {
        ScheduleProbe { fires, tags }
    }

    #[test]
    fn same_node_races_are_candidates_cross_node_timers_are_skipped() {
        let p = probe(
            vec![
                FireRec { at: 10, seq: 1 },
                FireRec { at: 10, seq: 2 },
                FireRec { at: 10, seq: 3 },
                FireRec { at: 20, seq: 4 },
            ],
            vec![
                TagRec {
                    seq: 1,
                    tag: tag::pack(tag::DELIVER, 5),
                },
                TagRec {
                    seq: 2,
                    tag: tag::pack(tag::FD_TIMER, 5),
                },
                TagRec {
                    seq: 3,
                    tag: tag::pack(tag::DELIVER, 9),
                },
            ],
        );
        let c = targeted_swaps(&p, 100);
        assert_eq!(c.considered, 3, "all pairs in the batch");
        assert_eq!(c.swaps, vec![TieSwap { seq: 1, shift: 1 }]);
        assert_eq!(c.skipped_commuting, 2, "cross-node non-send pairs skip");
    }

    #[test]
    fn cross_node_send_completions_race_via_the_shared_rng() {
        let p = probe(
            vec![FireRec { at: 10, seq: 1 }, FireRec { at: 10, seq: 2 }],
            vec![
                TagRec {
                    seq: 1,
                    tag: tag::pack(tag::SEND_DONE, 3),
                },
                TagRec {
                    seq: 2,
                    tag: tag::pack(tag::RECV_DONE, 7),
                },
            ],
        );
        let c = targeted_swaps(&p, 100);
        assert_eq!(c.swaps, vec![TieSwap { seq: 1, shift: 1 }]);
    }

    #[test]
    fn non_adjacent_same_node_pairs_are_candidates() {
        // fd timer ... deliver ... recv-done, all node 4: the fd-vs-
        // recv-done race needs shift 2, hopping past the deliver.
        let p = probe(
            vec![
                FireRec { at: 10, seq: 1 },
                FireRec { at: 10, seq: 2 },
                FireRec { at: 10, seq: 3 },
            ],
            vec![
                TagRec {
                    seq: 1,
                    tag: tag::pack(tag::FD_TIMER, 4),
                },
                TagRec {
                    seq: 2,
                    tag: tag::pack(tag::DELIVER, 4),
                },
                TagRec {
                    seq: 3,
                    tag: tag::pack(tag::RECV_DONE, 4),
                },
            ],
        );
        let c = targeted_swaps(&p, 100);
        assert!(c.swaps.contains(&TieSwap { seq: 1, shift: 2 }));
        assert_eq!(c.swaps.len(), 3);
    }

    #[test]
    fn untagged_members_are_internal_and_skipped() {
        let p = probe(
            vec![FireRec { at: 10, seq: 1 }, FireRec { at: 10, seq: 2 }],
            vec![TagRec {
                seq: 1,
                tag: tag::pack(tag::DELIVER, 0),
            }],
        );
        let c = targeted_swaps(&p, 100);
        assert!(c.swaps.is_empty());
        assert_eq!(c.skipped_commuting, 1);
    }

    #[test]
    fn cap_bounds_the_frontier_but_keeps_counting() {
        let mut fires = Vec::new();
        let mut tags = Vec::new();
        for s in 1..=10u64 {
            fires.push(FireRec { at: 10, seq: s });
            tags.push(TagRec {
                seq: s,
                tag: tag::pack(tag::DELIVER, 1),
            });
        }
        let c = targeted_swaps(&probe(fires, tags), 3);
        assert_eq!(c.swaps.len(), 3);
        assert_eq!(c.considered, 45, "all 10-choose-2 pairs");
    }
}
