//! Perturbation evaluation: one identity baseline, then one targeted
//! re-run per candidate tie-order spec.
//!
//! The baseline costs four scenario runs (Real, Colo, memoize, replay —
//! the same pipeline the regression suite uses). Each perturbation then
//! re-runs only the *target* deployment with the candidate
//! [`TieOrderSpec`] installed; the other two flap counts are carried
//! over from the baseline, and an SC+PIL target reuses the baseline's
//! memo artifacts (replay is the cheap leg by construction).

use scalecheck::{memoize, replay, run_colo, run_real, MemoArtifacts};
use scalecheck_cluster::{RunReport, ScenarioConfig};
use scalecheck_sim::{ScheduleProbe, TieOrderSpec};
use serde::{Deserialize, Serialize};

use crate::verdict::{FlapTriple, VerdictParams};

/// Which deployment the perturbation is applied to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Target {
    /// Perturb the real-scale run (hunt orderings that make Real flap).
    Real,
    /// Perturb the basic-colocation run.
    Colo,
    /// Perturb the SC+PIL replay over the baseline memo artifacts
    /// (hunt orderings that break replay tracking).
    ScPil,
}

impl Target {
    /// Stable lowercase name (table rows, witness JSON paths).
    pub fn name(&self) -> &'static str {
        match self {
            Target::Real => "real",
            Target::Colo => "colo",
            Target::ScPil => "scpil",
        }
    }
}

/// Baseline-plus-evaluator for one `(scenario, target)` cell.
pub struct Evaluator {
    cfg: ScenarioConfig,
    params: VerdictParams,
    target: Target,
    memo: MemoArtifacts,
    /// Identity-schedule flap triple.
    pub baseline: FlapTriple,
    /// Schedule probe of the baseline target run (tie batches + tags).
    pub probe: ScheduleProbe,
    /// Scenario runs executed so far (baseline counts four).
    pub runs: usize,
}

impl Evaluator {
    /// Runs the identity baseline (4 scenario runs) and records the
    /// target run's schedule probe.
    pub fn new(cfg: &ScenarioConfig, params: VerdictParams, target: Target) -> Self {
        assert!(
            cfg.tie_order.is_identity(),
            "evaluator baseline must start from the stock schedule"
        );
        let mut probe_cfg = cfg.clone();
        probe_cfg.record_schedule = true;

        let real = if target == Target::Real {
            run_real(&probe_cfg)
        } else {
            run_real(cfg)
        };
        let colo = if target == Target::Colo {
            run_colo(&probe_cfg, params.cores)
        } else {
            run_colo(cfg, params.cores)
        };
        let memo = memoize(cfg, params.cores);
        let pil = if target == Target::ScPil {
            replay(&probe_cfg, params.cores, &memo)
        } else {
            replay(cfg, params.cores, &memo)
        };

        let probe = match target {
            Target::Real => real.schedule_probe.clone(),
            Target::Colo => colo.schedule_probe.clone(),
            Target::ScPil => pil.schedule_probe.clone(),
        }
        .expect("probe recorded on the target baseline run");

        Evaluator {
            cfg: cfg.clone(),
            params,
            target,
            memo,
            baseline: FlapTriple {
                real: real.total_flaps,
                colo: colo.total_flaps,
                pil: pil.total_flaps,
            },
            probe,
            runs: 4,
        }
    }

    /// The verdict parameters this evaluator classifies under.
    pub fn params(&self) -> VerdictParams {
        self.params
    }

    /// The perturbation target.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The (identity-tie) scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Re-runs the target deployment under `spec` and returns its full
    /// report (one scenario run).
    pub fn run_target(&mut self, spec: &TieOrderSpec) -> RunReport {
        let mut cfg = self.cfg.clone();
        cfg.tie_order = spec.clone();
        self.runs += 1;
        match self.target {
            Target::Real => run_real(&cfg),
            Target::Colo => run_colo(&cfg, self.params.cores),
            Target::ScPil => replay(&cfg, self.params.cores, &self.memo),
        }
    }

    /// The flap triple with the target's slot replaced by `report`.
    pub fn triple_with(&self, report: &RunReport) -> FlapTriple {
        let mut t = self.baseline;
        match self.target {
            Target::Real => t.real = report.total_flaps,
            Target::Colo => t.colo = report.total_flaps,
            Target::ScPil => t.pil = report.total_flaps,
        }
        t
    }

    /// Evaluates a spec to its flap triple (one scenario run).
    pub fn evaluate(&mut self, spec: &TieOrderSpec) -> FlapTriple {
        let report = self.run_target(spec);
        self.triple_with(&report)
    }

    /// Whether `spec` flips the shape verdict relative to the baseline.
    pub fn flips(&mut self, spec: &TieOrderSpec) -> bool {
        let tol = self.params.tolerance;
        self.evaluate(spec).shape(tol) != self.baseline.shape(tol)
    }
}
