//! The budgeted search driver: sweep perturbations over scenario
//! cells, classify verdicts, shrink flips to witnesses.
//!
//! Per cell `(bug, scale, seed, target)` the driver runs the identity
//! baseline, derives the DPOR-lite swap frontier from the schedule
//! probe, and spends its evaluation budget in two phases:
//!
//! 1. **Targeted swaps** — the full frontier at once (flips shrink to a
//!    1-minimal witness), then each candidate alone.
//! 2. **Seeded shuffles** — whole-batch permutations; a flipping
//!    shuffle is a single-knob witness (nothing to shrink).
//!
//! Budgets are dual: a wall-clock deadline (CI smoke) and an
//! evaluation cap (deterministic tables). Whichever binds first stops
//! the cell; shrinking always runs to completion so a reported witness
//! is never half-minimized.

use std::time::Instant;

use scalecheck_sim::TieOrderSpec;

use crate::candidates::targeted_swaps;
use crate::evaluate::{Evaluator, Target};
use crate::shrink::shrink_swaps;
use crate::verdict::{FlapTriple, VerdictParams};
use crate::witness::{scenario_for, ScheduleWitness};

/// Search knobs.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOpts {
    /// Wall-clock budget in seconds (checked between evaluations).
    pub budget_secs: u64,
    /// Maximum perturbation evaluations per cell (scenario re-runs,
    /// excluding the 4-run baseline; shrinking may exceed it).
    pub max_evals: usize,
    /// Shuffle seeds tried per cell.
    pub shuffles: u64,
    /// Cap on the targeted-swap frontier.
    pub max_swap_candidates: usize,
    /// Verdict parameters.
    pub params: VerdictParams,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            budget_secs: 120,
            max_evals: 40,
            shuffles: 8,
            max_swap_candidates: 24,
            params: VerdictParams::default(),
        }
    }
}

/// One cell to explore.
#[derive(Clone, Debug)]
pub struct CellPlan {
    /// Scenario preset name (see [`scenario_for`]).
    pub bug: String,
    /// Initial cluster size.
    pub n_nodes: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Deployment to perturb.
    pub target: Target,
}

/// What exploring one cell found.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The plan this outcome answers.
    pub plan: CellPlan,
    /// Identity-schedule flap triple.
    pub baseline: FlapTriple,
    /// Tie batches in the baseline target schedule.
    pub tie_batches: usize,
    /// Adjacent tie pairs examined by the DPOR-lite frontier.
    pub considered_pairs: usize,
    /// Pairs skipped as provably commuting.
    pub skipped_commuting: usize,
    /// Racing candidates kept.
    pub candidates: usize,
    /// Scenario runs spent (baseline + evaluations + shrinking).
    pub runs: usize,
    /// Distinct perturbations that flipped the verdict.
    pub flips_found: usize,
    /// Evaluations spent inside the shrinker.
    pub shrink_evals: usize,
    /// The minimal witness, if any flip was found.
    pub witness: Option<ScheduleWitness>,
    /// Whether a budget (wall or eval) cut the search short.
    pub budget_exhausted: bool,
}

/// Explores one cell under `opts`, stopping at `deadline`.
pub fn explore_cell(plan: &CellPlan, opts: &ExploreOpts, deadline: Instant) -> CellOutcome {
    let cfg = scenario_for(&plan.bug, plan.n_nodes, plan.seed)
        .unwrap_or_else(|| panic!("unknown bug preset: {}", plan.bug));
    let mut ev = Evaluator::new(&cfg, opts.params, plan.target);
    let cands = targeted_swaps(&ev.probe, opts.max_swap_candidates);
    let tie_batches = ev.probe.tie_groups().len();

    let mut outcome = CellOutcome {
        plan: plan.clone(),
        baseline: ev.baseline,
        tie_batches,
        considered_pairs: cands.considered,
        skipped_commuting: cands.skipped_commuting,
        candidates: cands.swaps.len(),
        runs: ev.runs,
        flips_found: 0,
        shrink_evals: 0,
        witness: None,
        budget_exhausted: false,
    };

    let mut evals = 0usize;
    let spend = |ev: &mut Evaluator,
                 evals: &mut usize,
                 out: &mut CellOutcome,
                 spec: &TieOrderSpec|
     -> Option<bool> {
        if Instant::now() >= deadline || *evals >= opts.max_evals {
            out.budget_exhausted = true;
            return None;
        }
        *evals += 1;
        let flipped = ev.flips(spec);
        if flipped {
            out.flips_found += 1;
        }
        Some(flipped)
    };

    // Phase 1: targeted swaps — full frontier, then singletons.
    let mut specs: Vec<TieOrderSpec> = Vec::new();
    if cands.swaps.len() > 1 {
        specs.push(TieOrderSpec::with_swaps(cands.swaps.clone()));
    }
    for &swap in &cands.swaps {
        specs.push(TieOrderSpec::with_swaps(vec![swap]));
    }
    for spec in &specs {
        match spend(&mut ev, &mut evals, &mut outcome, spec) {
            None => break,
            Some(false) => {}
            Some(true) => {
                // Shrink to a 1-minimal core (runs to completion so the
                // witness's minimality claim holds).
                let tol = opts.params.tolerance;
                let base_shape = ev.baseline.shape(tol);
                let (core, spent) = shrink_swaps(spec.swaps.clone(), &mut |set| {
                    ev.evaluate(&TieOrderSpec::with_swaps(set.to_vec()))
                        .shape(tol)
                        != base_shape
                });
                outcome.shrink_evals += spent;
                let minimal = TieOrderSpec::with_swaps(core);
                let report = ev.run_target(&minimal);
                outcome.witness = Some(ScheduleWitness::assemble(
                    &plan.bug,
                    plan.n_nodes,
                    plan.seed,
                    &ev,
                    minimal,
                    &report,
                ));
                outcome.runs = ev.runs;
                return outcome;
            }
        }
    }

    // Phase 2: seeded shuffles (only if no swap flip emerged).
    for s in 1..=opts.shuffles {
        let spec = TieOrderSpec::shuffled(plan.seed.wrapping_mul(1_000_003).wrapping_add(s));
        match spend(&mut ev, &mut evals, &mut outcome, &spec) {
            None => break,
            Some(false) => {}
            Some(true) => {
                let report = ev.run_target(&spec);
                outcome.witness = Some(ScheduleWitness::assemble(
                    &plan.bug,
                    plan.n_nodes,
                    plan.seed,
                    &ev,
                    spec,
                    &report,
                ));
                outcome.runs = ev.runs;
                return outcome;
            }
        }
    }

    outcome.runs = ev.runs;
    outcome
}

/// Explores every cell under one shared wall budget.
pub fn explore(cells: &[CellPlan], opts: &ExploreOpts) -> Vec<CellOutcome> {
    let deadline = Instant::now() + std::time::Duration::from_secs(opts.budget_secs);
    cells
        .iter()
        .map(|plan| explore_cell(plan, opts, deadline))
        .collect()
}

/// Renders outcomes as the fixed-width `TBL_explore.txt` table.
pub fn render_table(outcomes: &[CellOutcome]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>5} {:>5} {:<6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>5} {:>6} {:>6} {:<8}",
        "bug",
        "n",
        "seed",
        "target",
        "real",
        "colo",
        "pil",
        "ties",
        "cand",
        "skip",
        "runs",
        "flips",
        "witness"
    );
    for o in outcomes {
        let witness = match &o.witness {
            Some(w) if w.tie_order.shuffle.is_some() => "shuffle".to_string(),
            Some(w) => format!("{}swaps", w.tie_order.swaps.len()),
            None if o.budget_exhausted => "budget".to_string(),
            None => "none".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>5} {:<6} {:>6} {:>6} {:>6} {:>5} {:>5} {:>5} {:>6} {:>6} {:<8}",
            o.plan.bug,
            o.plan.n_nodes,
            o.plan.seed,
            o.plan.target.name(),
            o.baseline.real,
            o.baseline.colo,
            o.baseline.pil,
            o.tie_batches,
            o.candidates,
            o.skipped_commuting,
            o.runs,
            o.flips_found,
            witness
        );
    }
    out
}
