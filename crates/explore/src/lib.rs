//! Schedule exploration for ScaleCheck: perturb-and-shrink
//! interleaving search on the deterministic engine.
//!
//! The engine is byte-deterministic per `(config, plan, seed)` — the
//! substrate MET-style explorative testing needs. This crate turns the
//! reproduction into a bug *finder*: it perturbs same-timestamp event
//! ordering (the one degree of freedom the simulation leaves
//! scheduler-undefined), classifies each perturbed run against the
//! paper-shape verdict the regression suite pins, and shrinks any
//! verdict flip to a minimal, replayable [`ScheduleWitness`].
//!
//! Layers:
//!
//! * [`verdict`] — the (Real, Colo, SC+PIL) flap-triple shape
//!   classification;
//! * [`evaluate`] — identity baseline plus one-run-per-candidate
//!   evaluation with a chosen perturbation [`Target`];
//! * [`candidates`] — DPOR-lite targeted-swap frontier from the
//!   engine's schedule probe (same-node races only);
//! * [`shrink`] — greedy ddmin to a verified 1-minimal core;
//! * [`witness`] — serialization and from-scratch replay;
//! * [`search`] — the budgeted driver behind the `explore_run` bin.

#![forbid(unsafe_code)]

pub mod candidates;
pub mod evaluate;
pub mod search;
pub mod shrink;
pub mod verdict;
pub mod witness;

pub use candidates::{targeted_swaps, CandidateSet};
pub use evaluate::{Evaluator, Target};
pub use search::{explore, explore_cell, render_table, CellOutcome, CellPlan, ExploreOpts};
pub use shrink::shrink_swaps;
pub use verdict::{FlapTriple, Shape, SloParams, SloTriple, SloVerdict, VerdictParams};
pub use witness::{digest_report, scenario_for, ScheduleWitness, WitnessReplay, WITNESS_FORMAT};
