//! Proptest-style greedy shrinking of a verdict-flipping swap set to a
//! 1-minimal core.
//!
//! `flips` is the (expensive) predicate — one scenario run per call.
//! The shrinker first drops chunks of geometrically decreasing size
//! (ddmin's complement pass), then sweeps single removals to a
//! fixpoint. The fixpoint sweep is what buys the guarantee: on return,
//! the set still flips and removing any *single* element no longer
//! does (verified, not assumed — the final sweep observed every
//! one-element removal fail).

use scalecheck_sim::TieSwap;

/// Shrinks `initial` (which must flip) to a 1-minimal flipping subset.
/// Returns the core and the number of predicate evaluations spent.
pub fn shrink_swaps(
    initial: Vec<TieSwap>,
    flips: &mut dyn FnMut(&[TieSwap]) -> bool,
) -> (Vec<TieSwap>, usize) {
    let mut cur = initial;
    let mut evals = 0usize;

    // Chunked pass: cheap large bites first.
    let mut chunk = cur.len() / 2;
    while chunk >= 1 {
        let mut i = 0;
        while cur.len() > 1 && i + chunk <= cur.len() {
            let mut cand = cur.clone();
            cand.drain(i..i + chunk);
            evals += 1;
            if flips(&cand) {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // 1-minimality fixpoint: repeat single-removal sweeps until a full
    // sweep removes nothing.
    loop {
        let mut changed = false;
        let mut i = 0;
        while cur.len() > 1 && i < cur.len() {
            let mut cand = cur.clone();
            cand.remove(i);
            evals += 1;
            if flips(&cand) {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            break;
        }
    }
    (cur, evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swaps(seqs: &[u64]) -> Vec<TieSwap> {
        seqs.iter().map(|&s| TieSwap { seq: s, shift: 1 }).collect()
    }

    /// Predicate: flips iff the set contains every seq in `core`.
    fn superset_of<'a>(core: &'a [u64]) -> impl FnMut(&[TieSwap]) -> bool + 'a {
        move |set| core.iter().all(|c| set.iter().any(|s| s.seq == *c))
    }

    #[test]
    fn shrinks_to_the_exact_core() {
        let mut pred = superset_of(&[3, 7]);
        let (out, evals) = shrink_swaps(swaps(&[1, 2, 3, 4, 5, 6, 7, 8]), &mut pred);
        let mut seqs: Vec<u64> = out.iter().map(|s| s.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![3, 7]);
        assert!(evals > 0);
    }

    #[test]
    fn singleton_core_survives() {
        let mut pred = superset_of(&[5]);
        let (out, _) = shrink_swaps(swaps(&[5, 6, 7]), &mut pred);
        assert_eq!(out, swaps(&[5]));
    }

    #[test]
    fn result_is_one_minimal() {
        // A disjunctive predicate (either {1,2} or {4}) where greedy
        // paths differ — whatever core is reached must be 1-minimal.
        let mut pred = |set: &[TieSwap]| {
            let has = |q: u64| set.iter().any(|s| s.seq == q);
            (has(1) && has(2)) || has(4)
        };
        let (out, _) = shrink_swaps(swaps(&[1, 2, 3, 4]), &mut pred);
        assert!(pred(&out));
        for i in 0..out.len() {
            let mut smaller = out.clone();
            smaller.remove(i);
            assert!(
                !pred(&smaller),
                "removing element {i} must break the flip: {out:?}"
            );
        }
    }
}
