//! The paper-shape verdict over a (Real, Colo, SC+PIL) flap triple.
//!
//! The regression suite (`tests/bug_regressions.rs`) pins every bug to
//! the same Figure-3 shape: colocation manufactures flaps that Real
//! does not exhibit, while SC+PIL tracks Real within a small absolute
//! tolerance. The explorer's objective is a *verdict flip*: a schedule
//! perturbation under which that shape classification changes.

use serde::{Deserialize, Serialize};

/// Verdict parameters: the colocation box and the tracking tolerance
/// (defaults mirror `tests/bug_regressions.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictParams {
    /// Cores on the colocation box.
    pub cores: usize,
    /// Absolute flap slack for both shape clauses.
    pub tolerance: u64,
}

impl Default for VerdictParams {
    fn default() -> Self {
        VerdictParams {
            cores: 2,
            tolerance: 3,
        }
    }
}

/// Flap counts of the three deployments for one scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapTriple {
    /// Real-scale flaps (ground truth).
    pub real: u64,
    /// Basic-colocation flaps.
    pub colo: u64,
    /// SC+PIL replay flaps.
    pub pil: u64,
}

/// The two-clause shape classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    /// Colo manufactures flaps beyond Real + tolerance.
    pub colo_diverges: bool,
    /// SC+PIL stays within tolerance of Real.
    pub pil_tracks: bool,
}

impl FlapTriple {
    /// Classifies the triple under `tolerance`.
    pub fn shape(&self, tolerance: u64) -> Shape {
        Shape {
            colo_diverges: self.colo > self.real + tolerance,
            pil_tracks: self.pil.abs_diff(self.real) <= tolerance,
        }
    }
}

impl Shape {
    /// The full paper shape: both clauses hold.
    pub fn paper(&self) -> bool {
        self.colo_diverges && self.pil_tracks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classifies_both_clauses() {
        let t = FlapTriple {
            real: 0,
            colo: 100,
            pil: 2,
        };
        let s = t.shape(3);
        assert!(s.colo_diverges && s.pil_tracks && s.paper());

        let broken_track = FlapTriple {
            real: 0,
            colo: 100,
            pil: 9,
        };
        let s = broken_track.shape(3);
        assert!(s.colo_diverges && !s.pil_tracks && !s.paper());

        let no_diverge = FlapTriple {
            real: 50,
            colo: 52,
            pil: 50,
        };
        let s = no_diverge.shape(3);
        assert!(!s.colo_diverges && s.pil_tracks && !s.paper());
    }

    #[test]
    fn tolerance_is_inclusive_for_tracking_exclusive_for_divergence() {
        let t = FlapTriple {
            real: 10,
            colo: 13,
            pil: 13,
        };
        let s = t.shape(3);
        assert!(!s.colo_diverges, "colo must exceed real + tol strictly");
        assert!(s.pil_tracks, "pil may sit exactly at the tolerance");
    }
}
