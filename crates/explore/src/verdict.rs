//! The paper-shape verdict over a (Real, Colo, SC+PIL) flap triple.
//!
//! The regression suite (`tests/bug_regressions.rs`) pins every bug to
//! the same Figure-3 shape: colocation manufactures flaps that Real
//! does not exhibit, while SC+PIL tracks Real within a small absolute
//! tolerance. The explorer's objective is a *verdict flip*: a schedule
//! perturbation under which that shape classification changes.

use scalecheck_cluster::SloSummary;
use serde::{Deserialize, Serialize};

/// Verdict parameters: the colocation box and the tracking tolerance
/// (defaults mirror `tests/bug_regressions.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictParams {
    /// Cores on the colocation box.
    pub cores: usize,
    /// Absolute flap slack for both shape clauses.
    pub tolerance: u64,
}

impl Default for VerdictParams {
    fn default() -> Self {
        VerdictParams {
            cores: 2,
            tolerance: 3,
        }
    }
}

/// Flap counts of the three deployments for one scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlapTriple {
    /// Real-scale flaps (ground truth).
    pub real: u64,
    /// Basic-colocation flaps.
    pub colo: u64,
    /// SC+PIL replay flaps.
    pub pil: u64,
}

/// The two-clause shape classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape {
    /// Colo manufactures flaps beyond Real + tolerance.
    pub colo_diverges: bool,
    /// SC+PIL stays within tolerance of Real.
    pub pil_tracks: bool,
}

impl FlapTriple {
    /// Classifies the triple under `tolerance`.
    pub fn shape(&self, tolerance: u64) -> Shape {
        Shape {
            colo_diverges: self.colo > self.real + tolerance,
            pil_tracks: self.pil.abs_diff(self.real) <= tolerance,
        }
    }
}

impl Shape {
    /// The full paper shape: both clauses hold.
    pub fn paper(&self) -> bool {
        self.colo_diverges && self.pil_tracks
    }
}

/// Parameters for the SLO-shape verdict over a (Real, Colo, SC+PIL)
/// [`SloSummary`] triple.
///
/// Latency clauses are relative — colocation's CPU contention inflates
/// the tail multiplicatively, so a fixed-ns threshold would misfire at
/// both ends of the scale sweep — with an absolute floor (`p999_slack_ns`)
/// so log-histogram bucket granularity near small baselines cannot flip
/// a verdict on its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloParams {
    /// Relative p99.9 allowance in permille of Real's p99.9 (300 =
    /// a 30 % inflation is still "tracking"; beyond it, divergence).
    pub p999_inflation_permille: u32,
    /// Absolute floor on the p99.9 allowance, in nanoseconds — one
    /// power-of-two histogram bucket at the millisecond magnitudes the
    /// committed tables sit at (the bucket holding a ~6 ms baseline
    /// spans 4.19–8.39 ms, so estimates of the *same* tail can sit a
    /// full 4.19 ms apart on quantization alone; a floor below one
    /// bucket width would let that noise flip a verdict).
    pub p999_slack_ns: u64,
    /// Availability slack in permille (5 = 0.5 % absolute).
    pub availability_slack_permille: u32,
}

impl Default for SloParams {
    fn default() -> Self {
        SloParams {
            p999_inflation_permille: 300,
            p999_slack_ns: 1 << 22,
            availability_slack_permille: 5,
        }
    }
}

/// The SLO summaries of the three deployments for one scenario.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloTriple {
    /// Real-scale SLO outcome (ground truth).
    pub real: SloSummary,
    /// Basic-colocation SLO outcome.
    pub colo: SloSummary,
    /// SC+PIL replay SLO outcome.
    pub pil: SloSummary,
}

/// The user-visible analogue of [`Shape`], over tail latency and the
/// error budget instead of flap counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// Colo inflates p99.9 beyond the allowance, loses availability
    /// beyond the slack, or reaches a different error-budget breach
    /// verdict than Real — a false SLO alarm (or a masked one).
    pub colo_diverges: bool,
    /// SC+PIL stays within the allowance of Real on every clause.
    pub pil_tracks: bool,
}

impl SloTriple {
    /// p99.9 allowance around `real_p999` under `params`.
    fn allowance(real_p999: u64, params: &SloParams) -> u64 {
        let relative = (real_p999 as u128 * params.p999_inflation_permille as u128 / 1000) as u64;
        relative.max(params.p999_slack_ns)
    }

    /// Classifies the triple under `params`.
    pub fn verdict(&self, params: &SloParams) -> SloVerdict {
        let allow = Self::allowance(self.real.p999_ns, params);
        let colo_diverges = self.colo.p999_ns > self.real.p999_ns.saturating_add(allow)
            || self.colo.budget_breached != self.real.budget_breached
            || self.colo.availability_permille + params.availability_slack_permille
                < self.real.availability_permille;
        let pil_tracks = self.pil.p999_ns.abs_diff(self.real.p999_ns) <= allow
            && self.pil.budget_breached == self.real.budget_breached
            && self
                .pil
                .availability_permille
                .abs_diff(self.real.availability_permille)
                <= params.availability_slack_permille;
        SloVerdict {
            colo_diverges,
            pil_tracks,
        }
    }
}

impl SloVerdict {
    /// The paper shape on the user-visible axis: colocation raises a
    /// false SLO alarm that the replay pipeline does not.
    pub fn paper(&self) -> bool {
        self.colo_diverges && self.pil_tracks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_classifies_both_clauses() {
        let t = FlapTriple {
            real: 0,
            colo: 100,
            pil: 2,
        };
        let s = t.shape(3);
        assert!(s.colo_diverges && s.pil_tracks && s.paper());

        let broken_track = FlapTriple {
            real: 0,
            colo: 100,
            pil: 9,
        };
        let s = broken_track.shape(3);
        assert!(s.colo_diverges && !s.pil_tracks && !s.paper());

        let no_diverge = FlapTriple {
            real: 50,
            colo: 52,
            pil: 50,
        };
        let s = no_diverge.shape(3);
        assert!(!s.colo_diverges && s.pil_tracks && !s.paper());
    }

    #[test]
    fn tolerance_is_inclusive_for_tracking_exclusive_for_divergence() {
        let t = FlapTriple {
            real: 10,
            colo: 13,
            pil: 13,
        };
        let s = t.shape(3);
        assert!(!s.colo_diverges, "colo must exceed real + tol strictly");
        assert!(s.pil_tracks, "pil may sit exactly at the tolerance");
    }

    fn summary(p999_ns: u64, availability_permille: u32, budget_breached: bool) -> SloSummary {
        SloSummary {
            p50_ns: p999_ns / 4,
            p99_ns: p999_ns / 2,
            p999_ns,
            tail_saturated: false,
            availability_permille,
            budget_burned_permille: if budget_breached { 1500 } else { 100 },
            budget_breached,
            attempted: 1000,
        }
    }

    #[test]
    fn slo_verdict_flags_tail_inflation_and_breach_disagreement() {
        let p = SloParams::default();
        // Colo triples the tail and trips the budget; PIL hugs Real.
        let t = SloTriple {
            real: summary(10_000_000, 1000, false),
            colo: summary(60_000_000, 990, true),
            pil: summary(11_000_000, 1000, false),
        };
        let v = t.verdict(&p);
        assert!(v.colo_diverges && v.pil_tracks && v.paper());

        // Breach disagreement alone diverges, even with the tail inside
        // the allowance.
        let breach_only = SloTriple {
            real: summary(10_000_000, 1000, false),
            colo: summary(10_000_000, 1000, true),
            pil: summary(10_000_000, 1000, false),
        };
        assert!(breach_only.verdict(&p).colo_diverges);

        // Everything inside the allowance: no divergence, tracking.
        let clean = SloTriple {
            real: summary(10_000_000, 999, false),
            colo: summary(12_000_000, 998, false),
            pil: summary(10_000_000, 999, false),
        };
        let v = clean.verdict(&p);
        assert!(!v.colo_diverges && v.pil_tracks && !v.paper());
    }

    #[test]
    fn slo_allowance_has_an_absolute_floor() {
        let p = SloParams::default();
        // Tiny baseline: the relative band is sub-bucket, so only the
        // absolute floor keeps histogram granularity from diverging.
        let t = SloTriple {
            real: summary(1_000_000, 1000, false),
            colo: summary(2_900_000, 1000, false),
            pil: summary(2_000_000, 1000, false),
        };
        let v = t.verdict(&p);
        assert!(!v.colo_diverges, "inside the one-bucket floor");
        assert!(v.pil_tracks);

        // A PIL that loses availability beyond the slack stops tracking.
        let lossy_pil = SloTriple {
            real: summary(10_000_000, 1000, false),
            colo: summary(10_000_000, 1000, false),
            pil: summary(10_000_000, 990, false),
        };
        assert!(!lossy_pil.verdict(&p).pil_tracks);
    }
}
