//! Replayable schedule witnesses.
//!
//! A witness pins everything needed to reproduce a verdict flip from
//! nothing: the scenario (bug preset, scale, seed), the verdict
//! parameters, which deployment was perturbed, and the minimal
//! [`TieOrderSpec`]. It also stores the flap triples and a content
//! digest of the perturbed target report, so replay can assert
//! bit-level reproduction, not just the same verdict.

use scalecheck_cluster::{RunReport, ScenarioConfig};
use scalecheck_sim::TieOrderSpec;
use serde::{Deserialize, Serialize};

use crate::evaluate::{Evaluator, Target};
use crate::verdict::{FlapTriple, VerdictParams};

/// Bump when the witness schema changes incompatibly.
pub const WITNESS_FORMAT: u32 = 1;

/// A minimal, replayable verdict-flipping schedule perturbation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleWitness {
    /// Schema version ([`WITNESS_FORMAT`]).
    pub format: u32,
    /// Scenario preset name (`baseline`, `c3831`, `c3881`, `c5456`,
    /// `c6127`, `race`).
    pub bug: String,
    /// Initial cluster size passed to the preset.
    pub n_nodes: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Verdict parameters the flip was classified under.
    pub params: VerdictParams,
    /// Which deployment the perturbation applies to.
    pub target: Target,
    /// The (shrunk) perturbation.
    pub tie_order: TieOrderSpec,
    /// Identity-schedule flap triple.
    pub baseline: FlapTriple,
    /// Perturbed flap triple.
    pub perturbed: FlapTriple,
    /// Content digest of the perturbed target run's report.
    pub report_digest: String,
}

/// What replaying a witness reproduced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessReplay {
    /// Re-derived identity triple.
    pub baseline: FlapTriple,
    /// Re-derived perturbed triple.
    pub perturbed: FlapTriple,
    /// Re-derived digest of the perturbed target report.
    pub report_digest: String,
    /// Whether the verdict still flips.
    pub flipped: bool,
}

/// Builds the scenario a witness names. `None` for unknown presets.
pub fn scenario_for(bug: &str, n_nodes: usize, seed: u64) -> Option<ScenarioConfig> {
    match bug {
        "baseline" => Some(ScenarioConfig::baseline(n_nodes, seed)),
        "c3831" => Some(ScenarioConfig::c3831(n_nodes, seed)),
        "c3881" => Some(ScenarioConfig::c3881(n_nodes, seed)),
        "c5456" => Some(ScenarioConfig::c5456(n_nodes, seed)),
        "c6127" => Some(ScenarioConfig::c6127(n_nodes, seed)),
        "race" => Some(race_scenario(n_nodes, seed)),
        _ => None,
    }
}

/// The race-prone preset: the stock bug scenarios turn out to be
/// tick-commutative (their exact-nanosecond ties are same-node
/// gossip/fd timer pairs whose order has no observable effect), so
/// this preset engineers *consequential* ties. Four changes:
///
/// * message processing costs zero virtual time and the machine model
///   is ideal (zero context-switch overhead), so send/receive
///   completions land on the same nanosecond as the event that
///   triggered them instead of a few microseconds later;
/// * link latency is constant and a multiple of the timer-stagger
///   grid (`gossip_interval / n`), so deliveries — and the reply
///   sends they trigger — collide exactly with other nodes' gossip
///   and failure-detector timers (use an `n` that divides 1e9 for a
///   lossless grid, e.g. 40);
/// * light random loss plus a lowered φ threshold keep the failure
///   detector marginal, so which-message-gets-which-drop-draw (the
///   shared-RNG race) and heartbeat-vs-sweep order (the same-node
///   race) genuinely decide convictions.
fn race_scenario(n_nodes: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n_nodes, seed);
    let interval = cfg.gossip_interval.as_nanos();
    let grid = interval / (n_nodes.max(1) as u64);
    cfg.network.latency =
        scalecheck_net::LatencyModel::Constant(scalecheck_sim::SimDuration::from_nanos(3 * grid));
    cfg.network.drop_probability = 0.10;
    cfg.phi_threshold = 5.0;
    cfg.msg_base_cost = scalecheck_sim::SimDuration::ZERO;
    cfg.per_endpoint_cost = scalecheck_sim::SimDuration::ZERO;
    cfg.free_ctx_switch = true;
    cfg.max_duration = scalecheck_sim::SimDuration::from_secs(300);
    cfg
}

/// 128-bit FNV-1a over a report's canonical JSON — the same content
/// addressing the sweep cache uses, so digests are comparable across
/// tools.
pub fn digest_report(report: &RunReport) -> String {
    let value = serde_json::to_value(report).expect("report serializes");
    let text = value.to_string();
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for b in text.bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    format!("{h:032x}")
}

impl ScheduleWitness {
    /// Assembles a witness from an evaluator and the perturbed target
    /// report it produced.
    pub fn assemble(
        bug: &str,
        n_nodes: usize,
        seed: u64,
        ev: &Evaluator,
        tie_order: TieOrderSpec,
        perturbed_report: &RunReport,
    ) -> Self {
        ScheduleWitness {
            format: WITNESS_FORMAT,
            bug: bug.to_string(),
            n_nodes,
            seed,
            params: ev.params(),
            target: ev.target(),
            tie_order,
            baseline: ev.baseline,
            perturbed: ev.triple_with(perturbed_report),
            report_digest: digest_report(perturbed_report),
        }
    }

    /// Serializes to pretty JSON (the committed on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("witness serializes")
    }

    /// Parses a witness from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let w: ScheduleWitness =
            serde_json::from_str(text).map_err(|e| format!("witness parse: {e:?}"))?;
        if w.format != WITNESS_FORMAT {
            return Err(format!(
                "witness format {} (this build reads {})",
                w.format, WITNESS_FORMAT
            ));
        }
        Ok(w)
    }

    /// Whether the stored triples flip the verdict under the stored
    /// parameters.
    pub fn flips(&self) -> bool {
        self.perturbed.shape(self.params.tolerance) != self.baseline.shape(self.params.tolerance)
    }

    /// Replays the witness from scratch: identity baseline (4 runs)
    /// plus the perturbed target run (1 run). Panics on unknown bug
    /// presets (a witness naming one is corrupt).
    pub fn replay(&self) -> WitnessReplay {
        let cfg = scenario_for(&self.bug, self.n_nodes, self.seed)
            .unwrap_or_else(|| panic!("unknown bug preset in witness: {}", self.bug));
        let mut ev = Evaluator::new(&cfg, self.params, self.target);
        let report = ev.run_target(&self.tie_order);
        let perturbed = ev.triple_with(&report);
        let tol = self.params.tolerance;
        WitnessReplay {
            baseline: ev.baseline,
            perturbed,
            report_digest: digest_report(&report),
            flipped: perturbed.shape(tol) != ev.baseline.shape(tol),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_sim::TieSwap;

    fn sample() -> ScheduleWitness {
        ScheduleWitness {
            format: WITNESS_FORMAT,
            bug: "baseline".into(),
            n_nodes: 8,
            seed: 1,
            params: VerdictParams::default(),
            target: Target::Real,
            tie_order: TieOrderSpec::with_swaps(vec![TieSwap { seq: 40, shift: 2 }]),
            baseline: FlapTriple {
                real: 0,
                colo: 20,
                pil: 1,
            },
            perturbed: FlapTriple {
                real: 9,
                colo: 20,
                pil: 1,
            },
            report_digest: "00".repeat(16),
        }
    }

    #[test]
    fn witness_json_round_trips() {
        let w = sample();
        let back = ScheduleWitness::from_json(&w.to_json()).expect("parse");
        assert_eq!(back, w);
    }

    #[test]
    fn stored_triples_classify_as_a_flip() {
        let w = sample();
        assert!(w.flips(), "real moved 0→9: tracking clause breaks");
    }

    #[test]
    fn future_formats_are_rejected() {
        let mut w = sample();
        w.format = WITNESS_FORMAT + 1;
        let err = ScheduleWitness::from_json(&w.to_json()).unwrap_err();
        assert!(err.contains("format"));
    }

    #[test]
    fn scenario_names_resolve() {
        for bug in ["baseline", "c3831", "c3881", "c5456", "c6127", "race"] {
            assert!(scenario_for(bug, 8, 1).is_some(), "{bug}");
        }
        assert!(scenario_for("c9999", 8, 1).is_none());
    }
}
