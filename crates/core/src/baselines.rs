//! The §4 state-of-the-art baselines, implemented for comparison.
//!
//! The paper surveys four families of prior approaches and argues each
//! falls short for scalability bugs:
//!
//! * **Testing on mini clusters** — that is simply [`crate::run_real`]
//!   at small N: the symptom has not surfaced yet.
//! * **Extrapolation** (Vrisha-style): learn behaviour at small scales
//!   and extrapolate; "bug symptoms might not appear in the small
//!   training scale, hence the behaviors are hard to extrapolate
//!   accurately". [`extrapolate_power_law`] implements the standard
//!   log-log least-squares fit — trained on healthy small scales it
//!   predicts a healthy large scale and misses the onset entirely.
//! * **Emulation with time dilation** (DieCast): colocate everything
//!   but stretch the system's perception of time by a factor TDF so
//!   contention no longer distorts behaviour. [`time_dilated`] builds
//!   the dilated scenario; it is *accurate* but each debugging
//!   iteration costs TDF × t (Figure 1b's N×t problem).
//! * **Simulation** — verifying a model rather than the implementation
//!   is outside this crate's scope by definition (the whole point is to
//!   run the real code).

use scalecheck_cluster::{DeploymentMode, ScenarioConfig, Workload};

/// Least-squares power-law fit `flaps ≈ a · N^b` in log space over
/// `(scale, flaps)` training points, evaluated at `target`.
///
/// Zero counts are shifted by +1 (the standard log-transform guard), so
/// an all-healthy training set predicts ≈ 0 at any scale — which is
/// exactly how extrapolation misses scalability bugs.
pub fn extrapolate_power_law(train: &[(usize, u64)], target: usize) -> f64 {
    if train.is_empty() {
        return 0.0;
    }
    let pts: Vec<(f64, f64)> = train
        .iter()
        .map(|&(n, f)| ((n as f64).ln(), ((f + 1) as f64).ln()))
        .collect();
    let k = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = k * sxx - sx * sx;
    let (a_ln, b) = if denom.abs() < 1e-12 {
        (sy / k, 0.0)
    } else {
        let b = (k * sxy - sx * sy) / denom;
        ((sy - b * sx) / k, b)
    };
    (a_ln + b * (target as f64).ln()).exp() - 1.0
}

/// Builds the DieCast-style time-dilated variant of a scenario.
///
/// DieCast colocates N VMs with a time-dilation factor TDF: the VMM
/// stretches each guest's perception of time by TDF and gives each VM a
/// proportional 1/TDF CPU slice, so perceived compute time matches the
/// real deployment. We model the proportional-share scheduler as a
/// dedicated 1/TDF-rate core per node (deployment `Real` with all
/// compute demands and protocol timescales multiplied by TDF): the
/// guest-visible dynamics are identical to real-scale testing, and the
/// test duration multiplies by TDF — Figure 1b's cost.
pub fn time_dilated(cfg: &ScenarioConfig, _cores: usize, tdf: u64) -> ScenarioConfig {
    let mut out = cfg
        .clone()
        .with_deployment(DeploymentMode::Real)
        .with_calc_io(scalecheck_cluster::CalcIo::Execute);
    out.ns_per_op = out.ns_per_op.saturating_mul(tdf);
    out.msg_base_cost = out.msg_base_cost.saturating_mul(tdf);
    out.per_endpoint_cost = out.per_endpoint_cost.saturating_mul(tdf);
    out.gossip_interval = out.gossip_interval.saturating_mul(tdf);
    out.fd_interval = out.fd_interval.saturating_mul(tdf);
    out.rescale_window = out.rescale_window.saturating_mul(tdf);
    out.workload_end = out.workload_end.saturating_mul(tdf);
    out.max_duration = out.max_duration.saturating_mul(tdf);
    out.order_hold_timeout = out.order_hold_timeout.saturating_mul(tdf);
    out.workload = dilate_workload(out.workload, tdf);
    out
}

/// Stretches a workload's timescales by `tdf`, preserving its kind —
/// the dilation [`time_dilated`] applies to the workload component.
pub fn dilate_workload(w: Workload, tdf: u64) -> Workload {
    match w {
        Workload::Decommission { count, gap } => Workload::Decommission {
            count,
            gap: gap.saturating_mul(tdf),
        },
        Workload::ScaleOut { count, gap } => Workload::ScaleOut {
            count,
            gap: gap.saturating_mul(tdf),
        },
        Workload::BootstrapFromScratch => Workload::BootstrapFromScratch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_sim::SimDuration;

    #[test]
    fn healthy_training_extrapolates_to_healthy() {
        // The §4 failure mode: no symptom below 128 -> prediction at 256
        // stays ~0 while reality is tens of thousands.
        let train = [(8usize, 0u64), (16, 0), (32, 0), (64, 0)];
        let predicted = extrapolate_power_law(&train, 256);
        assert!(predicted.abs() < 1.0, "predicted {predicted}");
    }

    #[test]
    fn power_law_recovers_a_true_power_law() {
        // flaps = 2 * N^2.
        let train: Vec<(usize, u64)> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| (n, 2 * (n as u64) * (n as u64)))
            .collect();
        let predicted = extrapolate_power_law(&train, 128);
        let truth = 2.0 * 128.0 * 128.0;
        assert!(
            (predicted - truth).abs() / truth < 0.1,
            "predicted {predicted} vs {truth}"
        );
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(extrapolate_power_law(&[], 256), 0.0);
        let one = extrapolate_power_law(&[(32, 100)], 256);
        assert!(one.is_finite());
    }

    #[test]
    fn dilation_scales_every_timescale() {
        let cfg = ScenarioConfig::c3831(64, 1);
        let d = time_dilated(&cfg, 16, 10);
        assert_eq!(
            d.gossip_interval,
            SimDuration::from_secs(10),
            "1s interval -> 10s"
        );
        assert_eq!(d.rescale_window, cfg.rescale_window.saturating_mul(10));
        assert_eq!(d.max_duration, cfg.max_duration.saturating_mul(10));
        // Exhaustive over every workload kind: the dilated workload is
        // exactly the original with its gap stretched by the TDF.
        assert_eq!(
            d.workload,
            dilate_workload(cfg.workload, 10),
            "workload kind preserved, gap dilated"
        );
        let Workload::Decommission { gap, .. } = d.workload else {
            unreachable!("c3831 is a decommission workload");
        };
        assert_eq!(
            gap,
            SimDuration::from_secs(1400),
            "c3831's 140s decommission gap -> 1400s under TDF 10"
        );
        assert_eq!(
            d.ns_per_op,
            cfg.ns_per_op * 10,
            "perceived compute is dilated with the clock"
        );
        assert!(matches!(d.deployment, DeploymentMode::Real));
    }
}
