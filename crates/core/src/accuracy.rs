//! Accuracy metrics: how close is scale-check to real-scale testing?
//!
//! The paper's accuracy claim (§5, §8) is that colocated nodes should
//! "generate a similar behavior as if they run on independent
//! machines". The metric of record is the flap count (Figure 3); we
//! compare whole sweeps: per-scale relative error plus the *onset*
//! scale at which symptoms first appear (Figure 3's "symptoms only
//! surface at large N" shape).

use serde::{Deserialize, Serialize};

/// One (scale, flaps) series, e.g. one line of a Figure 3 panel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlapSweep {
    /// Cluster sizes.
    pub scales: Vec<usize>,
    /// Flap totals, one per scale.
    pub flaps: Vec<u64>,
}

impl FlapSweep {
    /// Creates a sweep.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn new(scales: Vec<usize>, flaps: Vec<u64>) -> Self {
        assert_eq!(scales.len(), flaps.len(), "sweep lengths must match");
        FlapSweep { scales, flaps }
    }

    /// The smallest scale at which flaps exceed `threshold` (the
    /// symptom onset), if any.
    pub fn onset(&self, threshold: u64) -> Option<usize> {
        self.scales
            .iter()
            .zip(&self.flaps)
            .find(|(_, &f)| f > threshold)
            .map(|(&s, _)| s)
    }
}

/// Agreement between a candidate sweep and the real-scale reference.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepComparison {
    /// Symmetric relative error per scale, in `[0, 2]`.
    pub per_scale_error: Vec<f64>,
    /// Mean of `per_scale_error`.
    pub mean_error: f64,
    /// Whether both sweeps have their symptom onset at the same scale.
    pub same_onset: bool,
    /// Ratio candidate/reference at the largest scale (1.0 = perfect).
    pub peak_ratio: f64,
}

/// Symmetric relative error between two counts: `|a-b| / max(a, b)`,
/// zero when both are zero. Bounded by 1 and symmetric, which keeps
/// zero-flap scales meaningful (absolute error would).
fn sym_err(a: u64, b: u64) -> f64 {
    let m = a.max(b);
    if m == 0 {
        0.0
    } else {
        (a.abs_diff(b)) as f64 / m as f64
    }
}

/// Compares a candidate sweep against the real-scale reference.
///
/// `onset_threshold` defines "symptoms present" (the paper's panels use
/// a visually-obvious threshold; a few hundred flaps works).
///
/// # Panics
///
/// Panics if the sweeps cover different scales.
pub fn compare_sweeps(
    reference: &FlapSweep,
    candidate: &FlapSweep,
    onset_threshold: u64,
) -> SweepComparison {
    assert_eq!(
        reference.scales, candidate.scales,
        "sweeps must cover the same scales"
    );
    let per_scale_error: Vec<f64> = reference
        .flaps
        .iter()
        .zip(&candidate.flaps)
        .map(|(&r, &c)| sym_err(r, c))
        .collect();
    let mean_error = if per_scale_error.is_empty() {
        0.0
    } else {
        per_scale_error.iter().sum::<f64>() / per_scale_error.len() as f64
    };
    let peak_ratio = match (reference.flaps.last(), candidate.flaps.last()) {
        (Some(&r), Some(&c)) if r > 0 => c as f64 / r as f64,
        (Some(&r), Some(&c)) if r == 0 && c == 0 => 1.0,
        _ => f64::INFINITY,
    };
    SweepComparison {
        per_scale_error,
        mean_error,
        same_onset: reference.onset(onset_threshold) == candidate.onset(onset_threshold),
        peak_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sweeps_are_perfect() {
        let a = FlapSweep::new(vec![32, 64, 128, 256], vec![0, 0, 10, 5000]);
        let cmp = compare_sweeps(&a, &a.clone(), 100);
        assert_eq!(cmp.mean_error, 0.0);
        assert!(cmp.same_onset);
        assert_eq!(cmp.peak_ratio, 1.0);
    }

    #[test]
    fn onset_detection() {
        let a = FlapSweep::new(vec![32, 64, 128, 256], vec![0, 3, 150, 9000]);
        assert_eq!(a.onset(100), Some(128));
        assert_eq!(a.onset(10_000), None);
        assert_eq!(a.onset(0), Some(64));
    }

    #[test]
    fn colo_style_overshoot_is_flagged() {
        let real = FlapSweep::new(vec![64, 128, 256], vec![0, 0, 10_000]);
        let colo = FlapSweep::new(vec![64, 128, 256], vec![500, 30_000, 250_000]);
        let cmp = compare_sweeps(&real, &colo, 300);
        assert!(!cmp.same_onset, "colo onsets earlier");
        assert!(cmp.peak_ratio > 10.0);
        assert!(cmp.mean_error > 0.5);
    }

    #[test]
    fn pil_style_agreement_scores_well() {
        let real = FlapSweep::new(vec![64, 128, 256], vec![0, 200, 10_000]);
        let pil = FlapSweep::new(vec![64, 128, 256], vec![0, 240, 11_500]);
        let cmp = compare_sweeps(&real, &pil, 100);
        assert!(cmp.same_onset);
        assert!(cmp.mean_error < 0.2, "mean err {}", cmp.mean_error);
        assert!((cmp.peak_ratio - 1.15).abs() < 0.01);
    }

    #[test]
    fn zero_zero_scales_count_as_agreement() {
        let real = FlapSweep::new(vec![32, 256], vec![0, 100]);
        let pil = FlapSweep::new(vec![32, 256], vec![0, 100]);
        let cmp = compare_sweeps(&real, &pil, 10);
        assert_eq!(cmp.per_scale_error, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "same scales")]
    fn mismatched_scales_panic() {
        let a = FlapSweep::new(vec![32], vec![0]);
        let b = FlapSweep::new(vec![64], vec![0]);
        compare_sweeps(&a, &b, 10);
    }
}
