//! **ScaleCheck** — single-machine scale-checking of distributed
//! systems, reproducing "Scalability Bugs: When 100-Node Testing is Not
//! Enough" (HotOS '17).
//!
//! Scalability bugs are latent, cluster-scale-dependent bugs whose
//! symptoms surface only in large deployments. Real-scale testing is
//! expensive; naive colocation of N nodes on one machine distorts
//! behaviour through CPU contention. ScaleCheck's answer is the
//! **processing illusion (PIL)**: replace expensive, side-effect-free
//! computations with `sleep(t)` plus a memoized output, so hundreds of
//! colocated nodes behave as if each had its own machine.
//!
//! The crate exposes the paper's pipelines over the cluster substrate:
//!
//! * [`run_real`] / [`run_colo`] — the ground truth and the naive
//!   baseline;
//! * [`memoize`] → [`replay`] / [`scale_check`] — the SC+PIL pipeline
//!   (instrumented colocation run, then deterministic PIL replay);
//! * [`accuracy`] — sweep comparison metrics (Figure 3's question: does
//!   SC+PIL track Real where Colo does not?);
//! * [`bottleneck`] — the §8 colocation-limit diagnostics (CPU > 90 %,
//!   OOM, event lateness).
//!
//! # Examples
//!
//! ```
//! use scalecheck::{run_real, scale_check, COLO_CORES};
//! use scalecheck_cluster::ScenarioConfig;
//!
//! // A small, healthy cluster: SC+PIL must agree with real-scale.
//! let mut cfg = ScenarioConfig::baseline(8, 1);
//! let real = run_real(&cfg);
//! let sc = scale_check(&cfg, COLO_CORES);
//! assert_eq!(real.total_flaps, sc.replay.total_flaps);
//! ```

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod baselines;
pub mod bottleneck;
pub mod cell;
pub mod scalecheck;

pub use accuracy::{compare_sweeps, FlapSweep, SweepComparison};
pub use baselines::{extrapolate_power_law, time_dilated};
pub use bottleneck::{
    colocation_memory_demand, diagnose, max_colocation, Bottleneck, BottleneckThresholds,
    ColocationStep,
};
pub use cell::{run_cell, CellSpec, ExecMode};
pub use scalecheck::{
    memoize, replay, replay_ordered, run_colo, run_real, scale_check, MemoArtifacts,
    ScaleCheckResult, COLO_CORES,
};
