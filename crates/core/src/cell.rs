//! Experiment cells: self-contained, serializable units of sweep work.
//!
//! A sweep (one figure or table) decomposes into independent cells,
//! each a `(scenario, mode)` pair. [`run_cell`] builds every piece of
//! runner state — engine, cluster, memo database — fresh inside the
//! call, so cells can execute concurrently on worker threads with no
//! shared state. [`ExecMode`] and [`CellSpec`] are serializable so a
//! cell's full configuration can be digested into a content-addressed
//! cache key.

use scalecheck_cluster::{RunReport, ScenarioConfig};
use serde::{Deserialize, Serialize};

use crate::scalecheck::{memoize, replay, replay_ordered, run_colo, run_real};

/// Which pipeline a cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Real-scale testing: every node on its own machine.
    Real,
    /// Basic colocation on `cores` cores.
    Colo {
        /// Cores on the colocation machine.
        cores: usize,
    },
    /// The one-time instrumented memoization run; reports the
    /// memoization run itself.
    Memo {
        /// Cores on the colocation machine.
        cores: usize,
    },
    /// The full SC+PIL pipeline (memoize, then replay); reports the
    /// replay.
    ScPil {
        /// Cores on the colocation machine.
        cores: usize,
        /// Whether the replay enforces the recorded per-node
        /// message-processing order (§5).
        ordered: bool,
    },
}

impl ExecMode {
    /// A short human label for progress lines.
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Real => "Real",
            ExecMode::Colo { .. } => "Colo",
            ExecMode::Memo { .. } => "Memo",
            ExecMode::ScPil { ordered: false, .. } => "SC+PIL",
            ExecMode::ScPil { ordered: true, .. } => "SC+PIL+ord",
        }
    }
}

/// One cell's full configuration: everything that determines its
/// result, and nothing else. Serializing this is the content-addressed
/// cache key. Because the scenario embeds its `FaultPlan`, two cells
/// differing only in injected faults digest to different keys.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellSpec {
    /// The complete scenario (includes bug shape, scale, and seed).
    pub config: ScenarioConfig,
    /// Which pipeline to run it under.
    pub mode: ExecMode,
}

impl CellSpec {
    /// Builds a cell spec.
    pub fn new(config: ScenarioConfig, mode: ExecMode) -> Self {
        CellSpec { config, mode }
    }

    /// Runs this cell. See [`run_cell`].
    pub fn run(&self) -> RunReport {
        run_cell(&self.config, self.mode)
    }
}

/// Runs one cell to completion, constructing all engine and cluster
/// state inside the call. Safe to invoke concurrently from many
/// threads.
pub fn run_cell(cfg: &ScenarioConfig, mode: ExecMode) -> RunReport {
    match mode {
        ExecMode::Real => run_real(cfg),
        ExecMode::Colo { cores } => run_colo(cfg, cores),
        ExecMode::Memo { cores } => memoize(cfg, cores).report,
        ExecMode::ScPil { cores, ordered } => {
            let memo = memoize(cfg, cores);
            if ordered {
                replay_ordered(cfg, cores, &memo)
            } else {
                replay(cfg, cores, &memo)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::COLO_CORES;

    fn tiny() -> ScenarioConfig {
        let mut cfg = ScenarioConfig::c3831(10, 7);
        cfg.workload = scalecheck_cluster::Workload::Decommission {
            count: 1,
            gap: scalecheck_sim::SimDuration::from_secs(30),
        };
        cfg.workload_end = scalecheck_sim::SimDuration::from_secs(90);
        cfg.max_duration = scalecheck_sim::SimDuration::from_secs(400);
        cfg
    }

    #[test]
    fn cell_matches_direct_facade_calls() {
        let cfg = tiny();
        let via_cell = run_cell(&cfg, ExecMode::Real);
        let direct = run_real(&cfg);
        assert_eq!(via_cell.total_flaps, direct.total_flaps);
        assert_eq!(via_cell.messages_delivered, direct.messages_delivered);
    }

    #[test]
    fn cells_run_concurrently_and_deterministically() {
        let spec = CellSpec::new(
            tiny(),
            ExecMode::ScPil {
                cores: COLO_CORES,
                ordered: false,
            },
        );
        let serial = spec.run();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec.clone();
                std::thread::spawn(move || spec.run())
            })
            .collect();
        for h in handles {
            let parallel = h.join().expect("cell thread");
            assert_eq!(parallel.total_flaps, serial.total_flaps);
            assert_eq!(parallel.messages_delivered, serial.messages_delivered);
        }
    }

    #[test]
    fn cell_spec_round_trips_through_json() {
        let spec = CellSpec::new(
            tiny(),
            ExecMode::ScPil {
                cores: COLO_CORES,
                ordered: true,
            },
        );
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: CellSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.mode, spec.mode);
        assert_eq!(back.config.n_nodes, spec.config.n_nodes);
        assert_eq!(json, serde_json::to_string(&back).expect("re-serialize"));
    }
}
