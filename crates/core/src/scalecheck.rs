//! The ScaleCheck facade: one-call access to the paper's pipelines.
//!
//! * [`run_real`] — real-scale testing (Figure 1a): the ground truth.
//! * [`run_colo`] — basic colocation (Figure 1b): cheap but inaccurate.
//! * [`memoize`] — the one-time instrumented colocation run
//!   (Figure 2 step d) that fills the memo database and order log.
//! * [`replay`] — the fast, accurate PIL-infused replay
//!   (Figure 2 steps e–f).
//! * [`scale_check`] — memoize once, then replay: the paper's full
//!   "SC+PIL" pipeline.

use scalecheck_cluster::{
    run_scenario_with_db, CalcIo, DeploymentMode, PendingWire, RunReport, ScenarioConfig,
};
use scalecheck_memo::{MemoDb, OrderRecorder};

/// Cores on the paper's colocation machine (a 16-core Nome node).
pub const COLO_CORES: usize = 16;

/// Artifacts of a memoization run: the database plus the recorded
/// message order.
pub struct MemoArtifacts {
    /// The memo database (input → output, duration).
    pub db: MemoDb<PendingWire>,
    /// Per-node processed-message order.
    pub order: OrderRecorder,
    /// The memoization run's own report (it *is* a Colo run).
    pub report: RunReport,
}

/// Results of the full scale-check pipeline.
pub struct ScaleCheckResult {
    /// The memoization artifacts.
    pub memo: MemoArtifacts,
    /// The PIL-infused replay's report.
    pub replay: RunReport,
}

/// Runs the scenario at real scale (every node on its own machine).
pub fn run_real(cfg: &ScenarioConfig) -> RunReport {
    let cfg = cfg
        .clone()
        .with_deployment(DeploymentMode::Real)
        .with_calc_io(CalcIo::Execute);
    run_scenario_with_db(&cfg, None, None).0
}

/// Runs the scenario under basic colocation on `cores` cores.
pub fn run_colo(cfg: &ScenarioConfig, cores: usize) -> RunReport {
    let cfg = cfg
        .clone()
        .with_deployment(DeploymentMode::Colo { cores })
        .with_calc_io(CalcIo::Execute);
    run_scenario_with_db(&cfg, None, None).0
}

/// The one-time memoization run: basic colocation with input/output/
/// duration recording and order logging.
pub fn memoize(cfg: &ScenarioConfig, cores: usize) -> MemoArtifacts {
    let cfg = cfg
        .clone()
        .with_deployment(DeploymentMode::Colo { cores })
        .with_calc_io(CalcIo::Record);
    let (report, db, order) = run_scenario_with_db(&cfg, None, None);
    MemoArtifacts {
        db,
        order: order.unwrap_or_default(),
        report,
    }
}

/// A PIL-infused replay over previously memoized artifacts.
///
/// Input lookups go by content digest; in this substrate the
/// calculation inputs converge deterministically, so digest hits
/// dominate and §5's order enforcement is left off by default (it is
/// implemented and measurable — see [`replay_ordered`] and the
/// fix-ablation experiment).
pub fn replay(cfg: &ScenarioConfig, cores: usize, memo: &MemoArtifacts) -> RunReport {
    let mut cfg = cfg
        .clone()
        .with_deployment(DeploymentMode::PilReplay { cores })
        .with_calc_io(CalcIo::Replay);
    cfg.order_enforcement = false;
    run_scenario_with_db(&cfg, Some(memo.db.clone()), Some(memo.order.clone())).0
}

/// A PIL-infused replay that also enforces the recorded per-node
/// message-processing order (§5 order determinism), with the configured
/// hold timeout bounding divergence damage.
pub fn replay_ordered(cfg: &ScenarioConfig, cores: usize, memo: &MemoArtifacts) -> RunReport {
    let mut cfg = cfg
        .clone()
        .with_deployment(DeploymentMode::PilReplay { cores })
        .with_calc_io(CalcIo::Replay);
    cfg.order_enforcement = true;
    run_scenario_with_db(&cfg, Some(memo.db.clone()), Some(memo.order.clone())).0
}

/// The full SC+PIL pipeline: memoize once, replay once.
pub fn scale_check(cfg: &ScenarioConfig, cores: usize) -> ScaleCheckResult {
    let memo = memoize(cfg, cores);
    let replay_report = replay(cfg, cores, &memo);
    ScaleCheckResult {
        memo,
        replay: replay_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScenarioConfig {
        // Small and fast: 10 nodes, one decommission, cubic calculator
        // (cheap at this scale).
        let mut cfg = ScenarioConfig::c3831(10, 7);
        cfg.workload = scalecheck_cluster::Workload::Decommission {
            count: 1,
            gap: scalecheck_sim::SimDuration::from_secs(30),
        };
        cfg.workload_end = scalecheck_sim::SimDuration::from_secs(90);
        cfg.max_duration = scalecheck_sim::SimDuration::from_secs(400);
        cfg
    }

    #[test]
    fn real_run_quiesces_without_flaps_at_small_scale() {
        let r = run_real(&tiny());
        assert!(r.quiesced, "run should settle");
        assert_eq!(r.total_flaps, 0, "10-node decommission is healthy");
        assert!(r.messages_delivered > 100, "gossip flowed");
        assert!(r.calc.invocations > 0, "calculations happened");
    }

    #[test]
    fn memoize_fills_db_and_order_log() {
        let memo = memoize(&tiny(), COLO_CORES);
        assert!(!memo.db.is_empty());
        assert!(memo.order.total() > 0);
        assert!(memo.report.calc.invocations > 0);
    }

    #[test]
    fn replay_mostly_hits_the_db() {
        let cfg = tiny();
        let result = scale_check(&cfg, COLO_CORES);
        let stats = result.replay.memo;
        let rate = stats.replay_hit_rate();
        assert!(
            rate > 0.8,
            "replay should be served from the DB (rate {rate}, stats {stats:?})"
        );
    }

    #[test]
    fn replay_matches_real_flaps_at_small_scale() {
        let cfg = tiny();
        let real = run_real(&cfg);
        let result = scale_check(&cfg, COLO_CORES);
        assert_eq!(
            result.replay.total_flaps, real.total_flaps,
            "healthy scale must stay healthy under SC+PIL"
        );
    }
}
