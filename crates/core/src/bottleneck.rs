//! Colocation-bottleneck detection (§6, §8).
//!
//! "Currently, on the 16-core 32-GB Nome machine, we can reach a
//! maximum colocation factor of 512. When we tried colocating 600
//! nodes, we hit one of the following limitations: high CPU contention
//! (>90% utilization), memory exhaustion [...], or high event lateness
//! (queuing delays from thread context switching)."
//!
//! [`diagnose`] inspects a run report against those three limits;
//! [`max_colocation`] sweeps the colocation factor to find the largest
//! scale that stays clean — reproducing the §8 limit experiment.

use scalecheck_cluster::{RunReport, ScenarioConfig};
use scalecheck_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The §8 colocation limits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Bottleneck {
    /// CPU utilization above the threshold (default 90 %).
    CpuContention,
    /// An allocation failed (nodes crash with OOM).
    MemoryExhaustion,
    /// Stage queueing delay above the lateness threshold.
    EventLateness,
}

/// Detection thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BottleneckThresholds {
    /// CPU utilization limit (the paper's ">90%").
    pub cpu_utilization: f64,
    /// p99 stage lateness limit.
    pub event_lateness: SimDuration,
}

impl Default for BottleneckThresholds {
    fn default() -> Self {
        BottleneckThresholds {
            cpu_utilization: 0.9,
            event_lateness: SimDuration::from_millis(500),
        }
    }
}

/// Which limits a run hit (empty = clean).
pub fn diagnose(report: &RunReport, thresholds: &BottleneckThresholds) -> Vec<Bottleneck> {
    let mut out = Vec::new();
    if report.cpu_utilization > thresholds.cpu_utilization {
        out.push(Bottleneck::CpuContention);
    }
    if report.oom_events > 0 || report.crashed_nodes > 0 {
        out.push(Bottleneck::MemoryExhaustion);
    }
    if report.p99_stage_lateness > thresholds.event_lateness {
        out.push(Bottleneck::EventLateness);
    }
    out
}

/// Result of one step of the colocation sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColocationStep {
    /// Colocation factor (nodes on the one machine).
    pub nodes: usize,
    /// Limits hit at this factor.
    pub bottlenecks: Vec<Bottleneck>,
    /// CPU utilization observed.
    pub cpu_utilization: f64,
    /// Peak memory observed.
    pub mem_peak_bytes: u64,
    /// p99 stage lateness observed.
    pub p99_lateness: SimDuration,
}

/// Sweeps colocation factors, running `run` at each, and returns the
/// per-step diagnostics plus the largest clean factor.
pub fn max_colocation<F>(
    factors: &[usize],
    thresholds: &BottleneckThresholds,
    mut run: F,
) -> (Vec<ColocationStep>, Option<usize>)
where
    F: FnMut(usize) -> RunReport,
{
    let mut steps = Vec::new();
    let mut best = None;
    for &n in factors {
        let report = run(n);
        let bottlenecks = diagnose(&report, thresholds);
        if bottlenecks.is_empty() {
            best = Some(n);
        }
        steps.push(ColocationStep {
            nodes: n,
            bottlenecks,
            cpu_utilization: report.cpu_utilization,
            mem_peak_bytes: report.mem_peak_bytes,
            p99_lateness: report.p99_stage_lateness,
        });
    }
    (steps, best)
}

/// Estimated memory demand of colocating `nodes` nodes (used by the
/// memory table and as a fast pre-check): runtime overhead plus ring
/// tables.
pub fn colocation_memory_demand(cfg: &ScenarioConfig, nodes: usize) -> u64 {
    let runtime = if cfg.memory.single_process {
        cfg.memory.per_process_overhead
    } else {
        cfg.memory.per_process_overhead * nodes as u64
    };
    let ring = (nodes * nodes * cfg.vnodes) as u64 * cfg.memory.bytes_per_ring_entry;
    runtime + ring
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalecheck_cluster::CalcStats;
    use scalecheck_memo::MemoStats;
    use scalecheck_sim::TimeSeries;

    fn report(cpu: f64, oom: u64, lateness_ms: u64) -> RunReport {
        RunReport {
            total_flaps: 0,
            per_node_flaps: vec![],
            recoveries: 0,
            flap_series: TimeSeries::new(),
            duration: SimDuration::ZERO,
            quiesced: true,
            calc: CalcStats::default(),
            memo: MemoStats::default(),
            messages_sent: 0,
            messages_dropped: 0,
            messages_delivered: 0,
            max_stage_lateness: SimDuration::from_millis(lateness_ms),
            p99_stage_lateness: SimDuration::from_millis(lateness_ms),
            cpu_utilization: cpu,
            peak_runnable: 0,
            mem_peak_bytes: 0,
            oom_events: oom,
            crashed_nodes: 0,
            order_out_of_log: 0,
            order_forced_releases: 0,
            client_ops_attempted: 0,
            client_ops_failed: 0,
            traffic: Default::default(),
            engine: scalecheck_sim::EngineCounters::default(),
            stale_timer_fires: 0,
            faults: scalecheck_cluster::FaultReport::default(),
            trace: scalecheck_cluster::TraceLog::default(),
            obs: Default::default(),
            schedule_probe: None,
        }
    }

    #[test]
    fn clean_run_has_no_bottlenecks() {
        let d = diagnose(&report(0.4, 0, 10), &BottleneckThresholds::default());
        assert!(d.is_empty());
    }

    #[test]
    fn each_limit_detected() {
        let t = BottleneckThresholds::default();
        assert_eq!(
            diagnose(&report(0.95, 0, 10), &t),
            vec![Bottleneck::CpuContention]
        );
        assert_eq!(
            diagnose(&report(0.4, 2, 10), &t),
            vec![Bottleneck::MemoryExhaustion]
        );
        assert_eq!(
            diagnose(&report(0.4, 0, 900), &t),
            vec![Bottleneck::EventLateness]
        );
        let all = diagnose(&report(0.95, 1, 900), &t);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn sweep_finds_largest_clean_factor() {
        let (steps, best) = max_colocation(
            &[128, 256, 512, 600],
            &BottleneckThresholds::default(),
            |n| {
                if n <= 512 {
                    report(0.5, 0, 10)
                } else {
                    report(0.97, 1, 800)
                }
            },
        );
        assert_eq!(best, Some(512));
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[3].bottlenecks.len(), 3);
    }

    #[test]
    fn memory_demand_scales_with_process_model() {
        let mut cfg = ScenarioConfig::baseline(16, 1);
        cfg.memory.single_process = false;
        let multi = colocation_memory_demand(&cfg, 100);
        cfg.memory.single_process = true;
        let single = colocation_memory_demand(&cfg, 100);
        assert!(multi > single);
        // 100 processes at 70 MB each is ~7 GB of pure runtime overhead.
        assert!(multi - single > 6 << 30);
    }
}
