//! Cassandra-style gossip and failure detection for ScaleCheck.
//!
//! Implements the protocol stack the paper's flapping bugs live in:
//!
//! * heartbeat/endpoint state with generation + version freshness
//!   ([`state`]);
//! * the three-way SYN/ACK/ACK2 anti-entropy exchange
//!   ([`Gossiper`]);
//! * the φ accrual failure detector ([`PhiDetector`]);
//! * per-node conviction state and flap accounting
//!   ([`FailureDetector`]) — a *flap* is one node marking a live peer
//!   down, the metric plotted in the paper's Figure 3.
//!
//! The gossiper is generic over the application payload `A`; the cluster
//! crate instantiates it with ring status (tokens + lifecycle), making
//! topology changes ride the same versioned channel as heartbeats —
//! which is exactly why a slow pending-range calculation starves
//! liveness information and causes flapping.

#![forbid(unsafe_code)]

pub mod failure;
pub mod gossiper;
pub mod phi;
pub mod state;

pub use failure::{FailureDetector, Liveness};
pub use gossiper::{Ack, Ack2, ApplyOutcome, Gossiper, Syn};
pub use phi::PhiDetector;
pub use state::{Delta, Digest, EndpointMap, EndpointState, HeartbeatState, Peer};
