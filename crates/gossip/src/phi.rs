//! The φ accrual failure detector (Hayashibara et al., SRDS '04).
//!
//! Cassandra adopted the accrual detector for its scalability (§3 cites
//! this directly), but the design's proof "did not account gossip
//! processing time during bootstrap/cluster-rescale" — exactly the gap
//! the paper's bugs fall into. We implement Cassandra's simplified
//! exponential variant: with mean heartbeat inter-arrival `m`, the
//! suspicion level after `t` of silence is
//!
//! ```text
//! phi(t) = t / (m * ln 10)
//! ```
//!
//! i.e. `phi = -log10(P(no heartbeat for t | exponential arrivals))`.
//! A peer is convicted when `phi` exceeds a threshold (Cassandra default
//! 8, ≈ 18.4 mean intervals of silence).

use std::collections::VecDeque;

use scalecheck_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Sliding-window arrival statistics and suspicion for one peer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhiDetector {
    window: VecDeque<f64>,
    window_cap: usize,
    last_arrival: Option<SimTime>,
    mean_floor_s: f64,
    initial_mean_s: f64,
    max_interval_s: f64,
}

impl PhiDetector {
    /// Creates a detector.
    ///
    /// * `window_cap` — how many inter-arrival samples to keep
    ///   (Cassandra keeps 1000).
    /// * `initial_mean` — assumed inter-arrival before enough samples
    ///   exist (use the gossip interval).
    /// * `mean_floor` — lower clamp on the estimated mean, preventing a
    ///   burst of rapid heartbeats from making the detector hair-trigger.
    /// * `max_interval` — inter-arrival samples above this are discarded
    ///   (Cassandra's `MAX_INTERVAL`): the detector must not *adapt* to
    ///   starvation-induced slow arrivals, otherwise the very stalls it
    ///   exists to detect would desensitize it.
    pub fn new(
        window_cap: usize,
        initial_mean: SimDuration,
        mean_floor: SimDuration,
        max_interval: SimDuration,
    ) -> Self {
        PhiDetector {
            window: VecDeque::with_capacity(window_cap.min(4096)),
            window_cap: window_cap.max(1),
            last_arrival: None,
            mean_floor_s: mean_floor.as_secs_f64(),
            initial_mean_s: initial_mean.as_secs_f64(),
            max_interval_s: max_interval.as_secs_f64(),
        }
    }

    /// A Cassandra-like default: window 1000, initial mean = gossip
    /// interval, floor = half the interval, max accepted interval = 2x
    /// the interval.
    pub fn cassandra(gossip_interval: SimDuration) -> Self {
        Self::new(
            1000,
            gossip_interval,
            SimDuration::from_nanos(gossip_interval.as_nanos() / 2),
            SimDuration::from_nanos(gossip_interval.as_nanos() * 2),
        )
    }

    /// Records a heartbeat arrival at `now`.
    pub fn heartbeat(&mut self, now: SimTime) {
        if let Some(last) = self.last_arrival {
            if now > last {
                let interval = now.since(last).as_secs_f64();
                // Cassandra drops outsize intervals instead of letting
                // them inflate the mean.
                if interval <= self.max_interval_s {
                    if self.window.len() == self.window_cap {
                        self.window.pop_front();
                    }
                    self.window.push_back(interval);
                }
            }
        }
        self.last_arrival = Some(self.last_arrival.map_or(now, |l| l.max(now)));
    }

    /// Estimated mean inter-arrival, clamped to the floor.
    pub fn mean_interval(&self) -> f64 {
        let mean = if self.window.is_empty() {
            self.initial_mean_s
        } else {
            self.window.iter().sum::<f64>() / self.window.len() as f64
        };
        mean.max(self.mean_floor_s)
    }

    /// Current suspicion level. Zero until the first heartbeat arrives.
    pub fn phi(&self, now: SimTime) -> f64 {
        let Some(last) = self.last_arrival else {
            return 0.0;
        };
        let t = now.since(last).as_secs_f64();
        t / (self.mean_interval() * std::f64::consts::LN_10)
    }

    /// When the last heartbeat arrived.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// Number of inter-arrival samples currently held.
    pub fn samples(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> PhiDetector {
        PhiDetector::cassandra(SimDuration::from_secs(1))
    }

    fn secs(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn silent_before_first_heartbeat() {
        let d = det();
        assert_eq!(d.phi(secs(100)), 0.0);
        assert!(d.last_arrival().is_none());
    }

    #[test]
    fn phi_grows_linearly_with_silence() {
        let mut d = det();
        for s in 0..10 {
            d.heartbeat(secs(s));
        }
        let p1 = d.phi(secs(12));
        let p2 = d.phi(secs(15));
        assert!(p2 > p1);
        // With 1s mean, phi(t) = t / ln10 ~ 0.434*t.
        let expect = 3.0 / std::f64::consts::LN_10;
        assert!((d.phi(secs(12)) - expect).abs() < 0.05, "phi {p1}");
    }

    #[test]
    fn phi_resets_on_heartbeat() {
        let mut d = det();
        for s in 0..10 {
            d.heartbeat(secs(s));
        }
        let suspicious = d.phi(secs(30));
        assert!(suspicious > 8.0);
        d.heartbeat(secs(30));
        assert!(d.phi(secs(30)) < 0.01);
    }

    #[test]
    fn threshold_8_means_about_18_intervals() {
        // phi = 8 at t = 8 * ln10 * mean ~ 18.4 mean intervals.
        let mut d = det();
        for s in 0..20 {
            d.heartbeat(secs(s));
        }
        let last = 19.0;
        let t_convict = 8.0 * std::f64::consts::LN_10; // seconds with mean 1s
        let just_before = from_secs_f64(last + t_convict - 0.2);
        let just_after = from_secs_f64(last + t_convict + 0.2);
        assert!(d.phi(just_before) < 8.0);
        assert!(d.phi(just_after) > 8.0);
    }

    #[test]
    fn faster_heartbeats_make_detector_more_sensitive() {
        let mut slow = det();
        let mut fast = det();
        for i in 0..20u64 {
            slow.heartbeat(SimTime::from_secs(i * 2));
            fast.heartbeat(SimTime::from_secs(i));
        }
        // Same absolute silence from each detector's own last arrival.
        let silence = SimDuration::from_secs(10);
        let p_slow = slow.phi(SimTime::from_secs(38) + silence);
        let p_fast = fast.phi(SimTime::from_secs(19) + silence);
        assert!(
            p_fast > p_slow,
            "fast ({p_fast}) should suspect sooner than slow ({p_slow})"
        );
    }

    #[test]
    fn mean_floor_prevents_hair_trigger() {
        let mut d = PhiDetector::new(
            100,
            SimDuration::from_secs(1),
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
        );
        // Burst of heartbeats 1ms apart would estimate a 1ms mean; the
        // floor keeps it at 500ms.
        for i in 0..50u64 {
            d.heartbeat(SimTime::from_millis(i));
        }
        assert!((d.mean_interval() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_is_bounded() {
        let mut d = PhiDetector::new(
            8,
            SimDuration::from_secs(1),
            SimDuration::from_millis(1),
            SimDuration::from_secs(2),
        );
        for s in 0..100 {
            d.heartbeat(secs(s));
        }
        assert_eq!(d.samples(), 8);
    }

    #[test]
    fn out_of_order_heartbeat_is_harmless() {
        let mut d = det();
        d.heartbeat(secs(10));
        d.heartbeat(secs(5)); // Late-arriving old beat.
        assert_eq!(d.last_arrival(), Some(secs(10)));
    }

    // Test-only helper: fractional-second construction.
    fn from_secs_f64(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }
}
