//! The φ accrual failure detector (Hayashibara et al., SRDS '04).
//!
//! Cassandra adopted the accrual detector for its scalability (§3 cites
//! this directly), but the design's proof "did not account gossip
//! processing time during bootstrap/cluster-rescale" — exactly the gap
//! the paper's bugs fall into. We implement Cassandra's simplified
//! exponential variant: with mean heartbeat inter-arrival `m`, the
//! suspicion level after `t` of silence is
//!
//! ```text
//! phi(t) = t / (m * ln 10)
//! ```
//!
//! i.e. `phi = -log10(P(no heartbeat for t | exponential arrivals))`.
//! A peer is convicted when `phi` exceeds a threshold (Cassandra default
//! 8, ≈ 18.4 mean intervals of silence).

use std::collections::VecDeque;

use scalecheck_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Sliding-window arrival statistics and suspicion for one peer.
///
/// # Numerical anchoring of the running sum
///
/// `mean_interval` used to re-sum the whole window (up to 1000 `f64`
/// samples) on every call — and it is called once per peer per
/// failure-detector tick, making the detector O(window · peers) per
/// tick. The fix keeps a running sum maintained incrementally in
/// [`PhiDetector::heartbeat`]. A running *float* sum cannot be kept
/// bit-identical to a windowed re-sum (float addition is not
/// associative, and subtracting an evicted sample re-rounds), so the
/// window stores intervals as **integer nanoseconds** and the running
/// sum is a `u128`: integer addition is exact and associative, the
/// incremental sum equals a from-scratch re-sum bit-for-bit, and both
/// paths share the single final float conversion in `mean_interval`.
/// The differential proptest in `tests/proptests.rs` pins this
/// equivalence (exact `f64::to_bits` equality against
/// [`PhiDetector::mean_interval_naive`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhiDetector {
    /// Inter-arrival samples in integer nanoseconds (see above).
    window: VecDeque<u64>,
    /// Exact sum of `window` in nanoseconds, maintained incrementally.
    window_sum_ns: u128,
    window_cap: usize,
    last_arrival: Option<SimTime>,
    mean_floor_s: f64,
    initial_mean_s: f64,
    max_interval_ns: u64,
}

impl PhiDetector {
    /// Creates a detector.
    ///
    /// * `window_cap` — how many inter-arrival samples to keep
    ///   (Cassandra keeps 1000).
    /// * `initial_mean` — assumed inter-arrival before enough samples
    ///   exist (use the gossip interval).
    /// * `mean_floor` — lower clamp on the estimated mean, preventing a
    ///   burst of rapid heartbeats from making the detector hair-trigger.
    /// * `max_interval` — inter-arrival samples above this are discarded
    ///   (Cassandra's `MAX_INTERVAL`): the detector must not *adapt* to
    ///   starvation-induced slow arrivals, otherwise the very stalls it
    ///   exists to detect would desensitize it.
    pub fn new(
        window_cap: usize,
        initial_mean: SimDuration,
        mean_floor: SimDuration,
        max_interval: SimDuration,
    ) -> Self {
        PhiDetector {
            window: VecDeque::with_capacity(window_cap.min(4096)),
            window_sum_ns: 0,
            window_cap: window_cap.max(1),
            last_arrival: None,
            mean_floor_s: mean_floor.as_secs_f64(),
            initial_mean_s: initial_mean.as_secs_f64(),
            max_interval_ns: max_interval.as_nanos(),
        }
    }

    /// A Cassandra-like default: window 1000, initial mean = gossip
    /// interval, floor = half the interval, max accepted interval = 2x
    /// the interval.
    pub fn cassandra(gossip_interval: SimDuration) -> Self {
        Self::new(
            1000,
            gossip_interval,
            SimDuration::from_nanos(gossip_interval.as_nanos() / 2),
            SimDuration::from_nanos(gossip_interval.as_nanos() * 2),
        )
    }

    /// Records a heartbeat arrival at `now`.
    ///
    /// A late (out-of-order) beat — `now` at or before the recorded
    /// last arrival — is ignored entirely: it contributes no window
    /// sample and does not move `last_arrival`, which is already at a
    /// later time.
    pub fn heartbeat(&mut self, now: SimTime) {
        match self.last_arrival {
            None => self.last_arrival = Some(now),
            Some(last) if now <= last => {}
            Some(last) => {
                let interval_ns = now.since(last).as_nanos();
                // Cassandra drops outsize intervals instead of letting
                // them inflate the mean.
                if interval_ns <= self.max_interval_ns {
                    if self.window.len() == self.window_cap {
                        if let Some(evicted) = self.window.pop_front() {
                            self.window_sum_ns -= u128::from(evicted);
                        }
                    }
                    self.window.push_back(interval_ns);
                    self.window_sum_ns += u128::from(interval_ns);
                }
                self.last_arrival = Some(now);
            }
        }
    }

    /// Estimated mean inter-arrival, clamped to the floor. O(1): reads
    /// the running nanosecond sum maintained by [`Self::heartbeat`].
    pub fn mean_interval(&self) -> f64 {
        let mean = if self.window.is_empty() {
            self.initial_mean_s
        } else {
            Self::mean_of(self.window_sum_ns, self.window.len())
        };
        mean.max(self.mean_floor_s)
    }

    /// Reference implementation of [`Self::mean_interval`] that re-sums
    /// the window from scratch on every call (the pre-optimization
    /// behavior). Kept public so the differential proptests can pin
    /// exact `f64` equality between the two paths.
    pub fn mean_interval_naive(&self) -> f64 {
        let mean = if self.window.is_empty() {
            self.initial_mean_s
        } else {
            let sum: u128 = self.window.iter().map(|&ns| u128::from(ns)).sum();
            Self::mean_of(sum, self.window.len())
        };
        mean.max(self.mean_floor_s)
    }

    /// The one place nanoseconds become seconds: `sum / len` stays in
    /// the reals until the final division, so running and naive sums
    /// round identically.
    fn mean_of(sum_ns: u128, len: usize) -> f64 {
        (sum_ns as f64) / (len as f64) / 1e9
    }

    /// Current suspicion level. Zero until the first heartbeat arrives.
    pub fn phi(&self, now: SimTime) -> f64 {
        let Some(last) = self.last_arrival else {
            return 0.0;
        };
        let t = now.since(last).as_secs_f64();
        t / (self.mean_interval() * std::f64::consts::LN_10)
    }

    /// When the last heartbeat arrived.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// Number of inter-arrival samples currently held.
    pub fn samples(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> PhiDetector {
        PhiDetector::cassandra(SimDuration::from_secs(1))
    }

    fn secs(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    #[test]
    fn silent_before_first_heartbeat() {
        let d = det();
        assert_eq!(d.phi(secs(100)), 0.0);
        assert!(d.last_arrival().is_none());
    }

    #[test]
    fn phi_grows_linearly_with_silence() {
        let mut d = det();
        for s in 0..10 {
            d.heartbeat(secs(s));
        }
        let p1 = d.phi(secs(12));
        let p2 = d.phi(secs(15));
        assert!(p2 > p1);
        // With 1s mean, phi(t) = t / ln10 ~ 0.434*t.
        let expect = 3.0 / std::f64::consts::LN_10;
        assert!((d.phi(secs(12)) - expect).abs() < 0.05, "phi {p1}");
    }

    #[test]
    fn phi_resets_on_heartbeat() {
        let mut d = det();
        for s in 0..10 {
            d.heartbeat(secs(s));
        }
        let suspicious = d.phi(secs(30));
        assert!(suspicious > 8.0);
        d.heartbeat(secs(30));
        assert!(d.phi(secs(30)) < 0.01);
    }

    #[test]
    fn threshold_8_means_about_18_intervals() {
        // phi = 8 at t = 8 * ln10 * mean ~ 18.4 mean intervals.
        let mut d = det();
        for s in 0..20 {
            d.heartbeat(secs(s));
        }
        let last = 19.0;
        let t_convict = 8.0 * std::f64::consts::LN_10; // seconds with mean 1s
        let just_before = from_secs_f64(last + t_convict - 0.2);
        let just_after = from_secs_f64(last + t_convict + 0.2);
        assert!(d.phi(just_before) < 8.0);
        assert!(d.phi(just_after) > 8.0);
    }

    #[test]
    fn faster_heartbeats_make_detector_more_sensitive() {
        let mut slow = det();
        let mut fast = det();
        for i in 0..20u64 {
            slow.heartbeat(SimTime::from_secs(i * 2));
            fast.heartbeat(SimTime::from_secs(i));
        }
        // Same absolute silence from each detector's own last arrival.
        let silence = SimDuration::from_secs(10);
        let p_slow = slow.phi(SimTime::from_secs(38) + silence);
        let p_fast = fast.phi(SimTime::from_secs(19) + silence);
        assert!(
            p_fast > p_slow,
            "fast ({p_fast}) should suspect sooner than slow ({p_slow})"
        );
    }

    #[test]
    fn mean_floor_prevents_hair_trigger() {
        let mut d = PhiDetector::new(
            100,
            SimDuration::from_secs(1),
            SimDuration::from_millis(500),
            SimDuration::from_secs(2),
        );
        // Burst of heartbeats 1ms apart would estimate a 1ms mean; the
        // floor keeps it at 500ms.
        for i in 0..50u64 {
            d.heartbeat(SimTime::from_millis(i));
        }
        assert!((d.mean_interval() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn window_is_bounded() {
        let mut d = PhiDetector::new(
            8,
            SimDuration::from_secs(1),
            SimDuration::from_millis(1),
            SimDuration::from_secs(2),
        );
        for s in 0..100 {
            d.heartbeat(secs(s));
        }
        assert_eq!(d.samples(), 8);
    }

    #[test]
    fn out_of_order_heartbeat_is_harmless() {
        let mut d = det();
        d.heartbeat(secs(10));
        d.heartbeat(secs(5)); // Late-arriving old beat.
        assert_eq!(d.last_arrival(), Some(secs(10)));
    }

    #[test]
    fn out_of_order_heartbeat_leaves_window_and_mean_untouched() {
        let mut ordered = det();
        let mut disordered = det();
        for s in 0..10 {
            ordered.heartbeat(secs(s));
            disordered.heartbeat(secs(s));
        }
        // A burst of stale beats: none may add a sample, move the
        // high-water mark, or perturb the mean.
        disordered.heartbeat(secs(4));
        disordered.heartbeat(secs(9)); // Duplicate of the latest beat.
        disordered.heartbeat(secs(0));
        assert_eq!(disordered.last_arrival(), Some(secs(9)));
        assert_eq!(disordered.samples(), ordered.samples());
        assert_eq!(
            disordered.mean_interval().to_bits(),
            ordered.mean_interval().to_bits()
        );
        // The next in-order beat measures from the retained high-water
        // mark, not from any of the stale arrivals.
        disordered.heartbeat(secs(10));
        ordered.heartbeat(secs(10));
        assert_eq!(disordered.samples(), ordered.samples());
        assert_eq!(
            disordered.phi(secs(12)).to_bits(),
            ordered.phi(secs(12)).to_bits()
        );
    }

    #[test]
    fn running_sum_matches_naive_resum_exactly() {
        let mut d = PhiDetector::new(
            16,
            SimDuration::from_secs(1),
            SimDuration::from_millis(1),
            SimDuration::from_secs(3),
        );
        let mut t = 0u64;
        for i in 0..200u64 {
            // Irregular gaps, some past max_interval (dropped), plus
            // enough beats to cycle the window many times over.
            t += 100_000_007 * (i % 37 + 1);
            d.heartbeat(SimTime::from_nanos(t));
            assert_eq!(
                d.mean_interval().to_bits(),
                d.mean_interval_naive().to_bits()
            );
        }
    }

    // Test-only helper: fractional-second construction.
    fn from_secs_f64(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }
}
