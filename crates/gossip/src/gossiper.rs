//! The anti-entropy gossiper: Cassandra's three-way digest exchange.
//!
//! Every round a node sends a `Syn` (digests of everything it knows) to a
//! random live peer. The receiver answers with an `Ack` carrying deltas
//! for peers where the receiver is fresher plus requests for peers where
//! the sender is fresher; the original sender closes the loop with an
//! `Ack2` of the requested deltas. Applying a delta reports whether the
//! peer's heartbeat moved (feeds the failure detector) and whether its
//! application state moved (triggers the pending-range calculation — the
//! offending path of §2).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::state::{Delta, Digest, EndpointMap, EndpointState, HeartbeatState, Peer};

/// Gossip SYN: freshness claims for every peer the sender knows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Syn {
    /// One digest per known peer.
    pub digests: Vec<Digest>,
}

/// Gossip ACK: deltas the receiver is fresher on, plus requests for
/// peers the SYN sender is fresher on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ack<A> {
    /// Updates the ACK sender believes are fresher (heartbeat-only in
    /// the steady state, full states around topology changes).
    pub deltas: Vec<(Peer, Delta<A>)>,
    /// Watermarks the ACK sender wants newer data for.
    pub requests: Vec<Digest>,
}

/// Gossip ACK2: the deltas answering an ACK's requests.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ack2<A> {
    /// Updates answering the requests.
    pub deltas: Vec<(Peer, Delta<A>)>,
}

/// What changed when a delta batch was applied.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Peers whose heartbeat advanced (report to the failure detector).
    pub heartbeat_advanced: Vec<Peer>,
    /// Peers whose application state advanced (may carry topology
    /// changes; triggers scale-dependent processing).
    pub app_advanced: Vec<Peer>,
}

/// One node's gossip component.
#[derive(Clone, Debug)]
pub struct Gossiper<A> {
    me: Peer,
    version_clock: u64,
    map: EndpointMap<A>,
}

impl<A: Clone + PartialEq> Gossiper<A> {
    /// Creates a gossiper for `me`, with generation `generation` and
    /// initial application state `app`.
    pub fn new(me: Peer, generation: u64, app: A) -> Self {
        let mut map = EndpointMap::new();
        map.insert(
            me,
            EndpointState::new(
                HeartbeatState {
                    generation,
                    version: 0,
                },
                0,
                app,
            ),
        );
        Gossiper {
            me,
            version_clock: 0,
            map,
        }
    }

    /// This node's id.
    pub fn me(&self) -> Peer {
        self.me
    }

    /// The full local view.
    pub fn endpoints(&self) -> &EndpointMap<A> {
        &self.map
    }

    /// The state this node knows for `peer`, if any.
    pub fn endpoint(&self, peer: Peer) -> Option<&EndpointState<A>> {
        self.map.get(&peer)
    }

    /// Peers other than `me` currently in the view.
    pub fn known_peers(&self) -> Vec<Peer> {
        self.map.keys().copied().filter(|&p| p != self.me).collect()
    }

    /// Seeds the view with a peer known out-of-band (e.g. the contact
    /// list at bootstrap). No-op if already known.
    pub fn seed_peer(&mut self, peer: Peer, state: EndpointState<A>) {
        self.map.entry(peer).or_insert(state);
    }

    /// Bumps the local heartbeat version (called every gossip interval).
    pub fn beat(&mut self) {
        self.version_clock += 1;
        let me = self.me;
        let st = self.map.get_mut(&me).expect("own state always present");
        st.heartbeat.version = self.version_clock;
    }

    /// Updates the local application state (e.g. "I am leaving with
    /// tokens T"), bumping the shared version clock.
    pub fn update_app(&mut self, app: A) {
        self.version_clock += 1;
        let me = self.me;
        let st = self.map.get_mut(&me).expect("own state always present");
        st.app = Arc::new(app);
        st.app_version = self.version_clock;
    }

    /// The local application state.
    pub fn my_app(&self) -> &A {
        self.map[&self.me].app.as_ref()
    }

    /// This node's current generation.
    pub fn my_generation(&self) -> u64 {
        self.map[&self.me].heartbeat.generation
    }

    /// Restarts this node's process: the generation bumps and versions
    /// reset, exactly as a crashed-and-restarted Cassandra process comes
    /// back. Peers treat a higher generation as strictly fresher, so the
    /// restarted state supersedes anything they remember.
    pub fn restart(&mut self) {
        self.version_clock = 0;
        let me = self.me;
        let st = self.map.get_mut(&me).expect("own state always present");
        st.heartbeat.generation += 1;
        st.heartbeat.version = 0;
        st.app_version = 0;
    }

    /// Builds a SYN covering everything this node knows.
    pub fn make_syn(&self) -> Syn {
        Syn {
            digests: self
                .map
                .iter()
                .map(|(&peer, st)| Digest {
                    peer,
                    generation: st.heartbeat.generation,
                    max_version: st.max_version(),
                })
                .collect(),
        }
    }

    /// Handles a SYN, producing the ACK to send back.
    pub fn handle_syn(&self, syn: &Syn) -> Ack<A> {
        let mut deltas = Vec::new();
        let mut requests = Vec::new();
        for d in &syn.digests {
            match self.map.get(&d.peer) {
                Some(local) => {
                    if local.newer_than(d.generation, d.max_version) {
                        deltas.push((d.peer, local.delta_against(d.generation, d.max_version)));
                    } else if local.heartbeat.generation < d.generation
                        || (local.heartbeat.generation == d.generation
                            && local.max_version() < d.max_version)
                    {
                        requests.push(Digest {
                            peer: d.peer,
                            generation: local.heartbeat.generation,
                            max_version: local.max_version(),
                        });
                    }
                }
                None => {
                    // Never heard of this peer: ask for everything.
                    requests.push(Digest {
                        peer: d.peer,
                        generation: 0,
                        max_version: 0,
                    });
                }
            }
        }
        // Peers only we know about: volunteer them in full. SYNs built
        // by `make_syn` list digests in peer order (ordered-map
        // iteration), so a single merge pass against our own ordered
        // view finds the gaps with no allocation and no sort — with
        // n-entry SYNs every round this is hot. A SYN that arrives
        // unsorted (the wire type allows it) falls back to
        // sort-and-probe with the identical result.
        if syn.digests.windows(2).all(|w| w[0].peer <= w[1].peer) {
            let mut digests = syn.digests.iter().peekable();
            for (&peer, st) in &self.map {
                while digests.next_if(|d| d.peer < peer).is_some() {}
                if digests.peek().is_none_or(|d| d.peer != peer) {
                    deltas.push((peer, Delta::Full(st.clone())));
                }
            }
        } else {
            let mut claimed: Vec<Peer> = syn.digests.iter().map(|d| d.peer).collect();
            claimed.sort_unstable();
            for (&peer, st) in &self.map {
                if claimed.binary_search(&peer).is_err() {
                    deltas.push((peer, Delta::Full(st.clone())));
                }
            }
        }
        scalecheck_obs::metric(
            scalecheck_obs::Metric::GossipDeltas,
            (deltas.len() + requests.len()) as u64,
        );
        Ack { deltas, requests }
    }

    /// Handles an ACK: applies its deltas and answers its requests with
    /// an ACK2.
    pub fn handle_ack(&mut self, ack: &Ack<A>) -> (ApplyOutcome, Ack2<A>) {
        let outcome = self.apply(&ack.deltas);
        let mut deltas = Vec::new();
        for req in &ack.requests {
            if let Some(local) = self.map.get(&req.peer) {
                if local.newer_than(req.generation, req.max_version) {
                    deltas.push((
                        req.peer,
                        local.delta_against(req.generation, req.max_version),
                    ));
                }
            }
        }
        scalecheck_obs::metric(scalecheck_obs::Metric::GossipDeltas, deltas.len() as u64);
        (outcome, Ack2 { deltas })
    }

    /// Handles an ACK2: applies its deltas.
    pub fn handle_ack2(&mut self, ack2: &Ack2<A>) -> ApplyOutcome {
        self.apply(&ack2.deltas)
    }

    /// Applies a batch of deltas, keeping only fresher information.
    pub fn apply(&mut self, deltas: &[(Peer, Delta<A>)]) -> ApplyOutcome {
        let mut out = ApplyOutcome::default();
        for (peer, delta) in deltas {
            if *peer == self.me {
                // Nobody overrides our own state.
                continue;
            }
            match delta {
                Delta::Full(remote) => match self.map.get_mut(peer) {
                    Some(local) => {
                        let local_gen = local.heartbeat.generation;
                        let local_max = local.max_version();
                        if remote.newer_than(local_gen, local_max) {
                            if remote.heartbeat.generation > local_gen
                                || remote.heartbeat.version > local.heartbeat.version
                            {
                                out.heartbeat_advanced.push(*peer);
                            }
                            if remote.heartbeat.generation > local_gen
                                || remote.app_version > local.app_version
                            {
                                out.app_advanced.push(*peer);
                            }
                            *local = remote.clone();
                        }
                    }
                    None => {
                        out.heartbeat_advanced.push(*peer);
                        out.app_advanced.push(*peer);
                        self.map.insert(*peer, remote.clone());
                    }
                },
                Delta::Heartbeat(hb) => {
                    // Only meaningful against a known state in the same
                    // generation; anything else would have been sent as a
                    // full state (or is stale and must be ignored).
                    if let Some(local) = self.map.get_mut(peer) {
                        if hb.generation == local.heartbeat.generation
                            && hb.version > local.max_version()
                        {
                            local.heartbeat.version = hb.version;
                            out.heartbeat_advanced.push(*peer);
                        }
                    }
                }
            }
        }
        out
    }

    /// Applies a batch of full remote states, keeping only fresher ones.
    /// Convenience for callers holding [`EndpointState`]s directly (seed
    /// exchange, tests); gossip rounds go through [`Gossiper::apply`].
    pub fn apply_states(&mut self, states: &[(Peer, EndpointState<A>)]) -> ApplyOutcome {
        let deltas: Vec<(Peer, Delta<A>)> = states
            .iter()
            .map(|(peer, st)| (*peer, Delta::Full(st.clone())))
            .collect();
        self.apply(&deltas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type G = Gossiper<u32>;

    fn two() -> (G, G) {
        let mut a = G::new(Peer(0), 1, 100);
        let mut b = G::new(Peer(1), 1, 200);
        a.beat();
        b.beat();
        (a, b)
    }

    /// One full SYN/ACK/ACK2 round from `a` to `b`.
    fn round(a: &mut G, b: &mut G) -> (ApplyOutcome, ApplyOutcome) {
        let syn = a.make_syn();
        let ack = b.handle_syn(&syn);
        let (out_a, ack2) = a.handle_ack(&ack);
        let out_b = b.handle_ack2(&ack2);
        (out_a, out_b)
    }

    #[test]
    fn full_round_converges_two_nodes() {
        let (mut a, mut b) = two();
        let (out_a, out_b) = round(&mut a, &mut b);
        // a learned about b and vice versa.
        assert_eq!(out_a.heartbeat_advanced, vec![Peer(1)]);
        assert_eq!(out_b.heartbeat_advanced, vec![Peer(0)]);
        assert_eq!(*a.endpoint(Peer(1)).unwrap().app, 200);
        assert_eq!(*b.endpoint(Peer(0)).unwrap().app, 100);
    }

    #[test]
    fn repeated_round_is_quiescent() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        let (out_a, out_b) = round(&mut a, &mut b);
        assert!(out_a.heartbeat_advanced.is_empty());
        assert!(out_a.app_advanced.is_empty());
        assert!(out_b.heartbeat_advanced.is_empty());
        assert!(out_b.app_advanced.is_empty());
    }

    #[test]
    fn newer_heartbeat_propagates() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        b.beat();
        b.beat();
        let hb_before = a.endpoint(Peer(1)).unwrap().heartbeat.version;
        let (out_a, _) = round(&mut a, &mut b);
        assert_eq!(out_a.heartbeat_advanced, vec![Peer(1)]);
        assert!(a.endpoint(Peer(1)).unwrap().heartbeat.version > hb_before);
        // Heartbeat-only advance must not be reported as app change.
        assert!(out_a.app_advanced.is_empty());
    }

    #[test]
    fn steady_state_rounds_ship_heartbeat_only_deltas() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        // Converged; only heartbeats move from here on.
        b.beat();
        let syn = a.make_syn();
        let ack = b.handle_syn(&syn);
        assert_eq!(ack.deltas.len(), 1);
        assert!(
            matches!(ack.deltas[0], (Peer(1), Delta::Heartbeat(_))),
            "converged peers exchange heartbeats, not full states: {:?}",
            ack.deltas[0]
        );
        let (out_a, _) = a.handle_ack(&ack);
        assert_eq!(out_a.heartbeat_advanced, vec![Peer(1)]);
        assert!(out_a.app_advanced.is_empty());
        assert_eq!(
            a.endpoint(Peer(1)).unwrap(),
            b.endpoint(Peer(1)).unwrap(),
            "heartbeat delta reconstructs the identical state"
        );
    }

    #[test]
    fn stale_heartbeat_delta_is_ignored() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        b.beat();
        round(&mut a, &mut b);
        // Replay an old heartbeat: must be a no-op.
        let out = a.apply(&[(
            Peer(1),
            Delta::Heartbeat(HeartbeatState {
                generation: 1,
                version: 1,
            }),
        )]);
        assert!(out.heartbeat_advanced.is_empty());
        // A heartbeat for an unknown peer is dropped, not fabricated.
        let out = a.apply(&[(
            Peer(9),
            Delta::Heartbeat(HeartbeatState {
                generation: 1,
                version: 5,
            }),
        )]);
        assert!(out.heartbeat_advanced.is_empty());
        assert!(a.endpoint(Peer(9)).is_none());
    }

    #[test]
    fn app_update_propagates_and_is_flagged() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        b.update_app(999);
        let (out_a, _) = round(&mut a, &mut b);
        assert_eq!(out_a.app_advanced, vec![Peer(1)]);
        assert_eq!(*a.endpoint(Peer(1)).unwrap().app, 999);
    }

    #[test]
    fn third_party_state_spreads_transitively() {
        let mut a = G::new(Peer(0), 1, 0);
        let mut b = G::new(Peer(1), 1, 1);
        let mut c = G::new(Peer(2), 1, 2);
        a.beat();
        b.beat();
        c.beat();
        round(&mut a, &mut b); // a <-> b
        round(&mut b, &mut c); // b <-> c, carries a's state to c
        assert!(c.endpoint(Peer(0)).is_some(), "c learned of a via b");
        assert_eq!(*c.endpoint(Peer(0)).unwrap().app, 0);
    }

    #[test]
    fn own_state_is_never_overridden() {
        let (mut a, b) = two();
        // b fabricates a bogus newer state for a.
        let bogus = EndpointState::new(
            HeartbeatState {
                generation: 99,
                version: 99,
            },
            99,
            12345,
        );
        let out = a.apply_states(&[(Peer(0), bogus)]);
        assert!(out.heartbeat_advanced.is_empty());
        assert_eq!(*a.my_app(), 100);
        let _ = b;
    }

    #[test]
    fn higher_generation_replaces_state() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        // b restarts: new generation, fresh versions.
        let mut b2 = G::new(Peer(1), 2, 777);
        b2.beat();
        let (out_a, _) = round(&mut a, &mut b2);
        assert_eq!(out_a.heartbeat_advanced, vec![Peer(1)]);
        assert_eq!(out_a.app_advanced, vec![Peer(1)]);
        assert_eq!(a.endpoint(Peer(1)).unwrap().heartbeat.generation, 2);
        assert_eq!(*a.endpoint(Peer(1)).unwrap().app, 777);
    }

    #[test]
    fn restart_bumps_generation_and_supersedes_old_state() {
        let (mut a, mut b) = two();
        for _ in 0..3 {
            b.beat();
        }
        round(&mut a, &mut b);
        assert_eq!(a.endpoint(Peer(1)).unwrap().heartbeat.version, 4);
        // b's process restarts in place.
        b.restart();
        assert_eq!(b.my_generation(), 2);
        b.beat();
        b.update_app(999);
        // Despite lower versions, the higher generation wins at a.
        let (out_a, _) = round(&mut a, &mut b);
        assert_eq!(out_a.heartbeat_advanced, vec![Peer(1)]);
        assert_eq!(a.endpoint(Peer(1)).unwrap().heartbeat.generation, 2);
        assert_eq!(*a.endpoint(Peer(1)).unwrap().app, 999);
    }

    #[test]
    fn seed_peer_does_not_clobber() {
        let (mut a, b) = two();
        let seed_state = b.endpoint(Peer(1)).unwrap().clone();
        a.seed_peer(Peer(1), seed_state.clone());
        assert_eq!(a.endpoint(Peer(1)).unwrap(), &seed_state);
        // Seeding again with stale data is a no-op.
        let stale = EndpointState::new(
            HeartbeatState {
                generation: 0,
                version: 0,
            },
            0,
            0,
        );
        a.seed_peer(Peer(1), stale);
        assert_eq!(a.endpoint(Peer(1)).unwrap(), &seed_state);
    }

    #[test]
    fn known_peers_excludes_self() {
        let (mut a, mut b) = two();
        round(&mut a, &mut b);
        assert_eq!(a.known_peers(), vec![Peer(1)]);
        assert_eq!(b.known_peers(), vec![Peer(0)]);
    }
}
