//! Per-node failure detection and flap accounting.
//!
//! A **flap** (§2) is one node marking a live peer as down (and usually
//! soon marking it up again). [`FailureDetector`] owns one
//! [`PhiDetector`] per peer plus the node's local up/down verdicts, and
//! counts alive→dead transitions — the y-axis of every panel in
//! Figure 3.

use std::collections::{BTreeMap, BTreeSet};

use scalecheck_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::phi::PhiDetector;
use crate::state::Peer;

/// A peer's liveness verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Liveness {
    /// Considered up.
    Alive,
    /// Convicted as down.
    Dead,
}

/// One peer's monitoring state: arrival statistics plus the current
/// verdict. Keeping them in one map entry means the per-tick
/// [`FailureDetector::interpret_all`] sweep — O(peers), every
/// fd-interval, on every node — walks a single tree instead of probing
/// a second verdict map per peer.
#[derive(Clone, Debug)]
struct PeerMonitor {
    det: PhiDetector,
    verdict: Liveness,
}

/// One node's failure-detection state over all its peers.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    threshold: f64,
    gossip_interval: SimDuration,
    monitors: BTreeMap<Peer, PeerMonitor>,
    flaps: u64,
    recoveries: u64,
    fault_suspects: BTreeSet<Peer>,
    fault_attributed: u64,
}

impl FailureDetector {
    /// Creates a detector with the given conviction threshold (Cassandra
    /// default: 8.0) and expected heartbeat interval.
    pub fn new(threshold: f64, gossip_interval: SimDuration) -> Self {
        FailureDetector {
            threshold,
            gossip_interval,
            monitors: BTreeMap::new(),
            flaps: 0,
            recoveries: 0,
            fault_suspects: BTreeSet::new(),
            fault_attributed: 0,
        }
    }

    /// Registers a heartbeat observation for `peer` at `now`. If the peer
    /// was convicted, it is marked alive again (a recovery).
    pub fn report(&mut self, peer: Peer, now: SimTime) {
        let interval = self.gossip_interval;
        let mon = self.monitors.entry(peer).or_insert_with(|| PeerMonitor {
            det: PhiDetector::cassandra(interval),
            verdict: Liveness::Alive,
        });
        mon.det.heartbeat(now);
        if mon.verdict == Liveness::Dead {
            mon.verdict = Liveness::Alive;
            self.recoveries += 1;
        }
    }

    /// Evaluates every monitored peer at `now`; newly convicted peers are
    /// returned and each conviction counts as one flap.
    pub fn interpret_all(&mut self, now: SimTime) -> Vec<Peer> {
        let mut newly_dead = Vec::new();
        for (&peer, mon) in self.monitors.iter_mut() {
            if mon.verdict == Liveness::Alive && mon.det.phi(now) > self.threshold {
                mon.verdict = Liveness::Dead;
                self.flaps += 1;
                if self.fault_suspects.contains(&peer) {
                    self.fault_attributed += 1;
                }
                newly_dead.push(peer);
            }
        }
        newly_dead
    }

    /// Current verdict for `peer` (peers never reported are unknown).
    pub fn liveness(&self, peer: Peer) -> Option<Liveness> {
        self.monitors.get(&peer).map(|m| m.verdict)
    }

    /// Peers currently considered dead.
    pub fn dead_peers(&self) -> Vec<Peer> {
        self.monitors
            .iter()
            .filter(|(_, m)| m.verdict == Liveness::Dead)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total alive→dead transitions this node has declared.
    pub fn flaps(&self) -> u64 {
        self.flaps
    }

    /// Total dead→alive transitions (recoveries).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Marks or clears `peer` as under an injected fault (crashed,
    /// partitioned away, or clock-stepped). While marked, convictions of
    /// `peer` are counted as fault-attributed flaps.
    pub fn set_fault_suspect(&mut self, peer: Peer, suspected: bool) {
        if suspected {
            self.fault_suspects.insert(peer);
        } else {
            self.fault_suspects.remove(&peer);
        }
    }

    /// Marks every currently monitored peer as under an injected fault
    /// (e.g. the local clock stepped: any conviction we issue is the
    /// fault's doing).
    pub fn mark_all_fault_suspects(&mut self) {
        self.fault_suspects.extend(self.monitors.keys().copied());
    }

    /// Flaps whose convicted peer was a fault suspect at conviction
    /// time.
    pub fn fault_attributed_flaps(&self) -> u64 {
        self.fault_attributed
    }

    /// Drops all per-peer monitoring state — a restarted process starts
    /// with no inter-arrival history — while keeping the lifetime flap,
    /// recovery, and attribution counters.
    pub fn reset_monitoring(&mut self) {
        self.monitors.clear();
        self.fault_suspects.clear();
    }

    /// The φ suspicion for `peer`, if monitored.
    pub fn phi(&self, peer: Peer, now: SimTime) -> Option<f64> {
        self.monitors.get(&peer).map(|m| m.det.phi(now))
    }

    /// Stops monitoring `peer` (it departed cleanly; silence is expected
    /// and must not count as a flap).
    pub fn forget(&mut self, peer: Peer) {
        self.monitors.remove(&peer);
    }

    /// Number of monitored peers.
    pub fn monitored(&self) -> usize {
        self.monitors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd() -> FailureDetector {
        FailureDetector::new(8.0, SimDuration::from_secs(1))
    }

    fn secs(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    fn feed(fd: &mut FailureDetector, peer: Peer, from: u64, to: u64) {
        for s in from..to {
            fd.report(peer, secs(s));
            fd.interpret_all(secs(s));
        }
    }

    #[test]
    fn steady_heartbeats_no_flaps() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 60);
        assert_eq!(f.flaps(), 0);
        assert_eq!(f.liveness(Peer(1)), Some(Liveness::Alive));
    }

    #[test]
    fn long_silence_convicts_once() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 20);
        // 30s of silence: well past the ~18.4s conviction point.
        let newly = f.interpret_all(secs(50));
        assert_eq!(newly, vec![Peer(1)]);
        assert_eq!(f.flaps(), 1);
        // Repeated interpretation does not double-count.
        assert!(f.interpret_all(secs(60)).is_empty());
        assert_eq!(f.flaps(), 1);
        assert_eq!(f.dead_peers(), vec![Peer(1)]);
    }

    #[test]
    fn recovery_then_reconviction_counts_two_flaps() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 20);
        f.interpret_all(secs(50));
        assert_eq!(f.flaps(), 1);
        // Peer comes back.
        f.report(Peer(1), secs(50));
        assert_eq!(f.recoveries(), 1);
        assert_eq!(f.liveness(Peer(1)), Some(Liveness::Alive));
        // Goes silent again. The detector's window now contains the huge
        // 30s gap, so the mean is inflated; feed fresh beats to re-tighten.
        feed(&mut f, Peer(1), 51, 70);
        let newly = f.interpret_all(secs(120));
        assert_eq!(newly, vec![Peer(1)]);
        assert_eq!(f.flaps(), 2);
    }

    #[test]
    fn multiple_peers_tracked_independently() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 40);
        feed(&mut f, Peer(2), 0, 20);
        // Peer 2 silent from t=20; peer 1 healthy through t=40.
        f.report(Peer(1), secs(45));
        let newly = f.interpret_all(secs(45));
        assert_eq!(newly, vec![Peer(2)]);
        assert_eq!(f.liveness(Peer(1)), Some(Liveness::Alive));
        assert_eq!(f.monitored(), 2);
    }

    #[test]
    fn forget_prevents_false_flap_on_decommission() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 20);
        f.forget(Peer(1));
        let newly = f.interpret_all(secs(100));
        assert!(newly.is_empty());
        assert_eq!(f.flaps(), 0);
        assert_eq!(f.liveness(Peer(1)), None);
    }

    #[test]
    fn fault_suspects_attribute_their_flaps() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 20);
        feed(&mut f, Peer(2), 0, 20);
        f.set_fault_suspect(Peer(1), true);
        // Both go silent; only peer 1's conviction is fault-attributed.
        f.interpret_all(secs(50));
        assert_eq!(f.flaps(), 2);
        assert_eq!(f.fault_attributed_flaps(), 1);
        // Clearing the suspicion stops attribution for later flaps.
        f.report(Peer(1), secs(50));
        f.set_fault_suspect(Peer(1), false);
        feed(&mut f, Peer(1), 51, 70);
        f.interpret_all(secs(120));
        assert_eq!(f.flaps(), 3);
        assert_eq!(f.fault_attributed_flaps(), 1);
    }

    #[test]
    fn mark_all_covers_every_monitored_peer() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 20);
        feed(&mut f, Peer(2), 0, 20);
        f.mark_all_fault_suspects();
        f.interpret_all(secs(50));
        assert_eq!(f.fault_attributed_flaps(), 2);
    }

    #[test]
    fn reset_monitoring_keeps_counters_but_drops_history() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 20);
        f.interpret_all(secs(50));
        assert_eq!(f.flaps(), 1);
        f.reset_monitoring();
        assert_eq!(f.monitored(), 0);
        assert_eq!(f.flaps(), 1, "lifetime counters survive a restart");
        assert!(f.liveness(Peer(1)).is_none());
        // No spurious conviction from pre-restart history.
        assert!(f.interpret_all(secs(200)).is_empty());
    }

    #[test]
    fn phi_exposed_per_peer() {
        let mut f = fd();
        feed(&mut f, Peer(1), 0, 10);
        assert!(f.phi(Peer(1), secs(12)).unwrap() > 0.0);
        assert!(f.phi(Peer(9), secs(12)).is_none());
    }
}
