//! Gossip endpoint state: heartbeats, versions, and per-peer state maps.
//!
//! Mirrors Cassandra's model: each node owns a monotone *generation*
//! (bumped on restart) and a *version clock* shared by its heartbeat and
//! its application state. Peers compare `(generation, max_version)` pairs
//! to decide who has fresher information.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifies a gossip participant.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Peer(pub u32);

impl std::fmt::Display for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A node's liveness beacon.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct HeartbeatState {
    /// Incarnation number (bumped when the node restarts).
    pub generation: u64,
    /// Monotone version within the generation.
    pub version: u64,
}

/// Everything one node knows about one peer.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EndpointState<A> {
    /// Liveness beacon.
    pub heartbeat: HeartbeatState,
    /// Version at which `app` last changed.
    pub app_version: u64,
    /// Application payload (ring status, tokens, ... — opaque to gossip).
    pub app: A,
}

impl<A> EndpointState<A> {
    /// The freshness watermark peers compare: the larger of the heartbeat
    /// and application versions.
    pub fn max_version(&self) -> u64 {
        self.heartbeat.version.max(self.app_version)
    }

    /// Whether this state is strictly fresher than a `(generation,
    /// max_version)` watermark.
    pub fn newer_than(&self, generation: u64, max_version: u64) -> bool {
        self.heartbeat.generation > generation
            || (self.heartbeat.generation == generation && self.max_version() > max_version)
    }
}

/// A compact claim about a peer's freshness, exchanged in gossip SYNs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Digest {
    /// The peer the claim is about.
    pub peer: Peer,
    /// Claimed generation.
    pub generation: u64,
    /// Claimed max version.
    pub max_version: u64,
}

/// A node's full gossip view: one [`EndpointState`] per known peer.
pub type EndpointMap<A> = BTreeMap<Peer, EndpointState<A>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn st(gen: u64, hb: u64, appv: u64) -> EndpointState<u8> {
        EndpointState {
            heartbeat: HeartbeatState {
                generation: gen,
                version: hb,
            },
            app_version: appv,
            app: 0,
        }
    }

    #[test]
    fn max_version_takes_larger() {
        assert_eq!(st(1, 5, 3).max_version(), 5);
        assert_eq!(st(1, 2, 9).max_version(), 9);
    }

    #[test]
    fn newer_generation_wins() {
        let s = st(2, 1, 1);
        assert!(s.newer_than(1, 100));
        assert!(!s.newer_than(3, 0));
    }

    #[test]
    fn same_generation_compares_versions() {
        let s = st(1, 5, 7);
        assert!(s.newer_than(1, 6));
        assert!(!s.newer_than(1, 7));
        assert!(!s.newer_than(1, 8));
    }
}
