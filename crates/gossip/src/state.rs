//! Gossip endpoint state: heartbeats, versions, and per-peer state maps.
//!
//! Mirrors Cassandra's model: each node owns a monotone *generation*
//! (bumped on restart) and a *version clock* shared by its heartbeat and
//! its application state. Peers compare `(generation, max_version)` pairs
//! to decide who has fresher information.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifies a gossip participant.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Peer(pub u32);

impl std::fmt::Display for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A node's liveness beacon.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct HeartbeatState {
    /// Incarnation number (bumped when the node restarts).
    pub generation: u64,
    /// Monotone version within the generation.
    pub version: u64,
}

/// Everything one node knows about one peer.
///
/// The application payload is behind an [`Arc`]: endpoint states move
/// between views on every syn/ack exchange, and sharing the payload
/// makes those moves cheap regardless of its size (token lists grow
/// with the vnode count). Only the owning node ever changes its own
/// app state — via [`EndpointState::new`]-style replacement, never
/// in-place — so shared payloads are immutable by construction.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EndpointState<A> {
    /// Liveness beacon.
    pub heartbeat: HeartbeatState,
    /// Version at which `app` last changed.
    pub app_version: u64,
    /// Application payload (ring status, tokens, ... — opaque to gossip).
    pub app: Arc<A>,
}

impl<A> EndpointState<A> {
    /// Creates an endpoint state, wrapping the payload for sharing.
    pub fn new(heartbeat: HeartbeatState, app_version: u64, app: A) -> Self {
        EndpointState {
            heartbeat,
            app_version,
            app: Arc::new(app),
        }
    }

    /// The freshness watermark peers compare: the larger of the heartbeat
    /// and application versions.
    pub fn max_version(&self) -> u64 {
        self.heartbeat.version.max(self.app_version)
    }

    /// Whether this state is strictly fresher than a `(generation,
    /// max_version)` watermark.
    pub fn newer_than(&self, generation: u64, max_version: u64) -> bool {
        self.heartbeat.generation > generation
            || (self.heartbeat.generation == generation && self.max_version() > max_version)
    }
}

impl<A: Clone> EndpointState<A> {
    /// The delta to answer a `(generation, max_version)` watermark the
    /// sender is fresher than. If the requester already holds this
    /// generation and an app watermark at least as new, only the
    /// heartbeat moved — send just that. Anything else (generation
    /// behind, or the app advanced past the watermark) ships the full
    /// state.
    ///
    /// The heartbeat-only case is exact, not approximate: states are
    /// snapshots of the owner's monotone history, so a requester whose
    /// watermark covers `app_version` already holds this very app state
    /// (see [`Delta`]).
    pub fn delta_against(&self, generation: u64, max_version: u64) -> Delta<A> {
        if self.heartbeat.generation == generation && self.app_version <= max_version {
            Delta::Heartbeat(self.heartbeat)
        } else {
            Delta::Full(self.clone())
        }
    }
}

/// One peer's update inside an ack: either the full endpoint state or —
/// the steady-state hot path — just the heartbeat.
///
/// Nearly all gossip traffic is heartbeat churn: the app state (ring
/// status + tokens) changes only around topology events. Shipping the
/// two-word heartbeat instead of a full state clone keeps the syn/ack
/// hot path allocation-light. Applying [`Delta::Heartbeat`] bumps the
/// stored heartbeat version in place when `(generation, version)` is
/// strictly fresher than the local watermark, and is a no-op otherwise
/// (exactly the cases where a full state would have been a no-op too).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Delta<A> {
    /// Full endpoint state: generation moved, the app state advanced
    /// past the requester's watermark, or the peer is new to them.
    Full(EndpointState<A>),
    /// Heartbeat-only advance within a known generation.
    Heartbeat(HeartbeatState),
}

/// A compact claim about a peer's freshness, exchanged in gossip SYNs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Digest {
    /// The peer the claim is about.
    pub peer: Peer,
    /// Claimed generation.
    pub generation: u64,
    /// Claimed max version.
    pub max_version: u64,
}

/// A node's full gossip view: one [`EndpointState`] per known peer.
pub type EndpointMap<A> = BTreeMap<Peer, EndpointState<A>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn st(gen: u64, hb: u64, appv: u64) -> EndpointState<u8> {
        EndpointState::new(
            HeartbeatState {
                generation: gen,
                version: hb,
            },
            appv,
            0,
        )
    }

    #[test]
    fn max_version_takes_larger() {
        assert_eq!(st(1, 5, 3).max_version(), 5);
        assert_eq!(st(1, 2, 9).max_version(), 9);
    }

    #[test]
    fn newer_generation_wins() {
        let s = st(2, 1, 1);
        assert!(s.newer_than(1, 100));
        assert!(!s.newer_than(3, 0));
    }

    #[test]
    fn same_generation_compares_versions() {
        let s = st(1, 5, 7);
        assert!(s.newer_than(1, 6));
        assert!(!s.newer_than(1, 7));
        assert!(!s.newer_than(1, 8));
    }

    #[test]
    fn delta_against_sends_heartbeat_only_when_app_is_covered() {
        let s = st(1, 5, 3);
        assert!(matches!(s.delta_against(1, 3), Delta::Heartbeat(hb) if hb.version == 5));
        assert!(matches!(s.delta_against(1, 4), Delta::Heartbeat(_)));
        // The app advanced past the requester's watermark: full state.
        assert!(matches!(s.delta_against(1, 2), Delta::Full(_)));
        // Generation mismatch: full state.
        assert!(matches!(s.delta_against(0, 100), Delta::Full(_)));
        assert!(matches!(s.delta_against(2, 0), Delta::Full(_)));
    }
}
