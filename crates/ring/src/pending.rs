//! Pending key-range calculation — the offending function family.
//!
//! When nodes join or leave, every node recomputes which ranges are
//! *pending*: ranges whose future replica set gains endpoints relative to
//! the current ring, so that writes can be forwarded to future owners.
//! This computation is the root cause of bugs C3831, C3881, C5456 and
//! C6127: it is scale-dependent, it runs on (or blocks) the gossip stage,
//! and its cost evolved across four implementations.
//!
//! All calculators in this module produce **bit-identical output** for the
//! same `(ring, changes)` input — they differ only in how much work they
//! do, which each one reports through [`OpCounter`]. This mirrors the
//! history: every fix preserved semantics while lowering complexity.
//!
//! | Version | Era | Complexity class (physical N, vnodes P, changes M) |
//! |---|---|---|
//! | [`V1Cubic`] | pre-C3831 | O(M · (NP)³) + sort factors |
//! | [`V2Quadratic`] | C3831 fix | O(M · (NP)² · log(NP)) |
//! | [`V3VnodeAware`] | C3881 fix | O(M · NP · log(NP)) |
//! | [`FreshRingQuadratic`] | C6127 path | O(M · (NP)²), only on bootstrap-from-scratch |

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::table::{RingTable, TopologyChange};
use crate::token::{NodeId, Range, Token};

/// Counts the basic operations a calculator executes.
///
/// One "op" is one inner-loop step (a comparison, a map probe, a scan
/// step). The cluster layer converts ops into virtual compute time with a
/// calibrated cost per op, realizing the paper's in-situ time recording.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounter {
    ops: u64,
}

impl OpCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        OpCounter::default()
    }

    /// Adds `n` operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Adds one operation.
    #[inline]
    pub fn tick(&mut self) {
        self.ops += 1;
    }

    /// Total operations counted.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// The calculation result: future ranges that gain endpoints, with the
/// set of endpoints that must start receiving writes.
pub type PendingRanges = BTreeMap<Range, BTreeSet<NodeId>>;

/// Canonical byte encoding of a result (for memo digests and replay).
pub fn write_pending_canonical(p: &PendingRanges, out: &mut Vec<u8>) {
    out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    for (r, nodes) in p {
        out.extend_from_slice(&r.start.0.to_le_bytes());
        out.extend_from_slice(&r.end.0.to_le_bytes());
        out.extend_from_slice(&(nodes.len() as u64).to_le_bytes());
        for n in nodes {
            out.extend_from_slice(&n.0.to_le_bytes());
        }
    }
}

/// A pending-range calculator version.
pub trait PendingRangeCalculator {
    /// Short version name (e.g. `"v1-cubic"`).
    fn name(&self) -> &'static str;

    /// The complexity class the version belongs to, as documented in the
    /// bug reports.
    fn complexity(&self) -> &'static str;

    /// Computes pending ranges for `changes` applied to `ring`, counting
    /// executed operations into `counter`.
    fn calculate(
        &self,
        ring: &RingTable,
        changes: &[TopologyChange],
        counter: &mut OpCounter,
    ) -> PendingRanges;

    /// Like [`PendingRangeCalculator::calculate`], but reports the ops
    /// this invocation consumed to the tracing layer (the per-calc op
    /// count behind `calc.recalculate` span args).
    fn calculate_traced(
        &self,
        ring: &RingTable,
        changes: &[TopologyChange],
        counter: &mut OpCounter,
    ) -> PendingRanges {
        let before = counter.ops();
        let out = self.calculate(ring, changes, counter);
        scalecheck_obs::metric(
            scalecheck_obs::Metric::CalcOps,
            counter.ops().saturating_sub(before),
        );
        out
    }
}

// ---------------------------------------------------------------------
// Shared primitives (each counts its own work).
// ---------------------------------------------------------------------

/// Distinct replica endpoints for the range ending at `map[idx]`,
/// walking clockwise with early exit once `rf` distinct nodes are found.
fn replicas_at_fast(
    map: &[(Token, NodeId)],
    idx: usize,
    rf: usize,
    counter: &mut OpCounter,
) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let n = map.len();
    for step in 0..n {
        counter.tick();
        let (_, node) = map[(idx + step) % n];
        out.insert(node);
        if out.len() >= rf {
            break;
        }
    }
    out
}

/// Index of the token map entry owning point `t`: first token `>= t`,
/// wrapping to 0. Binary search (counts log steps).
fn point_index_bsearch(map: &[(Token, NodeId)], t: Token, counter: &mut OpCounter) -> usize {
    let mut lo = 0usize;
    let mut hi = map.len();
    while lo < hi {
        counter.tick();
        let mid = (lo + hi) / 2;
        if map[mid].0 < t {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo % map.len()
}

/// Same as [`point_index_bsearch`] but by exhaustive linear scan (counts
/// every step) — the wasteful variant used by older calculator versions.
fn point_index_linear(map: &[(Token, NodeId)], t: Token, counter: &mut OpCounter) -> usize {
    for (i, &(tok, _)) in map.iter().enumerate() {
        counter.tick();
        if tok >= t {
            return i;
        }
    }
    0
}

/// Counts the cost of producing a sorted future map (`k log k` for the
/// sort the implementation performs).
fn count_sort(k: usize, counter: &mut OpCounter) {
    let logk = (k.max(2) as f64).log2().ceil() as u64;
    counter.add(k as u64 * logk);
}

/// The canonical pending-range semantics, computed the cheap way.
/// All calculators reduce to this result.
fn pending_for(
    ring: &RingTable,
    changes: &[TopologyChange],
    counter: &mut OpCounter,
    current: &[(Token, NodeId)],
    future: &[(Token, NodeId)],
) -> PendingRanges {
    let rf = ring.rf();
    let mut out = PendingRanges::new();
    let n = future.len();
    if n == 0 {
        return out;
    }
    let _ = changes;
    for i in 0..n {
        let start = future[(i + n - 1) % n].0;
        let end = future[i].0;
        let range = Range::new(start, end);
        let fut_reps = replicas_at_fast(future, i, rf, counter);
        let cur_reps = if current.is_empty() {
            BTreeSet::new()
        } else {
            let idx = point_index_bsearch(current, end, counter);
            replicas_at_fast(current, idx, rf, counter)
        };
        let pend: BTreeSet<NodeId> = fut_reps.difference(&cur_reps).copied().collect();
        if !pend.is_empty() {
            out.insert(range, pend);
        }
    }
    out
}

// ---------------------------------------------------------------------
// V1: the pre-C3831 cubic implementation.
// ---------------------------------------------------------------------

/// The original `calculatePendingRanges`: for every prefix of the change
/// list it rebuilds the future ring and, for **every range**, tests
/// **every node** for replica-ship by walking the **whole ring** — the
/// triple nested loop over the `@scaledep` ring table that C3831 calls
/// out.
#[derive(Clone, Copy, Debug, Default)]
pub struct V1Cubic;

impl V1Cubic {
    /// Naive replica-ship test: walk the full circle from `idx`, never
    /// early-exiting, and report whether `node` appears among the first
    /// `rf` distinct endpoints.
    fn is_replica_naive(
        map: &[(Token, NodeId)],
        idx: usize,
        node: NodeId,
        rf: usize,
        counter: &mut OpCounter,
    ) -> bool {
        let n = map.len();
        let mut distinct: Vec<NodeId> = Vec::new();
        let mut hit = false;
        for step in 0..n {
            counter.tick();
            let (_, at) = map[(idx + step) % n];
            if !distinct.contains(&at) {
                distinct.push(at);
            }
            if at == node && distinct.iter().position(|&d| d == at).unwrap() < rf {
                hit = true;
            }
            // No early exit: the historical code walked on.
        }
        hit
    }
}

impl PendingRangeCalculator for V1Cubic {
    fn name(&self) -> &'static str {
        "v1-cubic"
    }

    fn complexity(&self) -> &'static str {
        "O(M*(NP)^3)"
    }

    fn calculate(
        &self,
        ring: &RingTable,
        changes: &[TopologyChange],
        counter: &mut OpCounter,
    ) -> PendingRanges {
        let rf = ring.rf();
        let current = ring.current_token_map();
        let mut out = PendingRanges::new();
        // The historical code recomputed the whole state per change entry,
        // keeping only the final answer.
        for m in 1..=changes.len().max(1) {
            let prefix = &changes[..m.min(changes.len())];
            let future = ring
                .future_token_map(prefix)
                .expect("duplicate token in change list");
            count_sort(future.len(), counter);
            out = PendingRanges::new();
            let n = future.len();
            if n == 0 {
                continue;
            }
            let mut node_ids: Vec<NodeId> = future.iter().map(|&(_, id)| id).collect();
            node_ids.sort_unstable();
            node_ids.dedup();
            for i in 0..n {
                let start = future[(i + n - 1) % n].0;
                let end = future[i].0;
                let range = Range::new(start, end);
                let mut fut_reps = BTreeSet::new();
                for &node in &node_ids {
                    // Triple loop: ranges x nodes x full-ring walk.
                    if Self::is_replica_naive(&future, i, node, rf, counter) {
                        fut_reps.insert(node);
                    }
                }
                let cur_reps = if current.is_empty() {
                    BTreeSet::new()
                } else {
                    let idx = point_index_linear(&current, end, counter);
                    replicas_at_fast(&current, idx, rf, counter)
                };
                let pend: BTreeSet<NodeId> = fut_reps.difference(&cur_reps).copied().collect();
                if !pend.is_empty() {
                    out.insert(range, pend);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// V2: the C3831 fix — quadratic.
// ---------------------------------------------------------------------

/// The C3831 fix: replica sets are computed with an early-exit clockwise
/// walk, but the current-ring lookup is still a linear scan and the whole
/// state is still recomputed per change entry. Adequate for physical
/// nodes; inadequate once vnodes multiply the map size (C3881).
#[derive(Clone, Copy, Debug, Default)]
pub struct V2Quadratic;

impl PendingRangeCalculator for V2Quadratic {
    fn name(&self) -> &'static str {
        "v2-quadratic"
    }

    fn complexity(&self) -> &'static str {
        "O(M*(NP)^2*log(NP))"
    }

    fn calculate(
        &self,
        ring: &RingTable,
        changes: &[TopologyChange],
        counter: &mut OpCounter,
    ) -> PendingRanges {
        let rf = ring.rf();
        let current = ring.current_token_map();
        let mut out = PendingRanges::new();
        for m in 1..=changes.len().max(1) {
            let prefix = &changes[..m.min(changes.len())];
            let future = ring
                .future_token_map(prefix)
                .expect("duplicate token in change list");
            count_sort(future.len(), counter);
            out = PendingRanges::new();
            let n = future.len();
            if n == 0 {
                continue;
            }
            for i in 0..n {
                let start = future[(i + n - 1) % n].0;
                let end = future[i].0;
                let range = Range::new(start, end);
                let fut_reps = replicas_at_fast(&future, i, rf, counter);
                let cur_reps = if current.is_empty() {
                    BTreeSet::new()
                } else {
                    // Linear point lookup: the remaining quadratic term.
                    let idx = point_index_linear(&current, end, counter);
                    replicas_at_fast(&current, idx, rf, counter)
                };
                let pend: BTreeSet<NodeId> = fut_reps.difference(&cur_reps).copied().collect();
                if !pend.is_empty() {
                    out.insert(range, pend);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// V3: the C3881 redesign — vnode-aware.
// ---------------------------------------------------------------------

/// The C3881 redesign: one pass per change entry, binary-search point
/// lookups, early-exit replica walks — `O(M · NP · log(NP))`.
#[derive(Clone, Copy, Debug, Default)]
pub struct V3VnodeAware;

impl PendingRangeCalculator for V3VnodeAware {
    fn name(&self) -> &'static str {
        "v3-vnode-aware"
    }

    fn complexity(&self) -> &'static str {
        "O(M*NP*log(NP))"
    }

    fn calculate(
        &self,
        ring: &RingTable,
        changes: &[TopologyChange],
        counter: &mut OpCounter,
    ) -> PendingRanges {
        let current = ring.current_token_map();
        let mut out = PendingRanges::new();
        for m in 1..=changes.len().max(1) {
            let prefix = &changes[..m.min(changes.len())];
            let future = ring
                .future_token_map(prefix)
                .expect("duplicate token in change list");
            count_sort(future.len(), counter);
            out = pending_for(ring, prefix, counter, &current, &future);
        }
        out
    }
}

// ---------------------------------------------------------------------
// C6127: the bootstrap-from-scratch path.
// ---------------------------------------------------------------------

/// The fresh-ring construction path of C6127: taken only when the current
/// ring is empty (a cluster bootstrapping from scratch), it constructs
/// ownership with a quadratic scan per change entry. On the incremental
/// path it delegates to [`V3VnodeAware`], exactly like the patched code
/// that still contained this second, rarely-exercised branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreshRingQuadratic;

impl PendingRangeCalculator for FreshRingQuadratic {
    fn name(&self) -> &'static str {
        "fresh-ring-quadratic"
    }

    fn complexity(&self) -> &'static str {
        "O(M*(NP)^2) when bootstrapping from scratch, else O(M*NP*log(NP))"
    }

    fn calculate(
        &self,
        ring: &RingTable,
        changes: &[TopologyChange],
        counter: &mut OpCounter,
    ) -> PendingRanges {
        let current = ring.current_token_map();
        if !current.is_empty() {
            return V3VnodeAware.calculate(ring, changes, counter);
        }
        // Bootstrap-from-scratch: every range's replica set is computed
        // with linear point lookups against a per-change rebuilt map.
        let rf = ring.rf();
        let mut out = PendingRanges::new();
        for m in 1..=changes.len().max(1) {
            let prefix = &changes[..m.min(changes.len())];
            let future = ring
                .future_token_map(prefix)
                .expect("duplicate token in change list");
            count_sort(future.len(), counter);
            out = PendingRanges::new();
            let n = future.len();
            if n == 0 {
                continue;
            }
            for i in 0..n {
                let start = future[(i + n - 1) % n].0;
                let end = future[i].0;
                // Linear lookup of own index — the quadratic term.
                let idx = point_index_linear(&future, end, counter);
                let fut_reps = replicas_at_fast(&future, idx, rf, counter);
                // Fresh ring: nothing is currently owned, all is pending.
                out.insert(Range::new(start, end), fut_reps);
            }
        }
        out
    }
}

/// All calculator versions, for sweep experiments.
pub fn all_calculators() -> Vec<Box<dyn PendingRangeCalculator>> {
    vec![
        Box::new(V1Cubic),
        Box::new(V2Quadratic),
        Box::new(V3VnodeAware),
        Box::new(FreshRingQuadratic),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::NodeStatus;
    use crate::token::spread_tokens;

    fn ring_of(n: u32, p: usize) -> RingTable {
        let mut r = RingTable::new(3);
        for i in 0..n {
            r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), p))
                .unwrap();
        }
        r
    }

    fn join_change(id: u32, p: usize) -> TopologyChange {
        TopologyChange::Join {
            node: NodeId(id),
            tokens: spread_tokens(NodeId(id), p),
        }
    }

    #[test]
    fn all_versions_agree_on_join() {
        let ring = ring_of(8, 4);
        let changes = vec![join_change(100, 4)];
        let mut results = Vec::new();
        for calc in all_calculators() {
            let mut c = OpCounter::new();
            results.push((calc.name(), calc.calculate(&ring, &changes, &mut c)));
        }
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].1, "{} != {}", w[0].0, w[1].0);
        }
        assert!(
            !results[0].1.is_empty(),
            "a join must create pending ranges"
        );
    }

    #[test]
    fn all_versions_agree_on_leave() {
        let ring = ring_of(8, 4);
        let changes = vec![TopologyChange::Leave { node: NodeId(3) }];
        let mut results = Vec::new();
        for calc in all_calculators() {
            let mut c = OpCounter::new();
            results.push(calc.calculate(&ring, &changes, &mut c));
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert!(!results[0].is_empty(), "a leave must create pending ranges");
    }

    #[test]
    fn all_versions_agree_on_mixed_batch() {
        let ring = ring_of(10, 2);
        let changes = vec![
            join_change(50, 2),
            TopologyChange::Leave { node: NodeId(1) },
            join_change(51, 2),
        ];
        let mut results = Vec::new();
        for calc in all_calculators() {
            let mut c = OpCounter::new();
            results.push(calc.calculate(&ring, &changes, &mut c));
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn no_changes_yields_no_pending() {
        let ring = ring_of(6, 4);
        for calc in all_calculators() {
            let mut c = OpCounter::new();
            let out = calc.calculate(&ring, &[], &mut c);
            assert!(out.is_empty(), "{}", calc.name());
        }
    }

    #[test]
    fn op_counts_are_strictly_ordered_v1_v2_v3() {
        let ring = ring_of(24, 4);
        let changes = vec![join_change(100, 4)];
        let mut c1 = OpCounter::new();
        let mut c2 = OpCounter::new();
        let mut c3 = OpCounter::new();
        V1Cubic.calculate(&ring, &changes, &mut c1);
        V2Quadratic.calculate(&ring, &changes, &mut c2);
        V3VnodeAware.calculate(&ring, &changes, &mut c3);
        assert!(
            c1.ops() > 10 * c2.ops(),
            "v1 ({}) should dwarf v2 ({})",
            c1.ops(),
            c2.ops()
        );
        assert!(
            c2.ops() > 2 * c3.ops(),
            "v2 ({}) should exceed v3 ({})",
            c2.ops(),
            c3.ops()
        );
    }

    #[test]
    fn v1_growth_is_cubic_class() {
        // Doubling the cluster should multiply v1 ops by ~8.
        let changes = vec![join_change(1000, 1)];
        let ops = |n: u32| {
            let ring = ring_of(n, 1);
            let mut c = OpCounter::new();
            V1Cubic.calculate(&ring, &changes, &mut c);
            c.ops() as f64
        };
        let r = ops(64) / ops(32);
        assert!(r > 5.5 && r < 11.0, "v1 doubling ratio {r}");
    }

    #[test]
    fn v2_growth_is_quadratic_class() {
        let changes = vec![join_change(1000, 1)];
        let ops = |n: u32| {
            let ring = ring_of(n, 1);
            let mut c = OpCounter::new();
            V2Quadratic.calculate(&ring, &changes, &mut c);
            c.ops() as f64
        };
        let r = ops(128) / ops(64);
        assert!(r > 3.0 && r < 5.5, "v2 doubling ratio {r}");
    }

    #[test]
    fn v3_growth_is_near_linear() {
        let changes = vec![join_change(1000, 1)];
        let ops = |n: u32| {
            let ring = ring_of(n, 1);
            let mut c = OpCounter::new();
            V3VnodeAware.calculate(&ring, &changes, &mut c);
            c.ops() as f64
        };
        let r = ops(256) / ops(128);
        assert!(r > 1.7 && r < 3.0, "v3 doubling ratio {r}");
    }

    #[test]
    fn vnodes_multiply_v2_cost() {
        // C3881: the v2 fix does not scale when N becomes N*P.
        let changes = vec![join_change(1000, 8)];
        let ring_p1 = ring_of(16, 1);
        let ring_p8 = ring_of(16, 8);
        let mut c1 = OpCounter::new();
        let mut c8 = OpCounter::new();
        V2Quadratic.calculate(&ring_p1, &[join_change(1000, 1)], &mut c1);
        V2Quadratic.calculate(&ring_p8, &changes, &mut c8);
        assert!(
            c8.ops() as f64 / c1.ops() as f64 > 30.0,
            "8x vnodes should blow up v2 quadratically: {} vs {}",
            c8.ops(),
            c1.ops()
        );
    }

    #[test]
    fn fresh_ring_path_taken_only_when_empty() {
        // Empty current ring: quadratic fresh construction, all pending.
        let empty = RingTable::new(3);
        let changes: Vec<TopologyChange> = (0..8).map(|i| join_change(i, 2)).collect();
        let mut c = OpCounter::new();
        let out = FreshRingQuadratic.calculate(&empty, &changes, &mut c);
        assert_eq!(out.len(), 16, "every range pending on fresh bootstrap");
        // Non-empty ring: delegates to v3 (same ops as v3).
        let ring = ring_of(8, 2);
        let ch = vec![join_change(100, 2)];
        let mut cf = OpCounter::new();
        let mut c3 = OpCounter::new();
        let of = FreshRingQuadratic.calculate(&ring, &ch, &mut cf);
        let o3 = V3VnodeAware.calculate(&ring, &ch, &mut c3);
        assert_eq!(of, o3);
        assert_eq!(cf.ops(), c3.ops());
    }

    #[test]
    fn pending_nodes_are_the_movers() {
        // A single join: pending endpoints must include the joiner.
        let ring = ring_of(8, 1);
        let joiner = NodeId(100);
        let changes = vec![TopologyChange::Join {
            node: joiner,
            tokens: spread_tokens(joiner, 1),
        }];
        let mut c = OpCounter::new();
        let out = V3VnodeAware.calculate(&ring, &changes, &mut c);
        assert!(
            out.values().any(|s| s.contains(&joiner)),
            "joiner must appear in pending sets: {out:?}"
        );
    }

    #[test]
    fn canonical_pending_encoding_stable_and_discriminating() {
        let ring = ring_of(8, 2);
        let mut c = OpCounter::new();
        let a = V3VnodeAware.calculate(&ring, &[join_change(100, 2)], &mut c);
        let b = V3VnodeAware.calculate(&ring, &[join_change(101, 2)], &mut c);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        write_pending_canonical(&a, &mut ba);
        write_pending_canonical(&b, &mut bb);
        assert_ne!(ba, bb);
        let mut ba2 = Vec::new();
        write_pending_canonical(&a, &mut ba2);
        assert_eq!(ba, ba2);
    }
}
