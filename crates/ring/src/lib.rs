//! Token ring substrate for the ScaleCheck reproduction.
//!
//! Implements the Cassandra-like ring that the paper's bugs live in:
//! tokens and wrapping ranges ([`Token`], [`Range`]), virtual nodes, the
//! `@scaledep` ring table ([`RingTable`]), and the four historical
//! versions of the pending key-range calculation
//! ([`V1Cubic`], [`V2Quadratic`], [`V3VnodeAware`],
//! [`FreshRingQuadratic`]) with instrumented operation counting.
//!
//! # Examples
//!
//! ```
//! use scalecheck_ring::{
//!     NodeId, NodeStatus, OpCounter, PendingRangeCalculator, RingTable, TopologyChange,
//!     V1Cubic, V3VnodeAware, spread_tokens,
//! };
//!
//! let mut ring = RingTable::new(3);
//! for i in 0..16 {
//!     ring.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), 4))
//!         .unwrap();
//! }
//! let join = TopologyChange::Join { node: NodeId(99), tokens: spread_tokens(NodeId(99), 4) };
//!
//! let (mut c1, mut c3) = (OpCounter::new(), OpCounter::new());
//! let slow = V1Cubic.calculate(&ring, std::slice::from_ref(&join), &mut c1);
//! let fast = V3VnodeAware.calculate(&ring, std::slice::from_ref(&join), &mut c3);
//! assert_eq!(slow, fast);          // Same semantics...
//! assert!(c1.ops() > 50 * c3.ops()); // ...wildly different cost.
//! ```

#![forbid(unsafe_code)]

pub mod pending;
pub mod table;
pub mod token;

pub use pending::{
    all_calculators, write_pending_canonical, FreshRingQuadratic, OpCounter,
    PendingRangeCalculator, PendingRanges, V1Cubic, V2Quadratic, V3VnodeAware,
};
pub use table::{
    write_changes_canonical, NodeState, NodeStatus, RingError, RingTable, TopologyChange,
};
pub use token::{spread_tokens, NodeId, Range, Token};
