//! Tokens, node identifiers, and wrapping key ranges.
//!
//! The key space is the full `u64` circle, as in Cassandra's
//! Murmur3-partitioned ring. A node owns the range that ends at each of
//! its tokens: the range `(predecessor_token, token]`, wrapping around
//! zero.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A position on the ring (a point in the hash space).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Token(pub u64);

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{:016x}", self.0)
    }
}

/// Identifies a physical node (endpoint) in the cluster.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A half-open wrapping range `(start, end]` on the token circle.
///
/// When `start == end` the range covers the entire circle (this occurs
/// only in single-token rings).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Range {
    /// Exclusive start.
    pub start: Token,
    /// Inclusive end.
    pub end: Token,
}

impl Range {
    /// Creates the range `(start, end]`.
    pub fn new(start: Token, end: Token) -> Self {
        Range { start, end }
    }

    /// Whether `t` falls inside this wrapping range.
    pub fn contains(&self, t: Token) -> bool {
        if self.start == self.end {
            // Full circle.
            return true;
        }
        if self.start < self.end {
            self.start < t && t <= self.end
        } else {
            // Wraps around zero.
            t > self.start || t <= self.end
        }
    }

    /// Whether two wrapping ranges overlap (share at least one token).
    pub fn overlaps(&self, other: &Range) -> bool {
        if self.start == self.end || other.start == other.end {
            return true;
        }
        self.contains(other.end) || other.contains(self.end)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.start, self.end)
    }
}

/// Deterministically spreads `count` tokens for node `node` across the
/// ring (a stand-in for random token assignment that keeps tests and
/// experiments reproducible without an RNG plumb-through).
pub fn spread_tokens(node: NodeId, count: usize) -> Vec<Token> {
    // SplitMix-style mixing of (node, index) so tokens are well spread
    // and collision-free in practice.
    (0..count)
        .map(|i| {
            let mut z = ((node.0 as u64) << 32) ^ (i as u64) ^ 0x9E37_79B9_7F4A_7C15;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Token(z ^ (z >> 31))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_wrapping_contains() {
        let r = Range::new(Token(10), Token(20));
        assert!(!r.contains(Token(10)));
        assert!(r.contains(Token(11)));
        assert!(r.contains(Token(20)));
        assert!(!r.contains(Token(21)));
    }

    #[test]
    fn wrapping_contains() {
        let r = Range::new(Token(u64::MAX - 5), Token(5));
        assert!(r.contains(Token(u64::MAX)));
        assert!(r.contains(Token(0)));
        assert!(r.contains(Token(5)));
        assert!(!r.contains(Token(6)));
        assert!(!r.contains(Token(u64::MAX - 5)));
    }

    #[test]
    fn full_circle_contains_everything() {
        let r = Range::new(Token(7), Token(7));
        assert!(r.contains(Token(0)));
        assert!(r.contains(Token(7)));
        assert!(r.contains(Token(u64::MAX)));
    }

    #[test]
    fn overlap_detection() {
        let a = Range::new(Token(10), Token(20));
        let b = Range::new(Token(15), Token(30));
        let c = Range::new(Token(20), Token(30));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // c starts exactly where a ends (exclusive start): only the point
        // 20 is shared via a's inclusive end, which is not in c.
        assert!(!a.overlaps(&c) || a.contains(Token(30)) || c.contains(Token(20)));
        let far = Range::new(Token(100), Token(200));
        assert!(!a.overlaps(&far));
    }

    #[test]
    fn wrapping_overlap() {
        let wrap = Range::new(Token(u64::MAX - 10), Token(10));
        let low = Range::new(Token(5), Token(50));
        let mid = Range::new(Token(100), Token(200));
        assert!(wrap.overlaps(&low));
        assert!(!wrap.overlaps(&mid));
    }

    #[test]
    fn spread_tokens_are_distinct_and_stable() {
        let a = spread_tokens(NodeId(1), 256);
        let b = spread_tokens(NodeId(1), 256);
        assert_eq!(a, b);
        let mut all: Vec<Token> = (0..64)
            .flat_map(|n| spread_tokens(NodeId(n), 256))
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "token collision");
    }
}
