//! The ring table: node statuses, token ownership, and topology changes.
//!
//! This is the `@scaledep`-annotated data structure of the paper's
//! Figure 2: its size grows with cluster size (N physical nodes times P
//! virtual nodes), and loops over it are what the offending-function
//! finder flags.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::token::{NodeId, Token};

/// Gossip-visible lifecycle status of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Fully joined; owns its ranges.
    Normal,
    /// Bootstrapping; will own its ranges once the join completes.
    Joining,
    /// Decommissioning; still owns its ranges but is leaving.
    Leaving,
    /// Departed; owns nothing.
    Left,
}

/// Per-node ring state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeState {
    /// Lifecycle status.
    pub status: NodeStatus,
    /// The node's tokens (sorted, deduplicated at insert).
    pub tokens: Vec<Token>,
}

/// A topology change carried by gossip (the paper's `M`-element change
/// list).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TopologyChange {
    /// `node` is joining with the given tokens.
    Join {
        /// The joining node.
        node: NodeId,
        /// Its tokens.
        tokens: Vec<Token>,
    },
    /// `node` is leaving the ring.
    Leave {
        /// The departing node.
        node: NodeId,
    },
}

impl TopologyChange {
    /// The node this change concerns.
    pub fn node(&self) -> NodeId {
        match self {
            TopologyChange::Join { node, .. } | TopologyChange::Leave { node } => *node,
        }
    }
}

/// Errors from ring-table mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RingError {
    /// The node is already present.
    DuplicateNode(NodeId),
    /// A token is already owned by another node.
    DuplicateToken(Token, NodeId),
    /// The node is not in the table.
    UnknownNode(NodeId),
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::DuplicateNode(n) => write!(f, "node {n} already in ring"),
            RingError::DuplicateToken(t, n) => write!(f, "token {t} already owned by {n}"),
            RingError::UnknownNode(n) => write!(f, "node {n} not in ring"),
        }
    }
}

impl std::error::Error for RingError {}

/// Lazily built cache of [`RingTable::current_token_map`].
///
/// The token map used to be rebuilt and re-sorted from the node table
/// on every call — O(N·P log N·P) in a path the calculators hit per
/// change entry. The cache holds the sorted map behind an `Arc` so
/// lookups are O(1) and snapshot clones of the ring keep the warm
/// cache. Every topology mutation resets it.
///
/// The cache is pure memoization and must stay invisible to the
/// serialized form (memo digests and sweep cache keys hash the
/// serialized config/ring, never the cache): it serializes as `null`
/// and deserializes to cold, and `write_canonical` never reads it.
#[derive(Default)]
struct TokenMapCache(OnceLock<Arc<Vec<(Token, NodeId)>>>);

impl Clone for TokenMapCache {
    fn clone(&self) -> Self {
        let cache = TokenMapCache::default();
        if let Some(map) = self.0.get() {
            let _ = cache.0.set(Arc::clone(map));
        }
        cache
    }
}

impl std::fmt::Debug for TokenMapCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(map) => write!(f, "TokenMapCache(warm, {} entries)", map.len()),
            None => write!(f, "TokenMapCache(cold)"),
        }
    }
}

impl Serialize for TokenMapCache {
    fn serialize(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl Deserialize for TokenMapCache {
    fn deserialize(_v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TokenMapCache::default())
    }
}

/// The cluster's view of token ownership.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RingTable {
    rf: usize,
    nodes: BTreeMap<NodeId, NodeState>,
    token_map: TokenMapCache,
}

impl RingTable {
    /// Creates an empty ring with replication factor `rf`.
    ///
    /// # Panics
    ///
    /// Panics if `rf` is zero.
    pub fn new(rf: usize) -> Self {
        assert!(rf > 0, "replication factor must be positive");
        RingTable {
            rf,
            nodes: BTreeMap::new(),
            token_map: TokenMapCache::default(),
        }
    }

    /// Replication factor.
    pub fn rf(&self) -> usize {
        self.rf
    }

    /// Adds a node with the given status and tokens.
    pub fn add_node(
        &mut self,
        node: NodeId,
        status: NodeStatus,
        mut tokens: Vec<Token>,
    ) -> Result<(), RingError> {
        if self.nodes.contains_key(&node) {
            return Err(RingError::DuplicateNode(node));
        }
        tokens.sort_unstable();
        tokens.dedup();
        for t in &tokens {
            if let Some(owner) = self.owner_of_token(*t) {
                return Err(RingError::DuplicateToken(*t, owner));
            }
        }
        self.nodes.insert(node, NodeState { status, tokens });
        self.token_map = TokenMapCache::default();
        Ok(())
    }

    /// Changes a node's status.
    pub fn set_status(&mut self, node: NodeId, status: NodeStatus) -> Result<(), RingError> {
        match self.nodes.get_mut(&node) {
            Some(st) => {
                st.status = status;
                self.token_map = TokenMapCache::default();
                Ok(())
            }
            None => Err(RingError::UnknownNode(node)),
        }
    }

    /// Removes a node entirely.
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), RingError> {
        match self.nodes.remove(&node) {
            Some(_) => {
                self.token_map = TokenMapCache::default();
                Ok(())
            }
            None => Err(RingError::UnknownNode(node)),
        }
    }

    /// A node's state, if present.
    pub fn node(&self, node: NodeId) -> Option<&NodeState> {
        self.nodes.get(&node)
    }

    /// Number of nodes in any status except `Left`.
    pub fn member_count(&self) -> usize {
        self.nodes
            .values()
            .filter(|s| s.status != NodeStatus::Left)
            .count()
    }

    /// Iterates over `(node, state)` in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeState)> {
        self.nodes.iter().map(|(&id, st)| (id, st))
    }

    /// Which node currently owns a token, if any.
    pub fn owner_of_token(&self, t: Token) -> Option<NodeId> {
        for (&id, st) in &self.nodes {
            if st.tokens.binary_search(&t).is_ok() {
                return Some(id);
            }
        }
        None
    }

    /// The sorted `(token, node)` map of *current* owners: nodes in
    /// `Normal` or `Leaving` status (Leaving nodes still own their ranges
    /// until departure completes).
    ///
    /// Cached: the first call after a topology mutation rebuilds the
    /// map; subsequent calls hand out the shared snapshot. The returned
    /// `Arc<Vec<_>>` derefs to a slice, so read-only callers are
    /// unchanged.
    pub fn current_token_map(&self) -> Arc<Vec<(Token, NodeId)>> {
        Arc::clone(
            self.token_map
                .0
                .get_or_init(|| Arc::new(self.rebuild_current_token_map())),
        )
    }

    /// Reference implementation of [`Self::current_token_map`]: rebuilds
    /// the sorted map from the node table on every call (the pre-cache
    /// behavior). Used to fill the cache and by the differential
    /// proptests pinning cached == rebuilt.
    pub fn rebuild_current_token_map(&self) -> Vec<(Token, NodeId)> {
        let mut map: Vec<(Token, NodeId)> = self
            .nodes
            .iter()
            .filter(|(_, st)| matches!(st.status, NodeStatus::Normal | NodeStatus::Leaving))
            .flat_map(|(&id, st)| st.tokens.iter().map(move |&t| (t, id)))
            .collect();
        map.sort_unstable();
        map
    }

    /// Resolves the replica set of `key`: walks the current token map
    /// clockwise from the first token at or after `key` (wrapping),
    /// collecting up to `rf` *distinct* nodes into `out` in preference
    /// order. `out` is cleared first; it stays empty when the ring has
    /// no current owners. This is the single replica-resolution walk —
    /// the client datapath and the traffic engine both route through
    /// it.
    pub fn replicas_of(&self, key: Token, out: &mut Vec<NodeId>) {
        out.clear();
        let map = self.current_token_map();
        if map.is_empty() {
            return;
        }
        // First token >= key, wrapping.
        let start = map.partition_point(|&(t, _)| t < key) % map.len();
        for step in 0..map.len() {
            let (_, node) = map[(start + step) % map.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == self.rf {
                    break;
                }
            }
        }
    }

    /// The sorted `(token, node)` map after applying `changes` on top of
    /// the current owners: joins add tokens, leaves remove the node's
    /// tokens.
    ///
    /// A change list may repeat an exact `(token, node)` pair (an
    /// idempotent re-join); those collapse. A token claimed by two
    /// *different* nodes is a topology corruption: the old code
    /// `dedup_by_key`ed it away, silently disagreeing with
    /// [`Self::current_token_map`] (which never dedups) about the owner
    /// set. It is now detected and reported as
    /// [`RingError::DuplicateToken`] carrying the first claimant.
    pub fn future_token_map(
        &self,
        changes: &[TopologyChange],
    ) -> Result<Vec<(Token, NodeId)>, RingError> {
        let mut map: Vec<(Token, NodeId)> = (*self.current_token_map()).clone();
        for ch in changes {
            match ch {
                TopologyChange::Join { node, tokens } => {
                    for &t in tokens {
                        map.push((t, *node));
                    }
                }
                TopologyChange::Leave { node } => {
                    map.retain(|&(_, n)| n != *node);
                }
            }
        }
        map.sort_unstable();
        map.dedup();
        for w in map.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(RingError::DuplicateToken(w[0].0, w[0].1));
            }
        }
        Ok(map)
    }

    /// Canonical byte encoding for memoization digests: stable across
    /// insertion order because the underlying maps are ordered.
    pub fn write_canonical(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.rf as u64).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u64).to_le_bytes());
        for (id, st) in &self.nodes {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.push(match st.status {
                NodeStatus::Normal => 0,
                NodeStatus::Joining => 1,
                NodeStatus::Leaving => 2,
                NodeStatus::Left => 3,
            });
            out.extend_from_slice(&(st.tokens.len() as u64).to_le_bytes());
            for t in &st.tokens {
                out.extend_from_slice(&t.0.to_le_bytes());
            }
        }
    }
}

/// Canonical byte encoding of a change list (for memo digests).
pub fn write_changes_canonical(changes: &[TopologyChange], out: &mut Vec<u8>) {
    out.extend_from_slice(&(changes.len() as u64).to_le_bytes());
    for ch in changes {
        match ch {
            TopologyChange::Join { node, tokens } => {
                out.push(0);
                out.extend_from_slice(&node.0.to_le_bytes());
                out.extend_from_slice(&(tokens.len() as u64).to_le_bytes());
                for t in tokens {
                    out.extend_from_slice(&t.0.to_le_bytes());
                }
            }
            TopologyChange::Leave { node } => {
                out.push(1);
                out.extend_from_slice(&node.0.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::spread_tokens;

    fn ring_of(n: u32, p: usize) -> RingTable {
        let mut r = RingTable::new(3);
        for i in 0..n {
            r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), p))
                .unwrap();
        }
        r
    }

    #[test]
    fn add_and_lookup() {
        let r = ring_of(4, 8);
        assert_eq!(r.member_count(), 4);
        let t = r.node(NodeId(2)).unwrap().tokens[0];
        assert_eq!(r.owner_of_token(t), Some(NodeId(2)));
        assert_eq!(r.owner_of_token(Token(1)), None);
    }

    #[test]
    fn replicas_walk_clockwise_and_dedupe() {
        let r = ring_of(8, 4);
        let mut out = Vec::new();
        r.replicas_of(Token(0), &mut out);
        assert_eq!(out.len(), 3, "rf distinct replicas on a healthy ring");
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "replicas are distinct");
        // The walk starts at the first token >= key.
        let map = r.current_token_map();
        assert_eq!(out[0], map[0].1);
        // Wrapping: a key past the last token resolves to the ring head.
        let mut wrapped = Vec::new();
        r.replicas_of(Token(u64::MAX), &mut wrapped);
        assert_eq!(wrapped.len(), 3);
        // Fewer nodes than RF yields every node, not a panic.
        let small = ring_of(2, 4);
        let mut few = Vec::new();
        small.replicas_of(Token(7), &mut few);
        assert_eq!(few.len(), 2);
        // An empty ring yields no replicas.
        let empty = RingTable::new(3);
        let mut none = vec![NodeId(9)];
        empty.replicas_of(Token(7), &mut none);
        assert!(none.is_empty());
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut r = ring_of(2, 4);
        let err = r
            .add_node(NodeId(0), NodeStatus::Normal, vec![Token(99)])
            .unwrap_err();
        assert_eq!(err, RingError::DuplicateNode(NodeId(0)));
    }

    #[test]
    fn duplicate_token_rejected() {
        let mut r = RingTable::new(3);
        r.add_node(NodeId(0), NodeStatus::Normal, vec![Token(5)])
            .unwrap();
        let err = r
            .add_node(NodeId(1), NodeStatus::Normal, vec![Token(5)])
            .unwrap_err();
        assert_eq!(err, RingError::DuplicateToken(Token(5), NodeId(0)));
    }

    #[test]
    fn unknown_node_errors() {
        let mut r = RingTable::new(3);
        assert_eq!(
            r.set_status(NodeId(9), NodeStatus::Leaving),
            Err(RingError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            r.remove_node(NodeId(9)),
            Err(RingError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn current_map_excludes_joining_and_left() {
        let mut r = RingTable::new(3);
        r.add_node(NodeId(0), NodeStatus::Normal, vec![Token(10)])
            .unwrap();
        r.add_node(NodeId(1), NodeStatus::Joining, vec![Token(20)])
            .unwrap();
        r.add_node(NodeId(2), NodeStatus::Leaving, vec![Token(30)])
            .unwrap();
        r.add_node(NodeId(3), NodeStatus::Left, vec![Token(40)])
            .unwrap();
        let map = r.current_token_map();
        let owners: Vec<NodeId> = map.iter().map(|&(_, n)| n).collect();
        assert_eq!(owners, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn future_map_applies_changes() {
        let mut r = RingTable::new(3);
        r.add_node(NodeId(0), NodeStatus::Normal, vec![Token(10)])
            .unwrap();
        r.add_node(NodeId(1), NodeStatus::Normal, vec![Token(20)])
            .unwrap();
        let future = r
            .future_token_map(&[
                TopologyChange::Leave { node: NodeId(0) },
                TopologyChange::Join {
                    node: NodeId(2),
                    tokens: vec![Token(5), Token(15)],
                },
            ])
            .unwrap();
        assert_eq!(
            future,
            vec![
                (Token(5), NodeId(2)),
                (Token(15), NodeId(2)),
                (Token(20), NodeId(1))
            ]
        );
    }

    #[test]
    fn future_map_rejects_token_claimed_by_two_nodes() {
        let mut r = RingTable::new(3);
        r.add_node(NodeId(0), NodeStatus::Normal, vec![Token(10)])
            .unwrap();
        let err = r
            .future_token_map(&[TopologyChange::Join {
                node: NodeId(1),
                tokens: vec![Token(10)],
            }])
            .unwrap_err();
        assert_eq!(err, RingError::DuplicateToken(Token(10), NodeId(0)));
    }

    #[test]
    fn future_map_collapses_idempotent_rejoin() {
        let mut r = RingTable::new(3);
        r.add_node(NodeId(0), NodeStatus::Normal, vec![Token(10)])
            .unwrap();
        // The same node re-claiming its own token is idempotent, not
        // a corruption.
        let future = r
            .future_token_map(&[TopologyChange::Join {
                node: NodeId(0),
                tokens: vec![Token(10)],
            }])
            .unwrap();
        assert_eq!(future, vec![(Token(10), NodeId(0))]);
    }

    #[test]
    fn token_map_cache_tracks_every_mutation() {
        let mut r = ring_of(6, 8);
        assert_eq!(*r.current_token_map(), r.rebuild_current_token_map());
        r.set_status(NodeId(2), NodeStatus::Leaving).unwrap();
        assert_eq!(*r.current_token_map(), r.rebuild_current_token_map());
        r.set_status(NodeId(2), NodeStatus::Left).unwrap();
        assert_eq!(*r.current_token_map(), r.rebuild_current_token_map());
        r.remove_node(NodeId(3)).unwrap();
        assert_eq!(*r.current_token_map(), r.rebuild_current_token_map());
        r.add_node(NodeId(99), NodeStatus::Normal, vec![Token(1)])
            .unwrap();
        assert_eq!(*r.current_token_map(), r.rebuild_current_token_map());
        // Clones carry the warm cache and stay consistent after the
        // original mutates further.
        let snap = r.clone();
        r.remove_node(NodeId(99)).unwrap();
        assert_eq!(*snap.current_token_map(), snap.rebuild_current_token_map());
        assert_eq!(*r.current_token_map(), r.rebuild_current_token_map());
        assert_ne!(*snap.current_token_map(), *r.current_token_map());
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let a = ring_of(8, 16);
        let b = ring_of(8, 16);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.write_canonical(&mut ba);
        b.write_canonical(&mut bb);
        assert_eq!(ba, bb);
        assert!(!ba.is_empty());
    }

    #[test]
    fn canonical_encoding_distinguishes_status() {
        let mut a = ring_of(4, 4);
        let b = a.clone();
        a.set_status(NodeId(1), NodeStatus::Leaving).unwrap();
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.write_canonical(&mut ba);
        b.write_canonical(&mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn change_encoding_distinguishes_kinds() {
        let join = TopologyChange::Join {
            node: NodeId(1),
            tokens: vec![Token(7)],
        };
        let leave = TopologyChange::Leave { node: NodeId(1) };
        let mut bj = Vec::new();
        let mut bl = Vec::new();
        write_changes_canonical(std::slice::from_ref(&join), &mut bj);
        write_changes_canonical(std::slice::from_ref(&leave), &mut bl);
        assert_ne!(bj, bl);
        assert_eq!(join.node(), NodeId(1));
        assert_eq!(leave.node(), NodeId(1));
    }
}
