//! The memoization database (Figure 2, step c–e).
//!
//! During the one-time basic-colocation run, every invocation of a
//! PIL-replaced function stores `(input digest) → (output, duration)`
//! plus its position in the node's invocation order. During PIL replay,
//! lookups go by input digest first; if nondeterminism leaked and the
//! digest misses, the replayer can fall back to the invocation-index
//! record, and as a last resort re-execute the real function (the
//! statistics make every such fallback visible).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;

use scalecheck_sim::SimDuration;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

use crate::digest::Digest128;

/// Identifies a PIL-replaced function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FnId(pub u16);

/// One memoized invocation record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoRecord<O> {
    /// The function's output for this input.
    pub output: O,
    /// In-situ recorded compute duration (virtual time).
    pub duration: SimDuration,
}

/// Counters describing how a replay used the database.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Records written during memoization.
    pub recorded: u64,
    /// Inputs seen more than once during memoization.
    pub duplicate_inputs: u64,
    /// Replay lookups answered by input digest.
    pub hits: u64,
    /// Replay lookups answered by invocation index (digest missed).
    pub index_fallbacks: u64,
    /// Replay lookups that had to re-execute the real function.
    pub misses: u64,
}

impl MemoStats {
    /// Fraction of replay lookups answered from the database (by digest
    /// or index). Returns 1.0 when there were no lookups.
    pub fn replay_hit_rate(&self) -> f64 {
        let total = self.hits + self.index_fallbacks + self.misses;
        if total == 0 {
            1.0
        } else {
            (self.hits + self.index_fallbacks) as f64 / total as f64
        }
    }
}

/// The memoization database, generic over the function output type.
#[derive(Clone, Debug)]
pub struct MemoDb<O> {
    records: HashMap<(FnId, u128), MemoRecord<O>>,
    invocation_order: BTreeMap<(u32, FnId), Vec<u128>>,
    stats: MemoStats,
}

impl<O> Default for MemoDb<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O> MemoDb<O> {
    /// Creates an empty database.
    pub fn new() -> Self {
        MemoDb {
            records: HashMap::new(),
            invocation_order: BTreeMap::new(),
            stats: MemoStats::default(),
        }
    }
}

impl<O: Clone> MemoDb<O> {
    /// Records one invocation observed during memoization.
    ///
    /// `node` is the executing node (for the invocation-order log).
    pub fn record(
        &mut self,
        node: u32,
        func: FnId,
        input: Digest128,
        output: O,
        duration: SimDuration,
    ) {
        self.stats.recorded += 1;
        if self
            .records
            .insert((func, input.0), MemoRecord { output, duration })
            .is_some()
        {
            self.stats.duplicate_inputs += 1;
        }
        self.invocation_order
            .entry((node, func))
            .or_default()
            .push(input.0);
    }

    /// Replay lookup by input digest. Counts a hit or nothing (the caller
    /// decides what a miss becomes).
    pub fn lookup(&mut self, func: FnId, input: Digest128) -> Option<MemoRecord<O>> {
        match self.records.get(&(func, input.0)) {
            Some(r) => {
                self.stats.hits += 1;
                Some(r.clone())
            }
            None => None,
        }
    }

    /// Replay fallback: the record for `node`'s `idx`-th invocation of
    /// `func` during memoization.
    pub fn lookup_by_index(&mut self, node: u32, func: FnId, idx: usize) -> Option<MemoRecord<O>> {
        let digest = *self.invocation_order.get(&(node, func))?.get(idx)?;
        let rec = self.records.get(&(func, digest))?.clone();
        self.stats.index_fallbacks += 1;
        Some(rec)
    }

    /// Registers that a replay lookup missed entirely and the real
    /// function was executed.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Number of distinct `(function, input)` records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of invocations logged for `(node, func)`.
    pub fn invocations(&self, node: u32, func: FnId) -> usize {
        self.invocation_order.get(&(node, func)).map_or(0, Vec::len)
    }

    /// Usage statistics.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Resets replay counters (call between replays of the same DB).
    pub fn reset_replay_stats(&mut self) {
        self.stats.hits = 0;
        self.stats.index_fallbacks = 0;
        self.stats.misses = 0;
    }

    /// Iterates over all records as `(function, input-digest, record)`.
    pub fn iter_records(&self) -> impl Iterator<Item = (FnId, Digest128, &MemoRecord<O>)> {
        self.records.iter().map(|(&(f, d), r)| (f, Digest128(d), r))
    }

    /// Removes one record; returns whether it existed. Invocation-order
    /// logs are left untouched (an index fallback will then miss too,
    /// which is the honest behaviour for a damaged database).
    pub fn remove(&mut self, func: FnId, input: Digest128) -> bool {
        self.records.remove(&(func, input.0)).is_some()
    }

    /// Sum of all recorded durations (the total compute the PIL replay
    /// will *sleep* instead of burn).
    pub fn total_recorded_compute(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for r in self.records.values() {
            total += r.duration;
        }
        total
    }
}

/// Serializable snapshot form (maps with composite keys flatten to
/// entry lists for JSON).
#[derive(Serialize, Deserialize)]
struct Snapshot<O> {
    records: Vec<(u16, u128, MemoRecord<O>)>,
    invocation_order: Vec<(u32, u16, Vec<u128>)>,
    stats: MemoStats,
}

/// Errors from persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Serialization error.
    Json(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "memo db io error: {e}"),
            PersistError::Json(e) => write!(f, "memo db serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

impl<O: Clone + Serialize + DeserializeOwned> MemoDb<O> {
    /// Serializes the database to a JSON string.
    pub fn to_json(&self) -> Result<String, PersistError> {
        let snap = Snapshot {
            records: {
                let mut v: Vec<(u16, u128, MemoRecord<O>)> = self
                    .records
                    .iter()
                    .map(|(&(f, d), r)| (f.0, d, r.clone()))
                    .collect();
                v.sort_by_key(|&(f, d, _)| (f, d));
                v
            },
            invocation_order: self
                .invocation_order
                .iter()
                .map(|(&(n, f), v)| (n, f.0, v.clone()))
                .collect(),
            stats: self.stats,
        };
        Ok(serde_json::to_string(&snap)?)
    }

    /// Restores a database from [`MemoDb::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        let snap: Snapshot<O> = serde_json::from_str(json)?;
        let mut db = MemoDb::new();
        for (f, d, r) in snap.records {
            db.records.insert((FnId(f), d), r);
        }
        for (n, f, v) in snap.invocation_order {
            db.invocation_order.insert((n, FnId(f)), v);
        }
        db.stats = snap.stats;
        Ok(db)
    }

    /// Writes the database to a file.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        std::fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Loads a database from a file.
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::digest_bytes;

    fn db() -> MemoDb<Vec<u8>> {
        MemoDb::new()
    }

    fn d(s: &str) -> Digest128 {
        digest_bytes(s.as_bytes())
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn record_and_lookup_round_trip() {
        let mut m = db();
        m.record(1, FnId(0), d("input-a"), vec![1, 2, 3], ms(500));
        let rec = m.lookup(FnId(0), d("input-a")).unwrap();
        assert_eq!(rec.output, vec![1, 2, 3]);
        assert_eq!(rec.duration, ms(500));
        assert_eq!(m.stats().hits, 1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lookup_misses_unknown_input() {
        let mut m = db();
        m.record(1, FnId(0), d("a"), vec![], ms(1));
        assert!(m.lookup(FnId(0), d("b")).is_none());
        assert!(m.lookup(FnId(1), d("a")).is_none());
    }

    #[test]
    fn duplicate_inputs_counted_last_write_wins() {
        let mut m = db();
        m.record(1, FnId(0), d("a"), vec![1], ms(1));
        m.record(2, FnId(0), d("a"), vec![2], ms(2));
        assert_eq!(m.stats().duplicate_inputs, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(FnId(0), d("a")).unwrap().output, vec![2]);
    }

    #[test]
    fn index_fallback_follows_invocation_order() {
        let mut m = db();
        m.record(7, FnId(0), d("first"), vec![1], ms(1));
        m.record(7, FnId(0), d("second"), vec![2], ms(2));
        m.record(8, FnId(0), d("other-node"), vec![3], ms(3));
        assert_eq!(m.invocations(7, FnId(0)), 2);
        let r = m.lookup_by_index(7, FnId(0), 1).unwrap();
        assert_eq!(r.output, vec![2]);
        assert!(m.lookup_by_index(7, FnId(0), 5).is_none());
        assert!(m.lookup_by_index(9, FnId(0), 0).is_none());
        assert_eq!(m.stats().index_fallbacks, 1);
    }

    #[test]
    fn stats_and_hit_rate() {
        let mut m = db();
        m.record(1, FnId(0), d("a"), vec![], ms(1));
        m.lookup(FnId(0), d("a"));
        m.lookup(FnId(0), d("a"));
        assert!(m.lookup(FnId(0), d("zzz")).is_none());
        m.note_miss();
        let s = m.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.replay_hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        m.reset_replay_stats();
        assert_eq!(m.stats().hits, 0);
        assert_eq!(m.stats().recorded, 1);
        assert_eq!(m.stats().replay_hit_rate(), 1.0);
    }

    #[test]
    fn total_recorded_compute_sums() {
        let mut m = db();
        m.record(1, FnId(0), d("a"), vec![], ms(100));
        m.record(1, FnId(0), d("b"), vec![], ms(250));
        assert_eq!(m.total_recorded_compute(), ms(350));
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut m = db();
        m.record(1, FnId(0), d("a"), vec![9, 9], ms(123));
        m.record(2, FnId(3), d("b"), vec![7], ms(456));
        let json = m.to_json().unwrap();
        let mut back: MemoDb<Vec<u8>> = MemoDb::from_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup(FnId(0), d("a")).unwrap().output, vec![9, 9]);
        assert_eq!(back.lookup(FnId(3), d("b")).unwrap().duration, ms(456));
        assert_eq!(back.invocations(1, FnId(0)), 1);
        assert_eq!(back.stats().recorded, 2);
    }

    #[test]
    fn file_round_trip() {
        let mut m = db();
        m.record(1, FnId(0), d("a"), vec![1], ms(1));
        let dir = std::env::temp_dir().join("scalecheck-memo-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        m.save(&path).unwrap();
        let back: MemoDb<Vec<u8>> = MemoDb::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let err = MemoDb::<Vec<u8>>::from_json("not json").unwrap_err();
        assert!(matches!(err, PersistError::Json(_)));
        assert!(err.to_string().contains("serialization"));
    }
}
