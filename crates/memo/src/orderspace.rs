//! The §5 state-space argument, made quantitative.
//!
//! "In a ring rebalancing algorithm for example, with N nodes and P
//! partitions/node, there are (N^NP)^2 input/output pairs given all
//! possible orderings." Offline input sampling would therefore need
//! effectively infinite time and storage; recording *one* observed run
//! plus order determinism caps the space at the run's actual length.
//!
//! The numbers overflow anything fixed-width almost immediately, so the
//! functions here work in log10 space.

/// log10 of the §5 ordering-space size `(N^(N*P))^2 = N^(2*N*P)`.
///
/// Returns 0 for `n <= 1` (a single node has one ordering).
pub fn log10_ordering_space(n: u64, p: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    2.0 * (n * p) as f64 * (n as f64).log10()
}

/// Decimal digit count of the ordering-space size (how many digits the
/// number would take to write down).
pub fn ordering_space_digits(n: u64, p: u64) -> u64 {
    log10_ordering_space(n, p).floor() as u64 + 1
}

/// log10 of the number of records a single observed run stores
/// (`records` input/output pairs). Zero records → 0.
pub fn log10_recorded_space(records: u64) -> f64 {
    if records == 0 {
        0.0
    } else {
        (records as f64).log10()
    }
}

/// Orders of magnitude saved by recording one run instead of sampling
/// the full ordering space.
pub fn savings_orders_of_magnitude(n: u64, p: u64, records: u64) -> f64 {
    (log10_ordering_space(n, p) - log10_recorded_space(records)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(log10_ordering_space(0, 256), 0.0);
        assert_eq!(log10_ordering_space(1, 256), 0.0);
        assert_eq!(log10_recorded_space(0), 0.0);
    }

    #[test]
    fn known_small_value() {
        // N=10, P=1: (10^10)^2 = 10^20.
        assert!((log10_ordering_space(10, 1) - 20.0).abs() < 1e-9);
        assert_eq!(ordering_space_digits(10, 1), 21);
    }

    #[test]
    fn paper_scale_is_astronomical() {
        // N=256, P=256: digits in the hundreds of thousands.
        let digits = ordering_space_digits(256, 256);
        assert!(digits > 300_000, "digits {digits}");
    }

    #[test]
    fn savings_dominated_by_space_size() {
        let s = savings_orders_of_magnitude(256, 256, 1_000_000);
        let full = log10_ordering_space(256, 256);
        assert!(s > full - 7.0);
        assert!(s < full);
    }

    #[test]
    fn savings_never_negative() {
        assert_eq!(savings_orders_of_magnitude(1, 1, 1_000_000), 0.0);
    }
}
