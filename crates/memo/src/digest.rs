//! Input/output digests for memoization keys.
//!
//! Memoization keys must be (a) deterministic across runs and platforms
//! and (b) wide enough that collisions are negligible over the hundreds
//! of thousands of records a 256-node memoization run produces. We use
//! 128-bit FNV-1a: simple, dependency-free, stable by specification.

/// A 128-bit content digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Digest128(pub u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Hashes a byte slice with FNV-1a (128-bit).
pub fn digest_bytes(bytes: &[u8]) -> Digest128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME);
    }
    Digest128(h)
}

/// Incremental FNV-1a hasher for streaming multi-part inputs.
#[derive(Clone, Copy, Debug)]
pub struct Hasher128 {
    h: u128,
}

impl Default for Hasher128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher128 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Hasher128 { h: FNV_OFFSET }
    }

    /// Feeds bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.h ^= b as u128;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a u64 (little-endian).
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Finishes and returns the digest.
    pub fn finish(&self) -> Digest128 {
        Digest128(self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(digest_bytes(b"hello"), digest_bytes(b"hello"));
    }

    #[test]
    fn digest_discriminates() {
        assert_ne!(digest_bytes(b"hello"), digest_bytes(b"hellp"));
        assert_ne!(digest_bytes(b""), digest_bytes(b"\0"));
        // Order matters.
        assert_ne!(digest_bytes(b"ab"), digest_bytes(b"ba"));
    }

    #[test]
    fn known_vector() {
        // FNV-1a 128 of the empty string is the offset basis.
        assert_eq!(digest_bytes(b"").0, FNV_OFFSET);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Hasher128::new();
        h.update(b"hel").update(b"lo");
        assert_eq!(h.finish(), digest_bytes(b"hello"));
    }

    #[test]
    fn update_u64_is_le_bytes() {
        let mut a = Hasher128::new();
        a.update_u64(0x0102030405060708);
        let mut b = Hasher128::new();
        b.update(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn no_collisions_over_many_inputs() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..100_000 {
            let d = digest_bytes(&i.to_le_bytes());
            assert!(seen.insert(d.0), "collision at {i}");
        }
    }
}
