//! PIL memoization for ScaleCheck (§5, Figure 2 steps c–e).
//!
//! The processing illusion replaces an expensive function call with
//! `sleep(t)` plus its memoized output. This crate stores what that
//! needs:
//!
//! * content digests for inputs ([`digest_bytes`], [`Hasher128`]);
//! * the input → (output, duration) database ([`MemoDb`]) with
//!   invocation-order fallback and honest hit/miss statistics;
//! * the recorded message-processing order and its replay enforcement
//!   ([`OrderRecorder`], [`OrderEnforcer`]) — the paper's *order
//!   determinism*;
//! * the §5 state-space arithmetic showing why one recorded run beats
//!   offline input sampling ([`orderspace`]).
//!
//! # Examples
//!
//! ```
//! use scalecheck_memo::{digest_bytes, FnId, MemoDb};
//! use scalecheck_sim::SimDuration;
//!
//! let mut db: MemoDb<String> = MemoDb::new();
//! let input = digest_bytes(b"ring-state-v1");
//! db.record(0, FnId(1), input, "pending-ranges".into(), SimDuration::from_secs(3));
//!
//! // During PIL replay: skip the 3s computation, sleep it instead.
//! let rec = db.lookup(FnId(1), input).unwrap();
//! assert_eq!(rec.duration, SimDuration::from_secs(3));
//! assert_eq!(rec.output, "pending-ranges");
//! ```

#![forbid(unsafe_code)]

pub mod db;
pub mod digest;
pub mod order;
pub mod orderspace;

pub use db::{FnId, MemoDb, MemoRecord, MemoStats, PersistError};
pub use digest::{digest_bytes, Digest128, Hasher128};
pub use order::{OrderDecision, OrderEnforcer, OrderRecorder};
pub use orderspace::{
    log10_ordering_space, log10_recorded_space, ordering_space_digits, savings_orders_of_magnitude,
};
