//! Order determinism (§5).
//!
//! "Input/output pairs depend on the precise order of message arrivals,
//! which can be random. [...] to cap the state space, the
//! pre-memoization stage also records message ordering, which will be
//! deterministically enforced during PIL-infused replay."
//!
//! [`OrderRecorder`] captures, per node, the sequence of message keys
//! processed during the memoization run. [`OrderEnforcer`] replays that
//! sequence: the replayer asks whether an arriving message is the next
//! expected one; if not, the message is held until its turn. Keys the
//! log has never seen (replay divergence) are flagged so the replayer
//! can let them through without deadlocking.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Records per-node message-processing order during memoization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OrderRecorder {
    logs: BTreeMap<u32, Vec<u64>>,
}

impl OrderRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        OrderRecorder::default()
    }

    /// Appends a processed-message key for `node`.
    pub fn record(&mut self, node: u32, key: u64) {
        self.logs.entry(node).or_default().push(key);
    }

    /// Number of recorded events for `node`.
    pub fn len(&self, node: u32) -> usize {
        self.logs.get(&node).map_or(0, Vec::len)
    }

    /// Total recorded events across all nodes.
    pub fn total(&self) -> usize {
        self.logs.values().map(Vec::len).sum()
    }

    /// Freezes the recording into an enforcer for replay.
    pub fn into_enforcer(self) -> OrderEnforcer {
        OrderEnforcer {
            logs: self.logs,
            cursors: BTreeMap::new(),
            out_of_log: 0,
            enforced: 0,
        }
    }
}

/// Decision for an arriving message during order-enforced replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderDecision {
    /// The message is the next expected one; process it now.
    ProcessNow,
    /// The message is expected later; hold it.
    HoldForLater,
    /// The log never saw this key (replay divergence); process it to
    /// avoid deadlock, counted in [`OrderEnforcer::out_of_log`].
    NotInLog,
}

/// Enforces a recorded per-node processing order during replay.
#[derive(Clone, Debug)]
pub struct OrderEnforcer {
    logs: BTreeMap<u32, Vec<u64>>,
    cursors: BTreeMap<u32, usize>,
    out_of_log: u64,
    enforced: u64,
}

impl OrderEnforcer {
    /// The key `node` should process next, if the log has more entries.
    pub fn expected(&self, node: u32) -> Option<u64> {
        let cursor = self.cursors.get(&node).copied().unwrap_or(0);
        self.logs.get(&node)?.get(cursor).copied()
    }

    /// Classifies an arriving message.
    pub fn classify(&mut self, node: u32, key: u64) -> OrderDecision {
        match self.expected(node) {
            Some(exp) if exp == key => OrderDecision::ProcessNow,
            Some(_) => {
                // Is the key anywhere later in the log?
                let cursor = self.cursors.get(&node).copied().unwrap_or(0);
                let in_future = self
                    .logs
                    .get(&node)
                    .map(|log| log[cursor..].contains(&key))
                    .unwrap_or(false);
                if in_future {
                    OrderDecision::HoldForLater
                } else {
                    self.out_of_log += 1;
                    OrderDecision::NotInLog
                }
            }
            None => {
                self.out_of_log += 1;
                OrderDecision::NotInLog
            }
        }
    }

    /// Marks the expected message as processed, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not the expected one (the replayer must only
    /// advance on `ProcessNow`).
    pub fn advance(&mut self, node: u32, key: u64) {
        let exp = self.expected(node);
        assert_eq!(
            exp,
            Some(key),
            "order enforcer advanced out of order (expected {exp:?}, got {key})"
        );
        *self.cursors.entry(node).or_insert(0) += 1;
        self.enforced += 1;
    }

    /// Events processed in recorded order so far.
    pub fn enforced(&self) -> u64 {
        self.enforced
    }

    /// Arrivals the log never saw (replay divergence indicator).
    pub fn out_of_log(&self) -> u64 {
        self.out_of_log
    }

    /// Whether `node` has consumed its entire log.
    pub fn exhausted(&self, node: u32) -> bool {
        self.expected(node).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_in_order() {
        let mut rec = OrderRecorder::new();
        for k in [10u64, 20, 30] {
            rec.record(1, k);
        }
        assert_eq!(rec.len(1), 3);
        assert_eq!(rec.total(), 3);
        let mut enf = rec.into_enforcer();
        for k in [10u64, 20, 30] {
            assert_eq!(enf.classify(1, k), OrderDecision::ProcessNow);
            enf.advance(1, k);
        }
        assert!(enf.exhausted(1));
        assert_eq!(enf.enforced(), 3);
        assert_eq!(enf.out_of_log(), 0);
    }

    #[test]
    fn out_of_order_arrival_is_held() {
        let mut rec = OrderRecorder::new();
        rec.record(1, 10);
        rec.record(1, 20);
        let mut enf = rec.into_enforcer();
        assert_eq!(enf.classify(1, 20), OrderDecision::HoldForLater);
        assert_eq!(enf.classify(1, 10), OrderDecision::ProcessNow);
        enf.advance(1, 10);
        assert_eq!(enf.classify(1, 20), OrderDecision::ProcessNow);
    }

    #[test]
    fn unknown_key_flagged_not_deadlocked() {
        let mut rec = OrderRecorder::new();
        rec.record(1, 10);
        let mut enf = rec.into_enforcer();
        assert_eq!(enf.classify(1, 999), OrderDecision::NotInLog);
        assert_eq!(enf.out_of_log(), 1);
        // The expected message still processes normally.
        assert_eq!(enf.classify(1, 10), OrderDecision::ProcessNow);
    }

    #[test]
    fn nodes_are_independent() {
        let mut rec = OrderRecorder::new();
        rec.record(1, 10);
        rec.record(2, 20);
        let mut enf = rec.into_enforcer();
        assert_eq!(enf.expected(1), Some(10));
        assert_eq!(enf.expected(2), Some(20));
        enf.advance(2, 20);
        assert_eq!(enf.expected(1), Some(10));
        assert!(enf.exhausted(2));
    }

    #[test]
    fn arrivals_after_log_exhaustion_are_not_in_log() {
        let mut rec = OrderRecorder::new();
        rec.record(1, 10);
        let mut enf = rec.into_enforcer();
        enf.advance(1, 10);
        assert_eq!(enf.classify(1, 10), OrderDecision::NotInLog);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn advance_out_of_order_panics() {
        let mut rec = OrderRecorder::new();
        rec.record(1, 10);
        rec.record(1, 20);
        let mut enf = rec.into_enforcer();
        enf.advance(1, 20);
    }

    #[test]
    fn duplicate_keys_replay_by_position() {
        let mut rec = OrderRecorder::new();
        for k in [5u64, 5, 7] {
            rec.record(1, k);
        }
        let mut enf = rec.into_enforcer();
        assert_eq!(enf.classify(1, 5), OrderDecision::ProcessNow);
        enf.advance(1, 5);
        assert_eq!(enf.classify(1, 7), OrderDecision::HoldForLater);
        assert_eq!(enf.classify(1, 5), OrderDecision::ProcessNow);
        enf.advance(1, 5);
        enf.advance(1, 7);
        assert!(enf.exhausted(1));
    }
}
