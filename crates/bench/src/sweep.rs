//! The shared parallel sweep harness.
//!
//! Every figure/table binary decomposes its work into independent
//! [`Cell`]s — one `(scenario, mode)` experiment each — and hands them
//! to [`run_sweep`], which executes them on a work-stealing pool of OS
//! threads. Three properties hold regardless of `--jobs`:
//!
//! * **Determinism** — cells may *complete* in any order, but results
//!   are assembled in submission (canonical) order, so everything the
//!   binary prints on stdout is byte-identical to a `--jobs 1` run.
//! * **Caching** — each cell's full configuration is serialized and
//!   digested; the result is stored content-addressed under
//!   `results/cache/<digest>.json`. A warm-cache sweep executes zero
//!   cells. `--no-cache` bypasses both lookup and store.
//! * **Progress** — per-cell start/finish/timing lines go to stderr
//!   (never stdout), so live feedback does not perturb captured
//!   artifacts.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use scalecheck_cluster::RunReport;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Default cache directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// How a sweep executes: parallelism and caching.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads (`--jobs N`; default: all cores).
    pub jobs: usize,
    /// Whether to consult and fill the on-disk result cache
    /// (`--no-cache` disables).
    pub use_cache: bool,
    /// Where cached cell results live.
    pub cache_dir: PathBuf,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            use_cache: true,
            cache_dir: PathBuf::from(DEFAULT_CACHE_DIR),
        }
    }
}

impl SweepOptions {
    /// Parses `--jobs N` and `--no-cache` from an argument list.
    /// Defaults: all cores, cache on.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut opts = SweepOptions::default();
        if let Some(j) = crate::flag_value(args, "--jobs")? {
            let jobs: usize = j
                .parse()
                .map_err(|_| format!("--jobs expects a positive integer, got '{j}'"))?;
            if jobs == 0 {
                return Err("--jobs must be at least 1".to_string());
            }
            opts.jobs = jobs;
        }
        if crate::has_flag(args, "--no-cache") {
            opts.use_cache = false;
        }
        Ok(opts)
    }
}

/// One independent unit of sweep work.
pub struct Cell<R> {
    /// Label for progress lines, e.g. `c3831 N=64 Real`.
    pub label: String,
    /// The cell's *complete* configuration as a serializable value;
    /// its digest is the cache key, so it must capture everything that
    /// determines the result.
    pub key: serde_json::Value,
    /// Executes the cell. Must build all state internally (own engine,
    /// own cluster) — it runs on an arbitrary worker thread.
    pub run: Box<dyn FnOnce() -> R + Send>,
}

impl<R> Cell<R> {
    /// Builds a cell from a label, a serializable config, and a runner.
    /// The key is taken by value so call sites can clone a config into
    /// the key and move the original into the runner.
    pub fn new<K: Serialize>(
        label: impl Into<String>,
        key: K,
        run: impl FnOnce() -> R + Send + 'static,
    ) -> Self {
        Cell {
            label: label.into(),
            key: serde_json::to_value(&key).expect("cell key serializes"),
            run: Box::new(run),
        }
    }
}

/// Builds a cell that runs a core [`scalecheck::CellSpec`]: the spec's
/// serialized form is the cache key, its `run` is the work.
pub fn spec_cell(label: impl Into<String>, spec: scalecheck::CellSpec) -> Cell<RunReport> {
    Cell {
        label: label.into(),
        key: serde_json::to_value(&spec).expect("cell spec serializes"),
        run: Box::new(move || spec.run()),
    }
}

/// The outcome of a sweep: results in canonical order plus execution
/// accounting.
pub struct SweepOutcome<R> {
    /// One result per submitted cell, in submission order.
    pub results: Vec<R>,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells served from the on-disk cache.
    pub cached: usize,
}

/// 128-bit FNV-1a over the canonical serialized cell configuration —
/// the content address for the cache.
pub fn digest(key: &serde_json::Value) -> String {
    let text = key.to_string();
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for b in text.bytes() {
        h ^= b as u128;
        h = h.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    format!("{h:032x}")
}

fn cache_path(dir: &Path, digest: &str) -> PathBuf {
    dir.join(format!("{digest}.json"))
}

fn cache_load<R: DeserializeOwned>(dir: &Path, digest: &str) -> Option<R> {
    let text = std::fs::read_to_string(cache_path(dir, digest)).ok()?;
    serde_json::from_str(&text).ok()
}

fn cache_store<R: Serialize>(dir: &Path, digest: &str, result: &R) {
    // Cache writes are best-effort: failure to persist must never fail
    // the sweep. Write-then-rename keeps concurrent writers safe.
    let Ok(json) = serde_json::to_string(result) else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = dir.join(format!(".{digest}.tmp.{}", std::process::id()));
    let write = std::fs::File::create(&tmp).and_then(|mut f| f.write_all(json.as_bytes()));
    if write.is_ok() {
        let _ = std::fs::rename(&tmp, cache_path(dir, digest));
    } else {
        let _ = std::fs::remove_file(&tmp);
    }
}

struct Job<R> {
    idx: usize,
    label: String,
    digest: Option<String>,
    run: Box<dyn FnOnce() -> R + Send>,
}

/// Runs `cells` under `opts` and returns their results in submission
/// order.
///
/// Cached cells are resolved up front on the calling thread; the rest
/// are distributed round-robin across per-worker deques. Each worker
/// drains its own deque front-to-back and, when empty, steals from the
/// back of the busiest sibling — long cells at the end of one deque
/// migrate to idle workers instead of serializing the tail.
pub fn run_sweep<R>(cells: Vec<Cell<R>>, opts: &SweepOptions) -> SweepOutcome<R>
where
    R: Serialize + DeserializeOwned + Send + 'static,
{
    let total = cells.len();
    let started = Instant::now();
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let mut cached = 0usize;
    let mut pending: Vec<Job<R>> = Vec::new();

    for (idx, cell) in cells.into_iter().enumerate() {
        let digest = opts.use_cache.then(|| digest(&cell.key));
        if let Some(d) = digest.as_deref() {
            if let Some(result) = cache_load::<R>(&opts.cache_dir, d) {
                eprintln!(
                    "[sweep] {}/{} {}: cache hit ({})",
                    idx + 1,
                    total,
                    cell.label,
                    &d[..12]
                );
                slots[idx] = Some(result);
                cached += 1;
                continue;
            }
        }
        pending.push(Job {
            idx,
            label: cell.label,
            digest,
            run: cell.run,
        });
    }

    let executed = pending.len();
    if executed > 0 {
        let workers = opts.jobs.min(executed).max(1);
        // Per-worker deques, round-robin seeded. Workers steal from the
        // back of sibling deques when their own runs dry.
        let queues: Vec<Arc<Mutex<VecDeque<Job<R>>>>> = (0..workers)
            .map(|_| Arc::new(Mutex::new(VecDeque::new())))
            .collect();
        for (i, job) in pending.into_iter().enumerate() {
            queues[i % workers]
                .lock()
                .expect("queue lock")
                .push_back(job);
        }

        let (tx, rx) = mpsc::channel::<(usize, R)>();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = queues.clone();
                let tx = tx.clone();
                let opts = opts.clone();
                scope.spawn(move || loop {
                    let job = {
                        let own = queues[me].lock().expect("queue lock").pop_front();
                        match own {
                            Some(j) => Some(j),
                            None => steal(&queues, me),
                        }
                    };
                    let Some(job) = job else { break };
                    eprintln!(
                        "[sweep] (w{me}) {}/{} {}: start",
                        job.idx + 1,
                        total,
                        job.label
                    );
                    let t0 = Instant::now();
                    let result = (job.run)();
                    eprintln!(
                        "[sweep] (w{me}) {}/{} {}: done in {:.2}s",
                        job.idx + 1,
                        total,
                        job.label,
                        t0.elapsed().as_secs_f64()
                    );
                    if let Some(d) = job.digest.as_deref() {
                        cache_store(&opts.cache_dir, d, &result);
                    }
                    if tx.send((job.idx, result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (idx, result) in rx {
                slots[idx] = Some(result);
            }
        });
    }

    eprintln!(
        "[sweep] {total} cells: {executed} executed, {cached} cached in {:.2}s",
        started.elapsed().as_secs_f64()
    );
    SweepOutcome {
        results: slots
            .into_iter()
            .map(|s| s.expect("every cell produced a result"))
            .collect(),
        executed,
        cached,
    }
}

/// Steals a job from the back of the fullest sibling deque.
fn steal<R>(queues: &[Arc<Mutex<VecDeque<Job<R>>>>], me: usize) -> Option<Job<R>> {
    let victim = queues
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != me)
        .max_by_key(|(_, q)| q.lock().map(|q| q.len()).unwrap_or(0))?
        .0;
    queues[victim].lock().expect("queue lock").pop_back()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    fn opts(jobs: usize, dir: &Path) -> SweepOptions {
        SweepOptions {
            jobs,
            use_cache: true,
            cache_dir: dir.to_path_buf(),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scalecheck-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
    struct Out {
        x: u64,
    }

    fn squares(n: u64) -> Vec<Cell<Out>> {
        (0..n)
            .map(|i| Cell::new(format!("sq {i}"), &("square", i), move || Out { x: i * i }))
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let dir = temp_dir("order");
        let out = run_sweep(squares(17), &opts(4, &dir));
        assert_eq!(out.executed, 17);
        assert_eq!(out.cached, 0);
        let xs: Vec<u64> = out.results.iter().map(|o| o.x).collect();
        assert_eq!(xs, (0..17).map(|i| i * i).collect::<Vec<_>>());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_cache_executes_zero_cells() {
        let dir = temp_dir("warm");
        let cold = run_sweep(squares(8), &opts(4, &dir));
        assert_eq!(cold.executed, 8);
        let warm = run_sweep(squares(8), &opts(4, &dir));
        assert_eq!(warm.executed, 0);
        assert_eq!(warm.cached, 8);
        assert_eq!(
            warm.results.iter().map(|o| o.x).collect::<Vec<_>>(),
            cold.results.iter().map(|o| o.x).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_bypasses_lookup_and_store() {
        let dir = temp_dir("nocache");
        let mut o = opts(2, &dir);
        o.use_cache = false;
        let out = run_sweep(squares(4), &o);
        assert_eq!(out.executed, 4);
        assert!(!dir.exists(), "no-cache sweep must not write a cache");
        let out2 = run_sweep(squares(4), &o);
        assert_eq!(out2.executed, 4, "no-cache sweep must not read a cache");
    }

    #[test]
    fn distinct_keys_get_distinct_digests() {
        let a = digest(&serde_json::to_value(&("square", 1u64)).unwrap());
        let b = digest(&serde_json::to_value(&("square", 2u64)).unwrap());
        assert_ne!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn jobs_flag_parses_and_rejects_garbage() {
        let args: Vec<String> = ["--jobs", "3", "--no-cache"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = SweepOptions::from_args(&args).expect("valid flags");
        assert_eq!(o.jobs, 3);
        assert!(!o.use_cache);

        let bad: Vec<String> = ["--jobs", "many"].iter().map(|s| s.to_string()).collect();
        assert!(SweepOptions::from_args(&bad).is_err());
        let zero: Vec<String> = ["--jobs", "0"].iter().map(|s| s.to_string()).collect();
        assert!(SweepOptions::from_args(&zero).is_err());
    }
}
