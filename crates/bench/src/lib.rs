//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary in this crate regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index) and prints an aligned
//! text table plus, optionally, machine-readable JSON.

#![forbid(unsafe_code)]

pub mod sweep;

use scalecheck_cluster::{RunReport, ScenarioConfig};
use serde_json::json;

pub use sweep::{run_sweep, spec_cell, Cell, SweepOptions, SweepOutcome};

/// Builds the scenario for a named bug at a given scale, or explains
/// why the bug id is unknown.
pub fn try_bug_scenario(bug: &str, n: usize, seed: u64) -> Result<ScenarioConfig, String> {
    match bug {
        "c3831" => Ok(ScenarioConfig::c3831(n, seed)),
        "c3881" => Ok(ScenarioConfig::c3881(n, seed)),
        "c5456" => Ok(ScenarioConfig::c5456(n, seed)),
        "c6127" => Ok(ScenarioConfig::c6127(n, seed)),
        other => Err(format!(
            "unknown bug id '{other}' (use c3831|c3881|c5456|c6127)"
        )),
    }
}

/// Builds the scenario for a named bug at a given scale.
///
/// # Panics
///
/// Panics on an unknown bug id; binaries should prefer
/// [`try_bug_scenario`] and exit through [`exit_usage`].
pub fn bug_scenario(bug: &str, n: usize, seed: u64) -> ScenarioConfig {
    try_bug_scenario(bug, n, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Prints an error plus usage to stderr and exits with status 2 — the
/// bad-CLI-arguments path for every binary in this crate.
pub fn exit_usage(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{usage}");
    std::process::exit(2);
}

/// Parses `--key value` into a `T`, distinguishing "absent" (`Ok(None)`)
/// from "present but malformed" (`Err`).
pub fn parse_flag<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String> {
    match flag_value(args, key)? {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{key} got invalid value '{raw}'")),
    }
}

/// Parses a comma-separated `--key a,b,c` list, `Ok(None)` if absent.
pub fn parse_list_flag<T: std::str::FromStr>(
    args: &[String],
    key: &str,
) -> Result<Option<Vec<T>>, String> {
    match flag_value(args, key)? {
        None => Ok(None),
        Some(raw) => raw
            .split(',')
            .map(|x| {
                x.trim()
                    .parse()
                    .map_err(|_| format!("{key} got invalid element '{}'", x.trim()))
            })
            .collect::<Result<Vec<T>, String>>()
            .map(Some),
    }
}

/// The scales the paper evaluates (Figure 3 x-axis).
pub const PAPER_SCALES: [usize; 4] = [32, 64, 128, 256];

/// Prints a row of right-aligned cells under a fixed width.
pub fn print_row(cells: &[String], width: usize) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join("  "));
}

/// Renders a run report as a compact JSON value for machine-readable
/// output.
pub fn report_json(label: &str, n: usize, r: &RunReport) -> serde_json::Value {
    json!({
        "series": label,
        "nodes": n,
        "flaps": r.total_flaps,
        "duration_s": r.duration.as_secs_f64(),
        "quiesced": r.quiesced,
        "cpu_utilization": r.cpu_utilization,
        "p99_lateness_ms": r.p99_stage_lateness.as_millis_f64(),
        "memo_hit_rate": r.memo.replay_hit_rate(),
    })
}

/// Parses `--key value` style flags from an argument list.
///
/// `Ok(None)` when the flag is absent; `Err` when the flag is present
/// but trailing with no value to consume.
pub fn flag_value(args: &[String], key: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == key) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{key} expects a value")),
        },
    }
}

/// Whether a bare flag is present.
pub fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_scenarios_resolve() {
        for bug in ["c3831", "c3881", "c5456", "c6127"] {
            let cfg = bug_scenario(bug, 32, 1);
            assert!(cfg.n_nodes == 32);
        }
    }

    #[test]
    #[should_panic(expected = "unknown bug id")]
    fn unknown_bug_panics() {
        bug_scenario("c9999", 32, 1);
    }

    #[test]
    fn unknown_bug_is_a_recoverable_error() {
        let err = try_bug_scenario("c9999", 32, 1).unwrap_err();
        assert!(err.contains("unknown bug id 'c9999'"));
        assert!(err.contains("c3831"), "error should list valid ids");
    }

    #[test]
    fn parse_flag_distinguishes_absent_from_malformed() {
        let args: Vec<String> = ["--nodes", "abc"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_flag::<u64>(&args, "--seed"), Ok(None));
        assert!(parse_flag::<u64>(&args, "--nodes").is_err());
        let ok: Vec<String> = ["--nodes", "64"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_flag::<u64>(&ok, "--nodes"), Ok(Some(64)));
        let list: Vec<String> = ["--scales", "32, 64,128"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_list_flag::<usize>(&list, "--scales"),
            Ok(Some(vec![32, 64, 128]))
        );
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--bug", "c3831", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            flag_value(&args, "--bug").unwrap().as_deref(),
            Some("c3831")
        );
        assert_eq!(flag_value(&args, "--nodes"), Ok(None));
        assert!(has_flag(&args, "--json"));
        assert!(!has_flag(&args, "--quiet"));
        // A trailing flag with no value is an error, not a silent default.
        let trailing: Vec<String> = ["--bug"].iter().map(|s| s.to_string()).collect();
        assert!(flag_value(&trailing, "--bug").is_err());
    }
}
