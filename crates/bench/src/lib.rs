//! Shared harness utilities for the figure/table binaries.
//!
//! Every binary in this crate regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index) and prints an aligned
//! text table plus, optionally, machine-readable JSON.

#![forbid(unsafe_code)]

use scalecheck_cluster::{RunReport, ScenarioConfig};
use serde_json::json;

/// Builds the scenario for a named bug at a given scale.
///
/// # Panics
///
/// Panics on an unknown bug id.
pub fn bug_scenario(bug: &str, n: usize, seed: u64) -> ScenarioConfig {
    match bug {
        "c3831" => ScenarioConfig::c3831(n, seed),
        "c3881" => ScenarioConfig::c3881(n, seed),
        "c5456" => ScenarioConfig::c5456(n, seed),
        "c6127" => ScenarioConfig::c6127(n, seed),
        other => panic!("unknown bug id '{other}' (use c3831|c3881|c5456|c6127)"),
    }
}

/// The scales the paper evaluates (Figure 3 x-axis).
pub const PAPER_SCALES: [usize; 4] = [32, 64, 128, 256];

/// Prints a row of right-aligned cells under a fixed width.
pub fn print_row(cells: &[String], width: usize) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join("  "));
}

/// Renders a run report as a compact JSON value for machine-readable
/// output.
pub fn report_json(label: &str, n: usize, r: &RunReport) -> serde_json::Value {
    json!({
        "series": label,
        "nodes": n,
        "flaps": r.total_flaps,
        "duration_s": r.duration.as_secs_f64(),
        "quiesced": r.quiesced,
        "cpu_utilization": r.cpu_utilization,
        "p99_lateness_ms": r.p99_stage_lateness.as_millis_f64(),
        "memo_hit_rate": r.memo.replay_hit_rate(),
    })
}

/// Parses `--key value` style flags from an argument list.
pub fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare flag is present.
pub fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_scenarios_resolve() {
        for bug in ["c3831", "c3881", "c5456", "c6127"] {
            let cfg = bug_scenario(bug, 32, 1);
            assert!(cfg.n_nodes == 32);
        }
    }

    #[test]
    #[should_panic(expected = "unknown bug id")]
    fn unknown_bug_panics() {
        bug_scenario("c9999", 32, 1);
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--bug", "c3831", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--bug").as_deref(), Some("c3831"));
        assert_eq!(flag_value(&args, "--nodes"), None);
        assert!(has_flag(&args, "--json"));
        assert!(!has_flag(&args, "--quiet"));
    }
}
