//! Regenerates the §2/§3 complexity claims: measured op counts and
//! virtual durations of every pending-range calculator version across
//! scales, with fitted growth exponents.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_complexity
//! ```

use scalecheck_bench::{exit_usage, print_row, run_sweep, Cell, SweepOptions};
use scalecheck_cluster::calibrate::{
    ops_to_duration, NS_PER_OP_FRESH, NS_PER_OP_V1, NS_PER_OP_V2_VNODES,
};
use scalecheck_ring::{
    spread_tokens, FreshRingQuadratic, NodeId, NodeStatus, OpCounter, PendingRangeCalculator,
    RingTable, TopologyChange, V1Cubic, V2Quadratic, V3VnodeAware,
};

const USAGE: &str = "usage: tbl_complexity [--jobs N] [--no-cache]";

const SCALES: [u32; 4] = [32, 64, 128, 256];

fn ring_of(n: u32, p: usize) -> RingTable {
    let mut r = RingTable::new(3);
    for i in 0..n {
        r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), p))
            .expect("fresh ring accepts distinct nodes");
    }
    r
}

fn ops(calc: &dyn PendingRangeCalculator, n: u32, p: usize) -> u64 {
    let ring = ring_of(n, p);
    let change = TopologyChange::Leave { node: NodeId(0) };
    let mut c = OpCounter::new();
    calc.calculate(&ring, &[change], &mut c);
    c.ops()
}

fn bootstrap_ops(n: u32) -> u64 {
    // C6127: fresh ring, all nodes joining at once (M = N).
    let ring = RingTable::new(3);
    let changes: Vec<TopologyChange> = (0..n)
        .map(|i| TopologyChange::Join {
            node: NodeId(i),
            tokens: spread_tokens(NodeId(i), 1),
        })
        .collect();
    let mut c = OpCounter::new();
    FreshRingQuadratic.calculate(&ring, &changes, &mut c);
    c.ops()
}

fn row_ops(version: &str, p: usize) -> Vec<u64> {
    SCALES
        .iter()
        .map(|&n| match version {
            "v1-cubic" => ops(&V1Cubic, n, p),
            "v2-quadratic" | "v2-quad+vnode" => ops(&V2Quadratic, n, p),
            "v3-vnode" => ops(&V3VnodeAware, n, p),
            "fresh-boot" => bootstrap_ops(n),
            other => unreachable!("unknown calculator row {other}"),
        })
        .collect()
}

fn exponent(o1: u64, o2: u64) -> f64 {
    (o2 as f64 / o1 as f64).log2()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));

    let rows: [(&str, usize, u64); 5] = [
        ("v1-cubic", 1, NS_PER_OP_V1),
        ("v2-quadratic", 1, NS_PER_OP_V1),
        ("v2-quad+vnode", 32, NS_PER_OP_V2_VNODES),
        ("v3-vnode", 32, NS_PER_OP_V2_VNODES),
        ("fresh-boot", 1, NS_PER_OP_FRESH),
    ];

    // One cell per calculator version: its op counts at every scale.
    let cells: Vec<Cell<Vec<u64>>> = rows
        .iter()
        .map(|&(name, p, _)| {
            Cell::new(
                format!("t-complexity {name}"),
                ("tbl_complexity-ops", name, p, SCALES),
                move || row_ops(name, p),
            )
        })
        .collect();
    let out = run_sweep(cells, &opts);

    println!("Complexity of the pending-range calculator versions");
    println!("(ops for one topology change; duration via calibrated ns/op)\n");

    print_row(
        &[
            "version".into(),
            "P".into(),
            "N=32".into(),
            "N=64".into(),
            "N=128".into(),
            "N=256".into(),
            "exp".into(),
            "t@256".into(),
        ],
        12,
    );

    for ((name, p, ns), o) in rows.iter().zip(&out.results) {
        let exp = (exponent(o[0], o[1]) + exponent(o[1], o[2]) + exponent(o[2], o[3])) / 3.0;
        let t256 = ops_to_duration(o[3], *ns);
        print_row(
            &[
                (*name).into(),
                p.to_string(),
                o[0].to_string(),
                o[1].to_string(),
                o[2].to_string(),
                o[3].to_string(),
                format!("{exp:.2}"),
                format!("{t256}"),
            ],
            12,
        );
    }

    println!();
    println!("paper envelope check (S5): offending-block durations 0.001s-4s:");
    let d_lo = ops_to_duration(ops(&V1Cubic, 32, 1), NS_PER_OP_V1);
    let d_hi = ops_to_duration(ops(&V1Cubic, 256, 1), NS_PER_OP_V1);
    println!("  v1 ranges {d_lo} (N=32) .. {d_hi} (N=256)");
}
