//! Regenerates the §2/§3 complexity claims: measured op counts and
//! virtual durations of every pending-range calculator version across
//! scales, with fitted growth exponents.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_complexity
//! ```

use scalecheck_bench::print_row;
use scalecheck_cluster::calibrate::{
    ops_to_duration, NS_PER_OP_FRESH, NS_PER_OP_V1, NS_PER_OP_V2_VNODES,
};
use scalecheck_ring::{
    spread_tokens, FreshRingQuadratic, NodeId, NodeStatus, OpCounter, PendingRangeCalculator,
    RingTable, TopologyChange, V1Cubic, V2Quadratic, V3VnodeAware,
};

fn ring_of(n: u32, p: usize) -> RingTable {
    let mut r = RingTable::new(3);
    for i in 0..n {
        r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), p))
            .unwrap();
    }
    r
}

fn ops(calc: &dyn PendingRangeCalculator, n: u32, p: usize) -> u64 {
    let ring = ring_of(n, p);
    let change = TopologyChange::Leave { node: NodeId(0) };
    let mut c = OpCounter::new();
    calc.calculate(&ring, &[change], &mut c);
    c.ops()
}

fn bootstrap_ops(n: u32) -> u64 {
    // C6127: fresh ring, all nodes joining at once (M = N).
    let ring = RingTable::new(3);
    let changes: Vec<TopologyChange> = (0..n)
        .map(|i| TopologyChange::Join {
            node: NodeId(i),
            tokens: spread_tokens(NodeId(i), 1),
        })
        .collect();
    let mut c = OpCounter::new();
    FreshRingQuadratic.calculate(&ring, &changes, &mut c);
    c.ops()
}

fn exponent(o1: u64, o2: u64) -> f64 {
    (o2 as f64 / o1 as f64).log2()
}

fn main() {
    println!("Complexity of the pending-range calculator versions");
    println!("(ops for one topology change; duration via calibrated ns/op)\n");

    print_row(
        &[
            "version".into(),
            "P".into(),
            "N=32".into(),
            "N=64".into(),
            "N=128".into(),
            "N=256".into(),
            "exp".into(),
            "t@256".into(),
        ],
        12,
    );

    type OpsFn = Box<dyn Fn(u32) -> u64>;
    let rows: Vec<(&str, usize, OpsFn, u64)> = vec![
        (
            "v1-cubic",
            1,
            Box::new(|n| ops(&V1Cubic, n, 1)),
            NS_PER_OP_V1,
        ),
        (
            "v2-quadratic",
            1,
            Box::new(|n| ops(&V2Quadratic, n, 1)),
            NS_PER_OP_V1,
        ),
        (
            "v2-quad+vnode",
            32,
            Box::new(|n| ops(&V2Quadratic, n, 32)),
            NS_PER_OP_V2_VNODES,
        ),
        (
            "v3-vnode",
            32,
            Box::new(|n| ops(&V3VnodeAware, n, 32)),
            NS_PER_OP_V2_VNODES,
        ),
        ("fresh-boot", 1, Box::new(bootstrap_ops), NS_PER_OP_FRESH),
    ];

    for (name, p, f, ns) in rows {
        let o: Vec<u64> = [32u32, 64, 128, 256].iter().map(|&n| f(n)).collect();
        let exp = (exponent(o[0], o[1]) + exponent(o[1], o[2]) + exponent(o[2], o[3])) / 3.0;
        let t256 = ops_to_duration(o[3], ns);
        print_row(
            &[
                name.into(),
                p.to_string(),
                o[0].to_string(),
                o[1].to_string(),
                o[2].to_string(),
                o[3].to_string(),
                format!("{exp:.2}"),
                format!("{t256}"),
            ],
            12,
        );
    }

    println!();
    println!("paper envelope check (S5): offending-block durations 0.001s-4s:");
    let d_lo = ops_to_duration(ops(&V1Cubic, 32, 1), NS_PER_OP_V1);
    let d_hi = ops_to_duration(ops(&V1Cubic, 256, 1), NS_PER_OP_V1);
    println!("  v1 ranges {d_lo} (N=32) .. {d_hi} (N=256)");
}
