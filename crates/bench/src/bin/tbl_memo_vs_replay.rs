//! Regenerates the §8 memoization-vs-replay comparison: "for 256-node
//! colocation, the memoization time for the bugs we reproduced takes
//! between 7 to 125 minutes while the replay time is only between 4 to
//! 15 minutes, similar to the real deployments."
//!
//! The memoization run is a basic-colocation run (CPU contention
//! stretches it); the PIL replay sleeps instead of computing, so it
//! finishes in about real-scale time.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_memo_vs_replay -- --nodes 128
//! ```

use scalecheck::{memoize, replay, run_real, COLO_CORES};
use scalecheck_bench::{
    exit_usage, parse_flag, print_row, run_sweep, try_bug_scenario, Cell, SweepOptions,
};
use scalecheck_cluster::RunReport;

const USAGE: &str = "usage: tbl_memo_vs_replay [--nodes N] [--seed N] [--jobs N] [--no-cache]";

const BUGS: [&str; 3] = ["c3831", "c3881", "c5456"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let n: usize = parse_flag(&args, "--nodes")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(256);
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);

    // Two cells per bug: the real run, and the memoize+replay pair
    // (which must share one memo database, so they form one cell).
    let mut cells: Vec<Cell<Vec<RunReport>>> = Vec::new();
    for bug in BUGS {
        let cfg = try_bug_scenario(bug, n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e));
        let real_cfg = cfg.clone();
        cells.push(Cell::new(
            format!("t-memo {bug} real"),
            ("tbl_memo_vs_replay-real", cfg.clone()),
            move || vec![run_real(&real_cfg)],
        ));
        let key = ("tbl_memo_vs_replay-memo-replay", cfg.clone());
        cells.push(Cell::new(
            format!("t-memo {bug} memoize+replay"),
            key,
            move || {
                let memo = memoize(&cfg, COLO_CORES);
                let rep = replay(&cfg, COLO_CORES, &memo);
                vec![memo.report, rep]
            },
        ));
    }
    let out = run_sweep(cells, &opts);

    println!("Memoization vs replay time at {n}-node colocation (virtual minutes)");
    println!("(paper S8: memoization 7-125 min, replay 4-15 min ~ real deployment)\n");
    print_row(
        &[
            "bug".into(),
            "real".into(),
            "memoize".into(),
            "replay".into(),
            "memo/replay".into(),
            "replay~real".into(),
        ],
        12,
    );

    for (i, bug) in BUGS.iter().enumerate() {
        let real = &out.results[2 * i][0];
        let memo_report = &out.results[2 * i + 1][0];
        let rep = &out.results[2 * i + 1][1];
        let mins = |d: scalecheck_sim::SimDuration| d.as_secs_f64() / 60.0;
        print_row(
            &[
                (*bug).into(),
                format!("{:.1}m", mins(real.duration)),
                format!("{:.1}m", mins(memo_report.duration)),
                format!("{:.1}m", mins(rep.duration)),
                format!(
                    "{:.1}x",
                    memo_report.duration.as_secs_f64() / rep.duration.as_secs_f64()
                ),
                format!(
                    "{:.2}x",
                    rep.duration.as_secs_f64() / real.duration.as_secs_f64()
                ),
            ],
            12,
        );
    }
    println!();
    println!("memoization is a one-time cost; the replay can be repeated cheaply");
    println!("as many times as debugging requires (S8).");
}
