//! Regenerates the §8 memoization-vs-replay comparison: "for 256-node
//! colocation, the memoization time for the bugs we reproduced takes
//! between 7 to 125 minutes while the replay time is only between 4 to
//! 15 minutes, similar to the real deployments."
//!
//! The memoization run is a basic-colocation run (CPU contention
//! stretches it); the PIL replay sleeps instead of computing, so it
//! finishes in about real-scale time.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_memo_vs_replay -- --nodes 128
//! ```

use scalecheck::{memoize, replay, run_real, COLO_CORES};
use scalecheck_bench::{bug_scenario, flag_value, print_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = flag_value(&args, "--nodes")
        .map(|s| s.parse().unwrap())
        .unwrap_or(256);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().unwrap())
        .unwrap_or(1);

    println!("Memoization vs replay time at {n}-node colocation (virtual minutes)");
    println!("(paper S8: memoization 7-125 min, replay 4-15 min ~ real deployment)\n");
    print_row(
        &[
            "bug".into(),
            "real".into(),
            "memoize".into(),
            "replay".into(),
            "memo/replay".into(),
            "replay~real".into(),
        ],
        12,
    );

    for bug in ["c3831", "c3881", "c5456"] {
        let cfg = bug_scenario(bug, n, seed);
        eprintln!("[t-memo] {bug}: real ...");
        let real = run_real(&cfg);
        eprintln!("[t-memo] {bug}: memoize ...");
        let memo = memoize(&cfg, COLO_CORES);
        eprintln!("[t-memo] {bug}: replay ...");
        let rep = replay(&cfg, COLO_CORES, &memo);
        let mins = |d: scalecheck_sim::SimDuration| d.as_secs_f64() / 60.0;
        print_row(
            &[
                bug.into(),
                format!("{:.1}m", mins(real.duration)),
                format!("{:.1}m", mins(memo.report.duration)),
                format!("{:.1}m", mins(rep.duration)),
                format!(
                    "{:.1}x",
                    memo.report.duration.as_secs_f64() / rep.duration.as_secs_f64()
                ),
                format!(
                    "{:.2}x",
                    rep.duration.as_secs_f64() / real.duration.as_secs_f64()
                ),
            ],
            12,
        );
    }
    println!();
    println!("memoization is a one-time cost; the replay can be repeated cheaply");
    println!("as many times as debugging requires (S8).");
}
