//! Regenerates the §2/§3 bug-study aggregates: per-system counts, the
//! 47 %/53 % root-cause split, fix times, and protocol diversity.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_bugstudy
//! ```

use scalecheck_bench::{exit_usage, print_row, SweepOptions};
use scalecheck_bugstudy::{bugs, stats};

const USAGE: &str = "usage: tbl_bugstudy [--jobs N] [--no-cache]";

fn main() {
    // A static dataset: nothing to fan out, but the shared sweep flags
    // are still validated so every binary speaks the same CLI.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _ = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));

    let all = bugs();
    let s = stats(&all);

    println!("The scalability-bug study (38 bugs; paper S2-S3)\n");

    println!("bugs per system (paper: 9 Cassandra, 5 Couchbase, 2 Hadoop, 9 HBase, 11 HDFS, 1 Riak, 1 Voldemort):");
    print_row(&["system".into(), "bugs".into()], 12);
    for (sys, count) in &s.per_system {
        print_row(&[sys.clone(), count.to_string()], 12);
    }

    println!();
    println!(
        "root causes: {:.0}% scale-dependent CPU-intensive computation, {:.0}% serialized O(N) operations",
        s.cpu_fraction * 100.0,
        s.serialized_fraction * 100.0
    );
    println!(
        "time to fix: mean {:.0} days (~1 month), max {} days (~5 months)",
        s.mean_days_to_fix, s.max_days_to_fix
    );
    println!(
        "{} of {} bugs only manifest above 100 nodes — 100-node testing is not enough",
        s.manifest_above_100, s.total
    );

    println!();
    println!("protocols the bugs linger in (S3: 'diverse protocols'):");
    print_row(&["protocol".into(), "bugs".into()], 14);
    for (proto, count) in &s.per_protocol {
        print_row(&[proto.clone(), count.to_string()], 14);
    }

    println!();
    println!("named Cassandra lineage (documented public issues):");
    for b in all.iter().filter(|b| !b.synthetic) {
        println!("  {:<16} {:?} — {}", b.id, b.protocol, b.symptom);
    }
    println!();
    println!(
        "note: the {} unnamed entries are representative synthetic records \
         reproducing the paper's aggregates (marked synthetic in the dataset).",
        all.iter().filter(|b| b.synthetic).count()
    );
}
