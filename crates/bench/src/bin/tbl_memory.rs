//! Regenerates the §6 memory observations:
//!
//! * managed runtimes cost ~70 MB per process, prohibiting colocation of
//!   hundreds of per-process nodes on a 32-GB box;
//! * the rebalance protocol over-allocates `(N-1)·P·1.3 MB` partition
//!   services per node while only `P·1.3 MB` is eventually needed;
//! * with N-node colocation, every per-node overhead is amplified N
//!   times.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_memory
//! ```

use scalecheck::colocation_memory_demand;
use scalecheck_bench::{exit_usage, print_row, run_sweep, Cell, SweepOptions};
use scalecheck_cluster::{
    run_scenario, AllocStrategy, CalcIo, DeploymentMode, RunReport, ScenarioConfig, Workload,
};
use scalecheck_sim::SimDuration;

const USAGE: &str = "usage: tbl_memory [--jobs N] [--no-cache]";

const GIB: f64 = (1u64 << 30) as f64;

const REBALANCE_SCALES: [usize; 3] = [32, 64, 128];

fn gib(b: u64) -> String {
    format!("{:.2}G", b as f64 / GIB)
}

fn rebalance_cfg(n: usize, strategy: AllocStrategy) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n, 1);
    cfg.vnodes = 8;
    cfg.workload = Workload::ScaleOut {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.rescale_window = SimDuration::from_secs(40);
    cfg.workload_end = SimDuration::from_secs(120);
    cfg.max_duration = SimDuration::from_secs(600);
    cfg.memory.rebalance_alloc = Some(strategy);
    cfg.memory.single_process = true;
    cfg.with_deployment(DeploymentMode::Colo { cores: 16 })
        .with_calc_io(CalcIo::Execute)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));

    // Part 2's live runs: one cell per (scale, allocation strategy).
    let mut cells: Vec<Cell<RunReport>> = Vec::new();
    for &n in &REBALANCE_SCALES {
        for strategy in [AllocStrategy::Naive, AllocStrategy::Frugal] {
            let cfg = rebalance_cfg(n, strategy);
            cells.push(Cell::new(
                format!("t-memory N={n} {strategy:?}"),
                ("tbl_memory-rebalance", cfg.clone()),
                move || run_scenario(&cfg),
            ));
        }
    }
    let out = run_sweep(cells, &opts);

    println!("Memory as a colocation bottleneck (S6)\n");

    // Part 1: static demand of runtime overhead + ring tables.
    println!("runtime + ring-table demand on one machine (32 GB capacity):");
    print_row(
        &[
            "nodes".into(),
            "per-process".into(),
            "single-process".into(),
        ],
        16,
    );
    for n in [128usize, 256, 512, 600] {
        let mut cfg = ScenarioConfig::baseline(n, 1);
        cfg.memory.single_process = false;
        let multi = colocation_memory_demand(&cfg, n);
        cfg.memory.single_process = true;
        let single = colocation_memory_demand(&cfg, n);
        print_row(&[n.to_string(), gib(multi), gib(single)], 16);
    }

    // Part 2: the rebalance over-allocation, measured in a live run.
    println!();
    println!("rebalance partition-service allocation during one join (P=8 vnodes):");
    print_row(
        &[
            "nodes".into(),
            "naive (N-1)*P*1.3M".into(),
            "frugal P*1.3M".into(),
            "naive outcome".into(),
        ],
        20,
    );
    for (i, &n) in REBALANCE_SCALES.iter().enumerate() {
        let naive = &out.results[2 * i];
        let frugal = &out.results[2 * i + 1];
        let outcome = if naive.crashed_nodes > 0 {
            format!("{} nodes OOM-crashed", naive.crashed_nodes)
        } else {
            "survived".to_string()
        };
        print_row(
            &[
                n.to_string(),
                gib(naive.mem_peak_bytes),
                gib(frugal.mem_peak_bytes),
                outcome,
            ],
            20,
        );
    }
    println!();
    println!("the naive strategy amplifies per-node waste by N under colocation;");
    println!("space-oblivious code is what makes systems non-scale-checkable (S6).");
}
