//! Diagnostic: run one scenario in one mode and dump the full report.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin diag_run -- --bug c3831 --nodes 128 --mode real
//! ```
//!
//! With `--trace-out PATH` the run records a full observability trace
//! and writes it as Chrome `trace_event` JSON (load it in Perfetto or
//! `chrome://tracing`; the native trace rides along under the
//! `"scalecheck"` key). With `--diverge A.json B.json` no scenario runs:
//! the two traces are loaded and the divergence analyzer attributes
//! where B's virtual time went relative to A.

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, flag_value, parse_flag, run_sweep, spec_cell, try_bug_scenario, SweepOptions,
};

const USAGE: &str = "usage: diag_run [--bug c3831|c3881|c5456|c6127] [--nodes N] \
[--mode real|colo|pil] [--seed N] [--jobs N] [--no-cache] [--trace-out PATH] \
[--diverge TRACE_A TRACE_B]";

/// Reads the two paths following `--diverge` (a two-valued flag;
/// [`flag_value`] handles only single-valued ones).
fn diverge_paths(args: &[String]) -> Option<(String, String)> {
    let i = args.iter().position(|a| a == "--diverge")?;
    match (args.get(i + 1), args.get(i + 2)) {
        (Some(a), Some(b)) => Some((a.clone(), b.clone())),
        _ => exit_usage(USAGE, "--diverge expects two trace paths"),
    }
}

fn load_trace(path: &str) -> scalecheck_obs::Trace {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| exit_usage(USAGE, &format!("read {path}: {e}")));
    scalecheck_obs::from_chrome_json(&text)
        .unwrap_or_else(|e| exit_usage(USAGE, &format!("parse {path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some((path_a, path_b)) = diverge_paths(&args) {
        let a = load_trace(&path_a);
        let b = load_trace(&path_b);
        let report = scalecheck_obs::diverge(&a, &b);
        print!("{}", report.render());
        return;
    }

    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let bug = flag_value(&args, "--bug")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "c3831".to_string());
    let n: usize = parse_flag(&args, "--nodes")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(64);
    let mode = flag_value(&args, "--mode")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "real".to_string());
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);

    let trace_out = flag_value(&args, "--trace-out").unwrap_or_else(|e| exit_usage(USAGE, &e));

    let mut cfg = try_bug_scenario(&bug, n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e));
    if trace_out.is_some() {
        cfg.trace = scalecheck_obs::TraceConfig::enabled();
    }
    let exec_mode = match mode.as_str() {
        "real" => ExecMode::Real,
        "colo" => ExecMode::Colo { cores: COLO_CORES },
        "pil" => ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
        other => exit_usage(
            USAGE,
            &format!("unknown mode '{other}' (use real|colo|pil)"),
        ),
    };

    // One cell: still routed through the sweep so a diagnostic rerun of
    // an already-swept point is a cache hit.
    let out = run_sweep(
        vec![spec_cell(
            format!("diag {bug} N={n} {}", exec_mode.label()),
            CellSpec::new(cfg, exec_mode),
        )],
        &opts,
    );
    let r = &out.results[0];

    println!("bug={bug} n={n} mode={mode}");
    println!("flaps={} recoveries={}", r.total_flaps, r.recoveries);
    println!(
        "duration={:.0}s quiesced={} messages: sent={} delivered={} dropped={}",
        r.duration.as_secs_f64(),
        r.quiesced,
        r.messages_sent,
        r.messages_delivered,
        r.messages_dropped
    );
    println!(
        "calc: invocations={} executed={} cache_hits={} total_compute={:.0}s max={:.2}s",
        r.calc.invocations,
        r.calc.executed,
        r.calc.exec_cache_hits,
        r.calc.total_compute.as_secs_f64(),
        r.calc.max_compute.as_secs_f64()
    );
    println!(
        "memo: hits={} idx={} misses={} hit_rate={:.2} out_of_log={}",
        r.memo.hits,
        r.memo.index_fallbacks,
        r.memo.misses,
        r.memo.replay_hit_rate(),
        r.order_out_of_log
    );
    println!(
        "lateness: max={} p99={} cpu={:.2} peak_runnable={}",
        r.max_stage_lateness, r.p99_stage_lateness, r.cpu_utilization, r.peak_runnable
    );
    println!(
        "client: attempted={} failed={} unavailability={:.4}",
        r.client_ops_attempted,
        r.client_ops_failed,
        r.unavailability()
    );
    let e = &r.engine;
    let pool_total = e.pool_hits + e.pool_misses;
    println!(
        "engine: scheduled={} fired={} cancelled={} pool_hit_rate={:.3}",
        e.scheduled,
        e.fired,
        e.cancelled,
        if pool_total > 0 {
            e.pool_hits as f64 / pool_total as f64
        } else {
            0.0
        }
    );

    if let Some(path) = trace_out {
        let mut trace = r.obs.clone();
        trace.meta.label = format!("{bug}@{n} {}", exec_mode.label());
        let json = scalecheck_obs::to_chrome_json(&trace);
        std::fs::write(&path, json.as_bytes())
            .unwrap_or_else(|e| exit_usage(USAGE, &format!("write {path}: {e}")));
        println!(
            "trace: {} spans, {} instants, {} counter samples -> {path}",
            trace.spans.len(),
            trace.instants.len(),
            trace.counters.len()
        );
    }
}
