//! Diagnostic: run one scenario in one mode and dump the full report.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin diag_run -- --bug c3831 --nodes 128 --mode real
//! ```

use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_bench::{bug_scenario, flag_value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bug = flag_value(&args, "--bug").unwrap_or_else(|| "c3831".to_string());
    let n: usize = flag_value(&args, "--nodes")
        .map(|s| s.parse().unwrap())
        .unwrap_or(64);
    let mode = flag_value(&args, "--mode").unwrap_or_else(|| "real".to_string());
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().unwrap())
        .unwrap_or(1);

    let cfg = bug_scenario(&bug, n, seed);
    let r = match mode.as_str() {
        "real" => run_real(&cfg),
        "colo" => run_colo(&cfg, COLO_CORES),
        "pil" => {
            let memo = memoize(&cfg, COLO_CORES);
            eprintln!(
                "memoize: flaps={} dur={:.0}s calc_inv={} recorded={} order_events={}",
                memo.report.total_flaps,
                memo.report.duration.as_secs_f64(),
                memo.report.calc.invocations,
                memo.db.stats().recorded,
                memo.order.total(),
            );
            replay(&cfg, COLO_CORES, &memo)
        }
        other => panic!("unknown mode {other}"),
    };

    println!("bug={bug} n={n} mode={mode}");
    println!("flaps={} recoveries={}", r.total_flaps, r.recoveries);
    println!(
        "duration={:.0}s quiesced={} messages: sent={} delivered={} dropped={}",
        r.duration.as_secs_f64(),
        r.quiesced,
        r.messages_sent,
        r.messages_delivered,
        r.messages_dropped
    );
    println!(
        "calc: invocations={} executed={} cache_hits={} total_compute={:.0}s max={:.2}s",
        r.calc.invocations,
        r.calc.executed,
        r.calc.exec_cache_hits,
        r.calc.total_compute.as_secs_f64(),
        r.calc.max_compute.as_secs_f64()
    );
    println!(
        "memo: hits={} idx={} misses={} hit_rate={:.2} out_of_log={}",
        r.memo.hits,
        r.memo.index_fallbacks,
        r.memo.misses,
        r.memo.replay_hit_rate(),
        r.order_out_of_log
    );
    println!(
        "lateness: max={} p99={} cpu={:.2} peak_runnable={}",
        r.max_stage_lateness, r.p99_stage_lateness, r.cpu_utilization, r.peak_runnable
    );
    println!(
        "client: attempted={} failed={} unavailability={:.4}",
        r.client_ops_attempted,
        r.client_ops_failed,
        r.unavailability()
    );
}
