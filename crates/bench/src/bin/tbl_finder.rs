//! Regenerates the §5/§7 finder claims: the offending-function finder
//! locates the scale-dependent loop nests (spanning functions, hidden
//! behind workload-specific branches), classifies PIL-safety, and
//! emits the instrumentation plan.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_finder
//! ```

use scalecheck_bench::{exit_usage, print_row, SweepOptions};
use scalecheck_pilfinder::{analyze, cluster_protocol_model, instrument, FinderConfig};

const USAGE: &str = "usage: tbl_finder [--jobs N] [--no-cache]";

fn main() {
    // Static analysis of one model: nothing to fan out, but the shared
    // sweep flags are still validated so every binary speaks the same
    // CLI.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let _ = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));

    let program = cluster_protocol_model();
    program.validate().expect("model valid");
    let report = analyze(&program, FinderConfig::default());

    println!("Offending-function finder over the cluster protocol model (S5, S7)\n");
    print_row(
        &[
            "function".into(),
            "degree".into(),
            "span-loc".into(),
            "pil-safe".into(),
            "why-not".into(),
        ],
        28,
    );
    for name in &report.offending {
        let f = &report.functions[name];
        let why = if f.pil_safe {
            "-".to_string()
        } else {
            f.effects
                .iter()
                .map(|e| format!("{e:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        print_row(
            &[
                f.name.clone(),
                f.degree.to_string(),
                f.span_loc.to_string(),
                f.pil_safe.to_string(),
                why,
            ],
            28,
        );
    }

    println!();
    println!("path conditions (C6127: branches only some workloads exercise):");
    for name in &report.offending {
        for c in &report.functions[name].contributions {
            if !c.conditions.is_empty() {
                println!(
                    "  {name}: {} requires {:?} via {:?}",
                    c.degree, c.conditions, c.chain
                );
            }
        }
    }

    println!();
    println!(
        "instrumentation plan (offending AND PIL-safe): {:?}",
        report.instrumentation_plan
    );
    println!(
        "offending but NOT PIL-safe (restructure first): {:?}",
        report.unsafe_offenders
    );

    // The C6127 span claim: the cubic nest spans many functions/LOC.
    let v1 = &report.functions["calculate_pending_ranges_v1"];
    let deepest = v1
        .contributions
        .iter()
        .map(|c| c.chain.len())
        .max()
        .unwrap_or(0);
    println!();
    println!(
        "C6127-style span: calculate_pending_ranges_v1 nest spans {} functions, {} LOC",
        deepest + 1,
        v1.span_loc
    );

    // Step c: auto-instrumentation of the plan.
    let instrumented = instrument(&program, &report).expect("instrumentable");
    println!();
    println!(
        "auto-instrumentation: {} functions wrapped with input/output/time          recording ({} -> {} functions, still valid: {})",
        report.instrumentation_plan.len(),
        program.functions.len(),
        instrumented.functions.len(),
        instrumented.validate().is_ok()
    );

    // The S4 footnote: lowering the threshold catches O(N) serializations.
    let strict = analyze(
        &program,
        FinderConfig {
            offending_threshold: 1,
        },
    );
    println!(
        "threshold=1 additionally flags {} linear functions (S4 footnote)",
        strict.offending.len() - report.offending.len()
    );
}
