//! Scale table: harness throughput at 256–4096 nodes.
//!
//! The paper's whole premise is that behaviour past the tested scale is
//! where the bugs hide — and that cuts both ways: the checker itself
//! must stay fast enough to *reach* those scales. This table sweeps the
//! baseline decommission scenario across cluster sizes under Colo and
//! SC+PIL, recording **wall-clock** cost per cell (virtual results are
//! deterministic; wall time is what limits how far a cell can go):
//! events fired per wall second, peak tracked memory, and the engine's
//! schedule/fire/pool counters.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_scale
//! ```
//!
//! Writes `BENCH_scale.json` (schema `bench_scale/v1`) and
//! `TBL_scale.txt` in the working directory, and prints the table.
//!
//! Options:
//! * `--scales 256,512,1024,2048` — cluster sizes (default; 4096-node
//!   cells work too, but take on the order of an hour each on one
//!   CPU, so they are opt-in);
//! * `--seed 1` — simulation seed;
//! * `--modes colo,scpil` — which execution modes to sweep (default
//!   both);
//! * `--json-out PATH` / `--table-out PATH` — artifact destinations;
//! * `--no-write` — print only, write no artifact files;
//! * `--smoke` — CI mode: run one 1024-node SC+PIL cell cache-free,
//!   validate the `bench_scale/v1` schema on its row, and fail if the
//!   cell exceeds `--budget-secs` (default 600) of wall clock;
//! * `--jobs N` / `--no-cache` — sweep worker/caching control.
//!
//! Wall times are measured on whatever machine runs the sweep and are
//! *not* deterministic; they ride along inside the sweep cache next to
//! the deterministic `RunReport`, so a warm-cache rerun reproduces the
//! committed artifact byte-for-byte.

use std::time::Instant;

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, flag_value, has_flag, parse_flag, parse_list_flag, run_sweep, Cell, SweepOptions,
};
use scalecheck_cluster::{RunReport, ScenarioConfig};
use serde::{Deserialize, Serialize};

const USAGE: &str = "usage: tbl_scale [--scales 256,512,1024,2048] [--seed N] \
[--modes colo,scpil] [--json-out PATH] [--table-out PATH] [--no-write] \
[--smoke] [--budget-secs N] [--jobs N] [--no-cache]";

/// The schema tag committed artifacts carry.
const SCHEMA: &str = "bench_scale/v1";

/// One executed cell: the deterministic report plus the wall-clock cost
/// of producing it. Cached as a unit so warm-cache reruns keep the
/// originally measured timings.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TimedReport {
    wall_secs: f64,
    report: RunReport,
}

/// The swept scenario: the baseline decommission run under the paper's
/// §6 single-process memory layout. One process overhead paid once
/// instead of per node — without it, colocating ≥512 nodes at 70 MB
/// runtime overhead each blows the 32 GB machine model and the cell
/// measures OOM-crash dynamics instead of harness throughput.
///
/// The virtual horizon is cut from the baseline 900 s to 150 s: a
/// saturated colo machine never passes the all-stages-idle quiescence
/// test, so big cells always run to the cap, and 50 s of steady state
/// past the 100 s workload is plenty for a throughput measurement.
fn scale_scenario(n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n, seed);
    cfg.memory.single_process = true;
    cfg.max_duration = scalecheck_sim::SimDuration::from_secs(150);
    cfg
}

fn all_modes() -> [ExecMode; 2] {
    [
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ]
}

/// Parses the `--modes` selector: a comma-separated subset of
/// `colo` / `scpil`, swept in the order given.
fn parse_modes(spec: &str) -> Result<Vec<ExecMode>, String> {
    spec.split(',')
        .map(|m| match m.trim().to_ascii_lowercase().as_str() {
            "colo" => Ok(ExecMode::Colo { cores: COLO_CORES }),
            "scpil" | "sc+pil" => Ok(ExecMode::ScPil {
                cores: COLO_CORES,
                ordered: false,
            }),
            other => Err(format!("unknown mode '{other}' (expected colo or scpil)")),
        })
        .collect()
}

/// Builds the timed sweep cell for one `(n, mode)` point. The cache key
/// is namespaced so these entries never collide with the plain
/// `RunReport` cells other table binaries store for the same spec.
fn timed_cell(n: usize, seed: u64, mode: ExecMode) -> Cell<TimedReport> {
    let spec = CellSpec::new(scale_scenario(n, seed), mode);
    let key = serde_json::to_value(&(SCHEMA, &spec)).expect("cell key serializes");
    Cell::new(format!("scale N={n} {}", mode.label()), key, move || {
        let t0 = Instant::now();
        let report = spec.run();
        TimedReport {
            wall_secs: t0.elapsed().as_secs_f64(),
            report,
        }
    })
}

/// One `bench_scale/v1` row.
fn row_json(n: usize, mode_label: &str, t: &TimedReport) -> serde_json::Value {
    let r = &t.report;
    let eps = if t.wall_secs > 0.0 {
        r.engine.fired as f64 / t.wall_secs
    } else {
        0.0
    };
    serde_json::json!({
        "nodes": n,
        "mode": mode_label,
        "wall_secs": t.wall_secs,
        "events_per_sec": eps,
        "virtual_secs": r.duration.as_secs_f64(),
        "events_scheduled": r.engine.scheduled,
        "events_fired": r.engine.fired,
        "events_cancelled": r.engine.cancelled,
        "timer_pool_hits": r.engine.pool_hits,
        "timer_pool_misses": r.engine.pool_misses,
        "mem_peak_bytes": r.mem_peak_bytes,
        "messages_sent": r.messages_sent,
        "messages_delivered": r.messages_delivered,
        "total_flaps": r.total_flaps,
        "quiesced": r.quiesced,
    })
}

/// Checks one row against the `bench_scale/v1` contract. Returns the
/// first violation, if any.
fn validate_row(row: &serde_json::Value) -> Result<(), String> {
    let u64_fields = [
        "nodes",
        "events_scheduled",
        "events_fired",
        "events_cancelled",
        "timer_pool_hits",
        "timer_pool_misses",
        "mem_peak_bytes",
        "messages_sent",
        "messages_delivered",
        "total_flaps",
    ];
    for f in u64_fields {
        row.get(f)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("row missing u64 field '{f}'"))?;
    }
    for f in ["wall_secs", "events_per_sec", "virtual_secs"] {
        let v = row
            .get(f)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("row missing numeric field '{f}'"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("row field '{f}' must be finite and >= 0, got {v}"));
        }
    }
    row.get("mode")
        .and_then(|v| v.as_str())
        .ok_or("row missing string field 'mode'".to_string())?;
    row.get("quiesced")
        .and_then(|v| v.as_bool())
        .ok_or("row missing bool field 'quiesced'".to_string())?;
    Ok(())
}

/// Checks a whole document: schema tag, non-empty rows, every row
/// well-formed.
fn validate_doc(doc: &serde_json::Value) -> Result<(), String> {
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some(SCHEMA) => {}
        other => return Err(format!("schema tag must be '{SCHEMA}', got {other:?}")),
    }
    doc.get("seed")
        .and_then(|v| v.as_u64())
        .ok_or("document missing u64 'seed'".to_string())?;
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_array())
        .ok_or("document missing 'rows' array".to_string())?;
    if rows.is_empty() {
        return Err("document has zero rows".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        validate_row(row).map_err(|e| format!("row {i}: {e}"))?;
    }
    Ok(())
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Renders the human table; also what `TBL_scale.txt` holds.
fn render_table(seed: u64, rows: &[(usize, &'static str, TimedReport)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Scale table — baseline decommission, seed {seed}: harness cost per cell"
    );
    let _ = writeln!(
        out,
        "wall = host seconds for the cell; ev/s = engine events fired per wall second\n"
    );
    let mut buf = vec![vec![
        "#Nodes".to_string(),
        "mode".to_string(),
        "wall_s".to_string(),
        "ev/s".to_string(),
        "fired".to_string(),
        "virt_s".to_string(),
        "peak_MiB".to_string(),
        "flaps".to_string(),
    ]];
    for (n, label, t) in rows {
        let r = &t.report;
        let eps = if t.wall_secs > 0.0 {
            r.engine.fired as f64 / t.wall_secs
        } else {
            0.0
        };
        buf.push(vec![
            n.to_string(),
            label.to_string(),
            format!("{:.2}", t.wall_secs),
            format!("{eps:.0}"),
            r.engine.fired.to_string(),
            format!("{:.0}", r.duration.as_secs_f64()),
            format!("{:.1}", mib(r.mem_peak_bytes)),
            r.total_flaps.to_string(),
        ]);
    }
    for cells in buf {
        let line: Vec<String> = cells.iter().map(|c| format!("{c:>9}")).collect();
        let _ = writeln!(out, "{}", line.join(" "));
    }
    out
}

fn smoke(seed: u64, budget_secs: f64) -> ! {
    // One 1024-node SC+PIL cell, always executed (never cache-served):
    // the point is to measure this machine, not to replay a result.
    let n = 1024;
    let mode = ExecMode::ScPil {
        cores: COLO_CORES,
        ordered: false,
    };
    let spec = CellSpec::new(scale_scenario(n, seed), mode);
    eprintln!("[smoke] running N={n} {} ...", mode.label());
    let t0 = Instant::now();
    let report = spec.run();
    let timed = TimedReport {
        wall_secs: t0.elapsed().as_secs_f64(),
        report,
    };
    let doc = serde_json::json!({
        "schema": SCHEMA,
        "seed": seed,
        "scenario": "baseline single-process",
        "rows": [row_json(n, mode.label(), &timed)],
    });
    if let Err(e) = validate_doc(&doc) {
        eprintln!("[smoke] FAIL: schema violation: {e}");
        std::process::exit(1);
    }
    let eps = timed.report.engine.fired as f64 / timed.wall_secs.max(1e-9);
    println!(
        "smoke: N={n} {} wall={:.2}s events/s={:.0} fired={} quiesced={}",
        mode.label(),
        timed.wall_secs,
        eps,
        timed.report.engine.fired,
        timed.report.quiesced,
    );
    if timed.wall_secs > budget_secs {
        eprintln!(
            "[smoke] FAIL: {:.2}s exceeds the {budget_secs:.0}s wall budget",
            timed.wall_secs
        );
        std::process::exit(1);
    }
    println!("smoke: PASS (schema ok, within {budget_secs:.0}s budget)");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![256, 512, 1024, 2048]);
    let json_out = flag_value(&args, "--json-out")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let table_out = flag_value(&args, "--table-out")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "TBL_scale.txt".to_string());
    let no_write = has_flag(&args, "--no-write");
    let budget_secs: f64 = parse_flag(&args, "--budget-secs")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(600.0);
    let modes: Vec<ExecMode> =
        match flag_value(&args, "--modes").unwrap_or_else(|e| exit_usage(USAGE, &e)) {
            Some(spec) => parse_modes(&spec).unwrap_or_else(|e| exit_usage(USAGE, &e)),
            None => all_modes().to_vec(),
        };
    if has_flag(&args, "--smoke") {
        smoke(seed, budget_secs);
    }

    let mut cells = Vec::new();
    for &n in &scales {
        for &mode in &modes {
            cells.push(timed_cell(n, seed, mode));
        }
    }
    let out = run_sweep(cells, &opts);

    let mut rows: Vec<(usize, &'static str, TimedReport)> = Vec::new();
    let mut idx = 0;
    for &n in &scales {
        for mode in &modes {
            rows.push((n, mode.label(), out.results[idx].clone()));
            idx += 1;
        }
    }

    let table = render_table(seed, &rows);
    print!("{table}");

    let doc = serde_json::json!({
        "schema": SCHEMA,
        "seed": seed,
        "scenario": "baseline single-process",
        "rows": rows
            .iter()
            .map(|(n, label, t)| row_json(*n, label, t))
            .collect::<Vec<_>>(),
    });
    validate_doc(&doc).unwrap_or_else(|e| {
        eprintln!("internal error: generated document violates {SCHEMA}: {e}");
        std::process::exit(1);
    });
    if no_write {
        return;
    }
    std::fs::write(&json_out, format!("{doc}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {json_out}: {e}");
        std::process::exit(1);
    });
    std::fs::write(&table_out, &table).unwrap_or_else(|e| {
        eprintln!("cannot write {table_out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {json_out} and {table_out}");
}
