//! Extension experiment: bug C6127 — vnodes don't scale to hundreds of
//! nodes when a large cluster bootstraps from scratch.
//!
//! The paper narrates this bug in §2 (the fresh-ring construction is
//! O(MN²) on a code path only the bootstrap-from-scratch workload
//! reaches) but does not include it in Figure 3 ("the PIL-replaced
//! functions are currently picked and replaced manually"). We reproduce
//! it the same way as the other three.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin fig_c6127
//! ```

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, parse_flag, parse_list_flag, print_row, run_sweep, spec_cell, try_bug_scenario,
    SweepOptions,
};

const USAGE: &str = "usage: fig_c6127 [--scales 32,64,128,256] [--seed N] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![32, 64, 128, 256]);
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);

    const MODES: [ExecMode; 3] = [
        ExecMode::Real,
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ];
    let mut cells = Vec::new();
    for &n in &scales {
        let cfg = try_bug_scenario("c6127", n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e));
        for mode in MODES {
            cells.push(spec_cell(
                format!("c6127 N={n} {}", mode.label()),
                CellSpec::new(cfg.clone(), mode),
            ));
        }
    }
    let out = run_sweep(cells, &opts);

    println!("Extension — c6127: Bootstrap-from-scratch (fresh-ring quadratic path)");
    println!("#flaps observed across the whole cluster\n");
    print_row(
        &[
            "#Nodes".into(),
            "Real".into(),
            "Colo".into(),
            "SC+PIL".into(),
        ],
        10,
    );
    for (i, &n) in scales.iter().enumerate() {
        let real = &out.results[3 * i];
        let colo = &out.results[3 * i + 1];
        let pil = &out.results[3 * i + 2];
        print_row(
            &[
                n.to_string(),
                real.total_flaps.to_string(),
                colo.total_flaps.to_string(),
                pil.total_flaps.to_string(),
            ],
            10,
        );
    }
    println!();
    println!("the quadratic fresh-ring path runs only on this workload — the");
    println!("finder reports the branch condition (see tbl_finder).");
}
