//! Extension experiment: bug C6127 — vnodes don't scale to hundreds of
//! nodes when a large cluster bootstraps from scratch.
//!
//! The paper narrates this bug in §2 (the fresh-ring construction is
//! O(MN²) on a code path only the bootstrap-from-scratch workload
//! reaches) but does not include it in Figure 3 ("the PIL-replaced
//! functions are currently picked and replaced manually"). We reproduce
//! it the same way as the other three.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin fig_c6127
//! ```

use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_bench::{bug_scenario, flag_value, print_row};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scales: Vec<usize> = flag_value(&args, "--scales")
        .map(|s| s.split(',').map(|x| x.trim().parse().unwrap()).collect())
        .unwrap_or_else(|| vec![32, 64, 128, 256]);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().unwrap())
        .unwrap_or(1);

    println!("Extension — c6127: Bootstrap-from-scratch (fresh-ring quadratic path)");
    println!("#flaps observed across the whole cluster\n");
    print_row(
        &[
            "#Nodes".into(),
            "Real".into(),
            "Colo".into(),
            "SC+PIL".into(),
        ],
        10,
    );
    for &n in &scales {
        let cfg = bug_scenario("c6127", n, seed);
        eprintln!("[c6127] N={n}: real...");
        let real = run_real(&cfg);
        eprintln!("[c6127] N={n}: colo...");
        let colo = run_colo(&cfg, COLO_CORES);
        eprintln!("[c6127] N={n}: sc+pil...");
        let memo = memoize(&cfg, COLO_CORES);
        let pil = replay(&cfg, COLO_CORES, &memo);
        print_row(
            &[
                n.to_string(),
                real.total_flaps.to_string(),
                colo.total_flaps.to_string(),
                pil.total_flaps.to_string(),
            ],
            10,
        );
    }
    println!();
    println!("the quadratic fresh-ring path runs only on this workload — the");
    println!("finder reports the branch condition (see tbl_finder).");
}
