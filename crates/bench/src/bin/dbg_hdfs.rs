//! Debug helper: run the HDFS-like bug scenario once and dump the raw
//! report.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin dbg_hdfs -- 192 [--jobs N] [--no-cache]
//! ```

use scalecheck_bench::{exit_usage, run_sweep, Cell, SweepOptions};
use scalecheck_hdfslike::{run_hdfs, HdfsConfig};

const USAGE: &str = "usage: dbg_hdfs [N] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let n: usize = match args.first().filter(|a| !a.starts_with("--")) {
        None => 192,
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| exit_usage(USAGE, &format!("invalid node count '{raw}'"))),
    };
    let cfg = HdfsConfig::bug(n, 1);
    let out = run_sweep(
        vec![Cell::new(
            format!("dbg-hdfs N={n}"),
            ("dbg_hdfs-real", cfg.clone()),
            move || run_hdfs(&cfg),
        )],
        &opts,
    );
    println!("{:#?}", out.results[0]);
}
