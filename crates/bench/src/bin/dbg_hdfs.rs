use scalecheck_hdfslike::{run_hdfs, HdfsConfig};
fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(192);
    let r = run_hdfs(&HdfsConfig::bug(n, 1));
    println!("{r:#?}");
}
