//! Regenerates the paper's Figure 1: test duration under real-scale
//! testing (t), basic colocation (≈ N·t on one core), and PIL replay
//! (t+e).
//!
//! One CPU-heavy protocol round is run at each N under the three
//! setups; a 1-core colocation machine makes the N·t serialization of
//! Figure 1b explicit.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin fig1_testtime
//! ```

use scalecheck_bench::{exit_usage, parse_list_flag, print_row, run_sweep, Cell, SweepOptions};
use scalecheck_cluster::{run_scenario, DeploymentMode, RunReport, ScenarioConfig, Workload};
use scalecheck_memo::OrderRecorder;
use scalecheck_sim::SimDuration;

const USAGE: &str = "usage: fig1_testtime [--scales 8,16,32] [--jobs N] [--no-cache]";

fn scenario(n: usize) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::c3831(n, 1);
    // Figure 1 assumes a CPU-intensive protocol; at these small scales
    // the real calibration is too cheap to contend, so the per-op cost
    // is inflated to make each node's computation a few seconds — the
    // figure's premise, not its conclusion.
    cfg.ns_per_op = 120_000;
    // One decommission: a single burst of expensive computation.
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(30),
    };
    cfg.workload_end = SimDuration::from_secs(80);
    cfg.max_duration = SimDuration::from_secs(3600);
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![8, 16, 32]);

    // Three cells per scale: real, 1-core colocation, and the ordered
    // PIL replay on the 1-core box (memoized on 16 cores).
    let mut cells: Vec<Cell<RunReport>> = Vec::new();
    for &n in &scales {
        let cfg = scenario(n);
        let real_cfg = cfg.clone().with_deployment(DeploymentMode::Real);
        cells.push(Cell::new(
            format!("fig1 N={n} Real"),
            ("fig1-real", real_cfg.clone()),
            move || run_scenario(&real_cfg),
        ));
        let colo_cfg = cfg
            .clone()
            .with_deployment(DeploymentMode::Colo { cores: 1 });
        cells.push(Cell::new(
            format!("fig1 N={n} Colo(1)"),
            ("fig1-colo", colo_cfg.clone()),
            move || run_scenario(&colo_cfg),
        ));
        cells.push(Cell::new(
            format!("fig1 N={n} PIL(1)"),
            ("fig1-pil-ordered-1core-memo16", cfg.clone()),
            move || {
                // Memoize (on 16 cores to keep the one-time cost sane),
                // then PIL-replay on the 1-core box: the PIL sleeps do
                // not occupy the core, so the replay tracks Real.
                let memo = scalecheck::memoize(&cfg, 16);
                let mut replay_cfg = cfg
                    .clone()
                    .with_deployment(DeploymentMode::PilReplay { cores: 1 })
                    .with_calc_io(scalecheck_cluster::CalcIo::Replay);
                replay_cfg.order_enforcement = true;
                let order: OrderRecorder = memo.order.clone();
                scalecheck_cluster::run_scenario_with_db(
                    &replay_cfg,
                    Some(memo.db.clone()),
                    Some(order),
                )
                .0
            },
        ));
    }
    let out = run_sweep(cells, &opts);

    println!("Figure 1 — test completion time by approach (1-core colocation)");
    println!("(virtual seconds until the protocol quiesces)\n");
    print_row(
        &[
            "#Nodes".into(),
            "Real t".into(),
            "Colo".into(),
            "~N*t".into(),
            "PIL t+e".into(),
        ],
        10,
    );

    for (i, &n) in scales.iter().enumerate() {
        let real = &out.results[3 * i];
        let colo = &out.results[3 * i + 1];
        let pil = &out.results[3 * i + 2];
        // "t" here is the active settling time after the workload
        // begins; quiescent runs end at different absolute points, so
        // report the full run duration.
        print_row(
            &[
                n.to_string(),
                format!("{:.0}s", real.duration.as_secs_f64()),
                format!("{:.0}s", colo.duration.as_secs_f64()),
                format!(
                    "{:.1}x",
                    colo.duration.as_secs_f64() / real.duration.as_secs_f64()
                ),
                format!("{:.0}s", pil.duration.as_secs_f64()),
            ],
            10,
        );
    }
    println!();
    println!("Colo on one core stretches the run (towards N*t for CPU-bound work);");
    println!("PIL replay finishes in about the real-scale time (t+e).");
}
