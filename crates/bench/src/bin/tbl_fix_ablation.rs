//! Fix ablation: re-run each bug workload with the historical fix in
//! place and show the flapping disappears — the §2 narrative that every
//! fix removed the symptom at the scale that exposed it (until the next
//! bug).
//!
//! Also ablates the harness itself: the FIFO-cores CPU model against
//! the offline processor-sharing model, and PIL replay with and without
//! order enforcement.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_fix_ablation -- --nodes 256
//! ```

use scalecheck::{memoize, run_real, COLO_CORES};
use scalecheck_bench::{bug_scenario, flag_value, print_row};
use scalecheck_cluster::{CalcIo, CalcVersion, DeploymentMode, LockingMode};
use scalecheck_sim::{ps_completions, SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = flag_value(&args, "--nodes")
        .map(|s| s.parse().unwrap())
        .unwrap_or(256);
    let seed = 1;

    println!("Fix ablation at N={n}: buggy vs fixed implementation (Real deployment)\n");
    print_row(
        &[
            "bug".into(),
            "buggy".into(),
            "flaps".into(),
            "fixed".into(),
            "flaps".into(),
        ],
        18,
    );

    // C3831: cubic -> quadratic fix.
    {
        let cfg = bug_scenario("c3831", n, seed);
        eprintln!("[ablation] c3831 buggy ...");
        let buggy = run_real(&cfg);
        let mut fixed_cfg = cfg.clone();
        fixed_cfg.calculator = CalcVersion::V2Quadratic;
        eprintln!("[ablation] c3831 fixed ...");
        let fixed = run_real(&fixed_cfg);
        print_row(
            &[
                "c3831".into(),
                "v1-cubic".into(),
                buggy.total_flaps.to_string(),
                "v2-quadratic".into(),
                fixed.total_flaps.to_string(),
            ],
            18,
        );
    }

    // C3881: v2-under-vnodes -> v3 redesign.
    {
        let cfg = bug_scenario("c3881", n, seed);
        eprintln!("[ablation] c3881 buggy ...");
        let buggy = run_real(&cfg);
        let mut fixed_cfg = cfg.clone();
        fixed_cfg.calculator = CalcVersion::V3VnodeAware;
        eprintln!("[ablation] c3881 fixed ...");
        let fixed = run_real(&fixed_cfg);
        print_row(
            &[
                "c3881".into(),
                "v2+vnodes".into(),
                buggy.total_flaps.to_string(),
                "v3-vnode-aware".into(),
                fixed.total_flaps.to_string(),
            ],
            18,
        );
    }

    // C5456: coarse lock -> snapshot (clone the ring, release early).
    {
        let cfg = bug_scenario("c5456", n, seed);
        eprintln!("[ablation] c5456 buggy ...");
        let buggy = run_real(&cfg);
        let mut fixed_cfg = cfg.clone();
        fixed_cfg.locking = LockingMode::SnapshotThread;
        eprintln!("[ablation] c5456 fixed ...");
        let fixed = run_real(&fixed_cfg);
        print_row(
            &[
                "c5456".into(),
                "coarse-lock".into(),
                buggy.total_flaps.to_string(),
                "snapshot".into(),
                fixed.total_flaps.to_string(),
            ],
            18,
        );
    }

    // Harness ablation 1: order enforcement on/off during PIL replay.
    println!();
    println!("harness ablation: PIL replay with vs without order enforcement (c3831, N={n}):");
    {
        let cfg = bug_scenario("c3831", n, seed);
        let memo = memoize(&cfg, COLO_CORES);
        for enforce in [true, false] {
            let mut rcfg = cfg
                .clone()
                .with_deployment(DeploymentMode::PilReplay { cores: COLO_CORES })
                .with_calc_io(CalcIo::Replay);
            rcfg.order_enforcement = enforce;
            let (r, _, _) = scalecheck_cluster::run_scenario_with_db(
                &rcfg,
                Some(memo.db.clone()),
                Some(memo.order.clone()),
            );
            println!(
                "  enforcement={enforce}: flaps={} hit-rate={:.3} forced-releases={}",
                r.total_flaps,
                r.memo.replay_hit_rate(),
                r.order_forced_releases
            );
        }
    }

    // Harness ablation 2: FIFO-cores vs processor sharing for a burst of
    // equal tasks (the Figure 1b serialization claim is robust to the
    // scheduling discipline).
    println!();
    println!("harness ablation: CPU discipline for 64 x 1s tasks on 16 cores:");
    let tasks: Vec<(SimTime, SimDuration)> = (0..64)
        .map(|_| (SimTime::ZERO, SimDuration::from_secs(1)))
        .collect();
    let ps = ps_completions(&tasks, 16);
    let ps_last = ps.iter().max().unwrap();
    let mut m = scalecheck_sim::Machine::new(16, scalecheck_sim::CtxSwitchModel::FREE);
    let fifo_last = tasks
        .iter()
        .map(|&(at, d)| m.submit(at, d).finish)
        .max()
        .unwrap();
    println!(
        "  FIFO-cores last completion: {:.1}s, processor-sharing: {:.1}s (ideal 4.0s)",
        fifo_last.as_secs_f64(),
        ps_last.as_secs_f64()
    );
}
