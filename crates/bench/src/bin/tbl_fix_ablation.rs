//! Fix ablation: re-run each bug workload with the historical fix in
//! place and show the flapping disappears — the §2 narrative that every
//! fix removed the symptom at the scale that exposed it (until the next
//! bug).
//!
//! Also ablates the harness itself: the FIFO-cores CPU model against
//! the offline processor-sharing model, and PIL replay with and without
//! order enforcement.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_fix_ablation -- --nodes 256
//! ```

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, parse_flag, print_row, run_sweep, spec_cell, try_bug_scenario, SweepOptions,
};
use scalecheck_cluster::{CalcVersion, LockingMode, ScenarioConfig};
use scalecheck_sim::{ps_completions, SimDuration, SimTime};

const USAGE: &str = "usage: tbl_fix_ablation [--nodes N] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let n: usize = parse_flag(&args, "--nodes")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(256);
    let seed = 1;

    let scenario = |bug: &str| -> ScenarioConfig {
        try_bug_scenario(bug, n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e))
    };

    // Buggy/fixed pairs, each a Real-deployment cell; then the two
    // order-enforcement ablation replays.
    let rows: [(&str, &str, &str); 3] = [
        ("c3831", "v1-cubic", "v2-quadratic"),
        ("c3881", "v2+vnodes", "v3-vnode-aware"),
        ("c5456", "coarse-lock", "snapshot"),
    ];
    let mut cells = Vec::new();
    for (bug, _, _) in rows {
        let cfg = scenario(bug);
        cells.push(spec_cell(
            format!("ablation {bug} buggy"),
            CellSpec::new(cfg.clone(), ExecMode::Real),
        ));
        let mut fixed_cfg = cfg;
        match bug {
            "c3831" => fixed_cfg.calculator = CalcVersion::V2Quadratic,
            "c3881" => fixed_cfg.calculator = CalcVersion::V3VnodeAware,
            _ => fixed_cfg.locking = LockingMode::SnapshotThread,
        }
        cells.push(spec_cell(
            format!("ablation {bug} fixed"),
            CellSpec::new(fixed_cfg, ExecMode::Real),
        ));
    }
    for ordered in [true, false] {
        cells.push(spec_cell(
            format!("ablation c3831 replay ordered={ordered}"),
            CellSpec::new(
                scenario("c3831"),
                ExecMode::ScPil {
                    cores: COLO_CORES,
                    ordered,
                },
            ),
        ));
    }
    let out = run_sweep(cells, &opts);

    println!("Fix ablation at N={n}: buggy vs fixed implementation (Real deployment)\n");
    print_row(
        &[
            "bug".into(),
            "buggy".into(),
            "flaps".into(),
            "fixed".into(),
            "flaps".into(),
        ],
        18,
    );
    for (i, (bug, buggy_label, fixed_label)) in rows.iter().enumerate() {
        let buggy = &out.results[2 * i];
        let fixed = &out.results[2 * i + 1];
        print_row(
            &[
                (*bug).into(),
                (*buggy_label).into(),
                buggy.total_flaps.to_string(),
                (*fixed_label).into(),
                fixed.total_flaps.to_string(),
            ],
            18,
        );
    }

    // Harness ablation 1: order enforcement on/off during PIL replay.
    println!();
    println!("harness ablation: PIL replay with vs without order enforcement (c3831, N={n}):");
    for (j, enforce) in [true, false].iter().enumerate() {
        let r = &out.results[6 + j];
        println!(
            "  enforcement={enforce}: flaps={} hit-rate={:.3} forced-releases={}",
            r.total_flaps,
            r.memo.replay_hit_rate(),
            r.order_forced_releases
        );
    }

    // Harness ablation 2: FIFO-cores vs processor sharing for a burst of
    // equal tasks (the Figure 1b serialization claim is robust to the
    // scheduling discipline).
    println!();
    println!("harness ablation: CPU discipline for 64 x 1s tasks on 16 cores:");
    let tasks: Vec<(SimTime, SimDuration)> = (0..64)
        .map(|_| (SimTime::ZERO, SimDuration::from_secs(1)))
        .collect();
    let ps = ps_completions(&tasks, 16);
    let ps_last = ps.iter().max().expect("non-empty task set");
    let mut m = scalecheck_sim::Machine::new(16, scalecheck_sim::CtxSwitchModel::FREE);
    let fifo_last = tasks
        .iter()
        .map(|&(at, d)| m.submit(at, d).finish)
        .max()
        .expect("non-empty task set");
    println!(
        "  FIFO-cores last completion: {:.1}s, processor-sharing: {:.1}s (ideal 4.0s)",
        fifo_last.as_secs_f64(),
        ps_last.as_secs_f64()
    );
}
