//! Event-engine microbenchmarks: the perf trajectory for the simulator
//! core.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin bench_engine -- --out BENCH_engine.json
//! ```
//!
//! Each scenario runs twice:
//!
//! * **baseline** — the pre-overhaul engine shape: `BinaryHeap`
//!   scheduler, one boxed closure per scheduled event, and (for the
//!   gossip scenarios) the legacy full-state wire format that
//!   deep-clones an `EndpointState` per delta;
//! * **wheel** — the timer-wheel scheduler with slab storage and
//!   payload-carrying handler events, and heartbeat-only gossip deltas.
//!
//! Both halves drive identical virtual workloads: the run is correct
//! only if they fire the same number of events and fold the same
//! checksum (times, targets, and RNG draws all included), which the
//! binary asserts and records as `deterministic_match`.
//!
//! The `tracer_overhead` scenario bends that frame: both sides are the
//! wheel engine driving the 64-node gossip workload, with observability
//! tracing **disabled** (`baseline`) vs **enabled** (`wheel`). The
//! determinism check then proves tracing does not perturb the
//! simulation, and the report adds the disabled-path budget: ns and
//! allocations per emission call (measured through an opaque function
//! pointer so the check cannot be optimized away) scaled by the
//! emissions/event observed in the enabled trace. The repo gate is
//! `disabled_overhead_pct < 2` and `disabled_allocs_per_emission == 0`.
//!
//! Options:
//! * `--smoke` — small iteration counts (CI smoke stage);
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_engine.json`);
//! * `--verify PATH` — validate an existing report instead of running:
//!   well-formed JSON, ≥ 5 scenarios, nonzero throughput, determinism,
//!   and the tracer-overhead budget;
//! * `--json` — echo the report to stdout as well;
//! * `--jobs N` / `--no-cache` — accepted for sweep-harness
//!   compatibility; single-process, so both are no-ops.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use scalecheck_bench::{exit_usage, flag_value, has_flag, print_row};
use scalecheck_gossip::{Delta, EndpointState, Gossiper, HeartbeatState, Peer};
use scalecheck_sim::{
    Ctx, DetRng, Engine, EngineCounters, HandlerId, SchedulerKind, SimDuration, SimTime,
};
use serde_json::json;

const USAGE: &str =
    "usage: bench_engine [--smoke] [--out PATH] [--verify PATH] [--json] [--jobs N] [--no-cache]";

// ---------------------------------------------------------------------
// Allocation counting.
// ---------------------------------------------------------------------

/// Counts heap allocations so the report can state allocations/event.
/// Lives here (not in `scalecheck-sim`, which forbids unsafe code) and
/// only counts — layout and placement are `System`'s.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Shared measurement plumbing.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Measured {
    events: u64,
    wall_s: f64,
    allocs: u64,
    acc: u64,
    counters: EngineCounters,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            f64::INFINITY
        }
    }

    fn allocs_per_event(&self) -> f64 {
        if self.events > 0 {
            self.allocs as f64 / self.events as f64
        } else {
            0.0
        }
    }
}

fn measure<S>(engine: &mut Engine<S>, state: &mut S, acc_of: impl Fn(&S) -> u64) -> Measured {
    let alloc0 = allocations();
    let t0 = Instant::now();
    let stats = engine.run_to_completion(state);
    let wall_s = t0.elapsed().as_secs_f64();
    Measured {
        events: stats.executed,
        wall_s,
        allocs: allocations() - alloc0,
        acc: acc_of(state),
        counters: engine.counters(),
    }
}

fn mix(acc: u64, v: u64) -> u64 {
    (acc ^ v)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(23)
}

// ---------------------------------------------------------------------
// Scenario 1: pure periodic timers.
// ---------------------------------------------------------------------

const TIMER_LANES: usize = 64;

struct Timers {
    rounds_left: u64,
    acc: u64,
    self_handler: Option<HandlerId>,
}

/// One periodic-timer fire. Returns whether the lane should reschedule.
fn timer_fire(w: &mut Timers, ctx: &mut Ctx<'_, Timers>, lane: u64) -> bool {
    if w.rounds_left == 0 {
        return false;
    }
    w.rounds_left -= 1;
    w.acc = mix(w.acc, ctx.now().as_nanos() ^ lane);
    w.rounds_left > 0
}

fn lane_interval(lane: u64) -> SimDuration {
    SimDuration::from_micros(500 + 37 * lane)
}

fn timer_closure_fire(w: &mut Timers, ctx: &mut Ctx<'_, Timers>, lane: u64) {
    if timer_fire(w, ctx, lane) {
        ctx.schedule_after(lane_interval(lane), move |w, ctx| {
            timer_closure_fire(w, ctx, lane)
        });
    }
}

fn run_pure_timers(kind: SchedulerKind, handlers: bool, rounds: u64) -> Measured {
    let mut engine: Engine<Timers> = Engine::with_scheduler(1, kind);
    let mut w = Timers {
        rounds_left: rounds,
        acc: 0,
        self_handler: None,
    };
    if handlers {
        let h = engine.register_handler(|w: &mut Timers, ctx, lane| {
            if timer_fire(w, ctx, lane) {
                let h = w.self_handler.expect("set before run");
                ctx.schedule_handler_after(lane_interval(lane), h, lane);
            }
        });
        w.self_handler = Some(h);
        for lane in 0..TIMER_LANES as u64 {
            engine.schedule_handler_after(lane_interval(lane), h, lane);
        }
    } else {
        for lane in 0..TIMER_LANES as u64 {
            engine.schedule_after(lane_interval(lane), move |w, ctx| {
                timer_closure_fire(w, ctx, lane)
            });
        }
    }
    measure(&mut engine, &mut w, |w| w.acc)
}

// ---------------------------------------------------------------------
// Scenarios 2 & 3: gossip clusters (64 and 256 nodes).
// ---------------------------------------------------------------------

struct GossipWorld {
    nodes: Vec<Gossiper<Vec<u64>>>,
    rounds_left: u64,
    acc: u64,
    interval: SimDuration,
    /// Replay the pre-overhaul wire format: every delta ships a full
    /// endpoint state with a deep-cloned payload.
    legacy_wire: bool,
    self_handler: Option<HandlerId>,
}

impl GossipWorld {
    fn new(n: usize, rounds: u64, legacy_wire: bool) -> Self {
        let tokens_of = |i: usize| -> Vec<u64> { (0..32).map(|t| (i as u64) << 32 | t).collect() };
        let nodes: Vec<Gossiper<Vec<u64>>> = (0..n)
            .map(|i| Gossiper::new(Peer(i as u32), 1, tokens_of(i)))
            .collect();
        let mut world = GossipWorld {
            nodes,
            rounds_left: rounds,
            acc: 0,
            interval: SimDuration::from_secs(1),
            legacy_wire,
            self_handler: None,
        };
        // Fully meshed bootstrap, as the cluster runner seeds members.
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let st = EndpointState::new(
                        HeartbeatState {
                            generation: 1,
                            version: 0,
                        },
                        0,
                        tokens_of(j),
                    );
                    world.nodes[i].seed_peer(Peer(j as u32), st);
                }
            }
        }
        world
    }
}

/// Rewrites heartbeat-only deltas back into the legacy full-state wire
/// format, paying the deep clone the old code paid per delta.
fn inflate(g: &Gossiper<Vec<u64>>, deltas: &mut [(Peer, Delta<Vec<u64>>)]) {
    for (peer, d) in deltas.iter_mut() {
        if matches!(d, Delta::Heartbeat(_)) {
            let st = g.endpoint(*peer).expect("delta source knows the peer");
            *d = Delta::Full(EndpointState::new(
                st.heartbeat,
                st.app_version,
                st.app.as_ref().clone(),
            ));
        }
    }
}

/// One synchronous gossip round (SYN/ACK/ACK2) from node `i` to a
/// random live peer. Returns whether node `i` should reschedule.
fn gossip_fire(w: &mut GossipWorld, ctx: &mut Ctx<'_, GossipWorld>, i: usize) -> bool {
    if w.rounds_left == 0 {
        return false;
    }
    w.rounds_left -= 1;
    let n = w.nodes.len();
    let mut t = ctx.rng().gen_index(n - 1);
    if t >= i {
        t += 1;
    }
    w.nodes[i].beat();
    let syn = w.nodes[i].make_syn();
    let mut ack = w.nodes[t].handle_syn(&syn);
    if w.legacy_wire {
        inflate(&w.nodes[t], &mut ack.deltas);
    }
    let (_, mut ack2) = w.nodes[i].handle_ack(&ack);
    if w.legacy_wire {
        inflate(&w.nodes[i], &mut ack2.deltas);
    }
    let _ = w.nodes[t].handle_ack2(&ack2);
    w.acc = mix(w.acc, ctx.now().as_nanos() ^ ((i as u64) << 32) ^ t as u64);
    w.rounds_left > 0
}

fn gossip_closure_fire(w: &mut GossipWorld, ctx: &mut Ctx<'_, GossipWorld>, i: usize) {
    if gossip_fire(w, ctx, i) {
        let interval = w.interval;
        ctx.schedule_after(interval, move |w, ctx| gossip_closure_fire(w, ctx, i));
    }
}

fn run_gossip(kind: SchedulerKind, handlers: bool, n: usize, rounds: u64) -> Measured {
    let mut engine: Engine<GossipWorld> = Engine::with_scheduler(2, kind);
    // Baseline keeps the legacy full-state wire; wheel uses deltas.
    let mut w = GossipWorld::new(n, rounds, !handlers);
    let stagger = |i: usize| SimDuration::from_nanos((i as u64) * 1_000_000_000 / n.max(1) as u64);
    if handlers {
        let h = engine.register_handler(|w: &mut GossipWorld, ctx, payload| {
            let i = payload as usize;
            if gossip_fire(w, ctx, i) {
                let h = w.self_handler.expect("set before run");
                ctx.schedule_handler_after(w.interval, h, payload);
            }
        });
        w.self_handler = Some(h);
        for i in 0..n {
            engine.schedule_handler_after(stagger(i), h, i as u64);
        }
    } else {
        for i in 0..n {
            engine.schedule_after(stagger(i), move |w, ctx| gossip_closure_fire(w, ctx, i));
        }
    }
    measure(&mut engine, &mut w, |w| w.acc)
}

// ---------------------------------------------------------------------
// Scenario 4: fault storm (one-shots, cancellations, restart chains).
// ---------------------------------------------------------------------

/// Follow-up events carry this bit so they do not re-spawn.
const FOLLOW_UP: u64 = 1 << 40;

struct Storm {
    acc: u64,
    self_handler: Option<HandlerId>,
}

fn storm_fire(w: &mut Storm, ctx: &mut Ctx<'_, Storm>, k: u64) -> bool {
    let draw = ctx.rng().next_u64();
    w.acc = mix(w.acc, ctx.now().as_nanos() ^ k ^ (draw & 0xffff));
    // A quarter of primary fires spawns a restart-style follow-up.
    k & FOLLOW_UP == 0 && draw % 4 == 0
}

fn storm_closure_fire(w: &mut Storm, ctx: &mut Ctx<'_, Storm>, k: u64) {
    if storm_fire(w, ctx, k) {
        let k2 = k | FOLLOW_UP;
        ctx.schedule_after(SimDuration::from_millis(1), move |w, ctx| {
            storm_closure_fire(w, ctx, k2)
        });
    }
}

fn run_storm(kind: SchedulerKind, handlers: bool, events: u64) -> Measured {
    let mut engine: Engine<Storm> = Engine::with_scheduler(3, kind);
    let mut w = Storm {
        acc: 0,
        self_handler: None,
    };
    let h = if handlers {
        let h = engine.register_handler(|w: &mut Storm, ctx, k| {
            if storm_fire(w, ctx, k) {
                let h = w.self_handler.expect("set before run");
                ctx.schedule_handler_after(SimDuration::from_millis(1), h, k | FOLLOW_UP);
            }
        });
        w.self_handler = Some(h);
        Some(h)
    } else {
        None
    };
    // Deterministic plan: one-shots at random times over a 10 s horizon,
    // scheduled out of time order, with every third cancelled — the
    // crash/restart churn pattern.
    let mut plan = DetRng::new(42);
    let mut ids = Vec::with_capacity(events as usize);
    for k in 0..events {
        let at = SimTime::from_nanos(plan.next_u64() % 10_000_000_000);
        let id = match h {
            Some(h) => engine.schedule_handler_at(at, h, k),
            None => engine.schedule_at(at, move |w: &mut Storm, ctx| storm_closure_fire(w, ctx, k)),
        };
        ids.push(id);
    }
    for (j, id) in ids.into_iter().enumerate() {
        if j % 3 == 0 {
            engine.cancel(id);
        }
    }
    measure(&mut engine, &mut w, |w| w.acc)
}

// ---------------------------------------------------------------------
// Scenario 5: tracer overhead (disabled vs enabled observability).
// ---------------------------------------------------------------------

/// Gossip workload with tracing disabled vs enabled, plus a direct
/// measurement of the disabled emission path. Returns the scenario and
/// its extra report fields.
fn run_tracer_overhead(rounds: u64, calls: u64) -> ScenarioResult {
    // Disabled side: no tracer installed, every emission is one
    // thread-local flag check.
    scalecheck_obs::clear();
    let disabled = run_gossip(SchedulerKind::Wheel, true, 64, rounds);

    // Enabled side: same workload recording into a tracer; count what
    // it emitted so the disabled cost can be scaled per event.
    scalecheck_obs::install(scalecheck_obs::Tracer::new());
    let enabled = run_gossip(SchedulerKind::Wheel, true, 64, rounds);
    let trace = scalecheck_obs::take().expect("tracer installed").finish();
    let emissions = trace.spans.len() as u64
        + trace.instants.len() as u64
        + trace.counters.len() as u64
        + trace.metrics.iter().map(|h| h.count).sum::<u64>();
    let emissions_per_event = if enabled.events > 0 {
        emissions as f64 / enabled.events as f64
    } else {
        0.0
    };

    // Disabled emission cost, through an opaque function pointer so the
    // flag check cannot be hoisted or deleted.
    let f: fn(scalecheck_obs::Metric, u64) = scalecheck_obs::metric;
    let f = std::hint::black_box(f);
    let alloc0 = allocations();
    let t0 = Instant::now();
    for i in 0..calls {
        f(scalecheck_obs::Metric::NetDelay, i);
    }
    let per_call_ns = t0.elapsed().as_secs_f64() * 1e9 / calls.max(1) as f64;
    let emission_allocs = allocations() - alloc0;

    let disabled_event_ns = disabled.wall_s * 1e9 / disabled.events.max(1) as f64;
    let overhead_pct = if disabled_event_ns > 0.0 {
        100.0 * per_call_ns * emissions_per_event / disabled_event_ns
    } else {
        0.0
    };

    ScenarioResult {
        name: "tracer_overhead",
        baseline: disabled,
        wheel: enabled,
        extra: vec![
            ("emissions_per_event", emissions_per_event),
            ("disabled_ns_per_emission", per_call_ns),
            ("disabled_overhead_pct", overhead_pct),
            (
                "disabled_allocs_per_emission",
                emission_allocs as f64 / calls.max(1) as f64,
            ),
        ],
    }
}

// ---------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------

struct ScenarioResult {
    name: &'static str,
    baseline: Measured,
    wheel: Measured,
    /// Scenario-specific report fields (tracer overhead budget).
    extra: Vec<(&'static str, f64)>,
}

impl ScenarioResult {
    fn speedup(&self) -> f64 {
        self.wheel.events_per_sec() / self.baseline.events_per_sec()
    }

    fn matches(&self) -> bool {
        self.baseline.acc == self.wheel.acc && self.baseline.events == self.wheel.events
    }
}

fn run_all(smoke: bool) -> Vec<ScenarioResult> {
    // (full, smoke) iteration counts.
    let size = |full: u64, small: u64| if smoke { small } else { full };
    let mut out = Vec::new();

    let rounds = size(1_000_000, 20_000);
    out.push(ScenarioResult {
        name: "pure_timers",
        baseline: run_pure_timers(SchedulerKind::Heap, false, rounds),
        wheel: run_pure_timers(SchedulerKind::Wheel, true, rounds),
        extra: Vec::new(),
    });

    let rounds = size(100_000, 4_000);
    out.push(ScenarioResult {
        name: "gossip_64",
        baseline: run_gossip(SchedulerKind::Heap, false, 64, rounds),
        wheel: run_gossip(SchedulerKind::Wheel, true, 64, rounds),
        extra: Vec::new(),
    });

    let rounds = size(25_000, 1_200);
    out.push(ScenarioResult {
        name: "gossip_256",
        baseline: run_gossip(SchedulerKind::Heap, false, 256, rounds),
        wheel: run_gossip(SchedulerKind::Wheel, true, 256, rounds),
        extra: Vec::new(),
    });

    let events = size(300_000, 10_000);
    out.push(ScenarioResult {
        name: "fault_storm",
        baseline: run_storm(SchedulerKind::Heap, false, events),
        wheel: run_storm(SchedulerKind::Wheel, true, events),
        extra: Vec::new(),
    });

    out.push(run_tracer_overhead(
        size(100_000, 4_000),
        size(10_000_000, 1_000_000),
    ));

    out
}

fn side_json(m: &Measured) -> serde_json::Value {
    json!({
        "events": m.events,
        "wall_s": m.wall_s,
        "events_per_sec": m.events_per_sec(),
        "allocs_per_event": m.allocs_per_event(),
        "scheduled": m.counters.scheduled,
        "fired": m.counters.fired,
        "cancelled": m.counters.cancelled,
        "pool_hits": m.counters.pool_hits,
        "pool_misses": m.counters.pool_misses,
    })
}

fn report_value(results: &[ScenarioResult], smoke: bool) -> serde_json::Value {
    let scenarios: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            let mut v = json!({
                "name": r.name,
                "baseline": side_json(&r.baseline),
                "wheel": side_json(&r.wheel),
                "speedup": r.speedup(),
                "deterministic_match": r.matches(),
            });
            if let serde_json::Value::Object(entries) = &mut v {
                for (k, val) in &r.extra {
                    entries.push(((*k).to_string(), json!(*val)));
                }
            }
            v
        })
        .collect();
    json!({
        "schema": "bench_engine/v2",
        "smoke": smoke,
        "scenarios": scenarios,
    })
}

fn verify(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: serde_json::Value = serde_json::from_str(&text).map_err(|e| format!("parse: {e:?}"))?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("bench_engine/v2") {
        return Err("schema is not bench_engine/v2".into());
    }
    let scenarios = v
        .get("scenarios")
        .and_then(|s| s.as_array())
        .ok_or("missing scenarios array")?;
    if scenarios.len() < 5 {
        return Err(format!("expected >= 5 scenarios, got {}", scenarios.len()));
    }
    let mut saw_tracer = false;
    for s in scenarios {
        let name = s.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        for side in ["baseline", "wheel"] {
            let eps = s
                .get(side)
                .and_then(|b| b.get("events_per_sec"))
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("{name}: missing {side}.events_per_sec"))?;
            if eps.is_nan() || eps <= 0.0 {
                return Err(format!("{name}: {side} throughput is not positive"));
            }
        }
        if s.get("deterministic_match").and_then(|m| m.as_bool()) != Some(true) {
            return Err(format!("{name}: baseline and wheel runs diverged"));
        }
        if name == "tracer_overhead" {
            saw_tracer = true;
            let field = |k: &str| {
                s.get(k)
                    .and_then(|x| x.as_f64())
                    .ok_or_else(|| format!("{name}: missing {k}"))
            };
            let pct = field("disabled_overhead_pct")?;
            if pct.is_nan() || pct >= 2.0 {
                return Err(format!("{name}: disabled overhead {pct:.3}% >= 2%"));
            }
            let allocs = field("disabled_allocs_per_emission")?;
            if allocs != 0.0 {
                return Err(format!(
                    "{name}: disabled path allocates ({allocs}/emission)"
                ));
            }
        }
    }
    if !saw_tracer {
        return Err("missing tracer_overhead scenario".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = flag_value(&args, "--verify").unwrap_or_else(|e| exit_usage(USAGE, &e)) {
        match verify(&path) {
            Ok(()) => {
                println!("{path}: ok");
                return;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = has_flag(&args, "--smoke");
    let out_path = flag_value(&args, "--out")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let echo = has_flag(&args, "--json");
    // Sweep-harness flags: single-process binary, nothing to parallelize
    // or cache.
    let _jobs: Option<u64> =
        scalecheck_bench::parse_flag(&args, "--jobs").unwrap_or_else(|e| exit_usage(USAGE, &e));
    let _no_cache = has_flag(&args, "--no-cache");

    let results = run_all(smoke);

    println!(
        "Engine microbenchmarks ({})",
        if smoke { "smoke" } else { "full" }
    );
    println!("baseline = heap scheduler + boxed closures (+ legacy gossip wire)\n");
    print_row(
        &[
            "scenario".into(),
            "base ev/s".into(),
            "wheel ev/s".into(),
            "speedup".into(),
            "allocs/ev".into(),
            "match".into(),
        ],
        11,
    );
    for r in &results {
        print_row(
            &[
                r.name.into(),
                format!("{:.0}", r.baseline.events_per_sec()),
                format!("{:.0}", r.wheel.events_per_sec()),
                format!("{:.2}x", r.speedup()),
                format!("{:.3}", r.wheel.allocs_per_event()),
                if r.matches() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
            11,
        );
    }

    if let Some(r) = results.iter().find(|r| r.name == "tracer_overhead") {
        let get = |k: &str| {
            r.extra
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        println!(
            "\ntracer_overhead: baseline = tracing disabled, wheel = enabled; \
             {:.2} emissions/event x {:.2} ns disabled check = {:.4}% of event cost \
             (< 2% required), {} allocs/emission",
            get("emissions_per_event"),
            get("disabled_ns_per_emission"),
            get("disabled_overhead_pct"),
            get("disabled_allocs_per_emission"),
        );
    }

    let report = report_value(&results, smoke);
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, text.as_bytes())
        .unwrap_or_else(|e| exit_usage(USAGE, &format!("write {out_path}: {e}")));
    println!("\nwrote {out_path}");
    if echo {
        println!("{text}");
    }

    if results.iter().any(|r| !r.matches()) {
        eprintln!("error: baseline and wheel runs diverged");
        std::process::exit(1);
    }
}
