//! Extension experiment: scale check beyond Cassandra (§7 future work)
//! on the *other* root-cause class — serialized O(N) operations (§4
//! footnote, 53 % of the bug study).
//!
//! An HDFS-like namenode processes full block reports under the global
//! namesystem lock; the buggy implementation rescans the entire block
//! map per report, so the lock hold grows with cluster size and
//! eventually exceeds the heartbeat timeout: the master declares live
//! datanodes dead, in waves (flapping). The incremental-diff fix
//! removes the symptom; SC+PIL reproduces it with report processing
//! replaced by `sleep(recorded duration)`.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin ext_hdfs
//! ```

use scalecheck_bench::{flag_value, print_row};
use scalecheck_hdfslike::{hdfs_scale_check, run_hdfs, HdfsConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scales: Vec<usize> = flag_value(&args, "--scales")
        .map(|s| s.split(',').map(|x| x.trim().parse().unwrap()).collect())
        .unwrap_or_else(|| vec![64, 128, 192, 256]);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().unwrap())
        .unwrap_or(1);

    println!("Extension — HDFS-like serialized-O(N) bug (block reports under the namenode lock)");
    println!("false dead declarations of live datanodes over a 600s run\n");
    print_row(
        &[
            "#DNs".into(),
            "Real(bug)".into(),
            "SC+PIL".into(),
            "hit%".into(),
            "Real(fix)".into(),
        ],
        12,
    );
    for &n in &scales {
        let mut cfg = HdfsConfig::bug(n, seed);
        eprintln!("[ext-hdfs] N={n}: real(bug)...");
        let real = run_hdfs(&cfg);
        eprintln!("[ext-hdfs] N={n}: memoize + replay...");
        let (_rec, pil) = hdfs_scale_check(&cfg, 16);
        eprintln!("[ext-hdfs] N={n}: real(fix)...");
        cfg.version = scalecheck_hdfslike::ReportVersion::IncrementalDiff;
        let fixed = run_hdfs(&cfg);
        print_row(
            &[
                n.to_string(),
                real.false_dead.to_string(),
                pil.false_dead.to_string(),
                format!("{:.0}", pil.memo.replay_hit_rate() * 100.0),
                fixed.false_dead.to_string(),
            ],
            12,
        );
    }
    println!();
    println!("the symptom (lock hold > heartbeat timeout) surfaces only at scale; the");
    println!("incremental-diff fix removes it; SC+PIL reproduces it on one machine.");
    println!("the finder catches this class at threshold 1 (S4 footnote): the rescan");
    println!("is a single scale-dependent loop, not a nest.");
}
