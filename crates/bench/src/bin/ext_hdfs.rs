//! Extension experiment: scale check beyond Cassandra (§7 future work)
//! on the *other* root-cause class — serialized O(N) operations (§4
//! footnote, 53 % of the bug study).
//!
//! An HDFS-like namenode processes full block reports under the global
//! namesystem lock; the buggy implementation rescans the entire block
//! map per report, so the lock hold grows with cluster size and
//! eventually exceeds the heartbeat timeout: the master declares live
//! datanodes dead, in waves (flapping). The incremental-diff fix
//! removes the symptom; SC+PIL reproduces it with report processing
//! replaced by `sleep(recorded duration)`.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin ext_hdfs
//! ```

use scalecheck_bench::{
    exit_usage, parse_flag, parse_list_flag, print_row, run_sweep, Cell, SweepOptions,
};
use scalecheck_hdfslike::{hdfs_scale_check, run_hdfs, HdfsConfig, HdfsReport};

const USAGE: &str = "usage: ext_hdfs [--scales 64,128,192,256] [--seed N] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![64, 128, 192, 256]);
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);

    let mut cells: Vec<Cell<HdfsReport>> = Vec::new();
    for &n in &scales {
        let cfg = HdfsConfig::bug(n, seed);
        {
            let cfg = cfg.clone();
            cells.push(Cell::new(
                format!("ext-hdfs N={n} real(bug)"),
                ("ext_hdfs-real", cfg.clone()),
                move || run_hdfs(&cfg),
            ));
        }
        {
            let cfg = cfg.clone();
            cells.push(Cell::new(
                format!("ext-hdfs N={n} sc+pil"),
                ("ext_hdfs-scpil-16", cfg.clone()),
                move || hdfs_scale_check(&cfg, 16).1,
            ));
        }
        {
            let mut cfg = cfg.clone();
            cfg.version = scalecheck_hdfslike::ReportVersion::IncrementalDiff;
            cells.push(Cell::new(
                format!("ext-hdfs N={n} real(fix)"),
                ("ext_hdfs-real", cfg.clone()),
                move || run_hdfs(&cfg),
            ));
        }
    }
    let out = run_sweep(cells, &opts);

    println!("Extension — HDFS-like serialized-O(N) bug (block reports under the namenode lock)");
    println!("false dead declarations of live datanodes over a 600s run\n");
    print_row(
        &[
            "#DNs".into(),
            "Real(bug)".into(),
            "SC+PIL".into(),
            "hit%".into(),
            "Real(fix)".into(),
        ],
        12,
    );
    for (i, &n) in scales.iter().enumerate() {
        let real = &out.results[3 * i];
        let pil = &out.results[3 * i + 1];
        let fixed = &out.results[3 * i + 2];
        print_row(
            &[
                n.to_string(),
                real.false_dead.to_string(),
                pil.false_dead.to_string(),
                format!("{:.0}", pil.memo.replay_hit_rate() * 100.0),
                fixed.false_dead.to_string(),
            ],
            12,
        );
    }
    println!();
    println!("the symptom (lock hold > heartbeat timeout) surfaces only at scale; the");
    println!("incremental-diff fix removes it; SC+PIL reproduces it on one machine.");
    println!("the finder catches this class at threshold 1 (S4 footnote): the rescan");
    println!("is a single scale-dependent loop, not a nest.");
}
