//! Regenerates the §5 state-space argument: offline input sampling
//! would need to cover `(N^(N·P))²` message orderings, while recording
//! one run plus order determinism stores only what actually happened.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_statespace
//! ```

use scalecheck::{memoize, COLO_CORES};
use scalecheck_bench::{bug_scenario, print_row};
use scalecheck_memo::{log10_ordering_space, ordering_space_digits, savings_orders_of_magnitude};

fn main() {
    println!("The S5 state-space argument: orderings vs one recorded run\n");
    print_row(
        &[
            "N".into(),
            "P".into(),
            "log10 |orderings|".into(),
            "digits".into(),
        ],
        18,
    );
    for (n, p) in [(10u64, 1u64), (32, 1), (64, 32), (256, 256), (500, 256)] {
        print_row(
            &[
                n.to_string(),
                p.to_string(),
                format!("{:.0}", log10_ordering_space(n, p)),
                ordering_space_digits(n, p).to_string(),
            ],
            18,
        );
    }

    // Ground the comparison in an actual memoization run.
    println!();
    let n = 32;
    let cfg = bug_scenario("c3831", n, 1);
    eprintln!("[t-statespace] memoizing c3831 at N={n} ...");
    let memo = memoize(&cfg, COLO_CORES);
    let records = memo.db.stats().recorded;
    let ordered = memo.order.total() as u64;
    println!(
        "one memoization run at N={n}: {records} input/output records, {ordered} ordered events"
    );
    println!(
        "savings vs exhaustive ordering coverage: ~10^{:.0} x",
        savings_orders_of_magnitude(n as u64, cfg.vnodes as u64, records.max(ordered))
    );
    println!();
    println!("covering all orderings offline is impossible; recording one observed");
    println!("run and enforcing its order during replay caps the space (S5).");
}
