//! Regenerates the §5 state-space argument: offline input sampling
//! would need to cover `(N^(N·P))²` message orderings, while recording
//! one run plus order determinism stores only what actually happened.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_statespace
//! ```

use scalecheck::{memoize, COLO_CORES};
use scalecheck_bench::{exit_usage, print_row, run_sweep, try_bug_scenario, Cell, SweepOptions};
use scalecheck_memo::{log10_ordering_space, ordering_space_digits, savings_orders_of_magnitude};

const USAGE: &str = "usage: tbl_statespace [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));

    // The one live run: a memoization at N=32, reduced to the two
    // counts the table needs (records, ordered events).
    let n = 32;
    let cfg = try_bug_scenario("c3831", n, 1).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let vnodes = cfg.vnodes;
    let cell: Cell<(u64, u64)> = Cell::new(
        format!("t-statespace memoize c3831 N={n}"),
        ("tbl_statespace-memo-counts", cfg.clone()),
        move || {
            let memo = memoize(&cfg, COLO_CORES);
            (memo.db.stats().recorded, memo.order.total() as u64)
        },
    );
    let out = run_sweep(vec![cell], &opts);
    let (records, ordered) = out.results[0];

    println!("The S5 state-space argument: orderings vs one recorded run\n");
    print_row(
        &[
            "N".into(),
            "P".into(),
            "log10 |orderings|".into(),
            "digits".into(),
        ],
        18,
    );
    for (n, p) in [(10u64, 1u64), (32, 1), (64, 32), (256, 256), (500, 256)] {
        print_row(
            &[
                n.to_string(),
                p.to_string(),
                format!("{:.0}", log10_ordering_space(n, p)),
                ordering_space_digits(n, p).to_string(),
            ],
            18,
        );
    }

    // Ground the comparison in an actual memoization run.
    println!();
    println!(
        "one memoization run at N={n}: {records} input/output records, {ordered} ordered events"
    );
    println!(
        "savings vs exhaustive ordering coverage: ~10^{:.0} x",
        savings_orders_of_magnitude(n as u64, vnodes as u64, records.max(ordered))
    );
    println!();
    println!("covering all orderings offline is impossible; recording one observed");
    println!("run and enforcing its order during replay caps the space (S5).");
}
