//! The §4 baseline comparison: how the state-of-the-art approaches fare
//! against the c3831 scalability bug, side by side with scale check.
//!
//! * mini-cluster testing — run the real system small: passes, bug
//!   missed;
//! * extrapolation — fit small-scale behaviour, predict large scale:
//!   predicts healthy, bug missed;
//! * basic colocation — run big on one box: bug "found" but wildly
//!   distorted;
//! * DieCast-style time dilation — accurate, but each iteration costs
//!   TDF × t;
//! * SC+PIL — accurate at ~real-scale iteration time after a one-time
//!   memoization.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_baselines -- --target 128
//! ```

use scalecheck::baselines::time_dilated;
use scalecheck::{extrapolate_power_law, memoize, replay, COLO_CORES};
use scalecheck_bench::{
    exit_usage, parse_flag, print_row, run_sweep, try_bug_scenario, Cell, SweepOptions,
};
use scalecheck_cluster::{run_scenario, RunReport};

const USAGE: &str = "usage: tbl_baselines [--target N] [--tdf N] [--jobs N] [--no-cache]";

const TRAIN_SCALES: [usize; 4] = [8, 16, 32, 64];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let target: usize = parse_flag(&args, "--target")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(256);
    let tdf: u64 = parse_flag(&args, "--tdf")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(16);
    let seed = 1;

    let bug =
        |n: usize| try_bug_scenario("c3831", n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e));

    // Cells: four mini-cluster training runs, then real / colo /
    // diecast at the target, then the memoize+replay pair (one cell —
    // they share the memo database).
    let mut cells: Vec<Cell<Vec<RunReport>>> = Vec::new();
    for &n in &TRAIN_SCALES {
        let cfg = bug(n);
        cells.push(Cell::new(
            format!("baselines mini N={n}"),
            ("tbl_baselines-real", cfg.clone()),
            move || vec![scalecheck::run_real(&cfg)],
        ));
    }
    let cfg = bug(target);
    {
        let cfg = cfg.clone();
        cells.push(Cell::new(
            format!("baselines real N={target}"),
            ("tbl_baselines-real", cfg.clone()),
            move || vec![scalecheck::run_real(&cfg)],
        ));
    }
    {
        let cfg = cfg.clone();
        cells.push(Cell::new(
            format!("baselines colo N={target}"),
            ("tbl_baselines-colo", cfg.clone()),
            move || vec![scalecheck::run_colo(&cfg, COLO_CORES)],
        ));
    }
    {
        let dilated = time_dilated(&cfg, COLO_CORES, tdf);
        cells.push(Cell::new(
            format!("baselines diecast tdf={tdf} N={target}"),
            ("tbl_baselines-diecast", dilated.clone()),
            move || vec![run_scenario(&dilated)],
        ));
    }
    {
        let cfg = cfg.clone();
        cells.push(Cell::new(
            format!("baselines sc+pil N={target}"),
            ("tbl_baselines-scpil", cfg.clone()),
            move || {
                let memo = memoize(&cfg, COLO_CORES);
                let pil = replay(&cfg, COLO_CORES, &memo);
                vec![memo.report, pil]
            },
        ));
    }
    let out = run_sweep(cells, &opts);

    println!("S4 baselines vs scale check on c3831, target N={target}\n");

    let train: Vec<(usize, u64)> = TRAIN_SCALES
        .iter()
        .zip(&out.results)
        .map(|(&n, r)| (n, r[0].total_flaps))
        .collect();
    let extrapolated = extrapolate_power_law(&train, target);
    let k = TRAIN_SCALES.len();
    let real = &out.results[k][0];
    let colo = &out.results[k + 1][0];
    let diecast = &out.results[k + 2][0];
    let memo_report = &out.results[k + 3][0];
    let pil = &out.results[k + 3][1];

    println!();
    print_row(
        &[
            "approach".into(),
            "flaps".into(),
            "run (virt s)".into(),
            "verdict".into(),
        ],
        22,
    );
    let mini_max = train.iter().map(|&(_, f)| f).max().unwrap_or(0);
    print_row(
        &[
            "mini-cluster (<=64)".into(),
            mini_max.to_string(),
            "-".into(),
            "bug missed".into(),
        ],
        22,
    );
    print_row(
        &[
            "extrapolation".into(),
            format!("{extrapolated:.0} (pred)"),
            "-".into(),
            "bug missed".into(),
        ],
        22,
    );
    let verdict = |flaps: u64| {
        if real.total_flaps == 0 {
            "-".to_string()
        } else {
            format!("{:.2}x of real", flaps as f64 / real.total_flaps as f64)
        }
    };
    print_row(
        &[
            format!("real-scale ({target} mach.)"),
            real.total_flaps.to_string(),
            format!("{:.0}", real.duration.as_secs_f64()),
            "ground truth".into(),
        ],
        22,
    );
    print_row(
        &[
            "basic colocation".into(),
            colo.total_flaps.to_string(),
            format!("{:.0}", colo.duration.as_secs_f64()),
            verdict(colo.total_flaps),
        ],
        22,
    );
    print_row(
        &[
            format!("diecast tdf={tdf}"),
            diecast.total_flaps.to_string(),
            format!("{:.0}", diecast.duration.as_secs_f64()),
            verdict(diecast.total_flaps),
        ],
        22,
    );
    print_row(
        &[
            "sc+pil".into(),
            pil.total_flaps.to_string(),
            format!("{:.0}", pil.duration.as_secs_f64()),
            verdict(pil.total_flaps),
        ],
        22,
    );
    println!();
    println!(
        "time dilation is accurate but each iteration takes ~{tdf}x the real test \
         time ({:.0}s vs {:.0}s); SC+PIL is accurate at ~1x after the one-time \
         memoization ({:.0}s).",
        diecast.duration.as_secs_f64(),
        real.duration.as_secs_f64(),
        memo_report.duration.as_secs_f64()
    );
}
