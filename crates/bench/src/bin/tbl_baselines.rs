//! The §4 baseline comparison: how the state-of-the-art approaches fare
//! against the c3831 scalability bug, side by side with scale check.
//!
//! * mini-cluster testing — run the real system small: passes, bug
//!   missed;
//! * extrapolation — fit small-scale behaviour, predict large scale:
//!   predicts healthy, bug missed;
//! * basic colocation — run big on one box: bug "found" but wildly
//!   distorted;
//! * DieCast-style time dilation — accurate, but each iteration costs
//!   TDF × t;
//! * SC+PIL — accurate at ~real-scale iteration time after a one-time
//!   memoization.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_baselines -- --target 128
//! ```

use scalecheck::baselines::{extrapolate_power_law, time_dilated};
use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_bench::{bug_scenario, flag_value, print_row};
use scalecheck_cluster::run_scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target: usize = flag_value(&args, "--target")
        .map(|s| s.parse().unwrap())
        .unwrap_or(256);
    let tdf: u64 = flag_value(&args, "--tdf")
        .map(|s| s.parse().unwrap())
        .unwrap_or(16);
    let seed = 1;

    println!("S4 baselines vs scale check on c3831, target N={target}\n");

    // Mini-cluster testing + extrapolation training data.
    let train_scales = [8usize, 16, 32, 64];
    let mut train = Vec::new();
    for &n in &train_scales {
        let r = run_real(&bug_scenario("c3831", n, seed));
        eprintln!("[baselines] mini-cluster N={n}: flaps={}", r.total_flaps);
        train.push((n, r.total_flaps));
    }
    let extrapolated = extrapolate_power_law(&train, target);

    let cfg = bug_scenario("c3831", target, seed);
    eprintln!("[baselines] real-scale ...");
    let real = run_real(&cfg);
    eprintln!("[baselines] basic colocation ...");
    let colo = run_colo(&cfg, COLO_CORES);
    eprintln!("[baselines] DieCast-style TDF={tdf} ...");
    let diecast = run_scenario(&time_dilated(&cfg, COLO_CORES, tdf));
    eprintln!("[baselines] SC+PIL ...");
    let memo = memoize(&cfg, COLO_CORES);
    let pil = replay(&cfg, COLO_CORES, &memo);

    println!();
    print_row(
        &[
            "approach".into(),
            "flaps".into(),
            "run (virt s)".into(),
            "verdict".into(),
        ],
        22,
    );
    let mini_max = train.iter().map(|&(_, f)| f).max().unwrap_or(0);
    print_row(
        &[
            "mini-cluster (<=64)".into(),
            mini_max.to_string(),
            "-".into(),
            "bug missed".into(),
        ],
        22,
    );
    print_row(
        &[
            "extrapolation".into(),
            format!("{extrapolated:.0} (pred)"),
            "-".into(),
            "bug missed".into(),
        ],
        22,
    );
    let verdict = |flaps: u64| {
        if real.total_flaps == 0 {
            "-".to_string()
        } else {
            format!("{:.2}x of real", flaps as f64 / real.total_flaps as f64)
        }
    };
    print_row(
        &[
            format!("real-scale ({target} mach.)"),
            real.total_flaps.to_string(),
            format!("{:.0}", real.duration.as_secs_f64()),
            "ground truth".into(),
        ],
        22,
    );
    print_row(
        &[
            "basic colocation".into(),
            colo.total_flaps.to_string(),
            format!("{:.0}", colo.duration.as_secs_f64()),
            verdict(colo.total_flaps),
        ],
        22,
    );
    print_row(
        &[
            format!("diecast tdf={tdf}"),
            diecast.total_flaps.to_string(),
            format!("{:.0}", diecast.duration.as_secs_f64()),
            verdict(diecast.total_flaps),
        ],
        22,
    );
    print_row(
        &[
            "sc+pil".into(),
            pil.total_flaps.to_string(),
            format!("{:.0}", pil.duration.as_secs_f64()),
            verdict(pil.total_flaps),
        ],
        22,
    );
    println!();
    println!(
        "time dilation is accurate but each iteration takes ~{tdf}x the real test \
         time ({:.0}s vs {:.0}s); SC+PIL is accurate at ~1x after the one-time \
         memoization ({:.0}s).",
        diecast.duration.as_secs_f64(),
        real.duration.as_secs_f64(),
        memo.report.duration.as_secs_f64()
    );
}
