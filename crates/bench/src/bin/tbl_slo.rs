//! SLO table: user-visible tail latency and error budgets per bug,
//! scale, and deployment semantics.
//!
//! Figure 3 measures the *operator-visible* symptom (flaps). This table
//! re-runs the C3831 / C3881 / C5456 scenarios with the client-request
//! datapath enabled — a million open-loop virtual users issuing
//! QUORUM reads and writes ([`scalecheck_cluster::TrafficConfig`]) —
//! and asks the paper's question on the *user-visible* axis instead:
//! does colocated testing report SLO verdicts (p99.9 inflation,
//! error-budget breach) that real-scale deployment does not, and does
//! SC+PIL track Real? Each `(bug, N)` point yields a
//! [`scalecheck_explore::SloTriple`] classified by
//! [`scalecheck_explore::SloVerdict`].
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_slo
//! ```
//!
//! Writes `BENCH_slo.json` (schema `bench_slo/v2`) and `TBL_slo.txt`
//! in the working directory, and prints the table.
//!
//! Options:
//! * `--bugs c3831,c3881,c5456` — scenarios (default all three);
//! * `--scales 64,128,256` — cluster sizes (default: one at-or-below
//!   the paper's 100-node test scale, two past it);
//! * `--users 1000000` — virtual users per cell;
//! * `--seed 1` — simulation seed;
//! * `--modes real,colo,scpil` — deployments (default all; verdicts
//!   need all three);
//! * `--json-out PATH` / `--table-out PATH` — artifact destinations;
//! * `--no-write` — print only, write no artifact files;
//! * `--smoke` — CI mode: run the c3831 128-node Real and Colo cells
//!   cache-free, validate the `bench_slo/v2` rows, require the Colo
//!   tail to *diverge* from Real (the coupled datapath's core claim),
//!   check the request-log digest is stable across a re-run, and fail
//!   past `--budget-secs` (default 120) of wall clock;
//! * `--jobs N` / `--no-cache` — sweep worker/caching control.
//!
//! The cache key embeds the full scenario — including the arrival
//! process — so changing the traffic shape (rate, users, consistency)
//! re-executes cells instead of replaying stale results.

use std::time::Instant;

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    bug_scenario, exit_usage, flag_value, has_flag, parse_flag, parse_list_flag, run_sweep, Cell,
    SweepOptions,
};
use scalecheck_cluster::{RunReport, ScenarioConfig, SloSummary, TrafficConfig};
use scalecheck_explore::{SloParams, SloTriple, SloVerdict};

const USAGE: &str = "usage: tbl_slo [--bugs c3831,c3881,c5456] [--scales 64,128,256] \
[--users N] [--seed N] [--modes real,colo,scpil] [--json-out PATH] [--table-out PATH] \
[--no-write] [--smoke] [--budget-secs N] [--jobs N] [--no-cache]";

/// The schema tag committed artifacts carry. v2: requests run coupled
/// to the simulated CPUs and network, rows gain `tail_saturated` /
/// `retried` / `data_dropped`, and the default sweep reaches N=256.
const SCHEMA: &str = "bench_slo/v2";

/// Default virtual-user population per cell. The datapath is
/// O(requests), not O(users), so a million costs the same as a
/// thousand.
const DEFAULT_USERS: u64 = 1_000_000;

/// The swept scenario: the named bug with the open-loop traffic
/// datapath attached.
fn slo_scenario(bug: &str, n: usize, seed: u64, users: u64) -> ScenarioConfig {
    bug_scenario(bug, n, seed).with_traffic(TrafficConfig::open_loop(users))
}

fn all_modes() -> [ExecMode; 3] {
    [
        ExecMode::Real,
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ]
}

/// Parses the `--modes` selector: a comma-separated subset of
/// `real` / `colo` / `scpil`, swept in the order given.
fn parse_modes(spec: &str) -> Result<Vec<ExecMode>, String> {
    spec.split(',')
        .map(|m| match m.trim().to_ascii_lowercase().as_str() {
            "real" => Ok(ExecMode::Real),
            "colo" => Ok(ExecMode::Colo { cores: COLO_CORES }),
            "scpil" | "sc+pil" => Ok(ExecMode::ScPil {
                cores: COLO_CORES,
                ordered: false,
            }),
            other => Err(format!(
                "unknown mode '{other}' (expected real, colo or scpil)"
            )),
        })
        .collect()
}

/// Builds the sweep cell for one `(bug, n, mode)` point. The key is
/// namespaced by schema and embeds the whole spec, so the arrival
/// configuration participates in the cache key.
fn slo_cell(bug: &str, n: usize, seed: u64, users: u64, mode: ExecMode) -> Cell<RunReport> {
    let spec = CellSpec::new(slo_scenario(bug, n, seed, users), mode);
    let key = serde_json::to_value(&(SCHEMA, &spec)).expect("cell key serializes");
    Cell::new(
        format!("slo {bug} N={n} {}", mode.label()),
        key,
        move || spec.run(),
    )
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// One `bench_slo/v2` row.
fn row_json(bug: &str, n: usize, mode_label: &str, r: &RunReport) -> serde_json::Value {
    let s = r.traffic.slo_summary();
    serde_json::json!({
        "bug": bug,
        "nodes": n,
        "mode": mode_label,
        "total_flaps": r.total_flaps,
        "attempted": s.attempted,
        "failed": r.traffic.failed,
        "degraded": r.traffic.degraded,
        "p50_ns": s.p50_ns,
        "p99_ns": s.p99_ns,
        "p999_ns": s.p999_ns,
        "tail_saturated": s.tail_saturated,
        "retried": r.traffic.retried,
        "data_dropped": r.traffic.data_dropped,
        "availability_permille": s.availability_permille,
        "budget_burned_permille": s.budget_burned_permille,
        "budget_breached": s.budget_breached,
        "log_digest": r.traffic.log_digest,
    })
}

/// Checks one row against the `bench_slo/v2` contract. Returns the
/// first violation, if any.
fn validate_row(row: &serde_json::Value) -> Result<(), String> {
    let u64_fields = [
        "nodes",
        "total_flaps",
        "attempted",
        "failed",
        "degraded",
        "p50_ns",
        "p99_ns",
        "p999_ns",
        "retried",
        "data_dropped",
        "availability_permille",
        "budget_burned_permille",
    ];
    for f in u64_fields {
        row.get(f)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("row missing u64 field '{f}'"))?;
    }
    for f in ["bug", "mode", "log_digest"] {
        row.get(f)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("row missing string field '{f}'"))?;
    }
    let digest = row.get("log_digest").and_then(|v| v.as_str()).unwrap();
    if digest.len() != 32 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("log_digest must be 32 hex chars, got '{digest}'"));
    }
    let avail = row.get("availability_permille").and_then(|v| v.as_u64());
    if avail.is_none_or(|a| a > 1000) {
        return Err("availability_permille must be <= 1000".to_string());
    }
    for f in ["budget_breached", "tail_saturated"] {
        row.get(f)
            .and_then(|v| v.as_bool())
            .ok_or_else(|| format!("row missing bool field '{f}'"))?;
    }
    Ok(())
}

/// Checks a whole document: schema tag, non-empty rows, every row
/// well-formed, and verdict entries consistent.
fn validate_doc(doc: &serde_json::Value) -> Result<(), String> {
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some(SCHEMA) => {}
        other => return Err(format!("schema tag must be '{SCHEMA}', got {other:?}")),
    }
    doc.get("seed")
        .and_then(|v| v.as_u64())
        .ok_or("document missing u64 'seed'".to_string())?;
    doc.get("users")
        .and_then(|v| v.as_u64())
        .ok_or("document missing u64 'users'".to_string())?;
    let rows = doc
        .get("rows")
        .and_then(|v| v.as_array())
        .ok_or("document missing 'rows' array".to_string())?;
    if rows.is_empty() {
        return Err("document has zero rows".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        validate_row(row).map_err(|e| format!("row {i}: {e}"))?;
    }
    let verdicts = doc
        .get("verdicts")
        .and_then(|v| v.as_array())
        .ok_or("document missing 'verdicts' array".to_string())?;
    for (i, v) in verdicts.iter().enumerate() {
        for f in ["colo_diverges", "pil_tracks", "paper"] {
            v.get(f)
                .and_then(|b| b.as_bool())
                .ok_or_else(|| format!("verdict {i}: missing bool field '{f}'"))?;
        }
    }
    Ok(())
}

/// One `(bug, n)` group with its three per-mode summaries.
struct Point {
    bug: String,
    n: usize,
    rows: Vec<(&'static str, RunReport)>,
}

impl Point {
    fn summary(&self, label: &str) -> Option<SloSummary> {
        self.rows
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, r)| r.traffic.slo_summary())
    }

    /// The SLO triple, present only when all three deployments ran.
    fn triple(&self) -> Option<SloTriple> {
        Some(SloTriple {
            real: self.summary("Real")?,
            colo: self.summary("Colo")?,
            pil: self.summary("SC+PIL")?,
        })
    }
}

fn verdict_json(p: &Point, triple: &SloTriple, v: &SloVerdict) -> serde_json::Value {
    serde_json::json!({
        "bug": p.bug,
        "nodes": p.n,
        "real_p999_ns": triple.real.p999_ns,
        "colo_p999_ns": triple.colo.p999_ns,
        "pil_p999_ns": triple.pil.p999_ns,
        "colo_diverges": v.colo_diverges,
        "pil_tracks": v.pil_tracks,
        "paper": v.paper(),
    })
}

/// Renders the human table; also what `TBL_slo.txt` holds.
fn render_table(seed: u64, users: u64, points: &[Point], params: &SloParams) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "SLO table — {users} open-loop users, QUORUM r/w, seed {seed}: user-visible verdicts"
    );
    let _ = writeln!(
        out,
        "p in ms ('+' = tail saturated at the observed max, typically the client timeout);"
    );
    let _ = writeln!(
        out,
        "avail/burn in permille; retry = weighted client retries fed back into offered load;"
    );
    let _ = writeln!(
        out,
        "verdict: diverge = Colo p99.9/budget departs Real, track = SC+PIL stays within"
    );
    let _ = writeln!(out, "the allowance of Real\n");
    let mut buf = vec![vec![
        "bug".to_string(),
        "#Nodes".to_string(),
        "mode".to_string(),
        "flaps".to_string(),
        "p50".to_string(),
        "p99".to_string(),
        "p99.9".to_string(),
        "retry".to_string(),
        "avail".to_string(),
        "burn".to_string(),
        "breach".to_string(),
    ]];
    for p in points {
        for (label, r) in &p.rows {
            let s = r.traffic.slo_summary();
            buf.push(vec![
                p.bug.clone(),
                p.n.to_string(),
                label.to_string(),
                r.total_flaps.to_string(),
                format!("{:.2}", ms(s.p50_ns)),
                format!("{:.2}", ms(s.p99_ns)),
                format!(
                    "{:.2}{}",
                    ms(s.p999_ns),
                    if s.tail_saturated { "+" } else { "" }
                ),
                r.traffic.retried.to_string(),
                s.availability_permille.to_string(),
                s.budget_burned_permille.to_string(),
                if s.budget_breached { "YES" } else { "-" }.to_string(),
            ]);
        }
    }
    for cells in buf {
        let line: Vec<String> = cells.iter().map(|c| format!("{c:>8}")).collect();
        let _ = writeln!(out, "{}", line.join(" "));
    }
    let _ = writeln!(
        out,
        "\nverdicts (allowance: max({}‰ of Real p99.9, {:.1}ms), availability slack {}‰):",
        params.p999_inflation_permille,
        ms(params.p999_slack_ns),
        params.availability_slack_permille,
    );
    for p in points {
        let Some(t) = p.triple() else {
            let _ = writeln!(out, "  {} N={}: (needs real+colo+scpil)", p.bug, p.n);
            continue;
        };
        let v = t.verdict(params);
        let _ = writeln!(
            out,
            "  {} N={:>4}: colo_diverges={:<5} pil_tracks={:<5} paper_shape={}",
            p.bug,
            p.n,
            v.colo_diverges,
            v.pil_tracks,
            v.paper(),
        );
    }
    out
}

fn smoke(seed: u64, users: u64, budget_secs: f64) -> ! {
    // The c3831 128-node Real and Colo cells, always executed (never
    // cache-served). Three contracts, on exactly the point the paper's
    // user-visible claim rests on:
    //  1. `bench_slo/v2` rows validate;
    //  2. the Colo tail *diverges* from Real — the coupled datapath
    //     must surface C3831's CPU starvation past the test scale;
    //  3. the Colo cell re-run reproduces its traffic report
    //     byte-for-byte (the datapath's determinism contract).
    let bug = "c3831";
    let n = 128;
    let t0 = Instant::now();
    let mut reports = Vec::new();
    for mode in [ExecMode::Real, ExecMode::Colo { cores: COLO_CORES }] {
        let spec = CellSpec::new(slo_scenario(bug, n, seed, users), mode);
        eprintln!("[smoke] running {bug} N={n} {} ...", mode.label());
        reports.push((mode, spec.run()));
    }
    let wall = t0.elapsed().as_secs_f64();
    let rows: Vec<serde_json::Value> = reports
        .iter()
        .map(|(mode, r)| row_json(bug, n, mode.label(), r))
        .collect();
    let verdicts: Vec<serde_json::Value> = Vec::new();
    let doc = serde_json::json!({
        "schema": SCHEMA,
        "seed": seed,
        "users": users,
        "rows": rows,
        "verdicts": verdicts,
    });
    if let Err(e) = validate_doc(&doc) {
        eprintln!("[smoke] FAIL: schema violation: {e}");
        std::process::exit(1);
    }
    let (real, colo) = (&reports[0].1, &reports[1].1);
    for (label, r) in [("Real", real), ("Colo", colo)] {
        let s = r.traffic.slo_summary();
        println!(
            "smoke: {bug} N={n} {label} attempted={} p99.9={:.2}ms avail={}‰ retried={} digest={}",
            s.attempted,
            ms(s.p999_ns),
            s.availability_permille,
            r.traffic.retried,
            r.traffic.log_digest,
        );
        if s.attempted == 0 {
            eprintln!("[smoke] FAIL: {label} attempted zero requests");
            std::process::exit(1);
        }
    }
    // The divergence assertion: same params the full table applies.
    let triple = SloTriple {
        real: real.traffic.slo_summary(),
        colo: colo.traffic.slo_summary(),
        // Only colo_diverges is under test; feed Real in for PIL so
        // pil_tracks is vacuously true.
        pil: real.traffic.slo_summary(),
    };
    let v = triple.verdict(&SloParams::default());
    if !v.colo_diverges {
        eprintln!(
            "[smoke] FAIL: Colo SLO does not diverge from Real at {bug} N={n} \
             (real p99.9={:.2}ms colo p99.9={:.2}ms): the coupled datapath lost \
             the paper's user-visible signal",
            ms(triple.real.p999_ns),
            ms(triple.colo.p999_ns),
        );
        std::process::exit(1);
    }
    let rerun = CellSpec::new(
        slo_scenario(bug, n, seed, users),
        ExecMode::Colo { cores: COLO_CORES },
    )
    .run();
    if rerun.traffic != colo.traffic {
        eprintln!("[smoke] FAIL: traffic report not reproducible across reruns");
        std::process::exit(1);
    }
    if wall > budget_secs {
        eprintln!("[smoke] FAIL: {wall:.2}s exceeds the {budget_secs:.0}s wall budget");
        std::process::exit(1);
    }
    println!(
        "smoke: PASS (schema ok, colo diverges from real, digest stable, within {budget_secs:.0}s budget)"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);
    let users: u64 = parse_flag(&args, "--users")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(DEFAULT_USERS);
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![64, 128, 256]);
    let bugs: Vec<String> = parse_list_flag(&args, "--bugs")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec!["c3831".into(), "c3881".into(), "c5456".into()]);
    let json_out = flag_value(&args, "--json-out")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "BENCH_slo.json".to_string());
    let table_out = flag_value(&args, "--table-out")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "TBL_slo.txt".to_string());
    let no_write = has_flag(&args, "--no-write");
    let budget_secs: f64 = parse_flag(&args, "--budget-secs")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(120.0);
    let modes: Vec<ExecMode> =
        match flag_value(&args, "--modes").unwrap_or_else(|e| exit_usage(USAGE, &e)) {
            Some(spec) => parse_modes(&spec).unwrap_or_else(|e| exit_usage(USAGE, &e)),
            None => all_modes().to_vec(),
        };
    for bug in &bugs {
        if let Err(e) = scalecheck_bench::try_bug_scenario(bug, 8, seed) {
            exit_usage(USAGE, &e);
        }
    }
    if has_flag(&args, "--smoke") {
        smoke(seed, users, budget_secs);
    }

    let mut cells = Vec::new();
    for bug in &bugs {
        for &n in &scales {
            for &mode in &modes {
                cells.push(slo_cell(bug, n, seed, users, mode));
            }
        }
    }
    let out = run_sweep(cells, &opts);

    let mut points: Vec<Point> = Vec::new();
    let mut idx = 0;
    for bug in &bugs {
        for &n in &scales {
            let mut rows = Vec::new();
            for mode in &modes {
                rows.push((mode.label(), out.results[idx].clone()));
                idx += 1;
            }
            points.push(Point {
                bug: bug.clone(),
                n,
                rows,
            });
        }
    }

    let params = SloParams::default();
    let table = render_table(seed, users, &points, &params);
    print!("{table}");

    let rows: Vec<serde_json::Value> = points
        .iter()
        .flat_map(|p| {
            p.rows
                .iter()
                .map(|(label, r)| row_json(&p.bug, p.n, label, r))
        })
        .collect();
    let verdicts: Vec<serde_json::Value> = points
        .iter()
        .filter_map(|p| {
            let t = p.triple()?;
            Some(verdict_json(p, &t, &t.verdict(&params)))
        })
        .collect();
    let params_json = serde_json::to_value(&params).expect("params serialize");
    let doc = serde_json::json!({
        "schema": SCHEMA,
        "seed": seed,
        "users": users,
        "params": params_json,
        "rows": rows,
        "verdicts": verdicts,
    });
    validate_doc(&doc).unwrap_or_else(|e| {
        eprintln!("internal error: generated document violates {SCHEMA}: {e}");
        std::process::exit(1);
    });
    if no_write {
        return;
    }
    std::fs::write(&json_out, format!("{doc}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {json_out}: {e}");
        std::process::exit(1);
    });
    std::fs::write(&table_out, &table).unwrap_or_else(|e| {
        eprintln!("cannot write {table_out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {json_out} and {table_out}");
}
