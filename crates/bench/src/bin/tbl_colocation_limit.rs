//! Regenerates the §8 colocation-limit experiment: "on the 16-core
//! 32-GB Nome machine, we can reach a maximum colocation factor of 512.
//! When we tried colocating 600 nodes, we hit one of the following
//! limitations: high CPU contention (>90% utilization), memory
//! exhaustion [...], or high event lateness."
//!
//! The limits bite in the *memoization* step — the one-time basic
//! colocation run that executes the real scale-dependent computation —
//! so that is what the sweep diagnoses, under a C3831-like decommission
//! with the quadratic calculator (the post-fix code the paper actually
//! colocated at these factors). Two configurations are contrasted:
//!
//! * the §6 scale-checkable redesign (single process, global event
//!   queue): survives the whole sweep with headroom;
//! * naive per-process / per-thread colocation (70 MB runtime each,
//!   context-switch amplification): collapses far earlier — §6's point
//!   that systems are not built scale-checkable.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_colocation_limit
//! ```

use scalecheck::{Bottleneck, BottleneckThresholds, CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, parse_list_flag, print_row, run_sweep, spec_cell, SweepOptions,
};
use scalecheck_cluster::{CalcVersion, ScenarioConfig, Workload};
use scalecheck_sim::SimDuration;

const USAGE: &str =
    "usage: tbl_colocation_limit [--factors 128,256,384,512,600] [--jobs N] [--no-cache]";

fn scenario(n: usize, scale_checkable: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::baseline(n, 1);
    // The post-C3831 quadratic calculator: the code the paper colocated
    // at these factors (physical tokens). In this substrate the
    // redesigned configuration keeps headroom past the paper's 512 —
    // virtual time has no JVM/kernel tax — so the interesting contrast
    // is against the per-process configuration, which memory kills
    // between 384 and 512 exactly as S6 predicts.
    cfg.calculator = CalcVersion::V2Quadratic;
    cfg.vnodes = 1;
    cfg.ns_per_op = 160;
    cfg.workload = Workload::Decommission {
        count: 1,
        gap: SimDuration::from_secs(60),
    };
    cfg.rescale_window = SimDuration::from_secs(60);
    cfg.workload_end = SimDuration::from_secs(140);
    cfg.max_duration = SimDuration::from_secs(1200);
    cfg.memory.single_process = scale_checkable;
    cfg.global_event_queue = scale_checkable;
    cfg
}

const CONFIGS: [(&str, bool); 2] = [
    ("single process + global event queue (S6 redesign)", true),
    (
        "one process per node (70 MB runtime each) + per-node threads",
        false,
    ),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let factors: Vec<usize> = parse_list_flag(&args, "--factors")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![128, 256, 384, 512, 600]);
    let thresholds = BottleneckThresholds::default();

    let mut cells = Vec::new();
    for (label, scale_checkable) in CONFIGS {
        for &n in &factors {
            cells.push(spec_cell(
                format!(
                    "t-colo-limit {} N={n}",
                    if scale_checkable { "S6" } else { "naive" }
                ),
                CellSpec::new(
                    scenario(n, scale_checkable),
                    ExecMode::Memo { cores: COLO_CORES },
                ),
            ));
        }
        let _ = label;
    }
    let out = run_sweep(cells, &opts);

    println!("Colocation limits of the memoization run on a 16-core / 32-GB machine (S6, S8)\n");

    for (c, (label, _)) in CONFIGS.iter().enumerate() {
        println!("config: {label}");
        print_row(
            &[
                "nodes".into(),
                "cpu".into(),
                "mem-peak".into(),
                "p99-lateness".into(),
                "verdict".into(),
            ],
            14,
        );
        let mut max_ok = None;
        for (i, &n) in factors.iter().enumerate() {
            let r = &out.results[c * factors.len() + i];
            let hits = scalecheck::diagnose(r, &thresholds);
            let verdict = if hits.is_empty() {
                max_ok = Some(n);
                "ok".to_string()
            } else {
                hits.iter()
                    .map(|b| match b {
                        Bottleneck::CpuContention => "cpu>90%",
                        Bottleneck::MemoryExhaustion => "OOM",
                        Bottleneck::EventLateness => "lateness",
                    })
                    .collect::<Vec<_>>()
                    .join("+")
            };
            print_row(
                &[
                    n.to_string(),
                    format!("{:.0}%", r.cpu_utilization * 100.0),
                    format!("{:.1}G", r.mem_peak_bytes as f64 / (1u64 << 30) as f64),
                    format!("{}", r.p99_stage_lateness),
                    verdict,
                ],
                14,
            );
        }
        match max_ok {
            Some(n) => println!("=> maximum clean colocation factor: {n}\n"),
            None => println!("=> no clean colocation factor in the sweep\n"),
        }
    }
}
