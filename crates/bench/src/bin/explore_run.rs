//! Schedule-exploration driver: perturb-and-shrink interleaving search
//! over the deterministic engine (see `crates/explore`).
//!
//! Three modes:
//!
//! * **hunt** (default) — sweep the given cells under the wall/eval
//!   budget, print the outcome table, and (optionally) write the first
//!   discovered minimal witness to `--witness-out`.
//! * **`--smoke`** — pinned cheap cells that the stock engine handles
//!   deterministically; asserts *zero* verdict flips and exits nonzero
//!   on any flip (the CI guard that tie-order plumbing stays inert on
//!   the identity path).
//! * **`--replay FILE`** — replays a committed witness from scratch and
//!   asserts the verdict still flips and the perturbed report digest is
//!   bit-identical; exits nonzero otherwise.

use std::time::Instant;

use scalecheck_bench::{exit_usage, flag_value, has_flag, parse_flag};
use scalecheck_explore::{
    explore_cell, render_table, CellPlan, ExploreOpts, ScheduleWitness, Target,
};

const USAGE: &str = "\
usage: explore_run [options]

modes (default: hunt over --cells):
  --smoke               run the pinned smoke cells; fail on any verdict flip
  --replay FILE         replay a witness JSON; fail unless it still flips
                        with a bit-identical perturbed report

options:
  --cells SPEC[,SPEC]   cells to explore, SPEC = bug:nodes:seed:target
                        (bug: baseline|c3831|c3881|c5456|c6127|race;
                         target: real|colo|scpil — `race` is the
                         tie-heavy preset engineered so interleaving
                         genuinely decides convictions)
  --budget-secs N       wall-clock budget across all cells (default 120)
  --max-evals N         perturbation evaluations per cell (default 40)
  --shuffles N          shuffle seeds per cell (default 8)
  --max-swaps N         targeted-swap frontier cap per cell (default 24)
  --witness-out FILE    write the first discovered witness as JSON
  --table-out FILE      write the outcome table (TBL_explore format)
";

/// The smoke suite: cheap cells whose identity schedules the verdict
/// pipeline classifies robustly — swaps and shuffles must not flip
/// them. Budgeted tightly so CI stays fast; the assertion is "no
/// flips", so an exhausted budget only makes the guard weaker, never
/// flaky.
fn smoke_cells() -> Vec<CellPlan> {
    vec![
        cell("baseline", 8, 1, Target::Real),
        cell("baseline", 8, 1, Target::Colo),
        cell("c3831", 16, 1, Target::ScPil),
    ]
}

fn cell(bug: &str, n_nodes: usize, seed: u64, target: Target) -> CellPlan {
    CellPlan {
        bug: bug.to_string(),
        n_nodes,
        seed,
        target,
    }
}

fn parse_target(raw: &str) -> Result<Target, String> {
    match raw {
        "real" => Ok(Target::Real),
        "colo" => Ok(Target::Colo),
        "scpil" => Ok(Target::ScPil),
        other => Err(format!("unknown target '{other}' (use real|colo|scpil)")),
    }
}

fn parse_cells(raw: &str) -> Result<Vec<CellPlan>, String> {
    raw.split(',')
        .map(|spec| {
            let parts: Vec<&str> = spec.trim().split(':').collect();
            let [bug, n, seed, target] = parts.as_slice() else {
                return Err(format!("cell '{spec}' is not bug:nodes:seed:target"));
            };
            let n_nodes: usize = n
                .parse()
                .map_err(|_| format!("cell '{spec}': bad node count '{n}'"))?;
            let seed: u64 = seed
                .parse()
                .map_err(|_| format!("cell '{spec}': bad seed '{seed}'"))?;
            Ok(CellPlan {
                bug: bug.to_string(),
                n_nodes,
                seed,
                target: parse_target(target)?,
            })
        })
        .collect()
}

fn replay_witness(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read witness {path}: {e}");
            return 1;
        }
    };
    let witness = match ScheduleWitness::from_json(&text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "replaying witness: bug={} n={} seed={} target={} swaps={} shuffle={:?}",
        witness.bug,
        witness.n_nodes,
        witness.seed,
        witness.target.name(),
        witness.tie_order.swaps.len(),
        witness.tie_order.shuffle,
    );
    let start = Instant::now();
    let replay = witness.replay();
    println!(
        "baseline (real={} colo={} pil={}) -> perturbed (real={} colo={} pil={}) in {:.1}s",
        replay.baseline.real,
        replay.baseline.colo,
        replay.baseline.pil,
        replay.perturbed.real,
        replay.perturbed.colo,
        replay.perturbed.pil,
        start.elapsed().as_secs_f64(),
    );
    let mut ok = true;
    if replay.baseline != witness.baseline {
        eprintln!(
            "FAIL: baseline triple diverged (stored real={} colo={} pil={})",
            witness.baseline.real, witness.baseline.colo, witness.baseline.pil
        );
        ok = false;
    }
    if replay.perturbed != witness.perturbed {
        eprintln!(
            "FAIL: perturbed triple diverged (stored real={} colo={} pil={})",
            witness.perturbed.real, witness.perturbed.colo, witness.perturbed.pil
        );
        ok = false;
    }
    if !replay.flipped {
        eprintln!("FAIL: witness no longer flips the verdict");
        ok = false;
    }
    if replay.report_digest != witness.report_digest {
        eprintln!(
            "FAIL: perturbed report digest diverged ({} vs stored {})",
            replay.report_digest, witness.report_digest
        );
        ok = false;
    }
    if ok {
        println!("OK: verdict flip reproduced bit-identically");
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--help") || has_flag(&args, "-h") {
        println!("{USAGE}");
        return;
    }

    if let Some(path) = flag_value(&args, "--replay").unwrap_or_else(|e| exit_usage(USAGE, &e)) {
        std::process::exit(replay_witness(&path));
    }

    let smoke = has_flag(&args, "--smoke");
    let mut opts = ExploreOpts::default();
    if let Some(b) = parse_flag::<u64>(&args, "--budget-secs").unwrap_or_else(|e| {
        exit_usage(USAGE, &e);
    }) {
        opts.budget_secs = b;
    }
    if let Some(m) =
        parse_flag::<usize>(&args, "--max-evals").unwrap_or_else(|e| exit_usage(USAGE, &e))
    {
        opts.max_evals = m;
    }
    if let Some(s) =
        parse_flag::<u64>(&args, "--shuffles").unwrap_or_else(|e| exit_usage(USAGE, &e))
    {
        opts.shuffles = s;
    }
    if let Some(c) =
        parse_flag::<usize>(&args, "--max-swaps").unwrap_or_else(|e| exit_usage(USAGE, &e))
    {
        opts.max_swap_candidates = c;
    }
    if smoke {
        // Keep the CI stage cheap and deterministic.
        opts.max_evals = opts.max_evals.min(6);
        opts.shuffles = opts.shuffles.min(2);
    }

    let cells = match flag_value(&args, "--cells").unwrap_or_else(|e| exit_usage(USAGE, &e)) {
        Some(raw) => parse_cells(&raw).unwrap_or_else(|e| exit_usage(USAGE, &e)),
        None if smoke => smoke_cells(),
        None => exit_usage(USAGE, "hunt mode needs --cells (or pass --smoke)"),
    };

    let start = Instant::now();
    let deadline = start + std::time::Duration::from_secs(opts.budget_secs);
    let mut outcomes = Vec::new();
    for plan in &cells {
        eprintln!(
            "exploring {}:{}:{}:{} ...",
            plan.bug,
            plan.n_nodes,
            plan.seed,
            plan.target.name()
        );
        outcomes.push(explore_cell(plan, &opts, deadline));
    }

    let table = render_table(&outcomes);
    print!("{table}");
    println!(
        "# {} cells, {} runs, {:.1}s",
        outcomes.len(),
        outcomes.iter().map(|o| o.runs).sum::<usize>(),
        start.elapsed().as_secs_f64(),
    );

    if let Some(path) = flag_value(&args, "--table-out").unwrap_or_else(|e| exit_usage(USAGE, &e)) {
        std::fs::write(&path, &table).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = flag_value(&args, "--witness-out").unwrap_or_else(|e| exit_usage(USAGE, &e))
    {
        match outcomes.iter().find_map(|o| o.witness.as_ref()) {
            Some(w) => {
                std::fs::write(&path, w.to_json()).unwrap_or_else(|e| {
                    eprintln!("error: cannot write {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("wrote witness {path}");
            }
            None => eprintln!("no witness found; {path} not written"),
        }
    }

    let flips: usize = outcomes.iter().map(|o| o.flips_found).sum();
    if smoke && flips > 0 {
        eprintln!("FAIL: smoke cells must not flip (found {flips})");
        std::process::exit(1);
    }
}
