//! Fault-intensity table: #flaps (and fault attribution) vs cluster
//! size under a deterministic fault storm, for Real, Colo, and SC+PIL.
//!
//! The paper's argument is that scalability bugs surface under faults
//! at large scale; this table shows the three execution modes agree on
//! the *faulty* runs too — SC+PIL tracks Real under the same storm
//! while Colo's contention distorts the flap counts.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_faults -- --bug c3831
//! ```
//!
//! Options:
//! * `--bug c3831|c3881|c5456|c6127` — which scenario (default c3831);
//! * `--scales 16,32,64` — cluster sizes (default 16,32,64);
//! * `--intensities 0,0.3,0.7` — storm intensities in `[0, 1]`;
//! * `--seed 1` — simulation seed (also seeds the storm generator);
//! * `--json` — additionally emit one JSON object per cell;
//! * `--jobs N` — parallel sweep workers (default all cores);
//! * `--no-cache` — bypass the on-disk result cache.

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, has_flag, parse_flag, parse_list_flag, print_row, report_json, run_sweep,
    spec_cell, try_bug_scenario, SweepOptions,
};
use scalecheck_cluster::FaultPlan;

const USAGE: &str = "usage: tbl_faults [--bug c3831|c3881|c5456|c6127] [--scales 16,32,64] \
[--intensities 0,0.3,0.7] [--seed N] [--json] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let bug = scalecheck_bench::flag_value(&args, "--bug")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "c3831".to_string());
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![16, 32, 64]);
    let intensities: Vec<f64> = parse_list_flag(&args, "--intensities")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| vec![0.0, 0.3, 0.7]);
    let json = has_flag(&args, "--json");

    // One cell per (intensity, scale, mode): independent engines, any
    // completion order, canonical assembly below.
    const MODES: [ExecMode; 3] = [
        ExecMode::Real,
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ];
    let mut cells = Vec::new();
    for &intensity in &intensities {
        for &n in &scales {
            let plan = FaultPlan::storm(seed, n as u32, intensity);
            let cfg = try_bug_scenario(&bug, n, seed)
                .unwrap_or_else(|e| exit_usage(USAGE, &e))
                .with_faults(plan);
            for mode in MODES {
                cells.push(spec_cell(
                    format!("faults {bug} i={intensity} N={n} {}", mode.label()),
                    CellSpec::new(cfg.clone(), mode),
                ));
            }
        }
    }
    let out = run_sweep(cells, &opts);

    println!("Fault-intensity table — {bug}: #flaps under a deterministic fault storm");
    println!("attr = flaps attributable to injected faults (SC+PIL run)\n");
    print_row(
        &[
            "intens".into(),
            "#Nodes".into(),
            "Real".into(),
            "Colo".into(),
            "SC+PIL".into(),
            "attr".into(),
            "dropped".into(),
            "down_s".into(),
        ],
        8,
    );

    let mut idx = 0;
    for &intensity in &intensities {
        for &n in &scales {
            let real = &out.results[idx];
            let colo = &out.results[idx + 1];
            let pil = &out.results[idx + 2];
            idx += 3;
            print_row(
                &[
                    format!("{intensity:.2}"),
                    n.to_string(),
                    real.total_flaps.to_string(),
                    colo.total_flaps.to_string(),
                    pil.total_flaps.to_string(),
                    pil.faults.attributed_flaps.to_string(),
                    pil.faults.fault_dropped.to_string(),
                    format!("{:.0}", pil.faults.total_downtime().as_secs_f64()),
                ],
                8,
            );
            if json {
                for (label, r) in [("Real", real), ("Colo", colo), ("SC+PIL", pil)] {
                    let mut v = report_json(label, n, r);
                    if let serde_json::Value::Object(ref mut map) = v {
                        map.push(("intensity".into(), serde_json::json!(intensity)));
                        map.push((
                            "attributed_flaps".into(),
                            serde_json::json!(r.faults.attributed_flaps),
                        ));
                        map.push((
                            "fault_dropped".into(),
                            serde_json::json!(r.faults.fault_dropped),
                        ));
                        map.push((
                            "faults_fired".into(),
                            serde_json::json!(r.faults.fired.len()),
                        ));
                    }
                    println!("{v}");
                }
            }
        }
    }

    // Cache accounting goes to stderr via the sweep harness; stdout
    // stays byte-identical between cold and warm runs.
    let _ = (out.cached, out.executed);
}
