//! Regenerates the paper's Figure 3: #flaps vs cluster size for one
//! bug, under Real, Colo, and SC+PIL.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin fig3_flaps -- --bug c3831
//! ```
//!
//! Options:
//! * `--bug c3831|c3881|c5456` — which panel (default c3831);
//! * `--scales 32,64,128,256` — x-axis (default the paper's);
//! * `--seed 1` — simulation seed;
//! * `--json` — additionally emit one JSON object per point.

use scalecheck::{memoize, replay, run_colo, run_real, COLO_CORES};
use scalecheck_bench::{bug_scenario, flag_value, has_flag, print_row, report_json, PAPER_SCALES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bug = flag_value(&args, "--bug").unwrap_or_else(|| "c3831".to_string());
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().expect("--seed must be an integer"))
        .unwrap_or(1);
    let scales: Vec<usize> = flag_value(&args, "--scales")
        .map(|s| {
            s.split(',')
                .map(|x| x.trim().parse().expect("--scales must be integers"))
                .collect()
        })
        .unwrap_or_else(|| PAPER_SCALES.to_vec());
    let json = has_flag(&args, "--json");

    let title = match bug.as_str() {
        "c3831" => "Figure 3a — c3831: Decommission",
        "c3881" => "Figure 3b — c3881: Scale-Out",
        "c5456" => "Figure 3c — c5456: Scale-Out",
        other => other,
    };
    println!("{title}");
    println!("#flaps observed across the whole cluster (paper plots x1000)\n");
    print_row(
        &[
            "#Nodes".into(),
            "Real".into(),
            "Colo".into(),
            "SC+PIL".into(),
            "hit%".into(),
        ],
        10,
    );

    let mut rows = Vec::new();
    let mut unavail: Vec<(f64, f64)> = Vec::new();
    for &n in &scales {
        let cfg = bug_scenario(&bug, n, seed);
        eprintln!("[fig3 {bug}] N={n}: running Real...");
        let real = run_real(&cfg);
        eprintln!(
            "[fig3 {bug}] N={n}: Real flaps={} dur={:.0}s; running Colo...",
            real.total_flaps,
            real.duration.as_secs_f64()
        );
        let colo = run_colo(&cfg, COLO_CORES);
        eprintln!(
            "[fig3 {bug}] N={n}: Colo flaps={} dur={:.0}s; memoizing + replaying...",
            colo.total_flaps,
            colo.duration.as_secs_f64()
        );
        let memo = memoize(&cfg, COLO_CORES);
        let pil = replay(&cfg, COLO_CORES, &memo);
        eprintln!(
            "[fig3 {bug}] N={n}: SC+PIL flaps={} dur={:.0}s hit-rate={:.2}",
            pil.total_flaps,
            pil.duration.as_secs_f64(),
            pil.memo.replay_hit_rate()
        );
        print_row(
            &[
                n.to_string(),
                real.total_flaps.to_string(),
                colo.total_flaps.to_string(),
                pil.total_flaps.to_string(),
                format!("{:.0}", pil.memo.replay_hit_rate() * 100.0),
            ],
            10,
        );
        if json {
            println!("{}", report_json("Real", n, &real));
            println!("{}", report_json("Colo", n, &colo));
            println!("{}", report_json("SC+PIL", n, &pil));
        }
        rows.push((n, real.total_flaps, colo.total_flaps, pil.total_flaps));
        unavail.push((real.unavailability(), pil.unavailability()));
    }

    // Shape summary (the paper's qualitative claims).
    println!();
    let peak = rows.last().expect("at least one scale");
    println!(
        "shape: at N={}, Colo/Real = {:.1}x, SC+PIL/Real = {:.2}x",
        peak.0,
        ratio(peak.2, peak.1),
        ratio(peak.3, peak.1),
    );
    if let Some((real_u, pil_u)) = unavail.last() {
        println!(
            "user impact at N={}: unavailability Real {:.2}%, SC+PIL {:.2}%",
            peak.0,
            real_u * 100.0,
            pil_u * 100.0
        );
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}
