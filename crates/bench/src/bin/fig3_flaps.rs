//! Regenerates the paper's Figure 3: #flaps vs cluster size for one
//! bug, under Real, Colo, and SC+PIL.
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin fig3_flaps -- --bug c3831
//! ```
//!
//! Options:
//! * `--bug c3831|c3881|c5456` — which panel (default c3831);
//! * `--scales 32,64,128,256` — x-axis (default the paper's);
//! * `--seed 1` — simulation seed;
//! * `--json` — additionally emit one JSON object per point;
//! * `--jobs N` — parallel sweep workers (default all cores);
//! * `--no-cache` — bypass the on-disk result cache.

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, has_flag, parse_flag, parse_list_flag, print_row, report_json, run_sweep,
    spec_cell, try_bug_scenario, SweepOptions, PAPER_SCALES,
};

const USAGE: &str = "usage: fig3_flaps [--bug c3831|c3881|c5456|c6127] [--scales 32,64,128,256] \
[--seed N] [--json] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let bug = scalecheck_bench::flag_value(&args, "--bug")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "c3831".to_string());
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);
    let scales: Vec<usize> = parse_list_flag(&args, "--scales")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| PAPER_SCALES.to_vec());
    let json = has_flag(&args, "--json");

    let title = match bug.as_str() {
        "c3831" => "Figure 3a — c3831: Decommission",
        "c3881" => "Figure 3b — c3881: Scale-Out",
        "c5456" => "Figure 3c — c5456: Scale-Out",
        other => other,
    };

    // One cell per (scale, mode): independent engines, any completion
    // order, canonical assembly below.
    const MODES: [ExecMode; 3] = [
        ExecMode::Real,
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ];
    let mut cells = Vec::new();
    for &n in &scales {
        let cfg = try_bug_scenario(&bug, n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e));
        for mode in MODES {
            cells.push(spec_cell(
                format!("fig3 {bug} N={n} {}", mode.label()),
                CellSpec::new(cfg.clone(), mode),
            ));
        }
    }
    let out = run_sweep(cells, &opts);

    println!("{title}");
    println!("#flaps observed across the whole cluster (paper plots x1000)\n");
    print_row(
        &[
            "#Nodes".into(),
            "Real".into(),
            "Colo".into(),
            "SC+PIL".into(),
            "hit%".into(),
        ],
        10,
    );

    let mut rows = Vec::new();
    let mut unavail: Vec<(f64, f64)> = Vec::new();
    for (i, &n) in scales.iter().enumerate() {
        let real = &out.results[3 * i];
        let colo = &out.results[3 * i + 1];
        let pil = &out.results[3 * i + 2];
        print_row(
            &[
                n.to_string(),
                real.total_flaps.to_string(),
                colo.total_flaps.to_string(),
                pil.total_flaps.to_string(),
                format!("{:.0}", pil.memo.replay_hit_rate() * 100.0),
            ],
            10,
        );
        if json {
            println!("{}", report_json("Real", n, real));
            println!("{}", report_json("Colo", n, colo));
            println!("{}", report_json("SC+PIL", n, pil));
        }
        rows.push((n, real.total_flaps, colo.total_flaps, pil.total_flaps));
        unavail.push((real.unavailability(), pil.unavailability()));
    }

    // Shape summary (the paper's qualitative claims).
    println!();
    let peak = rows.last().unwrap_or_else(|| {
        exit_usage(USAGE, "--scales must name at least one scale");
    });
    println!(
        "shape: at N={}, Colo/Real = {:.1}x, SC+PIL/Real = {:.2}x",
        peak.0,
        ratio(peak.2, peak.1),
        ratio(peak.3, peak.1),
    );
    if let Some((real_u, pil_u)) = unavail.last() {
        println!(
            "user impact at N={}: unavailability Real {:.2}%, SC+PIL {:.2}%",
            peak.0,
            real_u * 100.0,
            pil_u * 100.0
        );
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}
