//! Divergence-diagnosis table: where does colocated virtual time go?
//!
//! ```text
//! cargo run --release -p scalecheck-bench --bin tbl_diverge -- --nodes 128
//! ```
//!
//! Reproduces §6's diagnosis narrative with traces instead of prose.
//! The same scenario runs under Real, Colo, and SC+PIL with full
//! observability tracing, then the divergence analyzer attributes the
//! colocated run's extra virtual time:
//!
//! * **Colo vs Real** — the calculation stage inflates (the shared
//!   machine queues and context-switches the O(n^3) recalculation),
//!   which is exactly the scale-dependent compute §6 says colocation
//!   distorts;
//! * **SC+PIL vs Real** — replacing the calculation with a PIL sleep
//!   removes the inflation: no category should exceed tolerance.
//!
//! Options: `--bug`, `--nodes`, `--seed` select the scenario
//! (default c3831 @ 128, seed 1); `--out PATH` also writes the table to
//! a file; `--trace-dir DIR` dumps the three Chrome traces; `--jobs` /
//! `--no-cache` are the usual sweep-harness knobs.

use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{
    exit_usage, flag_value, parse_flag, run_sweep, spec_cell, try_bug_scenario, SweepOptions,
};
use scalecheck_obs::Trace;

const USAGE: &str = "usage: tbl_diverge [--bug c3831|c3881|c5456|c6127] [--nodes N] [--seed N] \
[--out PATH] [--trace-dir DIR] [--jobs N] [--no-cache]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SweepOptions::from_args(&args).unwrap_or_else(|e| exit_usage(USAGE, &e));
    let bug = flag_value(&args, "--bug")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or_else(|| "c3831".to_string());
    let n: usize = parse_flag(&args, "--nodes")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(128);
    let seed: u64 = parse_flag(&args, "--seed")
        .unwrap_or_else(|e| exit_usage(USAGE, &e))
        .unwrap_or(1);
    let out_path = flag_value(&args, "--out").unwrap_or_else(|e| exit_usage(USAGE, &e));
    let trace_dir = flag_value(&args, "--trace-dir").unwrap_or_else(|e| exit_usage(USAGE, &e));

    let mut cfg = try_bug_scenario(&bug, n, seed).unwrap_or_else(|e| exit_usage(USAGE, &e));
    cfg.trace = scalecheck_obs::TraceConfig::enabled();

    let modes = [
        ExecMode::Real,
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ];
    let cells = modes
        .iter()
        .map(|&mode| {
            spec_cell(
                format!("diverge {bug} N={n} {}", mode.label()),
                CellSpec::new(cfg.clone(), mode),
            )
        })
        .collect();
    let out = run_sweep(cells, &opts);

    let mut traces: Vec<Trace> = Vec::new();
    for (r, mode) in out.results.iter().zip(modes.iter()) {
        let mut t = r.obs.clone();
        t.meta.label = format!("{bug}@{n} {}", mode.label());
        traces.push(t);
    }
    let (real, colo, scpil) = (&traces[0], &traces[1], &traces[2]);

    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| exit_usage(USAGE, &format!("mkdir {dir}: {e}")));
        for (t, mode) in traces.iter().zip(modes.iter()) {
            let path = format!("{dir}/{bug}_{n}_{}.json", mode.label().to_lowercase());
            std::fs::write(&path, scalecheck_obs::to_chrome_json(t).as_bytes())
                .unwrap_or_else(|e| exit_usage(USAGE, &format!("write {path}: {e}")));
            eprintln!("[tbl_diverge] wrote {path}");
        }
    }

    let colo_report = scalecheck_obs::diverge(real, colo);
    let pil_report = scalecheck_obs::diverge(real, scpil);

    let mut text = String::new();
    text.push_str(&format!(
        "Divergence diagnosis: {bug} N={n} seed={seed} (§6 colocation distortion)\n"
    ));
    for (r, mode) in out.results.iter().zip(modes.iter()) {
        let e = &r.engine;
        text.push_str(&format!(
            "  {:<7} duration={:>6.0}s flaps={:<6} engine: scheduled={} fired={} cancelled={}\n",
            mode.label(),
            r.duration.as_secs_f64(),
            r.total_flaps,
            e.scheduled,
            e.fired,
            e.cancelled,
        ));
    }
    text.push('\n');
    text.push_str(&colo_report.render());
    text.push('\n');
    text.push_str(&pil_report.render());

    let colo_ok = colo_report.top().is_some_and(|r| r.category == "calc");
    let pil_ok = !pil_report.diverged();
    text.push('\n');
    text.push_str(&format!(
        "colo-inflates-calc={} pil-within-tolerance={}\n",
        if colo_ok { "yes" } else { "NO" },
        if pil_ok { "yes" } else { "NO" },
    ));

    print!("{text}");
    if let Some(path) = out_path {
        std::fs::write(&path, text.as_bytes())
            .unwrap_or_else(|e| exit_usage(USAGE, &format!("write {path}: {e}")));
        println!("wrote {path}");
    }

    if !colo_ok || !pil_ok {
        eprintln!("error: divergence diagnosis did not match the paper's narrative");
        std::process::exit(1);
    }
}
