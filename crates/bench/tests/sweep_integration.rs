//! End-to-end checks of the parallel sweep harness through a real
//! bench binary: parallel output must be byte-identical to serial, and
//! a warm cache must execute zero cells.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

const FIG3: &str = env!("CARGO_BIN_EXE_fig3_flaps");
const TBL_FAULTS: &str = env!("CARGO_BIN_EXE_tbl_faults");

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scalecheck-sweep-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn run_fig3(dir: &PathBuf, extra: &[&str]) -> Output {
    let mut args = vec!["--bug", "c3831", "--scales", "8,12"];
    args.extend_from_slice(extra);
    Command::new(FIG3)
        .args(&args)
        .current_dir(dir)
        .output()
        .expect("spawn fig3_flaps")
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let dir = fresh_dir("par");
    let serial = run_fig3(&dir, &["--jobs", "1", "--no-cache"]);
    assert!(serial.status.success(), "serial run failed");
    let parallel = run_fig3(&dir, &["--jobs", "4", "--no-cache"]);
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs 4 stdout must be byte-identical to --jobs 1"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_executes_zero_cells() {
    let dir = fresh_dir("warm");
    let cold = run_fig3(&dir, &["--jobs", "2"]);
    assert!(cold.status.success(), "cold run failed");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("6 executed, 0 cached"),
        "cold run should execute all 6 cells, got: {cold_err}"
    );

    let warm = run_fig3(&dir, &["--jobs", "2"]);
    assert!(warm.status.success(), "warm run failed");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 executed, 6 cached"),
        "warm run should execute zero cells, got: {warm_err}"
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "cached results must reproduce the cold-run output exactly"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn run_tbl_faults(dir: &PathBuf, extra: &[&str]) -> Output {
    let mut args = vec!["--bug", "c3831", "--scales", "8"];
    args.extend_from_slice(extra);
    Command::new(TBL_FAULTS)
        .args(&args)
        .current_dir(dir)
        .output()
        .expect("spawn tbl_faults")
}

#[test]
fn fault_plans_change_the_cell_digest() {
    use scalecheck::{CellSpec, ExecMode};
    use scalecheck_bench::sweep::digest;
    use scalecheck_cluster::{FaultPlan, ScenarioConfig};

    let cfg = ScenarioConfig::c3831(8, 1);
    let key = |spec: &CellSpec| digest(&serde_json::to_value(spec).expect("spec serializes"));

    let plain = CellSpec::new(cfg.clone(), ExecMode::Real);
    let stormy = CellSpec::new(
        cfg.clone().with_faults(FaultPlan::storm(1, 8, 0.5)),
        ExecMode::Real,
    );
    assert_ne!(
        key(&plain),
        key(&stormy),
        "cells differing only in FaultPlan must digest differently"
    );
    // The same plan re-built from the same triple digests identically
    // (warm-cache hit for identical faulty cells).
    let stormy_again = CellSpec::new(cfg.with_faults(FaultPlan::storm(1, 8, 0.5)), ExecMode::Real);
    assert_eq!(key(&stormy), key(&stormy_again));
}

#[test]
fn fault_plans_key_the_sweep_cache_end_to_end() {
    let dir = fresh_dir("faults");
    let cold = run_tbl_faults(&dir, &["--intensities", "0.4"]);
    assert!(cold.status.success(), "cold tbl_faults run failed");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("3 executed, 0 cached"),
        "cold faulty sweep should execute all 3 cells, got: {cold_err}"
    );

    // Identical (scenario, plan, seed): everything served warm and the
    // table reproduced byte for byte.
    let warm = run_tbl_faults(&dir, &["--intensities", "0.4"]);
    assert!(warm.status.success(), "warm tbl_faults run failed");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 executed, 3 cached"),
        "identical fault plan should hit the cache, got: {warm_err}"
    );
    assert_eq!(cold.stdout, warm.stdout);

    // Same scenario and seed, different fault intensity: the plan is
    // the only difference, and every cell must miss.
    let other = run_tbl_faults(&dir, &["--intensities", "0.7"]);
    assert!(other.status.success(), "second-intensity run failed");
    let other_err = String::from_utf8_lossy(&other.stderr);
    assert!(
        other_err.contains("3 executed, 0 cached"),
        "a different fault plan must not reuse cached results, got: {other_err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

fn run_tbl_slo(dir: &PathBuf, extra: &[&str]) -> Output {
    let mut args = vec![
        "--bugs",
        "c3831",
        "--scales",
        "8",
        "--modes",
        "colo",
        "--no-write",
    ];
    args.extend_from_slice(extra);
    Command::new(env!("CARGO_BIN_EXE_tbl_slo"))
        .args(&args)
        .current_dir(dir)
        .output()
        .expect("spawn tbl_slo")
}

#[test]
fn arrival_configs_change_the_cell_digest() {
    use scalecheck::{CellSpec, ExecMode};
    use scalecheck_bench::sweep::digest;
    use scalecheck_cluster::{ScenarioConfig, TrafficConfig};

    let cfg = ScenarioConfig::c3831(8, 1);
    let key = |spec: &CellSpec| digest(&serde_json::to_value(spec).expect("spec serializes"));

    let quiet = CellSpec::new(
        cfg.clone().with_traffic(TrafficConfig::open_loop(1_000)),
        ExecMode::Real,
    );
    let mut loud_traffic = TrafficConfig::open_loop(1_000);
    loud_traffic.arrival.millirate_per_user *= 10;
    let loud = CellSpec::new(cfg.clone().with_traffic(loud_traffic), ExecMode::Real);
    assert_ne!(
        key(&quiet),
        key(&loud),
        "cells differing only in arrival rate must digest differently"
    );
    let quiet_again = CellSpec::new(
        cfg.with_traffic(TrafficConfig::open_loop(1_000)),
        ExecMode::Real,
    );
    assert_eq!(key(&quiet), key(&quiet_again));
}

#[test]
fn arrival_configs_key_the_sweep_cache_end_to_end() {
    let dir = fresh_dir("slo");
    let cold = run_tbl_slo(&dir, &["--users", "10000"]);
    assert!(cold.status.success(), "cold tbl_slo run failed");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("1 executed, 0 cached"),
        "cold slo sweep should execute its cell, got: {cold_err}"
    );

    // Identical traffic shape: served warm, byte-identical output
    // (including the request-log digest embedded in the table).
    let warm = run_tbl_slo(&dir, &["--users", "10000"]);
    assert!(warm.status.success(), "warm tbl_slo run failed");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 executed, 1 cached"),
        "identical arrival config should hit the cache, got: {warm_err}"
    );
    assert_eq!(cold.stdout, warm.stdout);

    // Same scenario, seed and mode, different offered load: the
    // arrival config is the only difference, and the cell must miss.
    let other = run_tbl_slo(&dir, &["--users", "20000"]);
    assert!(other.status.success(), "changed-rate run failed");
    let other_err = String::from_utf8_lossy(&other.stderr);
    assert!(
        other_err.contains("1 executed, 0 cached"),
        "a different arrival config must not reuse cached results, got: {other_err}"
    );
    assert_ne!(
        cold.stdout, other.stdout,
        "10x the offered load must change the measured table"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn slo_sweep_is_byte_identical_across_jobs() {
    let dir = fresh_dir("slo-jobs");
    let serial = run_tbl_slo(&dir, &["--scales", "8,12", "--no-cache", "--jobs", "1"]);
    assert!(serial.status.success(), "serial tbl_slo run failed");
    let parallel = run_tbl_slo(&dir, &["--scales", "8,12", "--no-cache", "--jobs", "4"]);
    assert!(parallel.status.success(), "parallel tbl_slo run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "request logs and histograms must not depend on --jobs"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_flag_exits_with_usage_not_panic() {
    let dir = fresh_dir("usage");
    let out = run_fig3(&dir, &["--jobs", "banana"]);
    assert_eq!(out.status.code(), Some(2), "bad --jobs must exit(2)");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "usage text expected, got: {err}");
    assert!(
        !err.contains("panicked"),
        "bad CLI args must not panic: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}
