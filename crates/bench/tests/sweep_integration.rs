//! End-to-end checks of the parallel sweep harness through a real
//! bench binary: parallel output must be byte-identical to serial, and
//! a warm cache must execute zero cells.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

const FIG3: &str = env!("CARGO_BIN_EXE_fig3_flaps");

fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scalecheck-sweep-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn run_fig3(dir: &PathBuf, extra: &[&str]) -> Output {
    let mut args = vec!["--bug", "c3831", "--scales", "8,12"];
    args.extend_from_slice(extra);
    Command::new(FIG3)
        .args(&args)
        .current_dir(dir)
        .output()
        .expect("spawn fig3_flaps")
}

#[test]
fn parallel_sweep_matches_serial_byte_for_byte() {
    let dir = fresh_dir("par");
    let serial = run_fig3(&dir, &["--jobs", "1", "--no-cache"]);
    assert!(serial.status.success(), "serial run failed");
    let parallel = run_fig3(&dir, &["--jobs", "4", "--no-cache"]);
    assert!(parallel.status.success(), "parallel run failed");
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--jobs 4 stdout must be byte-identical to --jobs 1"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_executes_zero_cells() {
    let dir = fresh_dir("warm");
    let cold = run_fig3(&dir, &["--jobs", "2"]);
    assert!(cold.status.success(), "cold run failed");
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_err.contains("6 executed, 0 cached"),
        "cold run should execute all 6 cells, got: {cold_err}"
    );

    let warm = run_fig3(&dir, &["--jobs", "2"]);
    assert!(warm.status.success(), "warm run failed");
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("0 executed, 6 cached"),
        "warm run should execute zero cells, got: {warm_err}"
    );
    assert_eq!(
        cold.stdout, warm.stdout,
        "cached results must reproduce the cold-run output exactly"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_flag_exits_with_usage_not_panic() {
    let dir = fresh_dir("usage");
    let out = run_fig3(&dir, &["--jobs", "banana"]);
    assert_eq!(out.status.code(), Some(2), "bad --jobs must exit(2)");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "usage text expected, got: {err}");
    assert!(
        !err.contains("panicked"),
        "bad CLI args must not panic: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}
