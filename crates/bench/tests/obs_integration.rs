//! Observability end-to-end: trace determinism across `--jobs` levels,
//! Chrome-export well-formedness on a real run, and the §6 divergence
//! narrative (Colo's calc inflation, SC+PIL's non-inflation).

use proptest::prelude::*;
use scalecheck::{CellSpec, ExecMode, COLO_CORES};
use scalecheck_bench::{run_sweep, spec_cell, try_bug_scenario, SweepOptions};
use scalecheck_cluster::{RunReport, ScenarioConfig};

fn traced(bug: &str, n: usize, seed: u64) -> ScenarioConfig {
    let mut cfg = try_bug_scenario(bug, n, seed).expect("known bug id");
    cfg.trace = scalecheck_obs::TraceConfig::enabled();
    cfg
}

fn opts(jobs: usize) -> SweepOptions {
    SweepOptions {
        jobs,
        use_cache: false,
        ..SweepOptions::default()
    }
}

/// Runs the (cfg, mode) cells and returns the reports in order.
fn sweep(cfg: &ScenarioConfig, modes: &[ExecMode], jobs: usize) -> Vec<RunReport> {
    let cells = modes
        .iter()
        .map(|&mode| {
            spec_cell(
                format!("obs-it {}", mode.label()),
                CellSpec::new(cfg.clone(), mode),
            )
        })
        .collect();
    run_sweep(cells, &opts(jobs)).results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The trace determinism contract: a `(config, seed)` pair yields a
    /// byte-identical serialized trace whether the sweep ran serially
    /// or on a worker pool — the tracer is thread-local, so workers
    /// cannot bleed events into each other's traces.
    #[test]
    fn traces_are_byte_identical_across_jobs(seed in 0u64..1_000, jobs in 2usize..5) {
        let cfg = traced("c3831", 16, seed);
        let modes = [ExecMode::Real, ExecMode::Colo { cores: COLO_CORES }];
        let serial = sweep(&cfg, &modes, 1);
        let parallel = sweep(&cfg, &modes, jobs);
        for (a, b) in serial.iter().zip(parallel.iter()) {
            prop_assert!(!a.obs.is_empty(), "traced run must record events");
            prop_assert_eq!(
                serde_json::to_string(&a.obs).unwrap(),
                serde_json::to_string(&b.obs).unwrap()
            );
            prop_assert_eq!(
                scalecheck_obs::to_chrome_json(&a.obs),
                scalecheck_obs::to_chrome_json(&b.obs)
            );
        }
    }
}

/// A real run's Chrome export is well-formed (balanced B/E pairs per
/// track) and round-trips through the embedded native trace.
#[test]
fn chrome_export_of_a_real_run_is_well_formed() {
    let cfg = traced("c3831", 12, 1);
    let reports = sweep(&cfg, &[ExecMode::Colo { cores: COLO_CORES }], 1);
    let trace = &reports[0].obs;
    let json = scalecheck_obs::to_chrome_json(trace);
    let events = scalecheck_obs::chrome::validate_chrome(&json).expect("well-formed trace");
    assert!(events > 0, "trace must contain events");
    let back = scalecheck_obs::from_chrome_json(&json).expect("round-trip parse");
    assert_eq!(&back, trace, "embedded native trace round-trips");
}

/// Dev-profile smoke of the §6 calc-attribution claim: Colo's calc
/// inflation is a saturation cliff — per-core load must exceed what
/// the machine model absorbs, which at `COLO_CORES` needs 128 nodes
/// (too heavy for the dev profile). Crossing the same cliff with a
/// single-core Colo at N=48 keeps the mechanism (decommission
/// recalculation saturating colocated cores) while staying cheap
/// enough for plain `cargo test`. The analyzer must put calc on top,
/// flagged, with gossip/net/lock below it.
#[test]
fn divergence_smoke_attributes_single_core_colo_to_calc() {
    let cfg = traced("c3831", 48, 1);
    let modes = [ExecMode::Real, ExecMode::Colo { cores: 1 }];
    let reports = sweep(&cfg, &modes, 1);
    let report = scalecheck_obs::diverge(&reports[0].obs, &reports[1].obs);
    let top = report.top().expect("single-core Colo must diverge");
    assert_eq!(
        top.category,
        "calc",
        "top-ranked category must be calc:\n{}",
        report.render()
    );
}

/// The §6 narrative, mechanically: at C3831/N=128 the divergence
/// analyzer must attribute Colo-vs-Real to the calc stage (not gossip
/// or net), and must rank nothing above tolerance for SC+PIL-vs-Real.
///
/// Three 128-node traced runs — heavy under the dev profile, so it is
/// ignored by default and `scripts/ci.sh` runs it with `--release`.
#[test]
#[ignore = "heavy: three 128-node traced runs; ci.sh runs this in release"]
fn divergence_attributes_c3831_colo_to_calc_and_clears_scpil() {
    let cfg = traced("c3831", 128, 1);
    let modes = [
        ExecMode::Real,
        ExecMode::Colo { cores: COLO_CORES },
        ExecMode::ScPil {
            cores: COLO_CORES,
            ordered: false,
        },
    ];
    let reports = sweep(&cfg, &modes, 1);
    let (real, colo, scpil) = (&reports[0].obs, &reports[1].obs, &reports[2].obs);

    let colo_report = scalecheck_obs::diverge(real, colo);
    let top = colo_report.top().expect("Colo-vs-Real must diverge");
    assert_eq!(
        top.category,
        "calc",
        "top-ranked category must be calc, got {:?}:\n{}",
        top.category,
        colo_report.render()
    );

    let pil_report = scalecheck_obs::diverge(real, scpil);
    assert!(
        !pil_report.diverged(),
        "SC+PIL-vs-Real must stay within tolerance:\n{}",
        pil_report.render()
    );
}
