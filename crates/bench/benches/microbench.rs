//! Criterion microbenches for the core data structures and algorithms:
//! the pending-range calculators (the complexity table's raw material),
//! the φ detector, gossip rounds, the event queue, the memo DB, and the
//! order enforcer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scalecheck_gossip::{Gossiper, Peer, PhiDetector};
use scalecheck_memo::{digest_bytes, FnId, MemoDb, OrderRecorder};
use scalecheck_ring::{
    spread_tokens, NodeId, NodeStatus, OpCounter, PendingRangeCalculator, RingTable,
    TopologyChange, V1Cubic, V2Quadratic, V3VnodeAware,
};
use scalecheck_sim::{DetRng, Engine, SimDuration, SimTime};

fn ring_of(n: u32, p: usize) -> RingTable {
    let mut r = RingTable::new(3);
    for i in 0..n {
        r.add_node(NodeId(i), NodeStatus::Normal, spread_tokens(NodeId(i), p))
            .unwrap();
    }
    r
}

fn bench_pending_ranges(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_ranges");
    g.sample_size(10);
    for n in [16u32, 32, 64] {
        let ring = ring_of(n, 1);
        let change = vec![TopologyChange::Leave { node: NodeId(0) }];
        g.bench_with_input(BenchmarkId::new("v1_cubic", n), &n, |b, _| {
            b.iter(|| {
                let mut cnt = OpCounter::new();
                black_box(V1Cubic.calculate(&ring, &change, &mut cnt))
            })
        });
        g.bench_with_input(BenchmarkId::new("v2_quadratic", n), &n, |b, _| {
            b.iter(|| {
                let mut cnt = OpCounter::new();
                black_box(V2Quadratic.calculate(&ring, &change, &mut cnt))
            })
        });
        g.bench_with_input(BenchmarkId::new("v3_vnode_aware", n), &n, |b, _| {
            b.iter(|| {
                let mut cnt = OpCounter::new();
                black_box(V3VnodeAware.calculate(&ring, &change, &mut cnt))
            })
        });
    }
    g.finish();
}

fn bench_phi_detector(c: &mut Criterion) {
    c.bench_function("phi_detector_report_and_phi", |b| {
        let mut d = PhiDetector::cassandra(SimDuration::from_secs(1));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            d.heartbeat(SimTime::from_secs(t));
            black_box(d.phi(SimTime::from_secs(t + 3)))
        })
    });
}

fn bench_gossip_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_round");
    for n in [64u32, 256] {
        g.bench_with_input(BenchmarkId::new("syn_ack_ack2", n), &n, |b, &n| {
            // Two nodes that each know n endpoints.
            let mut a: Gossiper<u64> = Gossiper::new(Peer(0), 1, 0);
            let mut z: Gossiper<u64> = Gossiper::new(Peer(1), 1, 1);
            for i in 2..n {
                let mut other: Gossiper<u64> = Gossiper::new(Peer(i), 1, i as u64);
                other.beat();
                let syn = other.make_syn();
                let ack = a.handle_syn(&syn);
                let (_, ack2) = other.handle_ack(&ack);
                a.handle_ack2(&ack2);
                // Let z learn via a.
                let syn = a.make_syn();
                let ack = z.handle_syn(&syn);
                let (_, ack2) = a.handle_ack(&ack);
                z.handle_ack2(&ack2);
            }
            b.iter(|| {
                a.beat();
                let syn = a.make_syn();
                let ack = z.handle_syn(&syn);
                let (_, ack2) = a.handle_ack(&ack);
                black_box(z.handle_ack2(&ack2))
            })
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("engine_schedule_and_run_1k", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new(1);
            for i in 0..1000u64 {
                engine.schedule_at(SimTime::from_nanos(i * 13 % 997), |s, _| *s += 1);
            }
            let mut count = 0u64;
            engine.run_to_completion(&mut count);
            black_box(count)
        })
    });
}

fn bench_memo_db(c: &mut Criterion) {
    c.bench_function("memo_db_record_lookup", |b| {
        let mut db: MemoDb<Vec<u8>> = MemoDb::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let d = digest_bytes(&i.to_le_bytes());
            db.record(0, FnId(1), d, vec![1, 2, 3], SimDuration::from_millis(1));
            black_box(db.lookup(FnId(1), d))
        })
    });
}

fn bench_order_enforcer(c: &mut Criterion) {
    c.bench_function("order_enforce_1k_events", |b| {
        b.iter(|| {
            let mut rec = OrderRecorder::new();
            for k in 0..1000u64 {
                rec.record(0, k);
            }
            let mut enf = rec.into_enforcer();
            for k in 0..1000u64 {
                enf.classify(0, k);
                enf.advance(0, k);
            }
            black_box(enf.enforced())
        })
    });
}

fn bench_det_rng(c: &mut Criterion) {
    c.bench_function("det_rng_gen_range", |b| {
        let mut rng = DetRng::new(42);
        b.iter(|| black_box(rng.gen_range(1000)))
    });
}

criterion_group!(
    benches,
    bench_pending_ranges,
    bench_phi_detector,
    bench_gossip_round,
    bench_event_queue,
    bench_memo_db,
    bench_order_enforcer,
    bench_det_rng
);
criterion_main!(benches);
