//! A second scale-check target: an HDFS-like master/datanode system
//! with a **serialized-O(N)** scalability bug.
//!
//! The paper's bug study splits root causes 47 %/53 % between
//! scale-dependent CPU-intensive computations (the Cassandra lineage in
//! `scalecheck-cluster`) and "unexpected serializations of O(N)
//! operations" (§4 footnote). This crate reproduces the second class —
//! and, with it, the paper's §7 future-work goal of integrating scale
//! check with systems beyond Cassandra:
//!
//! * one **namenode** processes heartbeats and full block reports under
//!   a global lock (a single serialized stage);
//! * the buggy [`ReportVersion::FullRescan`] walks the entire block map
//!   per report, so the master's offered load grows quadratically with
//!   cluster size;
//! * heartbeats queue behind reports; past a scale threshold the
//!   queueing delay crosses the liveness timeout and the master
//!   declares *live* datanodes dead — this system's flap;
//! * [`ReportVersion::IncrementalDiff`] (the fix) diffs against the
//!   previous report and the symptom vanishes.
//!
//! The ScaleCheck pipelines apply unchanged: [`run_hdfs`] in Real/Colo
//! deployments, and [`hdfs_scale_check`] to memoize once and PIL-replay
//! with report processing replaced by `sleep(recorded duration)`.
//!
//! # Examples
//!
//! ```
//! use scalecheck_hdfslike::{run_hdfs, HdfsConfig};
//!
//! // A small cluster: the serialized master keeps up, nobody is
//! // wrongly declared dead.
//! let report = run_hdfs(&HdfsConfig::bug(12, 1));
//! assert_eq!(report.false_dead, 0);
//! ```

#![forbid(unsafe_code)]

pub mod cluster;
pub mod master;

pub use cluster::{
    hdfs_scale_check, run_hdfs, run_hdfs_with_db, HdfsCalcIo, HdfsConfig, HdfsDeployment,
    HdfsReport, REPORT_FN,
};
pub use master::{blocks_of, BlockId, DnId, DnRecord, Master, MasterOps, ReportVersion};
