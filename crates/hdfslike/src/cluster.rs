//! The HDFS-like cluster driver: N datanodes heartbeating and
//! block-reporting to one serialized master.
//!
//! The bug (FullRescan) makes each report cost O(total blocks) on the
//! master's single handler stage — the global namesystem lock.
//! Heartbeats queue behind reports; past a scale threshold the queue
//! delay crosses the liveness timeout and the master declares *live*
//! datanodes dead (the flap analog for this system). This is the §4
//! footnote's second root-cause class (serialized O(N) operations) and
//! the paper's §7 goal of integrating scale check with systems beyond
//! Cassandra.
//!
//! The same three pipelines apply: execute (Real/Colo), record
//! (memoize), and PIL replay (report processing replaced by
//! `sleep(recorded duration)` with the recorded output — the block-map
//! size — copied from the database and verified at the end).

use scalecheck_memo::{Digest128, FnId, Hasher128, MemoDb, MemoStats};
use scalecheck_net::{LatencyModel, Network, NetworkConfig};
use scalecheck_sim::{
    Ctx, CtxSwitchModel, Engine, Machine, MachinePark, SimDuration, SimTime, Stage,
};
use serde::{Deserialize, Serialize};

use crate::master::{blocks_of, DnId, Master, MasterOps, ReportVersion};

/// Memo function id for block-report processing.
pub const REPORT_FN: FnId = FnId(10);

/// Deployment semantics, mirroring the Cassandra substrate's.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HdfsDeployment {
    /// Master and every datanode on dedicated machines.
    Real,
    /// Everything on one shared machine.
    Colo {
        /// Cores on the shared machine.
        cores: usize,
    },
    /// Shared machine, report processing PIL-replaced.
    PilReplay {
        /// Cores on the shared machine.
        cores: usize,
    },
}

/// Memoization interaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HdfsCalcIo {
    /// Execute report processing for real.
    Execute,
    /// Execute and record (input digest → duration, block count).
    Record,
    /// Replay from the database.
    Replay,
}

/// Scenario configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HdfsConfig {
    /// Number of datanodes.
    pub n_datanodes: usize,
    /// Blocks per datanode.
    pub blocks_per_node: usize,
    /// Heartbeat interval (HDFS default 3 s).
    pub heartbeat_interval: SimDuration,
    /// Full block report interval (scaled down from HDFS's hours).
    pub report_interval: SimDuration,
    /// Master declares a datanode dead after this much silence.
    pub heartbeat_timeout: SimDuration,
    /// Report-processing implementation.
    pub version: ReportVersion,
    /// Deployment semantics.
    pub deployment: HdfsDeployment,
    /// Memoization interaction.
    pub calc_io: HdfsCalcIo,
    /// Virtual nanoseconds per counted master operation.
    pub ns_per_op: u64,
    /// Capacity of the master's RPC call queue; arrivals beyond it are
    /// rejected (HDFS's bounded call queue). Overflow is what turns a
    /// saturated master into *silence*: dropped heartbeats.
    pub queue_capacity: usize,
    /// Run length.
    pub duration: SimDuration,
    /// Simulation seed.
    pub seed: u64,
}

impl HdfsConfig {
    /// The HDFS-like bug scenario at `n` datanodes.
    pub fn bug(n: usize, seed: u64) -> Self {
        HdfsConfig {
            n_datanodes: n,
            blocks_per_node: 20_000,
            heartbeat_interval: SimDuration::from_secs(3),
            report_interval: SimDuration::from_secs(120),
            heartbeat_timeout: SimDuration::from_secs(60),
            version: ReportVersion::FullRescan,
            deployment: HdfsDeployment::Real,
            calc_io: HdfsCalcIo::Execute,
            ns_per_op: 8000,
            queue_capacity: 20,
            duration: SimDuration::from_secs(600),
            seed,
        }
    }

    /// Same scenario with the incremental-diff fix.
    pub fn fixed(n: usize, seed: u64) -> Self {
        let mut cfg = Self::bug(n, seed);
        cfg.version = ReportVersion::IncrementalDiff;
        cfg
    }
}

/// Run results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HdfsReport {
    /// Live datanodes declared dead (the flap analog).
    pub false_dead: u64,
    /// Dead→alive recoveries.
    pub recoveries: u64,
    /// Reports processed by the master.
    pub reports_processed: u64,
    /// Heartbeats processed by the master.
    pub heartbeats_processed: u64,
    /// Worst queueing delay a master task experienced.
    pub max_master_lateness: SimDuration,
    /// RPCs rejected by the full call queue (dropped heartbeats and
    /// reports).
    pub dropped_rpcs: u64,
    /// Blocks tracked at run end (replay verification input).
    pub final_block_count: usize,
    /// Replay verification: recorded vs replayed block counts diverged.
    pub output_mismatches: u64,
    /// Memo statistics.
    pub memo: MemoStats,
    /// Run duration (== configured duration).
    pub duration: SimDuration,
}

enum MTask {
    Report(DnId, u64),
}

struct HdfsState {
    cfg: HdfsConfig,
    master: Master,
    stage: Stage<MTask>,
    park: MachinePark,
    master_machine: scalecheck_sim::cpu::MachineId,
    net: Network,
    db: MemoDb<u64>,
    report_seq: Vec<u64>,
    lock_held_until: SimTime,
    reports_processed: u64,
    heartbeats_processed: u64,
    dropped_rpcs: u64,
    output_mismatches: u64,
}

fn report_digest(dn: DnId, seq: u64, version: ReportVersion, blocks_per_node: usize) -> Digest128 {
    let mut h = Hasher128::new();
    h.update_u64(dn.0 as u64)
        .update_u64(seq)
        .update_u64(match version {
            ReportVersion::FullRescan => 0,
            ReportVersion::IncrementalDiff => 1,
        })
        .update_u64(blocks_per_node as u64);
    h.finish()
}

fn pump(st: &mut HdfsState, ctx: &mut Ctx<'_, HdfsState>) {
    let now = ctx.now();
    let Some(task) = st.stage.try_begin(now) else {
        return;
    };
    let pil = matches!(st.cfg.deployment, HdfsDeployment::PilReplay { .. });
    match task {
        MTask::Report(dn, seq) => {
            let digest = report_digest(dn, seq, st.cfg.version, st.cfg.blocks_per_node);
            // Decide duration and whether to execute.
            let (duration, executed_count) = match st.cfg.calc_io {
                HdfsCalcIo::Replay => match st.db.lookup(REPORT_FN, digest) {
                    Some(rec) => (rec.duration, Some(rec.output)),
                    None => {
                        st.db.note_miss();
                        let (d, c) = execute_report(st, dn);
                        (d, Some(c))
                    }
                },
                HdfsCalcIo::Execute | HdfsCalcIo::Record => {
                    let (d, c) = execute_report(st, dn);
                    if st.cfg.calc_io == HdfsCalcIo::Record {
                        st.db.record(dn.0, REPORT_FN, digest, c, d);
                    }
                    (d, Some(c))
                }
            };
            let _ = executed_count;
            let finish = if pil {
                now + duration
            } else {
                st.park
                    .get_mut(st.master_machine)
                    .submit(now, duration)
                    .finish
            };
            st.lock_held_until = finish;
            ctx.schedule_at(finish, move |st: &mut HdfsState, ctx| {
                st.reports_processed += 1;
                st.stage.finish();
                pump(st, ctx);
            });
        }
    }
}

/// Executes report processing for real, returning its virtual duration
/// and the resulting block count.
fn execute_report(st: &mut HdfsState, dn: DnId) -> (SimDuration, u64) {
    let blocks = blocks_of(dn, st.cfg.blocks_per_node);
    let mut ops = MasterOps::new();
    st.master.process_block_report(dn, &blocks, &mut ops);
    (
        SimDuration::from_nanos(ops.ops().saturating_mul(st.cfg.ns_per_op)),
        st.master.block_count() as u64,
    )
}

fn dn_heartbeat(st: &mut HdfsState, ctx: &mut Ctx<'_, HdfsState>, i: usize) {
    let dn = DnId(i as u32);
    let now = ctx.now();
    if let Ok((_, at)) = st.net.send(
        now,
        ctx.rng(),
        scalecheck_net::Addr(1 + i as u32),
        scalecheck_net::Addr(0),
    ) {
        ctx.schedule_at(at, move |st: &mut HdfsState, ctx| {
            // The heartbeat needs the namesystem lock: it processes
            // once the in-flight block report (if any) releases it.
            let ready = ctx.now().max(st.lock_held_until);
            ctx.schedule_at(ready, move |st: &mut HdfsState, ctx| {
                let mut ops = MasterOps::new();
                st.master.process_heartbeat(dn, ctx.now(), &mut ops);
                st.heartbeats_processed += 1;
            });
        });
    }
    let interval = st.cfg.heartbeat_interval;
    ctx.schedule_after(interval, move |st, ctx| dn_heartbeat(st, ctx, i));
}

fn dn_report(st: &mut HdfsState, ctx: &mut Ctx<'_, HdfsState>, i: usize) {
    let dn = DnId(i as u32);
    let seq = st.report_seq[i];
    st.report_seq[i] += 1;
    let now = ctx.now();
    if let Ok((_, at)) = st.net.send(
        now,
        ctx.rng(),
        scalecheck_net::Addr(1 + i as u32),
        scalecheck_net::Addr(0),
    ) {
        ctx.schedule_at(at, move |st: &mut HdfsState, ctx| {
            if st.stage.depth() >= st.cfg.queue_capacity {
                st.dropped_rpcs += 1;
                return;
            }
            st.stage.push(ctx.now(), MTask::Report(dn, seq));
            pump(st, ctx);
        });
    }
    let interval = st.cfg.report_interval;
    ctx.schedule_after(interval, move |st, ctx| dn_report(st, ctx, i));
}

fn liveness_sweep(st: &mut HdfsState, ctx: &mut Ctx<'_, HdfsState>) {
    st.master.check_liveness(ctx.now());
    ctx.schedule_after(SimDuration::from_secs(5), liveness_sweep);
}

/// Runs a scenario, optionally against a previously recorded database.
/// Returns the report and the database (populated in `Record` mode).
pub fn run_hdfs_with_db(cfg: &HdfsConfig, db: Option<MemoDb<u64>>) -> (HdfsReport, MemoDb<u64>) {
    let mut park = MachinePark::new();
    let master_machine = match cfg.deployment {
        HdfsDeployment::Real => {
            let m = park.add(Machine::new(2, CtxSwitchModel::commodity()));
            for _ in 0..cfg.n_datanodes {
                park.add(Machine::new(1, CtxSwitchModel::commodity()));
            }
            m
        }
        HdfsDeployment::Colo { cores } | HdfsDeployment::PilReplay { cores } => {
            park.add(Machine::new(cores.max(1), CtxSwitchModel::commodity()))
        }
    };
    let mut master = Master::new(cfg.version, cfg.heartbeat_timeout);
    for i in 0..cfg.n_datanodes {
        let dn = DnId(i as u32);
        master.register(dn, SimTime::ZERO);
        // The cluster was running before the experiment: the block map
        // is fully built (safe mode completed long ago).
        master.preload(dn, &blocks_of(dn, cfg.blocks_per_node));
    }
    let mut state = HdfsState {
        cfg: cfg.clone(),
        master,
        stage: Stage::new(),
        park,
        master_machine,
        net: Network::new(NetworkConfig {
            latency: LatencyModel::lan(),
            drop_probability: 0.0,
        }),
        db: db.unwrap_or_default(),
        report_seq: vec![0; cfg.n_datanodes],
        lock_held_until: SimTime::ZERO,
        reports_processed: 0,
        heartbeats_processed: 0,
        dropped_rpcs: 0,
        output_mismatches: 0,
    };

    let mut engine: Engine<HdfsState> = Engine::new(cfg.seed);
    for i in 0..cfg.n_datanodes {
        let hb_stagger = SimDuration::from_nanos(
            cfg.heartbeat_interval.as_nanos() * (i as u64) / cfg.n_datanodes.max(1) as u64,
        );
        // Block reports align in storms (the restart/upgrade pattern of
        // real HDFS incidents): every node reports at the same period
        // boundary, with only a small per-node jitter.
        let rp_stagger = cfg.report_interval + SimDuration::from_millis(20 * i as u64);
        engine.schedule_at(
            SimTime::ZERO + hb_stagger,
            move |st: &mut HdfsState, ctx| dn_heartbeat(st, ctx, i),
        );
        engine.schedule_at(
            SimTime::ZERO + rp_stagger,
            move |st: &mut HdfsState, ctx| dn_report(st, ctx, i),
        );
    }
    engine.schedule_at(SimTime::from_secs(5), liveness_sweep);
    engine.run_until(&mut state, SimTime::ZERO + cfg.duration);

    let report = HdfsReport {
        false_dead: state.master.false_dead(),
        recoveries: state.master.recoveries(),
        reports_processed: state.reports_processed,
        heartbeats_processed: state.heartbeats_processed,
        max_master_lateness: state.stage.lateness().max(),
        dropped_rpcs: state.dropped_rpcs,
        final_block_count: state.master.block_count(),
        output_mismatches: state.output_mismatches,
        memo: state.db.stats(),
        duration: cfg.duration,
    };
    (report, state.db)
}

/// Runs a scenario with no database carried across runs.
pub fn run_hdfs(cfg: &HdfsConfig) -> HdfsReport {
    run_hdfs_with_db(cfg, None).0
}

/// The full scale-check pipeline for the HDFS-like target: memoize on
/// the shared box, then PIL-replay. Returns `(memoize, replay)`.
pub fn hdfs_scale_check(cfg: &HdfsConfig, cores: usize) -> (HdfsReport, HdfsReport) {
    let mut rec_cfg = cfg.clone();
    rec_cfg.deployment = HdfsDeployment::Colo { cores };
    rec_cfg.calc_io = HdfsCalcIo::Record;
    let (rec_report, db) = run_hdfs_with_db(&rec_cfg, None);

    let mut rep_cfg = cfg.clone();
    rep_cfg.deployment = HdfsDeployment::PilReplay { cores };
    rep_cfg.calc_io = HdfsCalcIo::Replay;
    let (mut rep_report, db) = run_hdfs_with_db(&rep_cfg, Some(db));

    // Output verification (the PIL contract): the replay's copied
    // outputs must reach the same final block count the memoization run
    // computed for real.
    let replayed_final = db
        .iter_records()
        .map(|(_, _, rec)| rec.output)
        .max()
        .unwrap_or(0);
    if replayed_final != rec_report.final_block_count as u64 {
        rep_report.output_mismatches += 1;
    }
    rep_report.final_block_count = replayed_final as usize;
    (rec_report, rep_report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cluster_is_healthy() {
        let r = run_hdfs(&HdfsConfig::bug(16, 1));
        assert_eq!(r.false_dead, 0, "16 datanodes must not saturate the master");
        assert!(r.reports_processed > 16 * 3, "reports flowed");
        assert!(r.heartbeats_processed > 1000, "heartbeats flowed");
        assert!(r.final_block_count >= 16 * 1000);
    }

    #[test]
    fn bug_manifests_at_scale_and_fix_removes_it() {
        // 192 datanodes: one full-rescan report holds the namesystem
        // lock past the heartbeat timeout; the incremental-diff master
        // shrugs. At 128 the hold is still under the timeout.
        let buggy = run_hdfs(&HdfsConfig::bug(192, 1));
        assert!(
            buggy.false_dead > 100,
            "live datanodes must be declared dead: {}",
            buggy.false_dead
        );
        assert!(buggy.recoveries > 0, "they come back: flapping");
        let small = run_hdfs(&HdfsConfig::bug(128, 1));
        assert_eq!(
            small.false_dead, 0,
            "no symptom at 128 — the onset is sharp"
        );
        let fixed = run_hdfs(&HdfsConfig::fixed(192, 1));
        assert_eq!(fixed.false_dead, 0, "the fix removes the symptom");
    }

    #[test]
    fn scale_check_reproduces_the_bug_cheaply() {
        let cfg = HdfsConfig::bug(256, 1);
        let real = run_hdfs(&cfg);
        let (memoized, replayed) = hdfs_scale_check(&cfg, 16);
        assert!(memoized.memo.recorded > 0);
        // Replay admission (hence report seq numbers) legitimately
        // differs from the memoization run's: drops depend on queue
        // state, which the Colo run distorts. Misses re-execute
        // honestly.
        assert!(replayed.memo.replay_hit_rate() > 0.6, "{:?}", replayed.memo);
        assert!(replayed.false_dead > 200, "symptom reproduced in replay");
        let ratio = replayed.false_dead as f64 / real.false_dead.max(1) as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "replay {} vs real {}",
            replayed.false_dead,
            real.false_dead
        );
        assert_eq!(replayed.output_mismatches, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_hdfs(&HdfsConfig::bug(64, 9));
        let b = run_hdfs(&HdfsConfig::bug(64, 9));
        assert_eq!(a.false_dead, b.false_dead);
        assert_eq!(a.reports_processed, b.reports_processed);
        assert_eq!(a.heartbeats_processed, b.heartbeats_processed);
    }
}
