//! The namenode: block map, datanode registry, and the two historical
//! report-processing implementations.
//!
//! The §4 footnote classifies 53 % of the studied bugs as "unexpected
//! serializations of O(N) operations". The HDFS-shaped instance modelled
//! here: full block reports are processed **under the global namesystem
//! lock**, and the naive implementation rescans the *entire* block map
//! per report. With N datanodes reporting on a timer, the master's
//! handler does N reports × O(total blocks) work per period — quadratic
//! in cluster size on one serialized stage — and heartbeats queued
//! behind reports go stale until live datanodes are declared dead.
//!
//! Both implementations produce identical block-map state; only their
//! counted cost differs (the same semantic-preserving-fix structure as
//! the ring calculators).

use std::collections::{BTreeMap, BTreeSet};

use scalecheck_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a datanode.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DnId(pub u32);

/// Identifies a block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BlockId(pub u64);

/// Deterministically generates the blocks datanode `dn` holds.
pub fn blocks_of(dn: DnId, blocks_per_node: usize) -> Vec<BlockId> {
    (0..blocks_per_node)
        .map(|i| {
            let mut z = ((dn.0 as u64) << 32) ^ (i as u64) ^ 0xD1B5_4A32_D192_ED03;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            BlockId(z ^ (z >> 31))
        })
        .collect()
}

/// A datanode's liveness record at the master.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DnRecord {
    /// Last heartbeat the master *processed* (not merely received).
    pub last_heartbeat: SimTime,
    /// Whether the master currently considers the datanode dead.
    pub declared_dead: bool,
}

/// Counts the basic operations report processing executes.
#[derive(Clone, Copy, Debug, Default)]
pub struct MasterOps {
    ops: u64,
}

impl MasterOps {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        MasterOps::default()
    }

    /// Adds operations.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total counted operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// Which report-processing implementation the master runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ReportVersion {
    /// The buggy implementation: every report walks the entire block
    /// map (O(total blocks)) under the global lock.
    FullRescan,
    /// The fix: diff against the reporter's previous block set
    /// (O(blocks of that node)).
    IncrementalDiff,
}

/// The namenode state.
#[derive(Clone, Debug)]
pub struct Master {
    version: ReportVersion,
    /// block → holders.
    block_map: BTreeMap<BlockId, BTreeSet<DnId>>,
    /// datanode → its last reported block set.
    reported: BTreeMap<DnId, BTreeSet<BlockId>>,
    /// datanode → liveness record.
    registry: BTreeMap<DnId, DnRecord>,
    heartbeat_timeout: SimDuration,
    false_dead: u64,
    recoveries: u64,
}

impl Master {
    /// Creates a master with the given processing version and liveness
    /// timeout.
    pub fn new(version: ReportVersion, heartbeat_timeout: SimDuration) -> Self {
        Master {
            version,
            block_map: BTreeMap::new(),
            reported: BTreeMap::new(),
            registry: BTreeMap::new(),
            heartbeat_timeout,
            false_dead: 0,
            recoveries: 0,
        }
    }

    /// Registers a datanode at time `now`.
    pub fn register(&mut self, dn: DnId, now: SimTime) {
        self.registry.insert(
            dn,
            DnRecord {
                last_heartbeat: now,
                declared_dead: false,
            },
        );
    }

    /// Preloads a datanode's blocks into the map without counting cost
    /// (models the initial safe-mode report intake: the cluster under
    /// test was already running before the experiment starts).
    pub fn preload(&mut self, dn: DnId, blocks: &[BlockId]) {
        let set: std::collections::BTreeSet<BlockId> = blocks.iter().copied().collect();
        for &b in &set {
            self.block_map.entry(b).or_default().insert(dn);
        }
        self.reported.insert(dn, set);
    }

    /// Processes a heartbeat (cheap; O(log N)). A dead-declared node
    /// that heartbeats again counts as a recovery — the flap completed.
    pub fn process_heartbeat(&mut self, dn: DnId, now: SimTime, counter: &mut MasterOps) {
        counter.add(4);
        if let Some(rec) = self.registry.get_mut(&dn) {
            rec.last_heartbeat = now;
            if rec.declared_dead {
                rec.declared_dead = false;
                self.recoveries += 1;
            }
        }
    }

    /// Processes a full block report under the global lock, counting
    /// the executed operations. Both versions leave identical state.
    pub fn process_block_report(&mut self, dn: DnId, blocks: &[BlockId], counter: &mut MasterOps) {
        let new_set: BTreeSet<BlockId> = blocks.iter().copied().collect();
        counter.add(blocks.len() as u64);
        match self.version {
            ReportVersion::FullRescan => {
                // The bug: walk the ENTIRE block map to reconcile one
                // node's report (and once more to find stale entries).
                for (block, holders) in self.block_map.iter_mut() {
                    counter.add(1);
                    if new_set.contains(block) {
                        holders.insert(dn);
                    } else {
                        holders.remove(&dn);
                    }
                }
                for &block in &new_set {
                    counter.add(2);
                    self.block_map.entry(block).or_default().insert(dn);
                }
                self.block_map.retain(|_, holders| {
                    counter.add(1);
                    !holders.is_empty()
                });
            }
            ReportVersion::IncrementalDiff => {
                // The fix: diff against the previous report only.
                let old = self.reported.get(&dn).cloned().unwrap_or_default();
                for &gone in old.difference(&new_set) {
                    counter.add(2);
                    if let Some(holders) = self.block_map.get_mut(&gone) {
                        holders.remove(&dn);
                        if holders.is_empty() {
                            self.block_map.remove(&gone);
                        }
                    }
                }
                for &added in new_set.difference(&old) {
                    counter.add(2);
                    self.block_map.entry(added).or_default().insert(dn);
                }
            }
        }
        self.reported.insert(dn, new_set);
    }

    /// Liveness sweep: declares datanodes dead whose last *processed*
    /// heartbeat is older than the timeout. Returns the newly declared.
    pub fn check_liveness(&mut self, now: SimTime) -> Vec<DnId> {
        let mut newly = Vec::new();
        for (&dn, rec) in self.registry.iter_mut() {
            if !rec.declared_dead && now.since(rec.last_heartbeat) > self.heartbeat_timeout {
                rec.declared_dead = true;
                self.false_dead += 1;
                newly.push(dn);
            }
        }
        newly
    }

    /// Total dead declarations (the flap analog; every declared node in
    /// these experiments is actually alive).
    pub fn false_dead(&self) -> u64 {
        self.false_dead
    }

    /// Dead→alive recoveries.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Number of blocks tracked.
    pub fn block_count(&self) -> usize {
        self.block_map.len()
    }

    /// Holders of a block.
    pub fn holders(&self, block: BlockId) -> Option<&BTreeSet<DnId>> {
        self.block_map.get(&block)
    }

    /// Datanodes currently declared dead.
    pub fn dead_now(&self) -> usize {
        self.registry.values().filter(|r| r.declared_dead).count()
    }

    /// The processing version in force.
    pub fn version(&self) -> ReportVersion {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: u64) -> SimTime {
        SimTime::from_secs(v)
    }

    fn master(v: ReportVersion) -> Master {
        Master::new(v, SimDuration::from_secs(60))
    }

    #[test]
    fn versions_produce_identical_block_maps() {
        let mut a = master(ReportVersion::FullRescan);
        let mut b = master(ReportVersion::IncrementalDiff);
        let mut ca = MasterOps::new();
        let mut cb = MasterOps::new();
        for dn in 0..8u32 {
            let blocks = blocks_of(DnId(dn), 50);
            a.process_block_report(DnId(dn), &blocks, &mut ca);
            b.process_block_report(DnId(dn), &blocks, &mut cb);
        }
        // Re-report with a shrunk set (blocks removed).
        let shrunk = blocks_of(DnId(3), 25);
        a.process_block_report(DnId(3), &shrunk, &mut ca);
        b.process_block_report(DnId(3), &shrunk, &mut cb);
        assert_eq!(a.block_count(), b.block_count());
        for &blk in &blocks_of(DnId(3), 50) {
            assert_eq!(a.holders(blk), b.holders(blk), "{blk:?}");
        }
    }

    #[test]
    fn full_rescan_costs_scale_with_cluster() {
        // The serialized-O(N) class: per-report cost grows with TOTAL
        // blocks under FullRescan but stays per-node under the fix.
        let cost = |v: ReportVersion, n: u32| {
            let mut m = master(v);
            let mut c0 = MasterOps::new();
            for dn in 0..n {
                m.process_block_report(DnId(dn), &blocks_of(DnId(dn), 100), &mut c0);
            }
            // Cost of ONE more report from node 0 (already known).
            let mut c = MasterOps::new();
            m.process_block_report(DnId(0), &blocks_of(DnId(0), 100), &mut c);
            c.ops()
        };
        let naive_small = cost(ReportVersion::FullRescan, 8);
        let naive_big = cost(ReportVersion::FullRescan, 64);
        let fixed_small = cost(ReportVersion::IncrementalDiff, 8);
        let fixed_big = cost(ReportVersion::IncrementalDiff, 64);
        assert!(
            (naive_big as f64 / naive_small as f64) > 4.0,
            "naive must scale with cluster: {naive_small} -> {naive_big}"
        );
        assert!(
            (fixed_big as f64 / fixed_small as f64) < 2.0,
            "fix must not: {fixed_small} -> {fixed_big}"
        );
    }

    #[test]
    fn heartbeats_and_liveness() {
        let mut m = master(ReportVersion::IncrementalDiff);
        let mut c = MasterOps::new();
        m.register(DnId(1), secs(0));
        m.register(DnId(2), secs(0));
        m.process_heartbeat(DnId(1), secs(50), &mut c);
        // Node 2 silent past the 60s timeout at t=70; node 1 fine.
        let newly = m.check_liveness(secs(70));
        assert_eq!(newly, vec![DnId(2)]);
        assert_eq!(m.false_dead(), 1);
        assert_eq!(m.dead_now(), 1);
        // No double declaration.
        assert!(m.check_liveness(secs(80)).is_empty());
        // Recovery on the next processed heartbeat.
        m.process_heartbeat(DnId(2), secs(90), &mut c);
        assert_eq!(m.recoveries(), 1);
        assert_eq!(m.dead_now(), 0);
    }

    #[test]
    fn blocks_of_is_stable_and_disjoint() {
        assert_eq!(blocks_of(DnId(1), 10), blocks_of(DnId(1), 10));
        let a: BTreeSet<BlockId> = blocks_of(DnId(1), 1000).into_iter().collect();
        let b: BTreeSet<BlockId> = blocks_of(DnId(2), 1000).into_iter().collect();
        assert_eq!(a.len(), 1000);
        assert!(a.intersection(&b).next().is_none(), "block collision");
    }
}
