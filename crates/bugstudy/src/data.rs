//! The 38-bug scalability-bug study dataset (§2–§3).
//!
//! The paper studies 38 scalability bugs: 9 Cassandra, 5 Couchbase,
//! 2 Hadoop, 9 HBase, 11 HDFS, 1 Riak, 1 Voldemort. It names the
//! Cassandra lineage explicitly (C3831, C3881, C5456, C6127, C6345,
//! C6409, plus the Gossip 2.0 umbrella) and reports aggregates for the
//! rest: every bug caused user-visible impact; fixes took one month on
//! average with a five-month maximum; 47 % involve scale-dependent
//! CPU-intensive computations and the remaining 53 % are unexpected
//! serializations of O(N) operations; and the bugs linger in diverse
//! control paths (bootstrap, scale-out, decommission, rebalance,
//! failover), not just data paths.
//!
//! Entries for the *named* bugs carry their public JIRA identifiers and
//! facts. The remaining entries are **representative synthetic
//! records**: they are constructed to satisfy every aggregate the paper
//! states (the `synthetic` flag marks them), because the paper does not
//! enumerate them individually.

use serde::{Deserialize, Serialize};

/// The systems covered by the study.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum System {
    /// Apache Cassandra.
    Cassandra,
    /// Couchbase.
    Couchbase,
    /// Apache Hadoop (MapReduce/YARN).
    Hadoop,
    /// Apache HBase.
    HBase,
    /// Apache HDFS.
    Hdfs,
    /// Riak.
    Riak,
    /// Voldemort.
    Voldemort,
}

/// Root-cause taxonomy: the §4 footnote's split.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RootCause {
    /// Scale-dependent CPU-intensive computation (47 % of the study).
    CpuIntensiveComputation,
    /// Unexpected serialization of O(N) operations (53 %).
    SerializedLinearOperations,
}

/// Which protocol/path the bug lingers in (§3: "diverse protocols").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Protocol {
    /// Cluster bootstrap.
    Bootstrap,
    /// Adding nodes.
    ScaleOut,
    /// Removing nodes.
    Decommission,
    /// Data/partition rebalancing.
    Rebalance,
    /// Failure handling / recovery.
    Failover,
    /// Read/write data path.
    DataPath,
}

/// One studied bug.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BugRecord {
    /// Tracker id (real for named bugs, `SYN-*` for synthetic records).
    pub id: &'static str,
    /// The system it was reported against.
    pub system: System,
    /// Root-cause category.
    pub root_cause: RootCause,
    /// The protocol it lingers in.
    pub protocol: Protocol,
    /// Smallest deployment scale at which the symptom surfaced.
    pub min_nodes_to_manifest: u32,
    /// Days from report to fix.
    pub days_to_fix: u32,
    /// One-line symptom description.
    pub symptom: &'static str,
    /// Whether this record is a representative synthetic entry (true)
    /// or a documented public issue (false).
    pub synthetic: bool,
}

/// The full 38-bug dataset.
pub fn bugs() -> Vec<BugRecord> {
    use Protocol::*;
    use RootCause::*;
    use System::*;

    let named = [
        BugRecord {
            id: "CASSANDRA-3831",
            system: Cassandra,
            root_cause: CpuIntensiveComputation,
            protocol: Decommission,
            min_nodes_to_manifest: 200,
            days_to_fix: 35,
            symptom: "O(N^3)-class pending-range calculation starves GossipStage; cluster flaps",
            synthetic: false,
        },
        BugRecord {
            id: "CASSANDRA-3881",
            system: Cassandra,
            root_cause: CpuIntensiveComputation,
            protocol: ScaleOut,
            min_nodes_to_manifest: 128,
            days_to_fix: 28,
            symptom: "vnodes multiply topology-change processing cost; the C3831 fix stops scaling",
            synthetic: false,
        },
        BugRecord {
            id: "CASSANDRA-5456",
            system: Cassandra,
            root_cause: CpuIntensiveComputation,
            protocol: ScaleOut,
            min_nodes_to_manifest: 200,
            days_to_fix: 21,
            symptom: "pending-range calculation holds coarse ring lock; gossip stops working",
            synthetic: false,
        },
        BugRecord {
            id: "CASSANDRA-6127",
            system: Cassandra,
            root_cause: CpuIntensiveComputation,
            protocol: Bootstrap,
            min_nodes_to_manifest: 500,
            days_to_fix: 150,
            symptom: "fresh ring construction is O(MN^2); vnodes don't scale to hundreds of nodes",
            synthetic: false,
        },
        BugRecord {
            id: "CASSANDRA-6345",
            system: Cassandra,
            root_cause: CpuIntensiveComputation,
            protocol: Rebalance,
            min_nodes_to_manifest: 250,
            days_to_fix: 42,
            symptom: "token-metadata cloning under churn re-triggers expensive recalculation",
            synthetic: false,
        },
        BugRecord {
            id: "CASSANDRA-6409",
            system: Cassandra,
            root_cause: SerializedLinearOperations,
            protocol: Failover,
            min_nodes_to_manifest: 300,
            days_to_fix: 30,
            symptom: "serialized per-endpoint status updates delay failure handling at scale",
            synthetic: false,
        },
    ];

    // Representative synthetic records completing the paper's counts:
    // 9 Cassandra (3 more), 5 Couchbase, 2 Hadoop, 9 HBase, 11 HDFS,
    // 1 Riak, 1 Voldemort. Root causes complete 18/38 CPU vs 20/38
    // serialized (47 % / 53 %).
    let synthetic = [
        (
            Cassandra,
            CpuIntensiveComputation,
            Rebalance,
            220,
            11,
            "SYN-CA-1",
            "gossip-driven schema propagation recomputes full ring state",
        ),
        (
            Cassandra,
            SerializedLinearOperations,
            Failover,
            150,
            16,
            "SYN-CA-2",
            "hint replay iterates all endpoints under a single lock",
        ),
        (
            Cassandra,
            SerializedLinearOperations,
            DataPath,
            300,
            37,
            "SYN-CA-3",
            "per-node read-repair bookkeeping serializes on coordinator",
        ),
        (
            Couchbase,
            CpuIntensiveComputation,
            Rebalance,
            100,
            28,
            "SYN-CB-1",
            "vbucket map generation is superlinear in nodes x buckets",
        ),
        (
            Couchbase,
            SerializedLinearOperations,
            Rebalance,
            120,
            19,
            "SYN-CB-2",
            "rebalance orchestrator moves vbuckets one node at a time",
        ),
        (
            Couchbase,
            CpuIntensiveComputation,
            ScaleOut,
            140,
            14,
            "SYN-CB-3",
            "janitor scans all vbuckets per membership change",
        ),
        (
            Couchbase,
            SerializedLinearOperations,
            Failover,
            90,
            25,
            "SYN-CB-4",
            "failover quorum check contacts nodes sequentially",
        ),
        (
            Couchbase,
            SerializedLinearOperations,
            DataPath,
            200,
            9,
            "SYN-CB-5",
            "stat aggregation fans in through one dispatcher",
        ),
        (
            Hadoop,
            SerializedLinearOperations,
            Bootstrap,
            1000,
            31,
            "SYN-HD-1",
            "resource manager registers node managers serially on restart",
        ),
        (
            Hadoop,
            CpuIntensiveComputation,
            DataPath,
            2000,
            56,
            "SYN-HD-2",
            "scheduler recomputes fair shares over all apps per heartbeat",
        ),
        (
            HBase,
            SerializedLinearOperations,
            Failover,
            100,
            20,
            "SYN-HB-1",
            "master reassigns regions one RPC at a time after RS death",
        ),
        (
            HBase,
            CpuIntensiveComputation,
            Rebalance,
            150,
            17,
            "SYN-HB-2",
            "balancer cost function enumerates region x server pairs",
        ),
        (
            HBase,
            SerializedLinearOperations,
            Bootstrap,
            200,
            22,
            "SYN-HB-3",
            "meta scan on startup walks all regions sequentially",
        ),
        (
            HBase,
            SerializedLinearOperations,
            ScaleOut,
            120,
            7,
            "SYN-HB-4",
            "region server reports processed under one master lock",
        ),
        (
            HBase,
            CpuIntensiveComputation,
            Failover,
            300,
            34,
            "SYN-HB-5",
            "log splitting enumeration grows with cluster and WAL count",
        ),
        (
            HBase,
            SerializedLinearOperations,
            DataPath,
            250,
            12,
            "SYN-HB-6",
            "quota refresh iterates all tables per region server",
        ),
        (
            HBase,
            CpuIntensiveComputation,
            DataPath,
            400,
            30,
            "SYN-HB-7",
            "favored-node computation is quadratic in racks x servers",
        ),
        (
            HBase,
            SerializedLinearOperations,
            Rebalance,
            180,
            24,
            "SYN-HB-8",
            "region moves throttle through a single-threaded executor",
        ),
        (
            HBase,
            SerializedLinearOperations,
            Decommission,
            140,
            10,
            "SYN-HB-9",
            "graceful stop drains regions strictly one by one",
        ),
        (
            Hdfs,
            SerializedLinearOperations,
            Failover,
            500,
            43,
            "SYN-HF-1",
            "full block report processing blocks the namenode lock",
        ),
        (
            Hdfs,
            CpuIntensiveComputation,
            Bootstrap,
            800,
            40,
            "SYN-HF-2",
            "safe-mode block accounting recomputed per datanode report",
        ),
        (
            Hdfs,
            SerializedLinearOperations,
            Decommission,
            300,
            25,
            "SYN-HF-3",
            "decommission monitor rescans all blocks of all draining nodes",
        ),
        (
            Hdfs,
            CpuIntensiveComputation,
            Rebalance,
            400,
            50,
            "SYN-HF-4",
            "balancer pairing considers all source x target datanodes",
        ),
        (
            Hdfs,
            SerializedLinearOperations,
            DataPath,
            600,
            17,
            "SYN-HF-5",
            "invalidate queues flushed serially under namesystem lock",
        ),
        (
            Hdfs,
            SerializedLinearOperations,
            Bootstrap,
            700,
            56,
            "SYN-HF-6",
            "initial block reports storm the namenode single handler",
        ),
        (
            Hdfs,
            CpuIntensiveComputation,
            Failover,
            900,
            62,
            "SYN-HF-7",
            "standby catch-up replays edits with per-block recomputation",
        ),
        (
            Hdfs,
            SerializedLinearOperations,
            ScaleOut,
            350,
            16,
            "SYN-HF-8",
            "datanode registration serialized on network topology update",
        ),
        (
            Hdfs,
            CpuIntensiveComputation,
            DataPath,
            1000,
            19,
            "SYN-HF-9",
            "replication monitor scans the full blocks map each pass",
        ),
        (
            Hdfs,
            SerializedLinearOperations,
            Rebalance,
            450,
            27,
            "SYN-HF-10",
            "mover iterates namespaces sequentially per iteration",
        ),
        (
            Hdfs,
            CpuIntensiveComputation,
            Decommission,
            550,
            22,
            "SYN-HF-11",
            "per-node pending-replication recount is quadratic when draining many nodes",
        ),
        (
            Riak,
            CpuIntensiveComputation,
            Rebalance,
            100,
            15,
            "SYN-RK-1",
            "ring claim algorithm recomputes full preference lists per claim",
        ),
        (
            Voldemort,
            SerializedLinearOperations,
            Rebalance,
            80,
            18,
            "SYN-VM-1",
            "rebalance plan executes partition moves strictly serially",
        ),
    ];

    let mut out: Vec<BugRecord> = named.to_vec();
    for (system, root_cause, protocol, min_nodes, days, id, symptom) in synthetic {
        out.push(BugRecord {
            id,
            system,
            root_cause,
            protocol,
            min_nodes_to_manifest: min_nodes,
            days_to_fix: days,
            symptom,
            synthetic: true,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_38_bugs() {
        assert_eq!(bugs().len(), 38);
    }

    #[test]
    fn named_bugs_are_not_synthetic() {
        let b = bugs();
        let named: Vec<&BugRecord> = b.iter().filter(|b| !b.synthetic).collect();
        assert_eq!(named.len(), 6);
        assert!(named.iter().all(|b| b.id.starts_with("CASSANDRA-")));
    }

    #[test]
    fn ids_are_unique() {
        let b = bugs();
        let mut ids: Vec<&str> = b.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 38);
    }
}
