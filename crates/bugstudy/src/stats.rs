//! Taxonomy queries over the bug-study dataset — the §2/§3 aggregates.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::data::{BugRecord, Protocol, RootCause, System};

/// Aggregate statistics over a set of bug records.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StudyStats {
    /// Bugs per system.
    pub per_system: BTreeMap<String, usize>,
    /// Fraction with CPU-intensive root cause.
    pub cpu_fraction: f64,
    /// Fraction with serialized-O(N) root cause.
    pub serialized_fraction: f64,
    /// Mean days to fix.
    pub mean_days_to_fix: f64,
    /// Maximum days to fix.
    pub max_days_to_fix: u32,
    /// Bugs per protocol.
    pub per_protocol: BTreeMap<String, usize>,
    /// Bugs that only manifest above 100 nodes.
    pub manifest_above_100: usize,
    /// Total bugs.
    pub total: usize,
}

/// Computes the study aggregates.
pub fn stats(bugs: &[BugRecord]) -> StudyStats {
    let total = bugs.len();
    let mut per_system = BTreeMap::new();
    let mut per_protocol = BTreeMap::new();
    let mut cpu = 0usize;
    let mut days_sum = 0u64;
    let mut days_max = 0u32;
    let mut above_100 = 0usize;
    for b in bugs {
        *per_system.entry(format!("{:?}", b.system)).or_insert(0) += 1;
        *per_protocol.entry(format!("{:?}", b.protocol)).or_insert(0) += 1;
        if b.root_cause == RootCause::CpuIntensiveComputation {
            cpu += 1;
        }
        days_sum += b.days_to_fix as u64;
        days_max = days_max.max(b.days_to_fix);
        if b.min_nodes_to_manifest > 100 {
            above_100 += 1;
        }
    }
    StudyStats {
        per_system,
        cpu_fraction: cpu as f64 / total.max(1) as f64,
        serialized_fraction: (total - cpu) as f64 / total.max(1) as f64,
        mean_days_to_fix: days_sum as f64 / total.max(1) as f64,
        max_days_to_fix: days_max,
        per_protocol,
        manifest_above_100: above_100,
        total,
    }
}

/// Bugs affecting one system.
pub fn by_system(bugs: &[BugRecord], system: System) -> Vec<&BugRecord> {
    bugs.iter().filter(|b| b.system == system).collect()
}

/// Bugs lingering in one protocol.
pub fn by_protocol(bugs: &[BugRecord], protocol: Protocol) -> Vec<&BugRecord> {
    bugs.iter().filter(|b| b.protocol == protocol).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::bugs;

    #[test]
    fn per_system_counts_match_paper() {
        let s = stats(&bugs());
        assert_eq!(s.per_system["Cassandra"], 9);
        assert_eq!(s.per_system["Couchbase"], 5);
        assert_eq!(s.per_system["Hadoop"], 2);
        assert_eq!(s.per_system["HBase"], 9);
        assert_eq!(s.per_system["Hdfs"], 11);
        assert_eq!(s.per_system["Riak"], 1);
        assert_eq!(s.per_system["Voldemort"], 1);
        assert_eq!(s.total, 38);
    }

    #[test]
    fn root_cause_split_matches_paper() {
        // 47% CPU-intensive vs 53% serialized O(N): 18 vs 20 of 38.
        let s = stats(&bugs());
        assert!(
            (s.cpu_fraction - 18.0 / 38.0).abs() < 1e-9,
            "{}",
            s.cpu_fraction
        );
        assert!((s.cpu_fraction - 0.47).abs() < 0.01);
        assert!((s.serialized_fraction - 0.53).abs() < 0.01);
    }

    #[test]
    fn fix_times_match_paper() {
        // ~1 month average, 5 months max.
        let s = stats(&bugs());
        assert!(
            (25.0..=35.0).contains(&s.mean_days_to_fix),
            "mean {}",
            s.mean_days_to_fix
        );
        assert_eq!(s.max_days_to_fix, 150);
    }

    #[test]
    fn protocols_are_diverse() {
        // §3: bugs linger in bootstrap, scale-out, decommission,
        // rebalance, failover AND data paths.
        let s = stats(&bugs());
        assert!(s.per_protocol.len() >= 6, "{:?}", s.per_protocol);
        for proto in [
            "Bootstrap",
            "ScaleOut",
            "Decommission",
            "Rebalance",
            "Failover",
            "DataPath",
        ] {
            assert!(s.per_protocol[proto] > 0, "{proto} missing");
        }
    }

    #[test]
    fn most_bugs_need_more_than_100_nodes() {
        // The title's point: 100-node testing is not enough.
        let s = stats(&bugs());
        assert!(
            s.manifest_above_100 * 2 > s.total,
            "{} of {}",
            s.manifest_above_100,
            s.total
        );
    }

    #[test]
    fn filters_work() {
        let all = bugs();
        assert_eq!(by_system(&all, System::Riak).len(), 1);
        assert!(!by_protocol(&all, Protocol::Decommission).is_empty());
    }
}
