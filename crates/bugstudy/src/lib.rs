//! The scalability-bug study dataset of the ScaleCheck reproduction
//! (paper §2–§3).
//!
//! 38 bugs across Cassandra, Couchbase, Hadoop, HBase, HDFS, Riak and
//! Voldemort, with the named Cassandra lineage recorded from public
//! JIRA facts and the unnamed remainder as clearly-flagged
//! representative synthetic records reproducing every aggregate the
//! paper states (counts per system, the 47 %/53 % root-cause split, the
//! 1-month-mean / 5-month-max fix times, protocol diversity).
//!
//! # Examples
//!
//! ```
//! use scalecheck_bugstudy::{bugs, stats};
//!
//! let s = stats(&bugs());
//! assert_eq!(s.total, 38);
//! assert_eq!(s.per_system["Cassandra"], 9);
//! assert!((s.cpu_fraction - 0.47).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]

pub mod data;
pub mod stats;

pub use data::{bugs, BugRecord, Protocol, RootCause, System};
pub use stats::{by_protocol, by_system, stats, StudyStats};
