//! Link latency models.
//!
//! The paper's clusters are datacenter LANs; gossip messages see
//! sub-millisecond to low-millisecond delays with a long tail. The
//! [`LatencyModel`] enum provides the distributions the experiments use;
//! all sampling flows through the deterministic simulator RNG.

use scalecheck_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// A distribution of one-way link latencies.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Minimum latency.
        min: SimDuration,
        /// Maximum latency.
        max: SimDuration,
    },
    /// Log-normal with the given median and shape `sigma` (the classic
    /// heavy-tailed LAN model).
    LogNormal {
        /// Median latency (the exponential of the underlying mean).
        median: SimDuration,
        /// Log-space standard deviation; 0.3–0.6 is LAN-like.
        sigma: f64,
    },
}

impl LatencyModel {
    /// A datacenter-LAN default: log-normal, 500 us median, sigma 0.4.
    pub fn lan() -> Self {
        LatencyModel::LogNormal {
            median: SimDuration::from_micros(500),
            sigma: 0.4,
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                let span = max.as_nanos().saturating_sub(min.as_nanos());
                SimDuration::from_nanos(min.as_nanos() + rng.gen_range(span.saturating_add(1)))
            }
            LatencyModel::LogNormal { median, sigma } => {
                let z = rng.gen_normal();
                SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * z).exp())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut rng = DetRng::new(1);
        let m = LatencyModel::Constant(SimDuration::from_millis(2));
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(2));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::new(2);
        let min = SimDuration::from_micros(100);
        let max = SimDuration::from_micros(300);
        let m = LatencyModel::Uniform { min, max };
        let mut lo = u64::MAX;
        let mut hi = 0;
        for _ in 0..5_000 {
            let s = m.sample(&mut rng).as_nanos();
            assert!(s >= min.as_nanos() && s <= max.as_nanos());
            lo = lo.min(s);
            hi = hi.max(s);
        }
        // Should cover most of the interval.
        assert!(lo < min.as_nanos() + 20_000);
        assert!(hi > max.as_nanos() - 20_000);
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = DetRng::new(3);
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_micros(500),
            sigma: 0.4,
        };
        let mut samples: Vec<u64> = (0..20_001).map(|_| m.sample(&mut rng).as_nanos()).collect();
        samples.sort_unstable();
        let med = samples[samples.len() / 2] as f64;
        assert!(
            (med - 500_000.0).abs() / 500_000.0 < 0.05,
            "median {med} ns should be ~500us"
        );
        // Heavy tail: p99 well above the median.
        let p99 = samples[(samples.len() as f64 * 0.99) as usize] as f64;
        assert!(p99 > 1.5 * med, "p99 {p99} vs med {med}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let m = LatencyModel::lan();
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
