//! The simulated message fabric.
//!
//! [`Network`] decides, per message, whether it is dropped (fault
//! injection or partition) and when it arrives (latency model plus
//! per-link FIFO ordering). It is pure data: the caller passes the
//! current time and RNG and schedules the delivery event itself, which
//! keeps the network engine-agnostic and unit-testable.
//!
//! Every accepted message is appended to a delivery trace; the trace is
//! what the memoizer records to enforce the paper's *order determinism*
//! during PIL replay (§5).

use std::collections::{BTreeMap, BTreeSet};

use scalecheck_sim::{Counter, DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::latency::LatencyModel;

/// A network endpoint (one simulated node).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u32);

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Globally unique id of an accepted message.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct MessageId(pub u64);

/// One accepted message in the delivery trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Message id (monotone in send order).
    pub id: MessageId,
    /// Sender.
    pub src: Addr,
    /// Receiver.
    pub dst: Addr,
    /// When it was sent.
    pub sent_at: SimTime,
    /// When it arrives.
    pub deliver_at: SimTime,
}

/// Why a message was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss from the configured drop probability.
    RandomLoss,
    /// The (src, dst) pair is partitioned.
    Partitioned,
}

/// Network configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way latency distribution.
    pub latency: LatencyModel,
    /// Probability that any message is silently dropped.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::lan(),
            drop_probability: 0.0,
        }
    }
}

/// The simulated network fabric.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    next_id: u64,
    // Per-link clock enforcing FIFO delivery on each (src, dst) pair.
    link_clock: BTreeMap<(Addr, Addr), SimTime>,
    partitions: BTreeSet<(Addr, Addr)>,
    trace: Vec<DeliveryRecord>,
    record_trace: bool,
    sent: Counter,
    dropped: Counter,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            next_id: 0,
            link_clock: BTreeMap::new(),
            partitions: BTreeSet::new(),
            trace: Vec::new(),
            record_trace: false,
            sent: Counter::new(),
            dropped: Counter::new(),
        }
    }

    /// Enables or disables delivery-trace recording (used by the
    /// memoization run; replays do not need to re-record).
    pub fn set_record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Offers a message to the fabric. On acceptance returns its id and
    /// delivery time (the caller schedules the delivery event); on drop
    /// returns the reason.
    pub fn send(
        &mut self,
        now: SimTime,
        rng: &mut DetRng,
        src: Addr,
        dst: Addr,
    ) -> Result<(MessageId, SimTime), DropReason> {
        self.sent.inc();
        if self.is_partitioned(src, dst) {
            self.dropped.inc();
            return Err(DropReason::Partitioned);
        }
        if self.config.drop_probability > 0.0 && rng.gen_bool(self.config.drop_probability) {
            self.dropped.inc();
            return Err(DropReason::RandomLoss);
        }
        let latency = self.config.latency.sample(rng);
        let mut deliver_at = now + latency;
        // FIFO per link: never deliver before an earlier message on the
        // same (src, dst) pair.
        let clock = self.link_clock.entry((src, dst)).or_insert(SimTime::ZERO);
        if deliver_at <= *clock {
            deliver_at = *clock + SimDuration::from_nanos(1);
        }
        *clock = deliver_at;

        let id = MessageId(self.next_id);
        self.next_id += 1;
        if self.record_trace {
            self.trace.push(DeliveryRecord {
                id,
                src,
                dst,
                sent_at: now,
                deliver_at,
            });
        }
        Ok((id, deliver_at))
    }

    /// Cuts connectivity between `a` and `b` (both directions).
    pub fn partition(&mut self, a: Addr, b: Addr) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: Addr, b: Addr) {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
    }

    /// Whether messages from `src` to `dst` are currently blocked.
    pub fn is_partitioned(&self, src: Addr, dst: Addr) -> bool {
        self.partitions.contains(&(src, dst))
    }

    /// The recorded delivery trace.
    pub fn trace(&self) -> &[DeliveryRecord] {
        &self.trace
    }

    /// Takes ownership of the recorded trace, clearing it.
    pub fn take_trace(&mut self) -> Vec<DeliveryRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Messages offered to the fabric.
    pub fn sent(&self) -> u64 {
        self.sent.get()
    }

    /// Messages dropped (loss or partition).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(drop: f64) -> Network {
        Network::new(NetworkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(1)),
            drop_probability: drop,
        })
    }

    #[test]
    fn send_assigns_monotone_ids_and_latency() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        let (id0, t0) = n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        let (id1, _) = n
            .send(SimTime::from_millis(5), &mut rng, Addr(1), Addr(2))
            .unwrap();
        assert_eq!(id0, MessageId(0));
        assert_eq!(id1, MessageId(1));
        assert_eq!(t0, SimTime::from_millis(1));
        assert_eq!(n.sent(), 2);
        assert_eq!(n.dropped(), 0);
    }

    #[test]
    fn per_link_fifo_is_enforced() {
        // With jittery latency, a later message must never arrive before
        // an earlier one on the same link.
        let mut n = Network::new(NetworkConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(10),
                max: SimDuration::from_millis(10),
            },
            drop_probability: 0.0,
        });
        let mut rng = DetRng::new(7);
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            let now = SimTime::from_nanos(i * 1000);
            let (_, at) = n.send(now, &mut rng, Addr(1), Addr(2)).unwrap();
            assert!(at > last, "FIFO violated: {at} after {last}");
            last = at;
        }
    }

    #[test]
    fn different_links_are_independent() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        let (_, t_ab) = n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        let (_, t_ba) = n.send(SimTime::ZERO, &mut rng, Addr(2), Addr(1)).unwrap();
        // Reverse direction is a different link: same constant latency.
        assert_eq!(t_ab, t_ba);
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        n.partition(Addr(1), Addr(2));
        assert_eq!(
            n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2))
                .unwrap_err(),
            DropReason::Partitioned
        );
        assert_eq!(
            n.send(SimTime::ZERO, &mut rng, Addr(2), Addr(1))
                .unwrap_err(),
            DropReason::Partitioned
        );
        // Unrelated pair unaffected.
        assert!(n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(3)).is_ok());
        n.heal(Addr(1), Addr(2));
        assert!(n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).is_ok());
        assert_eq!(n.dropped(), 2);
    }

    #[test]
    fn random_loss_drops_roughly_p() {
        let mut n = net(0.3);
        let mut rng = DetRng::new(5);
        let mut drops = 0;
        for _ in 0..10_000 {
            if n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).is_err() {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        assert!(n.trace().is_empty());
        n.set_record_trace(true);
        n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        assert_eq!(n.trace().len(), 1);
        let rec = n.trace()[0];
        assert_eq!(rec.src, Addr(1));
        assert_eq!(rec.dst, Addr(2));
        let taken = n.take_trace();
        assert_eq!(taken.len(), 1);
        assert!(n.trace().is_empty());
    }
}
