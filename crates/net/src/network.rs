//! The simulated message fabric.
//!
//! [`Network`] decides, per message, whether it is dropped (fault
//! injection or partition) and when it arrives (latency model plus
//! per-link FIFO ordering). It is pure data: the caller passes the
//! current time and RNG and schedules the delivery event itself, which
//! keeps the network engine-agnostic and unit-testable.
//!
//! Every accepted message is appended to a delivery trace; the trace is
//! what the memoizer records to enforce the paper's *order determinism*
//! during PIL replay (§5).

use std::collections::BTreeSet;

use scalecheck_sim::{Counter, DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::latency::LatencyModel;

/// A network endpoint (one simulated node).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u32);

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Globally unique id of an accepted message.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct MessageId(pub u64);

/// One accepted message in the delivery trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeliveryRecord {
    /// Message id (monotone in send order).
    pub id: MessageId,
    /// Sender.
    pub src: Addr,
    /// Receiver.
    pub dst: Addr,
    /// When it was sent.
    pub sent_at: SimTime,
    /// When it arrives.
    pub deliver_at: SimTime,
}

/// Why a message was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss from the configured drop probability.
    RandomLoss,
    /// The (src, dst) pair is partitioned.
    Partitioned,
    /// An injected fault window dropped the message.
    FaultLoss,
}

/// An accepted message's delivery schedule: the primary arrival plus an
/// optional fault-injected duplicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The message id.
    pub id: MessageId,
    /// When the primary copy arrives.
    pub deliver_at: SimTime,
    /// When the duplicate arrives, if a duplication window fired.
    pub duplicate_at: Option<SimTime>,
}

/// A time-bounded per-link fault window. `None` endpoints match any
/// node; windows are active on `[from, until)`.
#[derive(Clone, Copy, Debug)]
struct FaultWindow {
    from: SimTime,
    until: SimTime,
    src: Option<Addr>,
    dst: Option<Addr>,
}

impl FaultWindow {
    fn matches(&self, now: SimTime, src: Addr, dst: Addr) -> bool {
        self.from <= now
            && now < self.until
            && self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
    }
}

/// Network configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way latency distribution.
    pub latency: LatencyModel,
    /// Probability that any message is silently dropped.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::lan(),
            drop_probability: 0.0,
        }
    }
}

/// Per-link FIFO clocks.
///
/// `fifo_clamp` runs once per accepted message — the network hot path —
/// so every lookup must be O(1) array indexing. The address plane is
/// carved into `TILE × TILE` tiles (tile row = src block, tile column =
/// dst block): a top-level directory of tile pointers grows
/// geometrically with the highest address seen, and each tile is
/// allocated the first time a link inside it is touched.
///
/// The previous layout was one dense `side × side` matrix capped at
/// 1024 addresses, with everything beyond the cap falling off a cliff
/// into per-message `BTreeMap` probes — exactly the kind of
/// hidden-past-the-tested-scale bug this simulator exists to catch.
/// Tiling removes the cap (4096-addr runs stay O(1)), makes growth
/// cheap (the directory copy moves pointers, never clock data), and
/// allocates only the tiles traffic actually reaches.
#[derive(Clone, Debug, Default)]
struct LinkClocks {
    /// Row-major `top_side × top_side` directory of lazily allocated
    /// tiles.
    tiles: Vec<Option<Box<[SimTime; Self::TILE * Self::TILE]>>>,
    /// Directory side length, in tiles.
    top_side: usize,
}

impl LinkClocks {
    /// Tile side in addresses: one touched tile is 64² clocks = 32 KiB.
    const TILE: usize = 64;

    fn clock_mut(&mut self, src: Addr, dst: Addr) -> &mut SimTime {
        let (s, d) = (src.0 as usize, dst.0 as usize);
        let (ts, td) = (s / Self::TILE, d / Self::TILE);
        let need = ts.max(td) + 1;
        if need > self.top_side {
            self.grow(need);
        }
        let tile = self.tiles[ts * self.top_side + td]
            .get_or_insert_with(|| Box::new([SimTime::ZERO; Self::TILE * Self::TILE]));
        &mut tile[(s % Self::TILE) * Self::TILE + (d % Self::TILE)]
    }

    fn grow(&mut self, need: usize) {
        let new_side = need.next_power_of_two();
        let mut tiles: Vec<Option<Box<[SimTime; Self::TILE * Self::TILE]>>> = Vec::new();
        tiles.resize_with(new_side * new_side, || None);
        for r in 0..self.top_side {
            for c in 0..self.top_side {
                tiles[r * new_side + c] = self.tiles[r * self.top_side + c].take();
            }
        }
        self.tiles = tiles;
        self.top_side = new_side;
    }

    #[cfg(test)]
    fn allocated_tiles(&self) -> usize {
        self.tiles.iter().filter(|t| t.is_some()).count()
    }
}

/// The simulated network fabric.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetworkConfig,
    next_id: u64,
    // Per-link clock enforcing FIFO delivery on each (src, dst) pair.
    link_clock: LinkClocks,
    partitions: BTreeSet<(Addr, Addr)>,
    drop_windows: Vec<(FaultWindow, f64)>,
    delay_windows: Vec<(FaultWindow, SimDuration)>,
    dup_windows: Vec<(FaultWindow, f64)>,
    trace: Vec<DeliveryRecord>,
    record_trace: bool,
    sent: Counter,
    dropped: Counter,
    dropped_partition: Counter,
    dropped_fault: Counter,
    fault_delayed: Counter,
    fault_duplicated: Counter,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            next_id: 0,
            link_clock: LinkClocks::default(),
            partitions: BTreeSet::new(),
            drop_windows: Vec::new(),
            delay_windows: Vec::new(),
            dup_windows: Vec::new(),
            trace: Vec::new(),
            record_trace: false,
            sent: Counter::new(),
            dropped: Counter::new(),
            dropped_partition: Counter::new(),
            dropped_fault: Counter::new(),
            fault_delayed: Counter::new(),
            fault_duplicated: Counter::new(),
        }
    }

    /// Installs a probabilistic drop window on the matching links,
    /// active on `[from, until)`.
    pub fn add_drop_window(
        &mut self,
        from: SimTime,
        until: SimTime,
        src: Option<Addr>,
        dst: Option<Addr>,
        probability: f64,
    ) {
        self.drop_windows.push((
            FaultWindow {
                from,
                until,
                src,
                dst,
            },
            probability,
        ));
    }

    /// Installs an added-latency window on the matching links.
    pub fn add_delay_window(
        &mut self,
        from: SimTime,
        until: SimTime,
        src: Option<Addr>,
        dst: Option<Addr>,
        extra: SimDuration,
    ) {
        self.delay_windows.push((
            FaultWindow {
                from,
                until,
                src,
                dst,
            },
            extra,
        ));
    }

    /// Installs a probabilistic duplication window on the matching
    /// links.
    pub fn add_duplicate_window(
        &mut self,
        from: SimTime,
        until: SimTime,
        src: Option<Addr>,
        dst: Option<Addr>,
        probability: f64,
    ) {
        self.dup_windows.push((
            FaultWindow {
                from,
                until,
                src,
                dst,
            },
            probability,
        ));
    }

    /// Enables or disables delivery-trace recording (used by the
    /// memoization run; replays do not need to re-record).
    pub fn set_record_trace(&mut self, on: bool) {
        self.record_trace = on;
    }

    /// Offers a message to the fabric, returning its id and delivery
    /// time on acceptance (the caller schedules the delivery event) or
    /// the drop reason. Compatibility wrapper around [`Network::offer`]
    /// that ignores fault-injected duplicates.
    pub fn send(
        &mut self,
        now: SimTime,
        rng: &mut DetRng,
        src: Addr,
        dst: Addr,
    ) -> Result<(MessageId, SimTime), DropReason> {
        self.offer(now, rng, src, dst).map(|d| (d.id, d.deliver_at))
    }

    /// Offers a message to the fabric. On acceptance returns the full
    /// delivery schedule — primary arrival plus an optional
    /// fault-injected duplicate — on drop, the reason. Consults, in
    /// order: partitions, configured random loss, active drop windows,
    /// then samples latency (plus any active delay window) under
    /// per-link FIFO.
    pub fn offer(
        &mut self,
        now: SimTime,
        rng: &mut DetRng,
        src: Addr,
        dst: Addr,
    ) -> Result<Delivery, DropReason> {
        self.sent.inc();
        if self.is_partitioned(src, dst) {
            self.dropped.inc();
            self.dropped_partition.inc();
            return Err(DropReason::Partitioned);
        }
        if self.config.drop_probability > 0.0 && rng.gen_bool(self.config.drop_probability) {
            self.dropped.inc();
            return Err(DropReason::RandomLoss);
        }
        for k in 0..self.drop_windows.len() {
            let (w, p) = self.drop_windows[k];
            if w.matches(now, src, dst) && rng.gen_bool(p) {
                self.dropped.inc();
                self.dropped_fault.inc();
                return Err(DropReason::FaultLoss);
            }
        }
        let extra = self.fault_delay(now, src, dst);
        if extra > SimDuration::ZERO {
            self.fault_delayed.inc();
        }
        let latency = self.config.latency.sample(rng) + extra;
        let deliver_at = self.fifo_clamp(src, dst, now + latency);

        // Duplication windows: the copy takes an independent latency
        // sample (it still pays any active delay window) and respects
        // link FIFO behind the primary.
        let mut duplicate_at = None;
        for k in 0..self.dup_windows.len() {
            let (w, p) = self.dup_windows[k];
            if w.matches(now, src, dst) && rng.gen_bool(p) {
                self.fault_duplicated.inc();
                let dup_latency = self.config.latency.sample(rng) + extra;
                duplicate_at = Some(self.fifo_clamp(src, dst, now + dup_latency));
                break;
            }
        }

        let id = MessageId(self.next_id);
        self.next_id += 1;
        if self.record_trace {
            self.trace.push(DeliveryRecord {
                id,
                src,
                dst,
                sent_at: now,
                deliver_at,
            });
        }
        Ok(Delivery {
            id,
            deliver_at,
            duplicate_at,
        })
    }

    /// Sum of active delay-window penalties for this link at `now`.
    fn fault_delay(&self, now: SimTime, src: Addr, dst: Addr) -> SimDuration {
        self.delay_windows
            .iter()
            .filter(|(w, _)| w.matches(now, src, dst))
            .fold(SimDuration::ZERO, |acc, &(_, d)| acc + d)
    }

    /// FIFO per link: never deliver before an earlier message on the
    /// same (src, dst) pair. Advances the link clock.
    fn fifo_clamp(&mut self, src: Addr, dst: Addr, mut deliver_at: SimTime) -> SimTime {
        let clock = self.link_clock.clock_mut(src, dst);
        if deliver_at <= *clock {
            deliver_at = *clock + SimDuration::from_nanos(1);
        }
        *clock = deliver_at;
        deliver_at
    }

    /// Offers one *data-plane* message (a client request or replica
    /// response from the traffic engine) to the fabric, returning its
    /// delivery time, or `None` if the fabric drops it.
    ///
    /// Data messages share the control plane's partitions, random
    /// loss, drop/delay fault windows, latency model, and — crucially —
    /// the per-link FIFO clocks, so queued gossip delays requests and
    /// heavy request traffic delays gossip. They are *not* part of the
    /// control-plane bookkeeping: no [`MessageId`], no delivery-trace
    /// entry (schedule memoization replays the control plane only), no
    /// duplicate injection (replica RPCs are idempotent, so the extra
    /// arrival would be unobservable), and none of the control-plane
    /// counters move — callers account data messages themselves. This
    /// replaces the old read-only `fifo_lag` probe, which sampled the
    /// link clock without paying for a slot on the link.
    pub fn offer_data(
        &mut self,
        now: SimTime,
        rng: &mut DetRng,
        src: Addr,
        dst: Addr,
    ) -> Option<SimTime> {
        if self.is_partitioned(src, dst) {
            return None;
        }
        if self.config.drop_probability > 0.0 && rng.gen_bool(self.config.drop_probability) {
            return None;
        }
        for k in 0..self.drop_windows.len() {
            let (w, p) = self.drop_windows[k];
            if w.matches(now, src, dst) && rng.gen_bool(p) {
                return None;
            }
        }
        let latency = self.config.latency.sample(rng) + self.fault_delay(now, src, dst);
        Some(self.fifo_clamp(src, dst, now + latency))
    }

    /// Cuts connectivity between `a` and `b` (both directions).
    pub fn partition(&mut self, a: Addr, b: Addr) {
        self.partitions.insert((a, b));
        self.partitions.insert((b, a));
    }

    /// Restores connectivity between `a` and `b`.
    pub fn heal(&mut self, a: Addr, b: Addr) {
        self.partitions.remove(&(a, b));
        self.partitions.remove(&(b, a));
    }

    /// Whether messages from `src` to `dst` are currently blocked.
    pub fn is_partitioned(&self, src: Addr, dst: Addr) -> bool {
        self.partitions.contains(&(src, dst))
    }

    /// The recorded delivery trace.
    pub fn trace(&self) -> &[DeliveryRecord] {
        &self.trace
    }

    /// Takes ownership of the recorded trace, clearing it.
    pub fn take_trace(&mut self) -> Vec<DeliveryRecord> {
        std::mem::take(&mut self.trace)
    }

    /// Messages offered to the fabric.
    pub fn sent(&self) -> u64 {
        self.sent.get()
    }

    /// Messages dropped (loss, partition, or fault window).
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Messages dropped because the link was partitioned.
    pub fn dropped_by_partition(&self) -> u64 {
        self.dropped_partition.get()
    }

    /// Messages dropped by an injected drop window.
    pub fn dropped_by_fault(&self) -> u64 {
        self.dropped_fault.get()
    }

    /// Messages delayed by an injected delay window.
    pub fn fault_delayed(&self) -> u64 {
        self.fault_delayed.get()
    }

    /// Messages duplicated by an injected duplication window.
    pub fn fault_duplicated(&self) -> u64 {
        self.fault_duplicated.get()
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn net(drop: f64) -> Network {
        Network::new(NetworkConfig {
            latency: LatencyModel::Constant(SimDuration::from_millis(1)),
            drop_probability: drop,
        })
    }

    #[test]
    fn link_clocks_survive_growth_past_the_old_dense_cap() {
        let mut clocks = LinkClocks::default();
        *clocks.clock_mut(Addr(0), Addr(1)) = SimTime::from_secs(5);
        assert_eq!(clocks.top_side, 1);
        assert_eq!(clocks.allocated_tiles(), 1);
        // Touching a larger address grows the directory; earlier clocks
        // must carry over.
        *clocks.clock_mut(Addr(100), Addr(7)) = SimTime::from_secs(9);
        assert!(clocks.top_side >= 2);
        assert_eq!(*clocks.clock_mut(Addr(0), Addr(1)), SimTime::from_secs(5));
        assert_eq!(*clocks.clock_mut(Addr(100), Addr(7)), SimTime::from_secs(9));
        // Untouched links start at zero, directions are independent.
        assert_eq!(*clocks.clock_mut(Addr(1), Addr(0)), SimTime::ZERO);
        // Addresses past the old 1024 dense cap stay in O(1) tiles —
        // no more BTreeMap cliff — and keep their clocks too.
        let tiles_before = clocks.allocated_tiles();
        let big = Addr(4099);
        *clocks.clock_mut(big, Addr(1)) = SimTime::from_secs(11);
        assert_eq!(*clocks.clock_mut(big, Addr(1)), SimTime::from_secs(11));
        assert_eq!(clocks.allocated_tiles(), tiles_before + 1);
        // Growth allocates directory slots, not clock storage: only
        // touched tiles own memory.
        assert!(clocks.top_side >= 65);
    }

    #[test]
    fn link_clocks_match_a_sparse_reference_model() {
        // Differential check of the tiled store against the obvious
        // sparse map it replaced, across tile boundaries and growth.
        let mut clocks = LinkClocks::default();
        let mut model: BTreeMap<(Addr, Addr), SimTime> = BTreeMap::new();
        let mut x = 0x2545f4914f6cdd1du64;
        for i in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let src = Addr((x % 4300) as u32);
            let dst = Addr(((x >> 32) % 4300) as u32);
            let t = SimTime::from_nanos(i);
            let c = clocks.clock_mut(src, dst);
            if *c < t {
                *c = t;
            }
            let m = model.entry((src, dst)).or_insert(SimTime::ZERO);
            if *m < t {
                *m = t;
            }
            assert_eq!(*clocks.clock_mut(src, dst), model[&(src, dst)]);
        }
        for (&(src, dst), &t) in &model {
            assert_eq!(*clocks.clock_mut(src, dst), t);
        }
    }

    #[test]
    fn data_offers_ride_fifo_clocks_but_skip_control_bookkeeping() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        n.set_record_trace(true);
        // Queue three control messages at t=0 on one link: constant
        // 1 ms latency stacks the link clock to 1 ms + 2 ns.
        for _ in 0..3 {
            n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        }
        // A data message on the jammed link queues behind the three
        // accepted control messages...
        let at = n
            .offer_data(SimTime::ZERO, &mut rng, Addr(1), Addr(2))
            .unwrap();
        assert!(at > SimTime::ZERO + SimDuration::from_millis(1), "{at:?}");
        // ...and the next control message queues behind the data one:
        // the coupling is bidirectional.
        let (id, ctrl_at) = n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        assert!(ctrl_at > at);
        // The reverse direction is independent and idle.
        assert_eq!(
            n.offer_data(SimTime::ZERO, &mut rng, Addr(2), Addr(1)),
            Some(SimTime::ZERO + SimDuration::from_millis(1))
        );
        // Ids, counters, and the delivery trace never saw the data
        // messages.
        assert_eq!(id, MessageId(3));
        assert_eq!(n.sent(), 4);
        assert_eq!(n.trace().len(), 4);
        // Partitions drop data messages outright.
        n.partition(Addr(1), Addr(2));
        assert_eq!(
            n.offer_data(SimTime::ZERO, &mut rng, Addr(1), Addr(2)),
            None
        );
    }

    #[test]
    fn send_assigns_monotone_ids_and_latency() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        let (id0, t0) = n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        let (id1, _) = n
            .send(SimTime::from_millis(5), &mut rng, Addr(1), Addr(2))
            .unwrap();
        assert_eq!(id0, MessageId(0));
        assert_eq!(id1, MessageId(1));
        assert_eq!(t0, SimTime::from_millis(1));
        assert_eq!(n.sent(), 2);
        assert_eq!(n.dropped(), 0);
    }

    #[test]
    fn per_link_fifo_is_enforced() {
        // With jittery latency, a later message must never arrive before
        // an earlier one on the same link.
        let mut n = Network::new(NetworkConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(10),
                max: SimDuration::from_millis(10),
            },
            drop_probability: 0.0,
        });
        let mut rng = DetRng::new(7);
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            let now = SimTime::from_nanos(i * 1000);
            let (_, at) = n.send(now, &mut rng, Addr(1), Addr(2)).unwrap();
            assert!(at > last, "FIFO violated: {at} after {last}");
            last = at;
        }
    }

    #[test]
    fn different_links_are_independent() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        let (_, t_ab) = n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        let (_, t_ba) = n.send(SimTime::ZERO, &mut rng, Addr(2), Addr(1)).unwrap();
        // Reverse direction is a different link: same constant latency.
        assert_eq!(t_ab, t_ba);
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        n.partition(Addr(1), Addr(2));
        assert_eq!(
            n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2))
                .unwrap_err(),
            DropReason::Partitioned
        );
        assert_eq!(
            n.send(SimTime::ZERO, &mut rng, Addr(2), Addr(1))
                .unwrap_err(),
            DropReason::Partitioned
        );
        // Unrelated pair unaffected.
        assert!(n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(3)).is_ok());
        n.heal(Addr(1), Addr(2));
        assert!(n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).is_ok());
        assert_eq!(n.dropped(), 2);
    }

    #[test]
    fn random_loss_drops_roughly_p() {
        let mut n = net(0.3);
        let mut rng = DetRng::new(5);
        let mut drops = 0;
        for _ in 0..10_000 {
            if n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).is_err() {
                drops += 1;
            }
        }
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
    }

    #[test]
    fn drop_window_only_bites_inside_its_bounds_and_links() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(9);
        n.add_drop_window(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            Some(Addr(1)),
            None,
            1.0,
        );
        // Before the window: accepted.
        assert!(n
            .send(SimTime::from_secs(5), &mut rng, Addr(1), Addr(2))
            .is_ok());
        // Inside the window, matching src: always dropped at p=1.
        assert_eq!(
            n.send(SimTime::from_secs(15), &mut rng, Addr(1), Addr(2))
                .unwrap_err(),
            DropReason::FaultLoss
        );
        // Inside the window, non-matching src: accepted.
        assert!(n
            .send(SimTime::from_secs(15), &mut rng, Addr(3), Addr(2))
            .is_ok());
        // At the exclusive end: accepted.
        assert!(n
            .send(SimTime::from_secs(20), &mut rng, Addr(1), Addr(2))
            .is_ok());
        assert_eq!(n.dropped_by_fault(), 1);
        assert_eq!(n.dropped(), 1);
    }

    #[test]
    fn delay_window_adds_latency() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(3);
        n.add_delay_window(
            SimTime::from_secs(10),
            SimTime::from_secs(20),
            None,
            Some(Addr(2)),
            SimDuration::from_millis(250),
        );
        let d = n
            .offer(SimTime::from_secs(15), &mut rng, Addr(1), Addr(2))
            .unwrap();
        // Constant 1ms base latency + 250ms window penalty.
        assert_eq!(
            d.deliver_at,
            SimTime::from_secs(15) + SimDuration::from_millis(251)
        );
        assert_eq!(n.fault_delayed(), 1);
        // Other destinations see only the base latency.
        let d = n
            .offer(SimTime::from_secs(15), &mut rng, Addr(1), Addr(3))
            .unwrap();
        assert_eq!(
            d.deliver_at,
            SimTime::from_secs(15) + SimDuration::from_millis(1)
        );
        assert_eq!(n.fault_delayed(), 1);
    }

    #[test]
    fn duplicate_window_schedules_a_second_arrival_behind_fifo() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(4);
        n.add_duplicate_window(SimTime::ZERO, SimTime::from_secs(100), None, None, 1.0);
        let d = n
            .offer(SimTime::from_secs(1), &mut rng, Addr(1), Addr(2))
            .unwrap();
        let dup = d.duplicate_at.expect("p=1 must duplicate");
        assert!(dup > d.deliver_at, "duplicate respects link FIFO");
        assert_eq!(n.fault_duplicated(), 1);
        // Outside the window: no duplicate.
        let d = n
            .offer(SimTime::from_secs(200), &mut rng, Addr(1), Addr(2))
            .unwrap();
        assert!(d.duplicate_at.is_none());
    }

    #[test]
    fn fault_paths_are_deterministic_for_same_seed() {
        let run = |seed: u64| {
            let mut n = net(0.0);
            let mut rng = DetRng::new(seed);
            n.add_drop_window(SimTime::ZERO, SimTime::from_secs(50), None, None, 0.3);
            n.add_duplicate_window(SimTime::ZERO, SimTime::from_secs(50), None, None, 0.3);
            let mut log = Vec::new();
            for i in 0..200u64 {
                let now = SimTime::from_millis(i * 100);
                log.push(format!(
                    "{:?}",
                    n.offer(
                        now,
                        &mut rng,
                        Addr((i % 4) as u32),
                        Addr(((i + 1) % 4) as u32)
                    )
                ));
            }
            (log, n.dropped_by_fault(), n.fault_duplicated())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut n = net(0.0);
        let mut rng = DetRng::new(1);
        n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        assert!(n.trace().is_empty());
        n.set_record_trace(true);
        n.send(SimTime::ZERO, &mut rng, Addr(1), Addr(2)).unwrap();
        assert_eq!(n.trace().len(), 1);
        let rec = n.trace()[0];
        assert_eq!(rec.src, Addr(1));
        assert_eq!(rec.dst, Addr(2));
        let taken = n.take_trace();
        assert_eq!(taken.len(), 1);
        assert!(n.trace().is_empty());
    }
}
