//! Simulated network substrate for the ScaleCheck reproduction.
//!
//! Provides the message fabric the cluster gossips over: latency
//! distributions ([`LatencyModel`]), per-link FIFO delivery, drop and
//! partition fault injection, and a delivery trace that the memoizer
//! records to enforce order determinism during PIL replay ([`Network`]).
//!
//! # Examples
//!
//! ```
//! use scalecheck_net::{Addr, LatencyModel, Network, NetworkConfig};
//! use scalecheck_sim::{DetRng, SimDuration, SimTime};
//!
//! let mut net = Network::new(NetworkConfig {
//!     latency: LatencyModel::Constant(SimDuration::from_millis(1)),
//!     drop_probability: 0.0,
//! });
//! let mut rng = DetRng::new(42);
//! let (_id, deliver_at) = net.send(SimTime::ZERO, &mut rng, Addr(0), Addr(1)).unwrap();
//! assert_eq!(deliver_at, SimTime::from_millis(1));
//! ```

#![forbid(unsafe_code)]

pub mod latency;
pub mod network;

pub use latency::LatencyModel;
pub use network::{Addr, Delivery, DeliveryRecord, DropReason, MessageId, Network, NetworkConfig};
