//! Hierarchical timer wheel and slab event storage backing the default
//! engine scheduler.
//!
//! The wheel holds *references* to events (`EventRef`); the events
//! themselves live in a [`Slab`] with a free list, so steady-state
//! periodic timers recycle the same slots and the same per-slot `Vec`s
//! instead of allocating per event.
//!
//! Layout: 8 levels of 64 slots over ~1 ms ticks (`1 << TICK_SHIFT` ns).
//! Level 0 resolves single ticks; each higher level covers 64× the span
//! of the one below, so the full `u64` nanosecond range fits. Expiring a
//! level-0 slot yields the whole tick's batch (the engine sorts it by
//! `(at, key, seq)` to preserve exact tie order); expiring a higher-level
//! slot cascades its entries down.
//!
//! Invariant: `elapsed` (the wheel's tick cursor) never moves past an
//! occupied slot's deadline without that slot being taken, so occupied
//! slots always sit at or ahead of the cursor and no wrap-around
//! ambiguity arises.

use crate::time::SimTime;

/// log2 of the tick granule in nanoseconds (~1.05 ms).
pub(crate) const TICK_SHIFT: u32 = 20;
const LEVELS: usize = 8;
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Cap on recycled slot `Vec`s retained for reuse.
const SPARE_CAP: usize = 64;

/// A scheduled event's wheel entry: firing key plus its slab address.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EventRef {
    /// Absolute firing time.
    pub at: SimTime,
    /// Tie-order key (policy-assigned; identity is `seq << 1`).
    pub key: u64,
    /// Scheduling sequence (final tie breaker).
    pub seq: u64,
    /// Slab slot index.
    pub idx: u32,
    /// Slab slot generation at insertion.
    pub gen: u32,
}

struct Level {
    /// Bit `s` set iff slot `s` is non-empty.
    occupied: u64,
    slots: Vec<Vec<EventRef>>,
}

impl Level {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// The hierarchical wheel proper.
pub(crate) struct Wheel {
    /// Current tick cursor.
    elapsed: u64,
    levels: Vec<Level>,
    /// Recycled slot/batch `Vec`s (capacity preserved).
    spare: Vec<Vec<EventRef>>,
}

impl Wheel {
    pub(crate) fn new() -> Self {
        Wheel {
            elapsed: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            spare: Vec::new(),
        }
    }

    /// The tick a firing time falls into.
    pub(crate) fn tick_of(at: SimTime) -> u64 {
        at.as_nanos() >> TICK_SHIFT
    }

    /// Inserts an event reference; ticks before the cursor are clamped
    /// onto it (the engine already clamps `at` to virtual now).
    pub(crate) fn insert(&mut self, r: EventRef) {
        let tick = Self::tick_of(r.at).max(self.elapsed);
        let level = Self::level_for(self.elapsed, tick);
        let slot = ((tick >> (SLOT_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize;
        let vec = &mut self.levels[level].slots[slot];
        if vec.capacity() == 0 {
            if let Some(spare) = self.spare.pop() {
                *vec = spare;
            }
        }
        vec.push(r);
        self.levels[level].occupied |= 1 << slot;
    }

    /// Returns the next expiring tick batch at or before `target`,
    /// advancing the cursor; `None` once nothing expires by `target`
    /// (cursor lands on `target`). The returned batch is the raw slot
    /// contents — the caller sorts by `(at, seq)`.
    pub(crate) fn poll(&mut self, target: u64) -> Option<(u64, Vec<EventRef>)> {
        loop {
            let Some((level, slot, deadline)) = self.next_expiration() else {
                self.elapsed = self.elapsed.max(target);
                return None;
            };
            if deadline > target {
                self.elapsed = self.elapsed.max(target);
                return None;
            }
            self.elapsed = self.elapsed.max(deadline);
            let vec = std::mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1 << slot);
            if level == 0 {
                return Some((deadline, vec));
            }
            // Cascade a coarse slot's contents down into finer levels.
            let mut vec = vec;
            for r in vec.drain(..) {
                self.insert(r);
            }
            self.recycle(vec);
        }
    }

    /// Returns a drained batch `Vec` for slot reuse.
    pub(crate) fn recycle(&mut self, mut v: Vec<EventRef>) {
        if self.spare.len() < SPARE_CAP && v.capacity() > 0 {
            v.clear();
            self.spare.push(v);
        }
    }

    /// Level index of the highest bit where `tick` differs from the
    /// cursor: equal-or-near ticks land in level 0, far ones higher.
    fn level_for(elapsed: u64, tick: u64) -> usize {
        let differing = elapsed ^ tick;
        if differing == 0 {
            0
        } else {
            ((63 - differing.leading_zeros()) / SLOT_BITS).min(LEVELS as u32 - 1) as usize
        }
    }

    /// Earliest occupied `(level, slot, deadline_tick)`, if any. The
    /// first occupied level from the bottom holds the global minimum:
    /// level `l` deadlines fall inside the current level-`l+1` span,
    /// below any occupied coarser slot's start.
    fn next_expiration(&self) -> Option<(usize, usize, u64)> {
        for (level, lv) in self.levels.iter().enumerate() {
            if lv.occupied == 0 {
                continue;
            }
            let shift = SLOT_BITS as usize * level;
            let cur = (self.elapsed >> shift) & (SLOTS as u64 - 1);
            // Rotate so the cursor's slot is bit 0; the first set bit is
            // the next slot to expire in rotation order.
            let distance = lv.occupied.rotate_right(cur as u32).trailing_zeros() as u64;
            let slot = (cur + distance) & (SLOTS as u64 - 1);
            let span = 1u64 << shift;
            let base = self.elapsed & !((span << SLOT_BITS) - 1);
            let mut deadline = base + slot * span;
            if slot < cur {
                // Defensive: occupied slots never wrap behind the cursor
                // (see module invariant), but keep the math total.
                deadline += span << SLOT_BITS;
            }
            debug_assert!(
                deadline >= self.elapsed,
                "wheel cursor passed an occupied slot"
            );
            return Some((level, slot as usize, deadline));
        }
        None
    }
}

/// Generation-checked slot storage with a free list. `insert` prefers a
/// freed slot (a *pool hit*); `take` vacates the slot, bumps its
/// generation (invalidating stale references), and returns it to the
/// free list.
pub(crate) struct Slab<T> {
    slots: Vec<SlabSlot<T>>,
    free: Vec<u32>,
}

struct SlabSlot<T> {
    gen: u32,
    val: Option<T>,
}

impl<T> Slab<T> {
    pub(crate) fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `val`, returning `(idx, gen, reused)` where `reused` says
    /// whether a free-list slot was recycled (no growth).
    pub(crate) fn insert(&mut self, val: T) -> (u32, u32, bool) {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            (idx, slot.gen, true)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab capacity");
            self.slots.push(SlabSlot {
                gen: 0,
                val: Some(val),
            });
            (idx, 0, false)
        }
    }

    /// Removes and returns the value at `(idx, gen)`; `None` if the slot
    /// was already taken (fired or cancelled) under that generation.
    pub(crate) fn take(&mut self, idx: u32, gen: u32) -> Option<T> {
        let slot = self.slots.get_mut(idx as usize)?;
        if slot.gen != gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(at_ns: u64, seq: u64) -> EventRef {
        EventRef {
            at: SimTime::from_nanos(at_ns),
            key: seq << 1,
            seq,
            idx: seq as u32,
            gen: 0,
        }
    }

    fn drain_all(w: &mut Wheel) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some((_, mut batch)) = w.poll(u64::MAX) {
            batch.sort_unstable_by_key(|e| (e.at, e.key, e.seq));
            out.extend(batch.iter().map(|e| e.at.as_nanos()));
            w.recycle(batch);
        }
        out
    }

    #[test]
    fn near_and_far_ticks_come_out_in_order() {
        let mut w = Wheel::new();
        let times = [1u64 << 30, 3, 1 << 21, 1 << 45, (1 << 30) + 5, 1 << 62, 42];
        for (i, &t) in times.iter().enumerate() {
            w.insert(r(t, i as u64));
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(drain_all(&mut w), sorted);
    }

    #[test]
    fn same_tick_entries_batch_together() {
        let mut w = Wheel::new();
        // All within one ~1 ms granule.
        w.insert(r(100, 0));
        w.insert(r(50, 1));
        w.insert(r(100, 2));
        let (tick, batch) = w.poll(u64::MAX).expect("batch due");
        assert_eq!(tick, 0);
        assert_eq!(batch.len(), 3);
        assert!(w.poll(u64::MAX).is_none());
    }

    #[test]
    fn poll_respects_target_and_advances_cursor() {
        let mut w = Wheel::new();
        w.insert(r(5 << TICK_SHIFT, 0));
        assert!(w.poll(4).is_none(), "not due yet");
        assert_eq!(w.elapsed, 4);
        let (tick, batch) = w.poll(5).expect("now due");
        assert_eq!(tick, 5);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn cascade_preserves_sub_slot_order() {
        let mut w = Wheel::new();
        // Two ticks that share a level-1 slot but differ at level 0.
        let a = 70u64 << TICK_SHIFT;
        let b = 69u64 << TICK_SHIFT;
        w.insert(r(a, 0));
        w.insert(r(b, 1));
        assert_eq!(drain_all(&mut w), vec![b, a]);
    }

    #[test]
    fn insert_behind_cursor_clamps_forward() {
        let mut w = Wheel::new();
        assert!(w.poll(100).is_none());
        w.insert(r(3 << TICK_SHIFT, 0)); // tick 3 < cursor 100
        let (tick, batch) = w.poll(u64::MAX).expect("clamped event fires");
        assert_eq!(tick, 100);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn slot_vecs_are_recycled() {
        let mut w = Wheel::new();
        w.insert(r(1 << TICK_SHIFT, 0));
        let (_, batch) = w.poll(u64::MAX).expect("due");
        let cap = batch.capacity();
        assert!(cap > 0);
        w.recycle(batch);
        // The spare vec is handed to the next slot that needs one.
        w.insert(r(2 << TICK_SHIFT, 1));
        let (_, batch) = w.poll(u64::MAX).expect("due");
        assert_eq!(batch.capacity(), cap);
    }

    #[test]
    fn slab_reuses_freed_slots_and_invalidates_stale_refs() {
        let mut s: Slab<u32> = Slab::new();
        let (i0, g0, reused) = s.insert(10);
        assert!(!reused);
        assert_eq!(s.take(i0, g0), Some(10));
        assert_eq!(s.take(i0, g0), None, "double take is a no-op");
        let (i1, g1, reused) = s.insert(20);
        assert!(reused, "freed slot is recycled");
        assert_eq!(i1, i0);
        assert_ne!(g1, g0, "generation moved on");
        assert_eq!(s.take(i0, g0), None, "stale ref cannot steal the slot");
        assert_eq!(s.take(i1, g1), Some(20));
    }
}
