//! Memory accounting for colocation experiments.
//!
//! §6 reports that memory is a first-class colocation bottleneck: managed
//! runtimes cost ~70 MB per process, and space-oblivious code (the
//! rebalance protocol's `(N-1) * P * 1.3 MB` over-allocation) blows up a
//! colocated machine long before CPU does. [`MemoryModel`] tracks labelled
//! allocations against a fixed capacity and reports out-of-memory as a
//! typed error, which the colocation-limit experiment (§8: nodes "receive
//! out-of-memory exceptions and crash") surfaces.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when an allocation exceeds capacity.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutOfMemory {
    /// The label of the failing allocation.
    pub label: String,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes in use at the time of the request.
    pub in_use: u64,
    /// Machine capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: '{}' requested {} B with {}/{} B in use",
            self.label, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A labelled memory budget for one machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemoryModel {
    capacity: u64,
    in_use: u64,
    peak: u64,
    by_label: BTreeMap<String, u64>,
    oom_events: u64,
}

impl MemoryModel {
    /// Creates a budget with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryModel {
            capacity,
            in_use: 0,
            peak: 0,
            by_label: BTreeMap::new(),
            oom_events: 0,
        }
    }

    /// Convenience constructor from gibibytes.
    pub fn with_gib(gib: u64) -> Self {
        Self::new(gib * (1 << 30))
    }

    /// Attempts to allocate `bytes` under `label`.
    pub fn alloc(&mut self, label: &str, bytes: u64) -> Result<(), OutOfMemory> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            self.oom_events += 1;
            return Err(OutOfMemory {
                label: label.to_string(),
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        *self.by_label.entry(label.to_string()).or_insert(0) += bytes;
        Ok(())
    }

    /// Frees `bytes` under `label`, saturating at zero (double-free of the
    /// model is a caller bug but must not poison the accounting).
    pub fn free(&mut self, label: &str, bytes: u64) {
        let e = self.by_label.entry(label.to_string()).or_insert(0);
        let freed = bytes.min(*e);
        *e -= freed;
        self.in_use = self.in_use.saturating_sub(freed);
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn pressure(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.in_use as f64 / self.capacity as f64
        }
    }

    /// Number of failed allocations.
    pub fn oom_events(&self) -> u64 {
        self.oom_events
    }

    /// Bytes attributed to one label.
    pub fn labelled(&self, label: &str) -> u64 {
        self.by_label.get(label).copied().unwrap_or(0)
    }

    /// Iterates over `(label, bytes)` attribution, sorted by label.
    pub fn breakdown(&self) -> impl Iterator<Item = (&str, u64)> {
        self.by_label.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Bytes in one mebibyte.
pub const MIB: u64 = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_balance() {
        let mut m = MemoryModel::new(1000);
        m.alloc("a", 400).unwrap();
        m.alloc("b", 500).unwrap();
        assert_eq!(m.in_use(), 900);
        assert_eq!(m.peak(), 900);
        m.free("a", 400);
        assert_eq!(m.in_use(), 500);
        assert_eq!(m.peak(), 900);
        assert_eq!(m.labelled("b"), 500);
        assert_eq!(m.labelled("a"), 0);
    }

    #[test]
    fn oom_is_reported_and_counted() {
        let mut m = MemoryModel::new(100);
        m.alloc("x", 90).unwrap();
        let err = m.alloc("y", 20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.in_use, 90);
        assert_eq!(err.capacity, 100);
        assert_eq!(m.oom_events(), 1);
        // Failed allocation does not change usage.
        assert_eq!(m.in_use(), 90);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn over_free_saturates() {
        let mut m = MemoryModel::new(100);
        m.alloc("x", 50).unwrap();
        m.free("x", 80);
        assert_eq!(m.in_use(), 0);
        m.free("never-allocated", 10);
        assert_eq!(m.in_use(), 0);
    }

    #[test]
    fn pressure_fraction() {
        let mut m = MemoryModel::new(200);
        assert_eq!(m.pressure(), 0.0);
        m.alloc("x", 100).unwrap();
        assert!((m.pressure() - 0.5).abs() < 1e-9);
        assert_eq!(MemoryModel::new(0).pressure(), 1.0);
    }

    #[test]
    fn gib_constructor() {
        let m = MemoryModel::with_gib(32);
        assert_eq!(m.capacity(), 32 * (1u64 << 30));
    }

    #[test]
    fn breakdown_is_sorted() {
        let mut m = MemoryModel::new(1000);
        m.alloc("b", 1).unwrap();
        m.alloc("a", 2).unwrap();
        let labels: Vec<&str> = m.breakdown().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["a", "b"]);
    }
}
