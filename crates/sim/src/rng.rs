//! Deterministic random number generation.
//!
//! The simulator must produce bit-identical runs for a given seed across
//! platforms and library versions, so the generator is implemented here
//! (xoshiro256++ seeded through SplitMix64) rather than borrowed from an
//! external crate whose stream might change.
//!
//! Per-node generators are derived with [`DetRng::fork`], which mixes a
//! stream id into the seed so that adding a node never perturbs the
//! streams of existing nodes.

/// Deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
    // Seed material captured at construction; forking derives from this so
    // that fork(id) is unaffected by how many values the parent produced.
    origin: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s, origin: seed }
    }

    /// Derives an independent stream for `stream_id`.
    ///
    /// Forking is a pure function of the parent's seed material and the
    /// stream id, not of how many values the parent has produced, so fork
    /// order does not matter.
    pub fn fork(&self, stream_id: u64) -> DetRng {
        let mut sm = self.origin ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F);
        let derived = splitmix64(&mut sm) ^ 0x6A09_E667_F3BC_C909;
        DetRng::new(derived)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the distribution is
    /// exactly uniform.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal draw via Box–Muller.
    pub fn gen_normal(&mut self) -> f64 {
        // Avoid log(0) by mapping u1 into (0, 1].
        let u1 = 1.0 - self.gen_f64();
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_index(xs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = DetRng::new(7);
        let mut consumed = parent.clone();
        for _ in 0..50 {
            consumed.next_u64();
        }
        let mut f1 = parent.fork(3);
        let mut f2 = consumed.fork(3);
        for _ in 0..10 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn fork_streams_differ() {
        let parent = DetRng::new(7);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        let v1: Vec<u64> = (0..8).map(|_| f1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| f2.next_u64()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let x = r.gen_range(13);
            assert!(x < 13);
        }
        assert_eq!(r.gen_range(0), 0);
        assert_eq!(r.gen_range(1), 0);
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut r = DetRng::new(11);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            seen[r.gen_range(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut r = DetRng::new(5);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = r.gen_normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(21);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = DetRng::new(1);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(*r.choose(&[5]).unwrap(), 5);
    }
}
