//! CPU and machine models.
//!
//! The paper's three test setups differ only in where compute runs:
//!
//! * **Real-scale testing** — every node has its own machine, so compute
//!   blocks never contend across nodes (Figure 1a).
//! * **Basic colocation** — all nodes share one machine with a small number
//!   of cores; CPU-bound tasks queue behind each other and suffer
//!   context-switch overhead (Figure 1b).
//! * **PIL replay** — expensive blocks become `sleep(t)` and never occupy a
//!   core at all (Figure 1c).
//!
//! [`Machine`] implements a non-preemptive FIFO-per-core model: a submitted
//! task starts on the earliest-free core and holds it for its whole demand.
//! Context-switch cost grows with the multiprogramming level, reproducing
//! the §6 observation that thousands of colocated threads cause severe
//! context switching and queueing delay. An offline processor-sharing
//! model ([`ps_completions`]) is provided for ablating the scheduling
//! discipline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::metrics::Histogram;
use crate::time::{SimDuration, SimTime};

/// Identifies a machine within a [`MachinePark`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MachineId(pub usize);

/// Context-switch cost parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CtxSwitchModel {
    /// Fixed dispatch overhead per task.
    pub base: SimDuration,
    /// Additional overhead per unit of excess load (runnable tasks beyond
    /// the core count, normalized by the core count).
    pub per_excess_load: SimDuration,
}

impl CtxSwitchModel {
    /// No context-switch cost at all (useful for idealized baselines).
    pub const FREE: CtxSwitchModel = CtxSwitchModel {
        base: SimDuration::ZERO,
        per_excess_load: SimDuration::ZERO,
    };

    /// A commodity-OS-like default: 5 us dispatch, 20 us per excess-load
    /// unit (so 10x oversubscription adds ~0.2 ms per dispatch).
    pub fn commodity() -> Self {
        CtxSwitchModel {
            base: SimDuration::from_micros(5),
            per_excess_load: SimDuration::from_micros(20),
        }
    }

    fn overhead(&self, runnable: usize, cores: usize) -> SimDuration {
        let excess = runnable.saturating_sub(cores) as f64 / cores.max(1) as f64;
        self.base + self.per_excess_load.mul_f64(excess)
    }
}

/// Result of submitting a compute task to a machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuGrant {
    /// When the task begins executing (>= submission time).
    pub start: SimTime,
    /// When the task completes (start + overhead + demand).
    pub finish: SimTime,
    /// Queueing delay experienced (start - submission time).
    pub queue_delay: SimDuration,
}

/// A simulated machine with a fixed number of cores.
#[derive(Clone, Debug)]
pub struct Machine {
    cores: Vec<SimTime>,
    ctx_switch: CtxSwitchModel,
    in_flight: BinaryHeap<Reverse<SimTime>>,
    busy_ns: u128,
    dispatches: u64,
    created: SimTime,
    queue_delay: Histogram,
    peak_runnable: usize,
}

impl Machine {
    /// Creates a machine with `cores` cores and the given context-switch
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, ctx_switch: CtxSwitchModel) -> Self {
        assert!(cores > 0, "a machine needs at least one core");
        Machine {
            cores: vec![SimTime::ZERO; cores],
            ctx_switch,
            in_flight: BinaryHeap::new(),
            busy_ns: 0,
            dispatches: 0,
            created: SimTime::ZERO,
            queue_delay: Histogram::new(),
            peak_runnable: 0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Submits a compute task of the given `demand` at time `now`; returns
    /// when it will start and finish. The caller is responsible for
    /// scheduling the completion event at `grant.finish`.
    pub fn submit(&mut self, now: SimTime, demand: SimDuration) -> CpuGrant {
        // Retire tasks that have finished by `now` to compute current load.
        while let Some(&Reverse(f)) = self.in_flight.peek() {
            if f <= now {
                self.in_flight.pop();
            } else {
                break;
            }
        }
        let runnable = self.in_flight.len() + 1;
        self.peak_runnable = self.peak_runnable.max(runnable);
        let overhead = self.ctx_switch.overhead(runnable, self.cores.len());

        // Earliest-free core (deterministic: lowest index wins ties).
        let (idx, &free_at) = self
            .cores
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("at least one core");
        let start = now.max(free_at);
        let busy = overhead + demand;
        let finish = start + busy;
        self.cores[idx] = finish;
        self.in_flight.push(Reverse(finish));
        self.busy_ns += busy.as_nanos() as u128;
        self.dispatches += 1;
        let queue_delay = start.since(now);
        self.queue_delay.record(queue_delay);
        scalecheck_obs::metric(
            scalecheck_obs::Metric::CpuQueueDelay,
            queue_delay.as_nanos(),
        );
        CpuGrant {
            start,
            finish,
            queue_delay,
        }
    }

    /// Fraction of core-time spent busy since machine creation, in `[0, 1]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.created).as_nanos() as u128 * self.cores.len() as u128;
        if elapsed == 0 {
            return 0.0;
        }
        (self.busy_ns as f64 / elapsed as f64).min(1.0)
    }

    /// Histogram of queueing delays ("event lateness" in the paper's terms:
    /// how late compute starts relative to when it was ready).
    pub fn queue_delay(&self) -> &Histogram {
        &self.queue_delay
    }

    /// Total tasks dispatched.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Highest observed multiprogramming level.
    pub fn peak_runnable(&self) -> usize {
        self.peak_runnable
    }
}

/// A fleet of machines; nodes are placed onto machines by the deployment
/// mode (dedicated machines for Real, one shared machine for Colo).
#[derive(Clone, Debug, Default)]
pub struct MachinePark {
    machines: Vec<Machine>,
}

impl MachinePark {
    /// Creates an empty park.
    pub fn new() -> Self {
        MachinePark {
            machines: Vec::new(),
        }
    }

    /// Adds a machine and returns its id.
    pub fn add(&mut self, m: Machine) -> MachineId {
        self.machines.push(m);
        MachineId(self.machines.len() - 1)
    }

    /// Shared access to a machine.
    pub fn get(&self, id: MachineId) -> &Machine {
        &self.machines[id.0]
    }

    /// Mutable access to a machine.
    pub fn get_mut(&mut self, id: MachineId) -> &mut Machine {
        &mut self.machines[id.0]
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the park has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Iterates over all machines.
    pub fn iter(&self) -> impl Iterator<Item = (MachineId, &Machine)> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| (MachineId(i), m))
    }
}

/// Offline egalitarian processor-sharing completion times.
///
/// Given tasks as `(arrival, demand)` pairs, computes each task's
/// completion time when all active tasks share `cores` cores equally
/// (each task progresses at rate `min(1, cores/active)`). Used to ablate
/// the FIFO-per-core discipline used by [`Machine`].
pub fn ps_completions(tasks: &[(SimTime, SimDuration)], cores: usize) -> Vec<SimTime> {
    assert!(cores > 0);
    let n = tasks.len();
    let mut completions = vec![SimTime::ZERO; n];
    if n == 0 {
        return completions;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| tasks[i].0);

    // Active set: remaining work in "nanoseconds of service".
    let mut remaining: Vec<(usize, f64)> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = tasks[order[0]].0.as_nanos() as f64;

    loop {
        // Admit arrivals at or before `now`.
        while next_arrival < n && (tasks[order[next_arrival]].0.as_nanos() as f64) <= now {
            let i = order[next_arrival];
            remaining.push((i, tasks[i].1.as_nanos() as f64));
            next_arrival += 1;
        }
        if remaining.is_empty() {
            if next_arrival >= n {
                break;
            }
            now = tasks[order[next_arrival]].0.as_nanos() as f64;
            continue;
        }
        let active = remaining.len();
        let rate = (cores as f64 / active as f64).min(1.0);
        // Time until first completion at the current rate.
        let min_rem = remaining
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min);
        let t_complete = min_rem / rate;
        // Time until next arrival changes the active set.
        let t_arrival = if next_arrival < n {
            (tasks[order[next_arrival]].0.as_nanos() as f64) - now
        } else {
            f64::INFINITY
        };
        let dt = t_complete.min(t_arrival);
        for (_, r) in remaining.iter_mut() {
            *r -= rate * dt;
        }
        now += dt;
        remaining.retain(|&(i, r)| {
            if r <= 1e-6 {
                completions[i] = SimTime::from_nanos(now.round() as u64);
                false
            } else {
                true
            }
        });
    }
    completions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at_ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn uncontended_task_runs_immediately() {
        let mut m = Machine::new(2, CtxSwitchModel::FREE);
        let g = m.submit(at_ms(10), ms(5));
        assert_eq!(g.start, at_ms(10));
        assert_eq!(g.finish, at_ms(15));
        assert_eq!(g.queue_delay, SimDuration::ZERO);
    }

    #[test]
    fn one_core_serializes_n_tasks_to_n_times_t() {
        // The Figure 1b claim: N tasks of demand t on one core take N*t.
        let mut m = Machine::new(1, CtxSwitchModel::FREE);
        let n = 8;
        let mut last_finish = SimTime::ZERO;
        for _ in 0..n {
            let g = m.submit(SimTime::ZERO, ms(10));
            last_finish = g.finish;
        }
        assert_eq!(last_finish, at_ms(10 * n));
    }

    #[test]
    fn multiple_cores_run_in_parallel() {
        let mut m = Machine::new(4, CtxSwitchModel::FREE);
        let mut finishes = Vec::new();
        for _ in 0..4 {
            finishes.push(m.submit(SimTime::ZERO, ms(10)).finish);
        }
        assert!(finishes.iter().all(|&f| f == at_ms(10)));
        // Fifth task queues behind one of them.
        let g = m.submit(SimTime::ZERO, ms(10));
        assert_eq!(g.start, at_ms(10));
        assert_eq!(g.finish, at_ms(20));
    }

    #[test]
    fn context_switch_grows_with_load() {
        let cs = CtxSwitchModel {
            base: SimDuration::from_micros(10),
            per_excess_load: SimDuration::from_millis(1),
        };
        let mut m = Machine::new(1, cs);
        let g1 = m.submit(SimTime::ZERO, ms(1));
        // Second submission sees one in-flight task -> excess load 1.
        let g2 = m.submit(SimTime::ZERO, ms(1));
        let o1 = g1.finish.since(g1.start) - ms(1);
        let o2 = g2.finish.since(g2.start) - ms(1);
        assert!(o2 > o1, "overhead should grow with load: {o1} vs {o2}");
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut m = Machine::new(2, CtxSwitchModel::FREE);
        m.submit(SimTime::ZERO, ms(10));
        // One core busy 10ms of a 10ms window on a 2-core box -> 50%.
        let u = m.utilization(at_ms(10));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn queue_delay_recorded() {
        let mut m = Machine::new(1, CtxSwitchModel::FREE);
        m.submit(SimTime::ZERO, ms(10));
        m.submit(SimTime::ZERO, ms(10));
        assert_eq!(m.queue_delay().count(), 2);
        assert_eq!(m.queue_delay().max(), ms(10));
        assert_eq!(m.dispatches(), 2);
        assert_eq!(m.peak_runnable(), 2);
    }

    #[test]
    fn in_flight_retires_completed_tasks() {
        let cs = CtxSwitchModel {
            base: SimDuration::ZERO,
            per_excess_load: SimDuration::from_millis(1),
        };
        let mut m = Machine::new(1, cs);
        m.submit(SimTime::ZERO, ms(1));
        // Submitting long after completion sees zero load again.
        let g = m.submit(at_ms(100), ms(1));
        assert_eq!(g.finish, at_ms(101));
    }

    #[test]
    fn machine_park_addressing() {
        let mut park = MachinePark::new();
        assert!(park.is_empty());
        let a = park.add(Machine::new(1, CtxSwitchModel::FREE));
        let b = park.add(Machine::new(2, CtxSwitchModel::FREE));
        assert_eq!(park.len(), 2);
        assert_eq!(park.get(a).cores(), 1);
        assert_eq!(park.get(b).cores(), 2);
        park.get_mut(a).submit(SimTime::ZERO, ms(1));
        assert_eq!(park.get(a).dispatches(), 1);
        assert_eq!(park.iter().count(), 2);
    }

    #[test]
    fn ps_single_task_is_demand() {
        let done = ps_completions(&[(SimTime::ZERO, ms(10))], 1);
        assert_eq!(done, vec![at_ms(10)]);
    }

    #[test]
    fn ps_two_tasks_share_one_core() {
        // Two equal tasks sharing one core both finish at 2*t.
        let done = ps_completions(&[(SimTime::ZERO, ms(10)), (SimTime::ZERO, ms(10))], 1);
        assert_eq!(done, vec![at_ms(20), at_ms(20)]);
    }

    #[test]
    fn ps_respects_arrivals_and_cores() {
        // Second task arrives at 5ms; with 2 cores there is no sharing.
        let done = ps_completions(&[(SimTime::ZERO, ms(10)), (at_ms(5), ms(10))], 2);
        assert_eq!(done, vec![at_ms(10), at_ms(15)]);
    }

    #[test]
    fn ps_empty_input() {
        assert!(ps_completions(&[], 4).is_empty());
    }
}
