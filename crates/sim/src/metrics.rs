//! Lightweight metrics used across the simulator: log-bucketed duration
//! histograms, counters, and time series.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A histogram of durations with power-of-two nanosecond buckets.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns (bucket 0 also covers 0).
/// Quantiles are approximate: the answer is the upper bound of the bucket
/// containing the requested rank, so errors are at most 2x, which is ample
/// for the order-of-magnitude questions the paper asks (e.g. "is event
/// lateness in the millisecond range?").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest recorded sample (zero if empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Smallest recorded sample (zero if empty).
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (upper bucket bound).
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(upper.min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

/// Scheduler-level event accounting for one [`crate::Engine`].
///
/// `pool_hits`/`pool_misses` track event-storage reuse: a hit means the
/// event was stored in a recycled slab slot (no allocation for the slot
/// itself), a miss means fresh storage was grown. The reference
/// `BinaryHeap` scheduler has no pool, so every schedule there counts as
/// a miss; the timer wheel reaches a 100% hit rate in steady state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Events ever scheduled (including later-cancelled ones).
    pub scheduled: u64,
    /// Events whose callback ran.
    pub fired: u64,
    /// Events removed via [`crate::Engine::cancel`] before firing.
    pub cancelled: u64,
    /// Schedules that reused a free slab slot.
    pub pool_hits: u64,
    /// Schedules that grew fresh event storage.
    pub pool_misses: u64,
}

impl EngineCounters {
    /// Events still pending (scheduled minus fired minus cancelled).
    pub fn pending(&self) -> u64 {
        self.scheduled - self.fired - self.cancelled
    }
}

/// A monotone event counter.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A timestamped series of float samples (e.g. flap counts over time).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample; timestamps must be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(lt, _)| lt <= t),
            "time series must be appended in order"
        );
        self.points.push((t, v));
    }

    /// All samples, in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Last sample value (zero if empty).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 4, 8] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), SimDuration::from_millis(8));
        assert_eq!(h.min(), SimDuration::from_millis(1));
        let mean_ms = h.mean().as_millis_f64();
        assert!((mean_ms - 3.75).abs() < 0.01, "mean {mean_ms}");
    }

    #[test]
    fn histogram_quantile_brackets_value() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(SimDuration::from_millis(1));
        }
        h.record(SimDuration::from_secs(1));
        let p50 = h.quantile(0.5);
        assert!(p50 <= SimDuration::from_millis(2), "p50 {p50}");
        let p999 = h.quantile(0.999);
        assert!(p999 >= SimDuration::from_millis(500), "p999 {p999}");
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(100));
        assert_eq!(a.min(), SimDuration::from_millis(1));
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn time_series_tracks_points() {
        let mut s = TimeSeries::new();
        assert!(s.is_empty());
        s.push(SimTime::from_secs(1), 1.0);
        s.push(SimTime::from_secs(2), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_value(), 3.0);
        assert_eq!(s.points()[0].1, 1.0);
    }
}
