//! Tie-order policies: deterministic perturbation of same-timestamp
//! event ordering.
//!
//! The engine fires events in `(at, seq)` order — ties at equal virtual
//! time resolve by scheduling sequence. That rule is *one* legal
//! interleaving of a distributed execution; any permutation of a tie
//! batch is equally legal (the events are concurrent by construction).
//! A [`TieOrder`] policy chooses which one: every schedule call is
//! assigned a *tie key*, and ties fire in ascending `(key, seq)` order.
//!
//! The stock order is the monotone key `seq << 1`. Perturbations only
//! ever permute events that share a firing time — virtual time, event
//! counts, and causality (an event never fires before it is scheduled)
//! are untouched, which is what makes the search in `crates/explore`
//! sound: every explored ordering is a run the real system could have
//! produced.
//!
//! [`TieOrderSpec`] is the serializable description (it rides inside
//! `ScenarioConfig`, so schedule witnesses replay from JSON and sweep
//! cache keys distinguish perturbed cells). [`ScheduleProbe`] is the
//! engine's fire log plus the runner's event tags, from which the
//! explorer derives tie groups and targeted swap candidates.

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::SimTime;

/// A tie-order policy: maps each schedule call to a tie-break key.
///
/// Events with equal firing time fire in ascending `(key, seq)` order;
/// the key has no effect across distinct firing times. The stock
/// (identity) policy returns [`identity_key`]`(seq)`. Policies may keep
/// internal state (e.g. a seeded RNG) but must be deterministic: the
/// same sequence of `tie_key` calls yields the same keys.
pub trait TieOrder: Send {
    /// Returns the tie-break key for the event scheduled at `at` with
    /// scheduling sequence `seq`.
    fn tie_key(&mut self, at: SimTime, seq: u64) -> u64;
}

/// The stock tie key: monotone in `seq`, so ties fire in scheduling
/// order. Left-shifted so targeted swaps can land *between* stock keys
/// (see [`TieSwap`]).
#[inline]
pub fn identity_key(seq: u64) -> u64 {
    seq << 1
}

/// One targeted reordering: the event scheduled with sequence `seq`
/// fires *after* the event scheduled with sequence `seq + shift`,
/// provided the two tie (share a firing time). Its key becomes
/// `((seq + shift) << 1) | 1` — strictly between the stock keys of
/// `seq + shift` and `seq + shift + 1` — so a `shift` of 1 is an
/// adjacent swap and larger shifts hop further down the tie batch.
/// A `shift` of 0 encodes the identity permutation through the
/// perturbed code path (the differential suites exercise this).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieSwap {
    /// Scheduling sequence of the event to delay.
    pub seq: u64,
    /// How many scheduling sequences to hop past.
    pub shift: u64,
}

impl TieSwap {
    /// The perturbed key this swap assigns.
    #[inline]
    pub fn key(&self) -> u64 {
        (self.seq.saturating_add(self.shift) << 1) | 1
    }
}

/// Serializable description of a tie-order policy.
///
/// `shuffle` assigns every schedule call a key drawn from a [`DetRng`]
/// seeded with the given value — a seeded full shuffle of every tie
/// batch. `swaps` apply targeted reorderings relative to the stock
/// order (they take precedence over the shuffle for their sequences;
/// combining both is allowed but swaps are only meaningful against the
/// stock order, so the explorer never mixes them).
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TieOrderSpec {
    /// Seed for the full-shuffle key stream, if any.
    pub shuffle: Option<u64>,
    /// Targeted swaps, sorted by `seq` (enforced on construction).
    pub swaps: Vec<TieSwap>,
}

impl TieOrderSpec {
    /// The stock order: no shuffle, no swaps.
    pub fn identity() -> Self {
        Self::default()
    }

    /// A seeded full shuffle of every tie batch.
    pub fn shuffled(seed: u64) -> Self {
        TieOrderSpec {
            shuffle: Some(seed),
            swaps: Vec::new(),
        }
    }

    /// Targeted swaps against the stock order.
    pub fn with_swaps(mut swaps: Vec<TieSwap>) -> Self {
        swaps.sort_unstable_by_key(|s| s.seq);
        swaps.dedup_by_key(|s| s.seq);
        TieOrderSpec {
            shuffle: None,
            swaps,
        }
    }

    /// Whether this spec is structurally the stock order. Note that a
    /// non-empty spec can still *encode* the identity permutation
    /// (all-zero shifts); such specs run through the perturbed path.
    pub fn is_identity(&self) -> bool {
        self.shuffle.is_none() && self.swaps.is_empty()
    }

    /// Builds the runtime policy for this spec.
    pub fn policy(&self) -> SpecTieOrder {
        let mut swaps = self.swaps.clone();
        swaps.sort_unstable_by_key(|s| s.seq);
        swaps.dedup_by_key(|s| s.seq);
        SpecTieOrder {
            rng: self.shuffle.map(DetRng::new),
            swaps,
        }
    }
}

/// The runtime policy behind a [`TieOrderSpec`].
pub struct SpecTieOrder {
    rng: Option<DetRng>,
    /// Sorted by `seq` for binary search.
    swaps: Vec<TieSwap>,
}

impl TieOrder for SpecTieOrder {
    fn tie_key(&mut self, _at: SimTime, seq: u64) -> u64 {
        // Swaps pin their sequences regardless of the shuffle; the
        // shuffle stream still advances once per schedule call so that
        // adding a swap does not shift every later shuffled key.
        let drawn = self.rng.as_mut().map(|r| r.next_u64());
        if let Ok(i) = self.swaps.binary_search_by_key(&seq, |s| s.seq) {
            return self.swaps[i].key();
        }
        drawn.unwrap_or_else(|| identity_key(seq))
    }
}

// ---------------------------------------------------------------------
// Schedule probing: the raw material for targeted perturbation.
// ---------------------------------------------------------------------

/// One fired event: firing time (virtual nanoseconds) and scheduling
/// sequence, in firing order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FireRec {
    /// Firing time in virtual nanoseconds.
    pub at: u64,
    /// Scheduling sequence.
    pub seq: u64,
}

/// A semantic tag attached (by the scheduling layer) to an event's
/// scheduling sequence: what kind of event it is and which node it
/// belongs to. Untagged events are internal continuations (stage
/// completions, lock grants) whose reordering the explorer skips.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagRec {
    /// Scheduling sequence the tag describes.
    pub seq: u64,
    /// Packed tag; see [`tag`].
    pub tag: u64,
}

/// Tag packing: kind in the high 32 bits, node id in the low 32.
pub mod tag {
    /// A message delivery to a node's gossip stage.
    pub const DELIVER: u64 = 1;
    /// A periodic gossip-round timer.
    pub const GOSSIP_TIMER: u64 = 2;
    /// A periodic failure-detector timer.
    pub const FD_TIMER: u64 = 3;
    /// A gossip-message processing completion (heartbeats apply here,
    /// and replies are sent — which draws from the shared engine RNG).
    pub const RECV_DONE: u64 = 4;
    /// A gossip send-round completion (the outgoing Syn is sent here —
    /// which draws from the shared engine RNG).
    pub const SEND_DONE: u64 = 5;

    /// Packs `(kind, node)` into a tag word.
    pub fn pack(kind: u64, node: u32) -> u64 {
        (kind << 32) | node as u64
    }

    /// The tag's kind.
    pub fn kind(tag: u64) -> u64 {
        tag >> 32
    }

    /// The tag's node id.
    pub fn node(tag: u64) -> u32 {
        (tag & 0xffff_ffff) as u32
    }
}

/// The engine's fire log joined with the runner's event tags — enough
/// to reconstruct every tie batch of a run and classify its members.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleProbe {
    /// Every fired event, in firing order.
    pub fires: Vec<FireRec>,
    /// Semantic tags for the scheduling sequences the runner tagged.
    pub tags: Vec<TagRec>,
}

impl ScheduleProbe {
    /// Groups consecutive fired events that share a firing time;
    /// returns only groups of two or more (the tie batches).
    pub fn tie_groups(&self) -> Vec<&[FireRec]> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..=self.fires.len() {
            if i == self.fires.len() || self.fires[i].at != self.fires[start].at {
                if i - start >= 2 {
                    out.push(&self.fires[start..i]);
                }
                start = i;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(spec: &TieOrderSpec, seq: u64) -> u64 {
        spec.policy().tie_key(SimTime::ZERO, seq)
    }

    #[test]
    fn identity_spec_reproduces_stock_keys() {
        let spec = TieOrderSpec::identity();
        assert!(spec.is_identity());
        for seq in [0, 1, 5, 1 << 40] {
            assert_eq!(key_of(&spec, seq), identity_key(seq));
        }
    }

    #[test]
    fn zero_shift_swaps_encode_identity_order() {
        // key = (seq << 1) | 1 sits strictly between seq and seq+1's
        // stock keys, so the permutation is unchanged.
        let spec = TieOrderSpec::with_swaps(vec![TieSwap { seq: 3, shift: 0 }]);
        assert!(!spec.is_identity());
        let k2 = key_of(&spec, 2);
        let k3 = key_of(&spec, 3);
        let k4 = key_of(&spec, 4);
        assert!(k2 < k3 && k3 < k4);
    }

    #[test]
    fn shift_one_is_an_adjacent_swap() {
        let spec = TieOrderSpec::with_swaps(vec![TieSwap { seq: 3, shift: 1 }]);
        let k3 = key_of(&spec, 3);
        let k4 = key_of(&spec, 4);
        let k5 = key_of(&spec, 5);
        assert!(k4 < k3, "seq 3 must fire after seq 4");
        assert!(k3 < k5, "but before seq 5");
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut p = TieOrderSpec::shuffled(7).policy();
            (0..16).map(|s| p.tie_key(SimTime::ZERO, s)).collect()
        };
        let b: Vec<u64> = {
            let mut p = TieOrderSpec::shuffled(7).policy();
            (0..16).map(|s| p.tie_key(SimTime::ZERO, s)).collect()
        };
        let c: Vec<u64> = {
            let mut p = TieOrderSpec::shuffled(8).policy();
            (0..16).map(|s| p.tie_key(SimTime::ZERO, s)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn swaps_are_sorted_and_deduped() {
        let spec = TieOrderSpec::with_swaps(vec![
            TieSwap { seq: 9, shift: 2 },
            TieSwap { seq: 3, shift: 1 },
            TieSwap { seq: 9, shift: 5 },
        ]);
        assert_eq!(spec.swaps.len(), 2);
        assert_eq!(spec.swaps[0].seq, 3);
        assert_eq!(spec.swaps[1].seq, 9);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = TieOrderSpec {
            shuffle: Some(42),
            swaps: vec![TieSwap { seq: 10, shift: 3 }],
        };
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: TieOrderSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, spec);
    }

    #[test]
    fn tie_groups_finds_batches() {
        let probe = ScheduleProbe {
            fires: vec![
                FireRec { at: 10, seq: 1 },
                FireRec { at: 20, seq: 2 },
                FireRec { at: 20, seq: 3 },
                FireRec { at: 20, seq: 4 },
                FireRec { at: 30, seq: 5 },
                FireRec { at: 40, seq: 6 },
                FireRec { at: 40, seq: 7 },
            ],
            tags: vec![],
        };
        let groups = probe.tie_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 3);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn tag_packing_round_trips() {
        let t = tag::pack(tag::DELIVER, 77);
        assert_eq!(tag::kind(t), tag::DELIVER);
        assert_eq!(tag::node(t), 77);
    }
}
