//! Deterministic discrete-event simulation kernel for ScaleCheck.
//!
//! This crate is the bottom layer of the ScaleCheck reproduction
//! ("Scalability Bugs: When 100-Node Testing is Not Enough", HotOS '17).
//! It provides:
//!
//! * virtual time ([`SimTime`], [`SimDuration`]);
//! * a deterministic event engine ([`Engine`]) with seeded randomness
//!   ([`DetRng`]);
//! * CPU/machine models ([`Machine`], [`MachinePark`]) that realize the
//!   paper's three deployment semantics (real-scale, basic colocation,
//!   PIL replay);
//! * virtual-time locks ([`LockTable`]) for the C5456 coarse-lock bug;
//! * deterministic fault-injection plans and reports ([`FaultPlan`],
//!   [`FaultReport`]) scheduled on the virtual clock;
//! * SEDA-like serial stages ([`Stage`]) with event-lateness accounting;
//! * memory accounting ([`MemoryModel`]) for the §6/§8 colocation
//!   bottlenecks;
//! * small metrics types ([`Histogram`], [`Counter`], [`TimeSeries`]).
//!
//! Everything is deterministic: same seed, same run, bit for bit.
//!
//! # Examples
//!
//! ```
//! use scalecheck_sim::{Engine, SimDuration, SimTime};
//!
//! let mut engine: Engine<u32> = Engine::new(42);
//! engine.schedule_at(SimTime::from_secs(1), |count, ctx| {
//!     *count += 1;
//!     ctx.schedule_after(SimDuration::from_secs(1), |count, _| *count += 1);
//! });
//! let mut count = 0;
//! engine.run_to_completion(&mut count);
//! assert_eq!(count, 2);
//! ```

#![forbid(unsafe_code)]

pub mod cpu;
pub mod engine;
pub mod faults;
pub mod lock;
pub mod memory;
pub mod metrics;
pub mod rng;
pub mod stage;
pub mod tie;
pub mod time;
mod wheel;

pub use cpu::{ps_completions, CpuGrant, CtxSwitchModel, Machine, MachineId, MachinePark};
pub use engine::{
    Ctx, Engine, EventFn, HandlerFn, HandlerId, RunOutcome, RunStats, SchedulerKind, TimerId,
};
pub use faults::{FaultEvent, FaultPlan, FaultReport, FiredFault};
pub use lock::{Acquire, HolderToken, LockId, LockTable};
pub use memory::{MemoryModel, OutOfMemory, MIB};
pub use metrics::{Counter, EngineCounters, Histogram, TimeSeries};
pub use rng::DetRng;
pub use stage::Stage;
pub use tie::{FireRec, ScheduleProbe, TagRec, TieOrder, TieOrderSpec, TieSwap};
pub use time::{SimDuration, SimTime};
