//! Virtual-time locks.
//!
//! Bug C5456 is a locking bug: the pending-range calculation holds a
//! coarse-grained lock on the ring table while the gossip stage blocks on
//! the same lock to apply heartbeats. [`LockTable`] models mutexes in
//! virtual time: acquisition is immediate when free, otherwise the holder
//! token is queued FIFO and the caller is told to park. The lock table is
//! pure data — on release it reports which waiter now holds the lock, and
//! the domain schedules that waiter's continuation itself. This keeps the
//! lock model engine-agnostic and directly testable.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::metrics::Histogram;
use crate::time::SimTime;

/// Identifies a lock within a [`LockTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LockId(pub usize);

/// An opaque token naming a lock holder (e.g. a (node, stage) encoding).
pub type HolderToken = u64;

/// Outcome of an acquisition attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Acquire {
    /// The caller now holds the lock.
    Granted,
    /// The lock is held; the caller was enqueued and must park until its
    /// token is returned by [`LockTable::release`].
    Queued,
}

#[derive(Clone, Debug, Default)]
struct LockState {
    holder: Option<HolderToken>,
    waiters: VecDeque<(HolderToken, SimTime)>,
    acquired_at: SimTime,
    acquisitions: u64,
    contentions: u64,
    wait: Histogram,
    hold: Histogram,
}

/// A table of virtual-time FIFO mutexes.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    locks: Vec<LockState>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable { locks: Vec::new() }
    }

    /// Creates a new lock and returns its id.
    pub fn create(&mut self) -> LockId {
        self.locks.push(LockState::default());
        LockId(self.locks.len() - 1)
    }

    /// Attempts to acquire `lock` for `holder` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `holder` already holds the lock (virtual locks are not
    /// reentrant; a reentrant acquire in the modelled system would be a
    /// self-deadlock and we want to hear about it).
    pub fn acquire(&mut self, lock: LockId, holder: HolderToken, now: SimTime) -> Acquire {
        let st = &mut self.locks[lock.0];
        assert_ne!(
            st.holder,
            Some(holder),
            "holder {holder} re-acquired lock {lock:?} (self-deadlock)"
        );
        if st.holder.is_none() {
            st.holder = Some(holder);
            st.acquired_at = now;
            st.acquisitions += 1;
            st.wait.record(crate::time::SimDuration::ZERO);
            scalecheck_obs::metric(scalecheck_obs::Metric::LockWait, 0);
            Acquire::Granted
        } else {
            st.waiters.push_back((holder, now));
            st.contentions += 1;
            Acquire::Queued
        }
    }

    /// Releases `lock`, which must be held by `holder`. If a waiter was
    /// queued, it becomes the holder and its token is returned so the
    /// caller can schedule its continuation.
    ///
    /// # Panics
    ///
    /// Panics if `holder` does not hold the lock.
    pub fn release(
        &mut self,
        lock: LockId,
        holder: HolderToken,
        now: SimTime,
    ) -> Option<HolderToken> {
        let st = &mut self.locks[lock.0];
        assert_eq!(
            st.holder,
            Some(holder),
            "release of lock {lock:?} by non-holder {holder}"
        );
        st.hold.record(now.since(st.acquired_at));
        scalecheck_obs::metric(
            scalecheck_obs::Metric::LockHold,
            now.since(st.acquired_at).as_nanos(),
        );
        match st.waiters.pop_front() {
            Some((next, queued_at)) => {
                st.holder = Some(next);
                st.acquired_at = now;
                st.acquisitions += 1;
                st.wait.record(now.since(queued_at));
                scalecheck_obs::metric(
                    scalecheck_obs::Metric::LockWait,
                    now.since(queued_at).as_nanos(),
                );
                Some(next)
            }
            None => {
                st.holder = None;
                None
            }
        }
    }

    /// Current holder, if any.
    pub fn holder(&self, lock: LockId) -> Option<HolderToken> {
        self.locks[lock.0].holder
    }

    /// Number of queued waiters.
    pub fn waiters(&self, lock: LockId) -> usize {
        self.locks[lock.0].waiters.len()
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self, lock: LockId) -> u64 {
        self.locks[lock.0].acquisitions
    }

    /// Total acquisition attempts that had to queue.
    pub fn contentions(&self, lock: LockId) -> u64 {
        self.locks[lock.0].contentions
    }

    /// Histogram of time spent waiting for the lock.
    pub fn wait_times(&self, lock: LockId) -> &Histogram {
        &self.locks[lock.0].wait
    }

    /// Histogram of hold durations.
    pub fn hold_times(&self, lock: LockId) -> &Histogram {
        &self.locks[lock.0].hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at_ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn free_lock_grants_immediately() {
        let mut lt = LockTable::new();
        let l = lt.create();
        assert_eq!(lt.acquire(l, 1, SimTime::ZERO), Acquire::Granted);
        assert_eq!(lt.holder(l), Some(1));
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut lt = LockTable::new();
        let l = lt.create();
        assert_eq!(lt.acquire(l, 1, SimTime::ZERO), Acquire::Granted);
        assert_eq!(lt.acquire(l, 2, at_ms(1)), Acquire::Queued);
        assert_eq!(lt.acquire(l, 3, at_ms(2)), Acquire::Queued);
        assert_eq!(lt.waiters(l), 2);
        // FIFO hand-off.
        assert_eq!(lt.release(l, 1, at_ms(10)), Some(2));
        assert_eq!(lt.holder(l), Some(2));
        assert_eq!(lt.release(l, 2, at_ms(20)), Some(3));
        assert_eq!(lt.release(l, 3, at_ms(30)), None);
        assert_eq!(lt.holder(l), None);
        assert_eq!(lt.acquisitions(l), 3);
        assert_eq!(lt.contentions(l), 2);
    }

    #[test]
    fn wait_and_hold_times_recorded() {
        let mut lt = LockTable::new();
        let l = lt.create();
        lt.acquire(l, 1, SimTime::ZERO);
        lt.acquire(l, 2, at_ms(5));
        lt.release(l, 1, at_ms(30));
        // Holder 1 held 30ms; waiter 2 waited 25ms.
        assert_eq!(lt.hold_times(l).max(), SimDuration::from_millis(30));
        assert_eq!(lt.wait_times(l).max(), SimDuration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "self-deadlock")]
    fn reentrant_acquire_panics() {
        let mut lt = LockTable::new();
        let l = lt.create();
        lt.acquire(l, 1, SimTime::ZERO);
        lt.acquire(l, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut lt = LockTable::new();
        let l = lt.create();
        lt.acquire(l, 1, SimTime::ZERO);
        lt.release(l, 2, SimTime::ZERO);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut lt = LockTable::new();
        let a = lt.create();
        let b = lt.create();
        assert_eq!(lt.acquire(a, 1, SimTime::ZERO), Acquire::Granted);
        assert_eq!(lt.acquire(b, 1, SimTime::ZERO), Acquire::Granted);
        assert_eq!(lt.acquire(b, 2, SimTime::ZERO), Acquire::Queued);
        assert_eq!(lt.waiters(a), 0);
        assert_eq!(lt.waiters(b), 1);
    }
}
