//! Deterministic fault injection: plans, events, and reports.
//!
//! The paper's scalability bugs only surface under stress — flapping,
//! crashes, gossip storms — so the reproduction needs a first-class way
//! to schedule that stress. A [`FaultPlan`] is a serializable list of
//! [`FaultEvent`]s pinned to virtual times; the cluster runner drives
//! them off the engine's clock and the seeded RNG, so the same
//! `(scenario, plan, seed)` triple always produces a byte-identical
//! [`FaultReport`]. Plans are plain data: they serialize into the
//! scenario configuration and therefore into the sweep cache key.
//!
//! Node identity is the raw `u32` index shared by the ring / gossip /
//! network id spaces of the upper layers; this crate stays agnostic of
//! their newtypes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled fault.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Cut connectivity between every node in `a` and every node in `b`
    /// (both directions) at `at`.
    Partition {
        /// When the partition starts.
        at: SimTime,
        /// One side of the cut.
        a: Vec<u32>,
        /// The other side.
        b: Vec<u32>,
    },
    /// Restore connectivity between `a` and `b` at `at`.
    Heal {
        /// When the partition heals.
        at: SimTime,
        /// One side of the former cut.
        a: Vec<u32>,
        /// The other side.
        b: Vec<u32>,
    },
    /// During `[from, until)`, drop matching messages with the given
    /// probability. `None` endpoints match every node.
    DropWindow {
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Source filter (`None` = any sender).
        src: Option<u32>,
        /// Destination filter (`None` = any receiver).
        dst: Option<u32>,
        /// Per-message drop probability.
        probability: f64,
    },
    /// During `[from, until)`, delay matching messages by `extra` on top
    /// of the sampled link latency.
    DelayWindow {
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Source filter (`None` = any sender).
        src: Option<u32>,
        /// Destination filter (`None` = any receiver).
        dst: Option<u32>,
        /// Additional one-way delay.
        extra: SimDuration,
    },
    /// During `[from, until)`, duplicate matching messages with the
    /// given probability (the copy takes an independent latency sample).
    DuplicateWindow {
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Source filter (`None` = any sender).
        src: Option<u32>,
        /// Destination filter (`None` = any receiver).
        dst: Option<u32>,
        /// Per-message duplication probability.
        probability: f64,
    },
    /// Crash `node` at `at`: it stops processing and sending until (and
    /// unless) a matching [`FaultEvent::Restart`] fires.
    Crash {
        /// When the process dies.
        at: SimTime,
        /// The crashing node.
        node: u32,
    },
    /// Restart `node` at `at` with a fresh gossip generation, as a
    /// restarted Cassandra process would.
    Restart {
        /// When the process comes back.
        at: SimTime,
        /// The restarting node.
        node: u32,
    },
    /// Jump `node`'s local clock forward by `skew` at `at`. Failure
    /// detection on the skewed node reads the shifted clock, so its
    /// inter-arrival history sees one huge gap — the classic
    /// NTP-step-induced flap storm.
    ClockSkew {
        /// When the clock steps.
        at: SimTime,
        /// The skewed node.
        node: u32,
        /// How far the clock jumps forward.
        skew: SimDuration,
    },
}

impl FaultEvent {
    /// When the fault fires (windows: when they open).
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::Partition { at, .. }
            | FaultEvent::Heal { at, .. }
            | FaultEvent::Crash { at, .. }
            | FaultEvent::Restart { at, .. }
            | FaultEvent::ClockSkew { at, .. } => *at,
            FaultEvent::DropWindow { from, .. }
            | FaultEvent::DelayWindow { from, .. }
            | FaultEvent::DuplicateWindow { from, .. } => *from,
        }
    }

    /// A short human label for the fired-fault log.
    pub fn label(&self) -> String {
        match self {
            FaultEvent::Partition { a, b, .. } => {
                format!("partition {}|{}", side_label(a), side_label(b))
            }
            FaultEvent::Heal { a, b, .. } => format!("heal {}|{}", side_label(a), side_label(b)),
            FaultEvent::DropWindow {
                until, probability, ..
            } => format!("drop p={probability} until {until}"),
            FaultEvent::DelayWindow { until, extra, .. } => {
                format!("delay +{extra} until {until}")
            }
            FaultEvent::DuplicateWindow {
                until, probability, ..
            } => format!("duplicate p={probability} until {until}"),
            FaultEvent::Crash { node, .. } => format!("crash n{node}"),
            FaultEvent::Restart { node, .. } => format!("restart n{node}"),
            FaultEvent::ClockSkew { node, skew, .. } => format!("skew n{node} +{skew}"),
        }
    }
}

fn side_label(side: &[u32]) -> String {
    let ids: Vec<String> = side.iter().map(|n| n.to_string()).collect();
    ids.join(",")
}

/// A schedule of faults for one run. Plain serializable data; the
/// default plan is empty (no faults).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled faults, in any order; the runner sorts by time via
    /// its event queue.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The latest *start* time of any scheduled fault (`ZERO` when
    /// empty). Runs must not quiesce before every fault has fired, so
    /// the runner extends its workload horizon to at least this.
    pub fn end_time(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.at())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Adds a partition between node sets `a` and `b` at `at`.
    pub fn partition(mut self, at: SimTime, a: Vec<u32>, b: Vec<u32>) -> Self {
        self.events.push(FaultEvent::Partition { at, a, b });
        self
    }

    /// Heals a partition between `a` and `b` at `at`.
    pub fn heal(mut self, at: SimTime, a: Vec<u32>, b: Vec<u32>) -> Self {
        self.events.push(FaultEvent::Heal { at, a, b });
        self
    }

    /// Adds a probabilistic drop window on the matching links.
    pub fn drop_window(
        mut self,
        from: SimTime,
        until: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        probability: f64,
    ) -> Self {
        self.events.push(FaultEvent::DropWindow {
            from,
            until,
            src,
            dst,
            probability,
        });
        self
    }

    /// Adds an added-latency window on the matching links.
    pub fn delay_window(
        mut self,
        from: SimTime,
        until: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        extra: SimDuration,
    ) -> Self {
        self.events.push(FaultEvent::DelayWindow {
            from,
            until,
            src,
            dst,
            extra,
        });
        self
    }

    /// Adds a duplication window on the matching links.
    pub fn duplicate_window(
        mut self,
        from: SimTime,
        until: SimTime,
        src: Option<u32>,
        dst: Option<u32>,
        probability: f64,
    ) -> Self {
        self.events.push(FaultEvent::DuplicateWindow {
            from,
            until,
            src,
            dst,
            probability,
        });
        self
    }

    /// Crashes `node` at `at`.
    pub fn crash(mut self, at: SimTime, node: u32) -> Self {
        self.events.push(FaultEvent::Crash { at, node });
        self
    }

    /// Restarts `node` at `at`.
    pub fn restart(mut self, at: SimTime, node: u32) -> Self {
        self.events.push(FaultEvent::Restart { at, node });
        self
    }

    /// Steps `node`'s clock forward by `skew` at `at`.
    pub fn clock_skew(mut self, at: SimTime, node: u32, skew: SimDuration) -> Self {
        self.events.push(FaultEvent::ClockSkew { at, node, skew });
        self
    }

    /// Generates a deterministic "fault storm" for an `n_nodes` cluster.
    ///
    /// `intensity` in `[0, 1]` scales how much goes wrong: 0 yields an
    /// empty plan; higher values add message loss, a transient partition
    /// of a minority group, crash/restart cycles, and a clock step. The
    /// same `(seed, n_nodes, intensity)` always yields the same plan —
    /// MET-style seeded exploration of fault schedules.
    pub fn storm(seed: u64, n_nodes: u32, intensity: f64) -> Self {
        let mut plan = FaultPlan::new();
        if intensity <= 0.0 || n_nodes < 2 {
            return plan;
        }
        let intensity = intensity.min(1.0);
        let mut rng = DetRng::new(seed ^ 0x00fa_0175_707f).fork(n_nodes as u64);
        let t0 = SimTime::from_secs(60 + rng.gen_range(30));

        // Background loss across the whole fabric.
        plan = plan.drop_window(
            t0,
            t0 + SimDuration::from_secs(90),
            None,
            None,
            0.05 + 0.25 * intensity,
        );

        // A transient partition isolating a minority group.
        let cut = ((n_nodes as f64 * 0.25 * intensity).ceil() as u32).clamp(1, n_nodes / 2);
        let mut ids: Vec<u32> = (0..n_nodes).collect();
        rng.shuffle(&mut ids);
        let (minority, majority) = ids.split_at(cut as usize);
        let part_at = t0 + SimDuration::from_secs(20 + rng.gen_range(20));
        let heal_at = part_at + SimDuration::from_secs(30 + (60.0 * intensity) as u64);
        plan = plan
            .partition(part_at, minority.to_vec(), majority.to_vec())
            .heal(heal_at, minority.to_vec(), majority.to_vec());

        // Crash/restart cycles proportional to intensity.
        let crashes = ((n_nodes as f64 * intensity / 8.0).ceil() as usize).clamp(1, 4);
        for k in 0..crashes {
            let victim = majority[rng.gen_index(majority.len())];
            let down_at = t0 + SimDuration::from_secs(40 + 25 * k as u64);
            let up_at = down_at + SimDuration::from_secs(35 + (40.0 * intensity) as u64);
            plan = plan.crash(down_at, victim).restart(up_at, victim);
        }

        // Heavy storms also step one node's clock.
        if intensity >= 0.5 {
            let victim = minority[rng.gen_index(minority.len())];
            plan = plan.clock_skew(
                heal_at + SimDuration::from_secs(30),
                victim,
                SimDuration::from_secs(20 + (20.0 * intensity) as u64),
            );
        }
        plan
    }
}

/// One fault that actually fired during a run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FiredFault {
    /// Virtual time the fault took effect.
    pub at: SimTime,
    /// Human-readable description (see [`FaultEvent::label`]).
    pub label: String,
}

/// What the fault layer did to one run. All-integer fields: two runs of
/// the same `(scenario, plan, seed)` serialize to byte-identical JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Every fault that fired, in firing order.
    pub fired: Vec<FiredFault>,
    /// Fault-injected process crashes.
    pub crashes: u64,
    /// Fault-injected process restarts.
    pub restarts: u64,
    /// Messages dropped by fault windows or injected partitions.
    pub fault_dropped: u64,
    /// Messages delayed by delay windows.
    pub fault_delayed: u64,
    /// Messages duplicated by duplication windows.
    pub fault_duplicated: u64,
    /// Per-node downtime from crash faults (crash → restart, or crash →
    /// end of run), keyed by node index.
    pub downtime: BTreeMap<u32, SimDuration>,
    /// Flaps whose convicted peer was under an active fault (crashed,
    /// partitioned, or clock-stepped) at conviction time.
    pub attributed_flaps: u64,
}

impl FaultReport {
    /// Total messages the fault layer touched (dropped, delayed, or
    /// duplicated).
    pub fn messages_affected(&self) -> u64 {
        self.fault_dropped + self.fault_delayed + self.fault_duplicated
    }

    /// Total downtime across all nodes.
    pub fn total_downtime(&self) -> SimDuration {
        self.downtime
            .values()
            .fold(SimDuration::ZERO, |acc, &d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_events_in_order() {
        let plan = FaultPlan::new()
            .partition(SimTime::from_secs(10), vec![0], vec![1, 2])
            .heal(SimTime::from_secs(40), vec![0], vec![1, 2])
            .crash(SimTime::from_secs(20), 3)
            .restart(SimTime::from_secs(50), 3);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(plan.end_time(), SimTime::from_secs(50));
    }

    #[test]
    fn empty_plan_defaults() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.end_time(), SimTime::ZERO);
    }

    #[test]
    fn end_time_uses_window_start_not_end() {
        // A long-running window must not stall quiescence past its
        // opening: everything has *fired* once the window opens.
        let plan = FaultPlan::new().drop_window(
            SimTime::from_secs(30),
            SimTime::from_secs(100_000),
            None,
            None,
            0.5,
        );
        assert_eq!(plan.end_time(), SimTime::from_secs(30));
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::storm(7, 16, 0.8);
        assert!(!plan.is_empty());
        let v = serde::Serialize::serialize(&plan);
        let back: FaultPlan = serde::Deserialize::deserialize(&v).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn storm_is_deterministic_and_scales_with_intensity() {
        let a = FaultPlan::storm(42, 32, 0.5);
        let b = FaultPlan::storm(42, 32, 0.5);
        assert_eq!(a, b);
        assert!(FaultPlan::storm(42, 32, 0.0).is_empty());
        let light = FaultPlan::storm(42, 32, 0.2);
        let heavy = FaultPlan::storm(42, 32, 1.0);
        assert!(heavy.len() >= light.len(), "heavier storms do no less");
        // Different seeds explore different schedules.
        assert_ne!(FaultPlan::storm(1, 32, 0.5), FaultPlan::storm(2, 32, 0.5));
    }

    #[test]
    fn labels_name_the_fault() {
        let ev = FaultEvent::Crash {
            at: SimTime::from_secs(9),
            node: 4,
        };
        assert_eq!(ev.label(), "crash n4");
        assert_eq!(ev.at(), SimTime::from_secs(9));
        let win = FaultEvent::DropWindow {
            from: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            src: None,
            dst: Some(3),
            probability: 0.25,
        };
        assert!(win.label().contains("drop p=0.25"));
        assert_eq!(win.at(), SimTime::from_secs(1));
    }

    #[test]
    fn report_totals() {
        let mut r = FaultReport {
            fault_dropped: 3,
            fault_delayed: 2,
            fault_duplicated: 1,
            ..FaultReport::default()
        };
        r.downtime.insert(0, SimDuration::from_secs(10));
        r.downtime.insert(5, SimDuration::from_secs(5));
        assert_eq!(r.messages_affected(), 6);
        assert_eq!(r.total_downtime(), SimDuration::from_secs(15));
    }
}
