//! SEDA-like serial stages.
//!
//! Cassandra processes gossip on a single-threaded stage; when a
//! scale-dependent computation blocks that stage, queued heartbeats go
//! unprocessed and peers get convicted — the core mechanism of the bugs in
//! §2. [`Stage`] models a serial work queue: at most one item is being
//! processed at a time, and the queueing delay of each item is recorded as
//! the stage's *event lateness* (§6/§8's colocation-bottleneck metric).

use std::collections::VecDeque;

use crate::metrics::Histogram;
use crate::time::{SimDuration, SimTime};

/// A serial work queue with lateness accounting.
#[derive(Clone, Debug)]
pub struct Stage<T> {
    queue: VecDeque<(SimTime, T)>,
    busy: bool,
    enqueued: u64,
    processed: u64,
    lateness: Histogram,
    max_depth: usize,
    busy_since: Option<SimTime>,
    busy_ns: u64,
}

impl<T> Default for Stage<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Stage<T> {
    /// Creates an empty, idle stage.
    pub fn new() -> Self {
        Stage {
            queue: VecDeque::new(),
            busy: false,
            enqueued: 0,
            processed: 0,
            lateness: Histogram::new(),
            max_depth: 0,
            busy_since: None,
            busy_ns: 0,
        }
    }

    /// Enqueues an item at time `now`.
    pub fn push(&mut self, now: SimTime, item: T) {
        self.queue.push_back((now, item));
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
        scalecheck_obs::metric(scalecheck_obs::Metric::QueueDepth, self.queue.len() as u64);
    }

    /// Pushes an item to the *front* of the queue (priority admission,
    /// used by the deterministic replayer's order enforcement).
    pub fn push_front(&mut self, now: SimTime, item: T) {
        self.queue.push_front((now, item));
        self.enqueued += 1;
        self.max_depth = self.max_depth.max(self.queue.len());
    }

    /// If the stage is idle and work is queued, dequeues the next item,
    /// marks the stage busy, and records the item's queueing delay.
    pub fn try_begin(&mut self, now: SimTime) -> Option<T> {
        if self.busy {
            return None;
        }
        let (enq_at, item) = self.queue.pop_front()?;
        self.busy = true;
        self.busy_since = Some(now);
        self.processed += 1;
        self.lateness.record(now.since(enq_at));
        scalecheck_obs::metric(
            scalecheck_obs::Metric::StageLateness,
            now.since(enq_at).as_nanos(),
        );
        Some(item)
    }

    /// Marks the current item finished; the stage becomes idle.
    ///
    /// # Panics
    ///
    /// Panics if the stage was not busy.
    pub fn finish(&mut self) {
        assert!(self.busy, "finish() on an idle stage");
        self.busy = false;
        self.busy_since = None;
    }

    /// Like [`Stage::finish`], but also credits the busy interval that
    /// started at the matching `try_begin` to the stage's busy-time
    /// total (the utilization-timeline source).
    ///
    /// # Panics
    ///
    /// Panics if the stage was not busy.
    pub fn finish_at(&mut self, now: SimTime) {
        assert!(self.busy, "finish_at() on an idle stage");
        self.busy = false;
        if let Some(since) = self.busy_since.take() {
            self.busy_ns = self.busy_ns.saturating_add(now.since(since).as_nanos());
        }
    }

    /// Cumulative busy time through `now`, including the currently
    /// running item (if any). Monotone in `now`; the utilization
    /// sampler differences successive readings.
    pub fn busy_nanos_until(&self, now: SimTime) -> u64 {
        let open = self
            .busy_since
            .map_or(0, |since| now.since(since).as_nanos());
        self.busy_ns.saturating_add(open)
    }

    /// Removes and returns the first queued item matching `pred`
    /// (regardless of position). Used by order-enforced replay to pull a
    /// specific message out of turn. Does not count as lateness.
    pub fn take_matching<F: FnMut(&T) -> bool>(&mut self, mut pred: F) -> Option<T> {
        let pos = self.queue.iter().position(|(_, item)| pred(item))?;
        Some(self.queue.remove(pos).expect("position valid").1)
    }

    /// Whether an item is currently being processed.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Number of queued (not yet started) items.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total items enqueued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total items whose processing began.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Queueing-delay histogram (event lateness).
    pub fn lateness(&self) -> &Histogram {
        &self.lateness
    }

    /// Peeks at the next queued item.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front().map(|(_, item)| item)
    }

    /// Drops all queued items, returning how many were discarded.
    pub fn clear(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }
}

/// Convenience alias: the maximum lateness a stage has observed.
pub fn max_lateness<T>(stage: &Stage<T>) -> SimDuration {
    stage.lateness().max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn serial_processing_one_at_a_time() {
        let mut st = Stage::new();
        st.push(SimTime::ZERO, "a");
        st.push(SimTime::ZERO, "b");
        assert_eq!(st.try_begin(SimTime::ZERO), Some("a"));
        // Busy: no second item until finish.
        assert_eq!(st.try_begin(SimTime::ZERO), None);
        st.finish();
        assert_eq!(st.try_begin(SimTime::ZERO), Some("b"));
        st.finish();
        assert_eq!(st.try_begin(SimTime::ZERO), None);
    }

    #[test]
    fn lateness_measures_queueing_delay() {
        let mut st = Stage::new();
        st.push(SimTime::ZERO, 1u32);
        st.push(SimTime::ZERO, 2u32);
        st.try_begin(at_ms(0));
        st.finish();
        st.try_begin(at_ms(500));
        assert_eq!(st.lateness().max(), SimDuration::from_millis(500));
    }

    #[test]
    fn depth_statistics() {
        let mut st = Stage::new();
        for i in 0..5 {
            st.push(SimTime::ZERO, i);
        }
        assert_eq!(st.depth(), 5);
        assert_eq!(st.max_depth(), 5);
        st.try_begin(SimTime::ZERO);
        assert_eq!(st.depth(), 4);
        assert_eq!(st.max_depth(), 5);
        assert_eq!(st.enqueued(), 5);
        assert_eq!(st.processed(), 1);
    }

    #[test]
    fn take_matching_pulls_out_of_order() {
        let mut st = Stage::new();
        st.push(SimTime::ZERO, 1u32);
        st.push(SimTime::ZERO, 2u32);
        st.push(SimTime::ZERO, 3u32);
        assert_eq!(st.take_matching(|&x| x == 2), Some(2));
        assert_eq!(st.take_matching(|&x| x == 9), None);
        assert_eq!(st.depth(), 2);
        assert_eq!(st.try_begin(SimTime::ZERO), Some(1));
    }

    #[test]
    fn push_front_takes_priority() {
        let mut st = Stage::new();
        st.push(SimTime::ZERO, 1u32);
        st.push_front(SimTime::ZERO, 0u32);
        assert_eq!(st.try_begin(SimTime::ZERO), Some(0));
    }

    #[test]
    #[should_panic(expected = "idle stage")]
    fn finish_when_idle_panics() {
        let mut st: Stage<u32> = Stage::new();
        st.finish();
    }

    #[test]
    fn busy_time_accumulates_through_finish_at() {
        let mut st = Stage::new();
        st.push(SimTime::ZERO, 1u32);
        st.push(SimTime::ZERO, 2u32);
        st.try_begin(at_ms(0));
        // Mid-item reading includes the open interval.
        assert_eq!(st.busy_nanos_until(at_ms(3)), 3_000_000);
        st.finish_at(at_ms(5));
        assert_eq!(st.busy_nanos_until(at_ms(10)), 5_000_000);
        st.try_begin(at_ms(10));
        st.finish_at(at_ms(12));
        assert_eq!(st.busy_nanos_until(at_ms(20)), 7_000_000);
        // Plain finish() leaves the busy total untouched.
        st.push(SimTime::ZERO, 3u32);
        st.try_begin(at_ms(30));
        st.finish();
        assert_eq!(st.busy_nanos_until(at_ms(40)), 7_000_000);
    }

    #[test]
    fn clear_discards_queue() {
        let mut st = Stage::new();
        st.push(SimTime::ZERO, 1u32);
        st.push(SimTime::ZERO, 2u32);
        assert_eq!(st.clear(), 2);
        assert_eq!(st.depth(), 0);
        assert!(st.peek().is_none());
    }
}
