//! Virtual time for the discrete-event simulator.
//!
//! All simulated activity is stamped with [`SimTime`], a nanosecond count
//! since simulation start. Durations are [`SimDuration`]. Both are plain
//! `u64` newtypes so they are `Copy`, totally ordered, and hashable, and
//! arithmetic is saturating where underflow could otherwise panic in
//! release builds.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant, saturating to zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, saturating on overflow
    /// and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Multiplication by a float factor, clamping negatives to zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).as_nanos(), 5_000_000_000);
    }

    #[test]
    fn arithmetic_is_saturating() {
        let t = SimTime::from_nanos(10);
        assert_eq!((t - SimDuration::from_nanos(20)).as_nanos(), 0);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            (SimDuration::from_nanos(5) - SimDuration::from_nanos(9)).as_nanos(),
            0
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.since(a), SimDuration::from_secs(2));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_millis(3_000));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(2)), "2ns");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
