//! The discrete-event engine.
//!
//! [`Engine`] owns a priority queue of timestamped events; the simulated
//! world state `S` lives outside the engine so event closures can mutate
//! it freely while scheduling follow-up events through [`Ctx`].
//!
//! Determinism: events at equal timestamps fire in scheduling order
//! (a monotone sequence number breaks ties), and all randomness flows
//! through the engine's seeded [`DetRng`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// An event callback: mutates the world and may schedule more events.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Ctx<'_, S>) + Send>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    f: EventFn<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Why [`Engine::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The deadline was reached (events may remain beyond it).
    DeadlineReached,
    /// The queue drained before the deadline.
    QueueDrained,
    /// An event called [`Ctx::stop`].
    Stopped,
}

/// Summary of one `run_until` call.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Number of events executed.
    pub executed: u64,
    /// Virtual time when the run ended.
    pub ended_at: SimTime,
    /// Why the run ended.
    pub outcome: RunOutcome,
}

/// Handle given to event callbacks for scheduling and randomness.
pub struct Ctx<'a, S> {
    now: SimTime,
    queue: &'a mut BinaryHeap<Scheduled<S>>,
    seq: &'a mut u64,
    rng: &'a mut DetRng,
    stop: &'a mut bool,
}

impl<'a, S> Ctx<'a, S> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `f` to run at absolute time `at` (clamped to now).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        let at = at.max(self.now);
        *self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: *self.seq,
            f: Box::new(f),
        });
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Requests that the run loop stop after this event returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event engine over world state `S`.
pub struct Engine<S> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    rng: DetRng,
    stop: bool,
    executed_total: u64,
}

impl<S> Engine<S> {
    /// Creates an engine with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: DetRng::new(seed),
            stop: false,
            executed_total: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total events executed over the engine's lifetime.
    pub fn executed_total(&self) -> u64 {
        self.executed_total
    }

    /// The engine's deterministic RNG (e.g. for setup-time draws).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Schedules `f` at absolute time `at` from outside an event callback.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            f: Box::new(f),
        });
    }

    /// Schedules `f` after `delay` from outside an event callback.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Runs events until `deadline` (inclusive), the queue drains, or an
    /// event calls [`Ctx::stop`].
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) -> RunStats {
        let mut executed = 0u64;
        self.stop = false;
        let outcome = loop {
            match self.queue.peek() {
                None => break RunOutcome::QueueDrained,
                Some(ev) if ev.at > deadline => break RunOutcome::DeadlineReached,
                Some(_) => {}
            }
            let ev = self.queue.pop().expect("peeked event present");
            debug_assert!(ev.at >= self.now, "event queue went backwards");
            self.now = ev.at;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                seq: &mut self.seq,
                rng: &mut self.rng,
                stop: &mut self.stop,
            };
            (ev.f)(state, &mut ctx);
            executed += 1;
            if self.stop {
                break RunOutcome::Stopped;
            }
        };
        if outcome == RunOutcome::DeadlineReached {
            self.now = deadline;
        }
        self.executed_total += executed;
        RunStats {
            executed,
            ended_at: self.now,
            outcome,
        }
    }

    /// Runs until the queue drains or an event stops the engine.
    pub fn run_to_completion(&mut self, state: &mut S) -> RunStats {
        self.run_until(state, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(3), |s, _| s.push(3));
        eng.schedule_at(SimTime::from_secs(1), |s, _| s.push(1));
        eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(2));
        let mut out = Vec::new();
        let stats = eng.run_to_completion(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.executed, 3);
        assert_eq!(stats.outcome, RunOutcome::QueueDrained);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new(1);
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            eng.schedule_at(t, move |s, _| s.push(i));
        }
        let mut out = Vec::new();
        eng.run_to_completion(&mut out);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<u64>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |s, ctx| {
            s.push(ctx.now().as_nanos());
            ctx.schedule_after(SimDuration::from_secs(2), |s, ctx| {
                s.push(ctx.now().as_nanos());
            });
        });
        let mut out = Vec::new();
        eng.run_to_completion(&mut out);
        assert_eq!(out, vec![1_000_000_000, 3_000_000_000]);
    }

    #[test]
    fn deadline_stops_and_clamps_clock() {
        let mut eng: Engine<Vec<u32>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |s, _| s.push(1));
        eng.schedule_at(SimTime::from_secs(10), |s, _| s.push(10));
        let mut out = Vec::new();
        let stats = eng.run_until(&mut out, SimTime::from_secs(5));
        assert_eq!(out, vec![1]);
        assert_eq!(stats.outcome, RunOutcome::DeadlineReached);
        assert_eq!(eng.now(), SimTime::from_secs(5));
        assert_eq!(eng.pending(), 1);
        // Resuming picks up the rest.
        let stats = eng.run_to_completion(&mut out);
        assert_eq!(out, vec![1, 10]);
        assert_eq!(stats.outcome, RunOutcome::QueueDrained);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut eng: Engine<Vec<u32>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |s, ctx| {
            s.push(1);
            ctx.stop();
        });
        eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(2));
        let mut out = Vec::new();
        let stats = eng.run_to_completion(&mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(stats.outcome, RunOutcome::Stopped);
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut eng: Engine<Vec<u64>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(5), |s, ctx| {
            // Attempt to schedule in the past; must fire at `now`.
            ctx.schedule_at(SimTime::from_secs(1), |s2, ctx2| {
                s2.push(ctx2.now().as_nanos());
            });
            s.push(ctx.now().as_nanos());
        });
        let mut out = Vec::new();
        eng.run_to_completion(&mut out);
        assert_eq!(out, vec![5_000_000_000, 5_000_000_000]);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<u64> {
            let mut eng: Engine<Vec<u64>> = Engine::new(seed);
            for _ in 0..5 {
                eng.schedule_at(SimTime::ZERO, |s, ctx| {
                    let d = SimDuration::from_nanos(ctx.rng().gen_range(1000));
                    ctx.schedule_after(d, move |s2, ctx2| s2.push(ctx2.now().as_nanos()));
                    s.push(d.as_nanos());
                });
            }
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            out
        }
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn executed_total_accumulates() {
        let mut eng: Engine<()> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |_, _| {});
        eng.schedule_at(SimTime::from_secs(2), |_, _| {});
        eng.run_until(&mut (), SimTime::from_secs(1));
        assert_eq!(eng.executed_total(), 1);
        eng.run_to_completion(&mut ());
        assert_eq!(eng.executed_total(), 2);
    }
}
