//! The discrete-event engine.
//!
//! [`Engine`] owns a scheduler of timestamped events; the simulated
//! world state `S` lives outside the engine so event callbacks can
//! mutate it freely while scheduling follow-up events through [`Ctx`].
//!
//! Two interchangeable schedulers exist behind the same API
//! ([`SchedulerKind`]):
//!
//! * **Wheel** (the default): a hierarchical timer wheel
//!   ([`crate::wheel`]) with slab/free-list event storage and pooled
//!   tie-batch `Vec`s. Steady-state periodic timers recycle storage, so
//!   scheduling and firing stay allocation-free per event.
//! * **Heap**: the original `BinaryHeap` scheduler, kept as the
//!   differential reference (one boxed closure and an `O(log n)` sift
//!   per event).
//!
//! Events come in two shapes: one-shot boxed closures
//! ([`Engine::schedule_at`]) and *handler events*
//! ([`Engine::register_handler`] + [`Engine::schedule_handler_at`]) — a
//! pre-registered `FnMut` dispatched with a `u64` payload, stored inline
//! in the slab so periodic timers never box anything.
//!
//! Every schedule returns a [`TimerId`]; [`Engine::cancel`] removes the
//! event before it fires (generation-checked, so stale ids are inert).
//!
//! Determinism: events at equal timestamps fire in scheduling order
//! (a monotone sequence number breaks ties), and all randomness flows
//! through the engine's seeded [`DetRng`]. Both schedulers produce
//! identical firing orders and identical RNG draw sequences — guarded
//! by the differential suite in `tests/proptests.rs`.
//!
//! Tie order is a *policy*: every schedule call is assigned a tie-break
//! key (see [`crate::tie`]), and same-timestamp events fire in ascending
//! `(key, seq)` order. The default is the stock key (monotone in `seq`,
//! i.e. scheduling order); [`Engine::with_tie_order`] installs a
//! perturbing policy for schedule exploration. An engine without a
//! policy never calls one — the identity path is branch-only.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::metrics::EngineCounters;
use crate::rng::DetRng;
use crate::tie::{identity_key, FireRec, TieOrder, TieOrderSpec};
use crate::time::{SimDuration, SimTime};
use crate::wheel::{EventRef, Slab, Wheel};

/// A one-shot event callback: mutates the world and may schedule more
/// events.
pub type EventFn<S> = Box<dyn FnOnce(&mut S, &mut Ctx<'_, S>) + Send>;

/// A registered handler: dispatched for every handler event scheduled
/// against its [`HandlerId`], with the event's `u64` payload.
pub type HandlerFn<S> = Box<dyn FnMut(&mut S, &mut Ctx<'_, S>, u64) + Send>;

/// Handle to a pending event; pass to [`Engine::cancel`] /
/// [`Ctx::cancel`] to remove it before it fires. Ids are generation-
/// checked: once the event fires or is cancelled, the id goes inert.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId {
    idx: u32,
    gen: u32,
}

/// Handle to a handler registered with [`Engine::register_handler`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HandlerId(u32);

/// Which scheduler backs an [`Engine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel with slab storage (the default).
    #[default]
    Wheel,
    /// The reference `BinaryHeap` scheduler.
    Heap,
}

/// What a stored event does when it fires.
enum Payload<S> {
    Once(EventFn<S>),
    Handler(HandlerId, u64),
}

struct HeapEv<S> {
    at: SimTime,
    key: u64,
    seq: u64,
    id: u64,
    ev: Payload<S>,
}

impl<S> PartialEq for HeapEv<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<S> Eq for HeapEv<S> {}
impl<S> PartialOrd for HeapEv<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for HeapEv<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, key, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Sched<S> {
    Wheel {
        wheel: Wheel,
        slab: Slab<Payload<S>>,
        /// Current tick's batch, sorted by `(at, seq)`; survives across
        /// `run_until` calls when a deadline lands mid-granule.
        batch: Vec<EventRef>,
        batch_pos: usize,
        batch_tick: u64,
        batch_live: bool,
    },
    Heap {
        queue: BinaryHeap<HeapEv<S>>,
        /// Ids of pending (schedulable) events.
        live_ids: HashSet<u64>,
        /// Ids cancelled but not yet lazily popped. Only membership is
        /// ever queried, so hash iteration order cannot leak into runs.
        cancelled: HashSet<u64>,
        next_id: u64,
    },
}

/// Everything event callbacks may touch besides the RNG and stop flag.
struct Core<S> {
    now: SimTime,
    seq: u64,
    /// Pending (uncancelled, unfired) events.
    live: usize,
    counters: EngineCounters,
    /// Tie-order policy; `None` is the stock (scheduling-order) path.
    tie: Option<Box<dyn TieOrder>>,
    sched: Sched<S>,
}

enum Pop<S> {
    Fired(SimTime, u64, Payload<S>),
    Deadline,
    Drained,
}

impl<S> Core<S> {
    fn schedule(&mut self, at: SimTime, payload: Payload<S>) -> TimerId {
        let at = at.max(self.now);
        self.seq += 1;
        let seq = self.seq;
        let key = match self.tie.as_mut() {
            None => identity_key(seq),
            Some(p) => p.tie_key(at, seq),
        };
        self.counters.scheduled += 1;
        self.live += 1;
        match &mut self.sched {
            Sched::Heap {
                queue,
                live_ids,
                next_id,
                ..
            } => {
                let id = *next_id;
                *next_id += 1;
                self.counters.pool_misses += 1;
                live_ids.insert(id);
                queue.push(HeapEv {
                    at,
                    key,
                    seq,
                    id,
                    ev: payload,
                });
                TimerId {
                    idx: id as u32,
                    gen: (id >> 32) as u32,
                }
            }
            Sched::Wheel {
                wheel,
                slab,
                batch,
                batch_pos,
                batch_tick,
                batch_live,
            } => {
                let (idx, gen, reused) = slab.insert(payload);
                if reused {
                    self.counters.pool_hits += 1;
                } else {
                    self.counters.pool_misses += 1;
                }
                let r = EventRef {
                    at,
                    key,
                    seq,
                    idx,
                    gen,
                };
                if *batch_live && Wheel::tick_of(at) == *batch_tick {
                    // The event lands in the granule currently firing:
                    // splice it into the sorted batch so tie order holds.
                    let tail = &batch[*batch_pos..];
                    let ins = tail.partition_point(|e| (e.at, e.key, e.seq) < (at, key, seq));
                    batch.insert(*batch_pos + ins, r);
                } else {
                    wheel.insert(r);
                }
                TimerId { idx, gen }
            }
        }
    }

    fn cancel(&mut self, id: TimerId) -> bool {
        let hit = match &mut self.sched {
            Sched::Heap {
                live_ids,
                cancelled,
                ..
            } => {
                let raw = ((id.gen as u64) << 32) | id.idx as u64;
                live_ids.remove(&raw) && cancelled.insert(raw)
            }
            Sched::Wheel { slab, .. } => slab.take(id.idx, id.gen).is_some(),
        };
        if hit {
            self.counters.cancelled += 1;
            self.live -= 1;
        }
        hit
    }

    fn pop_next(&mut self, deadline: SimTime) -> Pop<S> {
        if self.live == 0 {
            return Pop::Drained;
        }
        match &mut self.sched {
            Sched::Heap {
                queue,
                live_ids,
                cancelled,
                ..
            } => loop {
                match queue.peek() {
                    None => return Pop::Drained,
                    Some(ev) if cancelled.contains(&ev.id) => {
                        let ev = queue.pop().expect("peeked event present");
                        cancelled.remove(&ev.id);
                    }
                    Some(ev) if ev.at > deadline => return Pop::Deadline,
                    Some(_) => {
                        let ev = queue.pop().expect("peeked event present");
                        live_ids.remove(&ev.id);
                        return Pop::Fired(ev.at, ev.seq, ev.ev);
                    }
                }
            },
            Sched::Wheel {
                wheel,
                slab,
                batch,
                batch_pos,
                batch_tick,
                batch_live,
            } => loop {
                while *batch_pos < batch.len() {
                    let r = batch[*batch_pos];
                    if r.at > deadline {
                        return Pop::Deadline;
                    }
                    *batch_pos += 1;
                    if let Some(p) = slab.take(r.idx, r.gen) {
                        return Pop::Fired(r.at, r.seq, p);
                    }
                    // Stale ref (cancelled event): skip.
                }
                match wheel.poll(Wheel::tick_of(deadline)) {
                    Some((tick, mut vec)) => {
                        vec.sort_unstable_by_key(|e| (e.at, e.key, e.seq));
                        let old = std::mem::replace(batch, vec);
                        wheel.recycle(old);
                        *batch_pos = 0;
                        *batch_tick = tick;
                        *batch_live = true;
                    }
                    // live > 0 (checked above), so events remain past the
                    // deadline.
                    None => return Pop::Deadline,
                }
            },
        }
    }
}

/// Why [`Engine::run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The deadline was reached (events may remain beyond it).
    DeadlineReached,
    /// The queue drained before the deadline.
    QueueDrained,
    /// An event called [`Ctx::stop`].
    Stopped,
}

/// Summary of one `run_until` call.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Number of events executed.
    pub executed: u64,
    /// Virtual time when the run ended.
    pub ended_at: SimTime,
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Engine-lifetime scheduling counters as of run end.
    pub counters: EngineCounters,
}

/// Handle given to event callbacks for scheduling and randomness.
pub struct Ctx<'a, S> {
    core: &'a mut Core<S>,
    rng: &'a mut DetRng,
    stop: &'a mut bool,
}

impl<'a, S> Ctx<'a, S> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Schedules `f` to run at absolute time `at` (clamped to now).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> TimerId
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        self.core.schedule(at, Payload::Once(Box::new(f)))
    }

    /// Schedules `f` to run after `delay`.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, f: F) -> TimerId
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        self.schedule_at(self.core.now + delay, f)
    }

    /// Schedules a handler event at absolute time `at` (clamped to now);
    /// the registered handler runs with `payload`. No allocation when
    /// the slab recycles a slot (the steady state).
    pub fn schedule_handler_at(&mut self, at: SimTime, h: HandlerId, payload: u64) -> TimerId {
        self.core.schedule(at, Payload::Handler(h, payload))
    }

    /// Schedules a handler event after `delay`.
    pub fn schedule_handler_after(
        &mut self,
        delay: SimDuration,
        h: HandlerId,
        payload: u64,
    ) -> TimerId {
        self.schedule_handler_at(self.core.now + delay, h, payload)
    }

    /// Cancels a pending event. Returns whether it was removed (false
    /// if it already fired or was already cancelled).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.core.cancel(id)
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sequence number of the most recently scheduled event. Immediately
    /// after a `schedule_*` call this identifies that event for tie-order
    /// perturbation targeting ([`crate::tie::TieSwap`]).
    pub fn last_seq(&self) -> u64 {
        self.core.seq
    }

    /// Requests that the run loop stop after this event returns.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// A deterministic discrete-event engine over world state `S`.
pub struct Engine<S> {
    core: Core<S>,
    rng: DetRng,
    stop: bool,
    executed_total: u64,
    handlers: Vec<Option<HandlerFn<S>>>,
    fire_log: Option<Vec<FireRec>>,
}

impl<S> Engine<S> {
    /// Creates a wheel-backed engine with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, SchedulerKind::Wheel)
    }

    /// Creates an engine whose same-timestamp tie order is governed by
    /// `spec` instead of pure scheduling order. An identity spec keeps
    /// the stock fast path (no policy object installed).
    pub fn with_tie_order(seed: u64, kind: SchedulerKind, spec: &TieOrderSpec) -> Self {
        let mut eng = Self::with_scheduler(seed, kind);
        if !spec.is_identity() {
            eng.core.tie = Some(Box::new(spec.policy()));
        }
        eng
    }

    /// Installs an arbitrary tie-order policy (testing hook).
    pub fn set_tie_policy(&mut self, policy: Box<dyn TieOrder>) {
        self.core.tie = Some(policy);
    }

    /// Creates an engine backed by the chosen scheduler.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        let sched = match kind {
            SchedulerKind::Wheel => Sched::Wheel {
                wheel: Wheel::new(),
                slab: Slab::new(),
                batch: Vec::new(),
                batch_pos: 0,
                batch_tick: 0,
                batch_live: false,
            },
            SchedulerKind::Heap => Sched::Heap {
                queue: BinaryHeap::new(),
                live_ids: HashSet::new(),
                cancelled: HashSet::new(),
                next_id: 0,
            },
        };
        Engine {
            core: Core {
                now: SimTime::ZERO,
                seq: 0,
                live: 0,
                counters: EngineCounters::default(),
                tie: None,
                sched,
            },
            rng: DetRng::new(seed),
            stop: false,
            executed_total: 0,
            handlers: Vec::new(),
            fire_log: None,
        }
    }

    /// Which scheduler backs this engine.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        match self.core.sched {
            Sched::Wheel { .. } => SchedulerKind::Wheel,
            Sched::Heap { .. } => SchedulerKind::Heap,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.core.live
    }

    /// Total events executed over the engine's lifetime.
    pub fn executed_total(&self) -> u64 {
        self.executed_total
    }

    /// Engine-lifetime scheduling counters.
    pub fn counters(&self) -> EngineCounters {
        self.core.counters
    }

    /// Sequence number of the most recently scheduled event.
    pub fn last_seq(&self) -> u64 {
        self.core.seq
    }

    /// Enables (or disables) recording of `(at, seq)` per fired event.
    /// The log feeds [`crate::tie::ScheduleProbe::tie_groups`].
    pub fn record_fires(&mut self, on: bool) {
        self.fire_log = if on { Some(Vec::new()) } else { None };
    }

    /// Takes the accumulated fire log, leaving recording enabled.
    pub fn take_fire_log(&mut self) -> Vec<FireRec> {
        match self.fire_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The engine's deterministic RNG (e.g. for setup-time draws).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Registers a reusable handler; events scheduled against the
    /// returned id dispatch to it without boxing a fresh closure.
    pub fn register_handler<F>(&mut self, f: F) -> HandlerId
    where
        F: FnMut(&mut S, &mut Ctx<'_, S>, u64) + Send + 'static,
    {
        let id = u32::try_from(self.handlers.len()).expect("handler capacity");
        self.handlers.push(Some(Box::new(f)));
        HandlerId(id)
    }

    /// Schedules `f` at absolute time `at` from outside an event
    /// callback.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> TimerId
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        self.core.schedule(at, Payload::Once(Box::new(f)))
    }

    /// Schedules `f` after `delay` from outside an event callback.
    pub fn schedule_after<F>(&mut self, delay: SimDuration, f: F) -> TimerId
    where
        F: FnOnce(&mut S, &mut Ctx<'_, S>) + Send + 'static,
    {
        self.schedule_at(self.core.now + delay, f)
    }

    /// Schedules a handler event at absolute time `at`.
    pub fn schedule_handler_at(&mut self, at: SimTime, h: HandlerId, payload: u64) -> TimerId {
        self.core.schedule(at, Payload::Handler(h, payload))
    }

    /// Schedules a handler event after `delay`.
    pub fn schedule_handler_after(
        &mut self,
        delay: SimDuration,
        h: HandlerId,
        payload: u64,
    ) -> TimerId {
        self.schedule_handler_at(self.core.now + delay, h, payload)
    }

    /// Cancels a pending event. Returns whether it was removed (false
    /// if it already fired or was already cancelled).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.core.cancel(id)
    }

    /// Runs events until `deadline` (inclusive), the queue drains, or an
    /// event calls [`Ctx::stop`].
    pub fn run_until(&mut self, state: &mut S, deadline: SimTime) -> RunStats {
        let mut executed = 0u64;
        self.stop = false;
        // Tracing state is resolved once per run: the disabled path
        // costs one branch on a local bool per event, no allocation.
        let tracing = scalecheck_obs::enabled();
        let run_span = if tracing {
            scalecheck_obs::with(|t| {
                t.span_start(
                    scalecheck_obs::SpanName::EngineRun,
                    scalecheck_obs::ENGINE_PID,
                    0,
                    self.core.now.as_nanos(),
                )
            })
        } else {
            None
        };
        // Event-rate counter: one sample per virtual second with fires.
        let mut rate_sec = self.core.now.as_nanos() / 1_000_000_000;
        let mut rate_count = 0u64;
        let outcome = loop {
            let (at, seq, payload) = match self.core.pop_next(deadline) {
                Pop::Drained => break RunOutcome::QueueDrained,
                Pop::Deadline => break RunOutcome::DeadlineReached,
                Pop::Fired(at, seq, payload) => (at, seq, payload),
            };
            debug_assert!(at >= self.core.now, "event queue went backwards");
            if let Some(log) = self.fire_log.as_mut() {
                log.push(FireRec {
                    at: at.as_nanos(),
                    seq,
                });
            }
            if tracing {
                let sec = at.as_nanos() / 1_000_000_000;
                if sec != rate_sec {
                    if rate_count > 0 {
                        scalecheck_obs::counter(
                            scalecheck_obs::SpanName::EngineEvents,
                            scalecheck_obs::ENGINE_PID,
                            0,
                            rate_sec * 1_000_000_000,
                            rate_count,
                        );
                    }
                    rate_sec = sec;
                    rate_count = 0;
                }
                rate_count += 1;
            }
            self.core.now = at;
            self.core.live -= 1;
            self.core.counters.fired += 1;
            match payload {
                Payload::Once(f) => {
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        rng: &mut self.rng,
                        stop: &mut self.stop,
                    };
                    f(state, &mut ctx);
                }
                Payload::Handler(h, arg) => {
                    // Take the handler out for the call so it cannot
                    // alias the engine borrow, then put it back.
                    let mut f = self.handlers[h.0 as usize]
                        .take()
                        .expect("handler re-entered its own dispatch");
                    let mut ctx = Ctx {
                        core: &mut self.core,
                        rng: &mut self.rng,
                        stop: &mut self.stop,
                    };
                    f(state, &mut ctx, arg);
                    self.handlers[h.0 as usize] = Some(f);
                }
            }
            executed += 1;
            if self.stop {
                break RunOutcome::Stopped;
            }
        };
        if outcome == RunOutcome::DeadlineReached {
            self.core.now = deadline;
        }
        if tracing {
            if rate_count > 0 {
                scalecheck_obs::counter(
                    scalecheck_obs::SpanName::EngineEvents,
                    scalecheck_obs::ENGINE_PID,
                    0,
                    rate_sec * 1_000_000_000,
                    rate_count,
                );
            }
            if let Some(id) = run_span {
                let end = self.core.now.as_nanos();
                scalecheck_obs::with(|t| t.span_end(id, end, executed));
            }
        }
        self.executed_total += executed;
        RunStats {
            executed,
            ended_at: self.core.now,
            outcome,
            counters: self.core.counters,
        }
    }

    /// Runs until the queue drains or an event stops the engine.
    pub fn run_to_completion(&mut self, state: &mut S) -> RunStats {
        self.run_until(state, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [Engine<Vec<u32>>; 2] {
        [
            Engine::with_scheduler(1, SchedulerKind::Wheel),
            Engine::with_scheduler(1, SchedulerKind::Heap),
        ]
    }

    #[test]
    fn events_fire_in_time_order() {
        for mut eng in both() {
            eng.schedule_at(SimTime::from_secs(3), |s, _| s.push(3));
            eng.schedule_at(SimTime::from_secs(1), |s, _| s.push(1));
            eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(2));
            let mut out = Vec::new();
            let stats = eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1, 2, 3]);
            assert_eq!(stats.executed, 3);
            assert_eq!(stats.outcome, RunOutcome::QueueDrained);
        }
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        for mut eng in both() {
            let t = SimTime::from_secs(1);
            for i in 0..10 {
                eng.schedule_at(t, move |s, _| s.push(i));
            }
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tie_swap_reorders_one_adjacent_pair_only() {
        use crate::tie::TieSwap;
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            // Stock tie order for seqs 1..=4 is [0, 1, 2, 3]; swapping at
            // seq 2 exchanges the events scheduled 2nd and 3rd.
            let spec = TieOrderSpec::with_swaps(vec![TieSwap { seq: 2, shift: 1 }]);
            let mut eng: Engine<Vec<u32>> = Engine::with_tie_order(1, kind, &spec);
            let t = SimTime::from_secs(1);
            for i in 0..4 {
                eng.schedule_at(t, move |s, _| s.push(i));
            }
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, vec![0, 2, 1, 3]);
        }
    }

    #[test]
    fn zero_shift_swap_is_identity_through_the_policy_path() {
        use crate::tie::TieSwap;
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            // shift == 0 keys the event between its own stock key and the
            // next one: the permutation is identity, but the policy object
            // is installed (the spec is not structurally identity).
            let spec = TieOrderSpec::with_swaps(vec![TieSwap { seq: 3, shift: 0 }]);
            assert!(!spec.is_identity());
            let mut eng: Engine<Vec<u32>> = Engine::with_tie_order(1, kind, &spec);
            let t = SimTime::from_secs(1);
            for i in 0..6 {
                eng.schedule_at(t, move |s, _| s.push(i));
            }
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shuffled_ties_permute_deterministically_and_only_within_ties() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let run = |spec: &TieOrderSpec| {
                let mut eng: Engine<Vec<u32>> = Engine::with_tie_order(1, kind, spec);
                for i in 0..8 {
                    eng.schedule_at(SimTime::from_secs(1), move |s, _| s.push(i));
                }
                // A later, untied event must stay after every tie.
                eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(99));
                let mut out = Vec::new();
                eng.run_to_completion(&mut out);
                out
            };
            let a = run(&TieOrderSpec::shuffled(7));
            let b = run(&TieOrderSpec::shuffled(7));
            let c = run(&TieOrderSpec::shuffled(8));
            assert_eq!(a, b, "same shuffle seed, same order");
            assert_ne!(a, c, "different shuffle seed, different order");
            assert_eq!(a[8], 99, "shuffle never crosses timestamps");
            let mut ties: Vec<u32> = a[..8].to_vec();
            ties.sort_unstable();
            assert_eq!(
                ties,
                (0..8).collect::<Vec<_>>(),
                "a permutation of the ties"
            );
        }
    }

    #[test]
    fn fire_log_records_at_seq_in_fired_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new(1);
        eng.record_fires(true);
        let t = SimTime::from_secs(1);
        eng.schedule_at(t, |s, _| s.push(0));
        eng.schedule_at(t, |s, _| s.push(1));
        assert_eq!(eng.last_seq(), 2);
        eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(2));
        let mut out = Vec::new();
        eng.run_to_completion(&mut out);
        let log = eng.take_fire_log();
        assert_eq!(
            log,
            vec![
                FireRec {
                    at: 1_000_000_000,
                    seq: 1
                },
                FireRec {
                    at: 1_000_000_000,
                    seq: 2
                },
                FireRec {
                    at: 2_000_000_000,
                    seq: 3
                },
            ]
        );
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<Vec<u64>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |s, ctx| {
            s.push(ctx.now().as_nanos());
            ctx.schedule_after(SimDuration::from_secs(2), |s, ctx| {
                s.push(ctx.now().as_nanos());
            });
        });
        let mut out = Vec::new();
        eng.run_to_completion(&mut out);
        assert_eq!(out, vec![1_000_000_000, 3_000_000_000]);
    }

    #[test]
    fn same_granule_scheduling_keeps_tie_order() {
        // An event scheduling a same-time follow-up must see it fire
        // within the same wheel granule, after already-queued ties.
        for mut eng in both() {
            let t = SimTime::from_secs(1);
            eng.schedule_at(t, |s: &mut Vec<u32>, ctx: &mut Ctx<'_, Vec<u32>>| {
                s.push(0);
                ctx.schedule_at(ctx.now(), |s, _| s.push(9));
            });
            eng.schedule_at(t, |s, _| s.push(1));
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, vec![0, 1, 9]);
        }
    }

    #[test]
    fn deadline_stops_and_clamps_clock() {
        for mut eng in both() {
            eng.schedule_at(SimTime::from_secs(1), |s, _| s.push(1));
            eng.schedule_at(SimTime::from_secs(10), |s, _| s.push(10));
            let mut out = Vec::new();
            let stats = eng.run_until(&mut out, SimTime::from_secs(5));
            assert_eq!(out, vec![1]);
            assert_eq!(stats.outcome, RunOutcome::DeadlineReached);
            assert_eq!(eng.now(), SimTime::from_secs(5));
            assert_eq!(eng.pending(), 1);
            // Resuming picks up the rest.
            let stats = eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1, 10]);
            assert_eq!(stats.outcome, RunOutcome::QueueDrained);
        }
    }

    #[test]
    fn mid_granule_deadline_preserves_remaining_ties() {
        // Two events in the same ~1 ms granule with a deadline between
        // them: the second must survive the deadline and fire on resume.
        for mut eng in both() {
            let a = SimTime::from_nanos(100);
            let b = SimTime::from_nanos(300);
            eng.schedule_at(a, |s, _| s.push(1));
            eng.schedule_at(b, |s, _| s.push(2));
            let mut out = Vec::new();
            let stats = eng.run_until(&mut out, SimTime::from_nanos(200));
            assert_eq!(out, vec![1]);
            assert_eq!(stats.outcome, RunOutcome::DeadlineReached);
            assert_eq!(eng.pending(), 1);
            eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1, 2]);
        }
    }

    #[test]
    fn stop_halts_immediately() {
        for mut eng in both() {
            eng.schedule_at(SimTime::from_secs(1), |s, ctx| {
                s.push(1);
                ctx.stop();
            });
            eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(2));
            let mut out = Vec::new();
            let stats = eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1]);
            assert_eq!(stats.outcome, RunOutcome::Stopped);
            assert_eq!(eng.pending(), 1);
        }
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut eng: Engine<Vec<u64>> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(5), |s, ctx| {
            // Attempt to schedule in the past; must fire at `now`.
            ctx.schedule_at(SimTime::from_secs(1), |s2, ctx2| {
                s2.push(ctx2.now().as_nanos());
            });
            s.push(ctx.now().as_nanos());
        });
        let mut out = Vec::new();
        eng.run_to_completion(&mut out);
        assert_eq!(out, vec![5_000_000_000, 5_000_000_000]);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> Vec<u64> {
            let mut eng: Engine<Vec<u64>> = Engine::new(seed);
            for _ in 0..5 {
                eng.schedule_at(SimTime::ZERO, |s, ctx| {
                    let d = SimDuration::from_nanos(ctx.rng().gen_range(1000));
                    ctx.schedule_after(d, move |s2, ctx2| s2.push(ctx2.now().as_nanos()));
                    s.push(d.as_nanos());
                });
            }
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            out
        }
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn executed_total_accumulates() {
        let mut eng: Engine<()> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |_, _| {});
        eng.schedule_at(SimTime::from_secs(2), |_, _| {});
        eng.run_until(&mut (), SimTime::from_secs(1));
        assert_eq!(eng.executed_total(), 1);
        eng.run_to_completion(&mut ());
        assert_eq!(eng.executed_total(), 2);
    }

    #[test]
    fn cancel_removes_pending_events() {
        for mut eng in both() {
            let keep = eng.schedule_at(SimTime::from_secs(1), |s, _| s.push(1));
            let kill = eng.schedule_at(SimTime::from_secs(2), |s, _| s.push(2));
            assert_eq!(eng.pending(), 2);
            assert!(eng.cancel(kill));
            assert!(!eng.cancel(kill), "double cancel is a no-op");
            assert_eq!(eng.pending(), 1);
            let mut out = Vec::new();
            let stats = eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1]);
            assert_eq!(stats.outcome, RunOutcome::QueueDrained);
            assert!(!eng.cancel(keep), "fired events cannot be cancelled");
            let c = eng.counters();
            assert_eq!((c.scheduled, c.fired, c.cancelled), (2, 1, 1));
            assert_eq!(c.pending(), 0);
        }
    }

    #[test]
    fn cancel_from_within_an_event_callback() {
        for mut eng in both() {
            let victim = eng.schedule_at(SimTime::from_secs(5), |s, _| s.push(99));
            eng.schedule_at(SimTime::from_secs(1), move |s, ctx| {
                assert!(ctx.cancel(victim));
                s.push(1);
            });
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1]);
        }
    }

    #[test]
    fn cancelling_a_same_tick_event_skips_it() {
        // Cancel an event already pulled into the wheel's firing batch.
        for mut eng in both() {
            let t = SimTime::from_nanos(100);
            let victim = eng.schedule_at(t + SimDuration::from_nanos(50), |s: &mut Vec<u32>, _| {
                s.push(99)
            });
            eng.schedule_at(t, move |s, ctx| {
                assert!(ctx.cancel(victim));
                s.push(1);
            });
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, vec![1]);
            assert_eq!(eng.pending(), 0);
        }
    }

    #[test]
    fn handler_events_dispatch_with_payload() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut eng: Engine<Vec<u64>> = Engine::with_scheduler(1, kind);
            let h = eng.register_handler(|s: &mut Vec<u64>, ctx, payload| {
                s.push(payload);
                if payload < 3 {
                    let h_next = HandlerId(0);
                    ctx.schedule_handler_after(SimDuration::from_secs(1), h_next, payload + 1);
                }
            });
            eng.schedule_handler_at(SimTime::from_secs(1), h, 0);
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            assert_eq!(out, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn steady_state_handler_timers_hit_the_pool() {
        // A periodic handler timer: after the first slab growth, every
        // schedule recycles the freed slot — zero allocations per event.
        let mut eng: Engine<u64> = Engine::new(1);
        let h = eng.register_handler(|count: &mut u64, ctx, i| {
            *count += 1;
            if i > 0 {
                ctx.schedule_handler_after(SimDuration::from_millis(10), HandlerId(0), i - 1);
            }
        });
        let rounds = 10_000u64;
        eng.schedule_handler_at(SimTime::ZERO, h, rounds - 1);
        let mut count = 0u64;
        eng.run_to_completion(&mut count);
        assert_eq!(count, rounds);
        let c = eng.counters();
        assert_eq!(c.scheduled, rounds);
        assert_eq!(
            c.pool_misses, 1,
            "only the very first schedule grows the slab"
        );
        assert_eq!(
            c.pool_hits,
            rounds - 1,
            "every steady-state schedule reuses it"
        );
    }

    #[test]
    fn run_until_emits_an_engine_span_when_traced() {
        scalecheck_obs::install(scalecheck_obs::Tracer::new());
        let mut eng: Engine<u64> = Engine::new(1);
        for i in 0..5u64 {
            eng.schedule_at(SimTime::from_secs(i), |c, _| *c += 1);
        }
        let mut count = 0u64;
        eng.run_to_completion(&mut count);
        let trace = scalecheck_obs::take().expect("tracer installed").finish();
        assert_eq!(count, 5);
        let span = trace
            .spans
            .iter()
            .find(|s| s.name == scalecheck_obs::SpanName::EngineRun as u16)
            .expect("engine.run span");
        assert_eq!(span.arg, 5, "span arg carries the executed count");
        assert_eq!(span.dur, 4_000_000_000);
        // Event-rate counter sampled per virtual second with fires.
        assert!(!trace.counters.is_empty());
        let fired: u64 = trace.counters.iter().map(|c| c.value).sum();
        assert_eq!(fired, 5);
    }

    #[test]
    fn untraced_runs_emit_nothing() {
        scalecheck_obs::clear();
        let mut eng: Engine<u64> = Engine::new(1);
        eng.schedule_at(SimTime::from_secs(1), |c, _| *c += 1);
        let mut count = 0u64;
        eng.run_to_completion(&mut count);
        assert!(scalecheck_obs::take().is_none());
    }

    #[test]
    fn wheel_and_heap_agree_on_a_mixed_workload() {
        fn run(kind: SchedulerKind) -> (Vec<(u64, u64)>, EngineCounters) {
            let mut eng: Engine<Vec<(u64, u64)>> = Engine::with_scheduler(7, kind);
            for i in 0..200u64 {
                let t = SimTime::from_nanos((i * 7_919_993) % 50_000_000);
                eng.schedule_at(t, move |s, ctx| {
                    s.push((ctx.now().as_nanos(), i));
                    if i % 3 == 0 {
                        let d = SimDuration::from_nanos(ctx.rng().gen_range(5_000_000));
                        ctx.schedule_after(d, move |s, ctx| {
                            s.push((ctx.now().as_nanos(), 1000 + i));
                        });
                    }
                });
            }
            let mut out = Vec::new();
            eng.run_to_completion(&mut out);
            (out, eng.counters())
        }
        let (wheel, cw) = run(SchedulerKind::Wheel);
        let (heap, ch) = run(SchedulerKind::Heap);
        assert_eq!(wheel, heap);
        assert_eq!(cw.fired, ch.fired);
    }
}
